// A1 (ablation) — striping geometry of the PFS model.
//
// Design-choice ablation for DESIGN.md: how much of the model's delivered
// bandwidth comes from striping? Sweeps stripe count and stripe size for a
// shared-file write workload.
//
// Expected shape: bandwidth scales with stripe count until another stage
// (client links, storage fabric) saturates; very small stripes hurt on
// HDD (per-chunk positioning) but matter little on SSD.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "exec/pool.hpp"
#include "workload/kernels.hpp"

using namespace pio;
using namespace pio::literals;

namespace {

struct SweepPoint {
  pfs::DiskKind disk;
  std::uint32_t stripe_count;
  Bytes stripe_size;
};

}  // namespace

int main() {
  bench::banner("A1", "ablation: stripe count and stripe size");

  // Flattened sweep: each point is an independent run on its own engine, so
  // the pool fans them out (PIO_THREADS) and the rows merge back in sweep
  // order — the table is byte-identical at any thread count.
  std::vector<SweepPoint> points;
  for (const auto disk : {pfs::DiskKind::kHdd, pfs::DiskKind::kSsd}) {
    for (const std::uint32_t count : {1u, 2u, 4u, 8u}) {
      for (const Bytes size : {64_KiB, 1_MiB, 8_MiB}) {
        points.push_back(SweepPoint{disk, count, size});
      }
    }
  }

  exec::Pool pool;
  const auto bandwidths = pool.map_ordered(points.size(), [&points](std::size_t i) {
    const SweepPoint& point = points[i];
    auto system = bench::reference_testbed(point.disk);
    workload::IorConfig ior;
    ior.ranks = 16;
    ior.block_size = 32_MiB;
    ior.transfer_size = 8_MiB;
    // The driver assigns the layout at file creation.
    driver::SimRunConfig run_config;
    run_config.layout = pfs::StripeLayout{point.stripe_size, point.stripe_count, 0};
    sim::Engine engine{17};
    pfs::PfsModel model{engine, system};
    driver::ExecutionDrivenSimulator sim{engine, model, run_config};
    return sim.run(*workload::ior_like(ior)).write_bandwidth();
  });

  TextTable table{{"disk", "stripe count", "stripe size", "write bw"}};
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& point = points[i];
    const auto bw = bandwidths[i];
    const char* disk = point.disk == pfs::DiskKind::kHdd ? "hdd" : "ssd";
    table.add_row({disk, std::to_string(point.stripe_count), format_bytes(point.stripe_size),
                   format_bandwidth(bw)});
    bench::emit_row(Record{{"disk", std::string(disk)},
                           {"stripe_count", static_cast<std::uint64_t>(point.stripe_count)},
                           {"stripe_kib", point.stripe_size.kib()},
                           {"write_mib_s", bw.mib_per_sec()}});
  }
  std::cout << table.to_string();
  std::cout << "\nshape check: bandwidth grows with stripe count until the fabric\n"
               "saturates; tiny stripes on HDD pay per-chunk positioning costs.\n";
  return 0;
}
