// A1 (ablation) — striping geometry of the PFS model.
//
// Design-choice ablation for DESIGN.md: how much of the model's delivered
// bandwidth comes from striping? Sweeps stripe count and stripe size for a
// shared-file write workload.
//
// Expected shape: bandwidth scales with stripe count until another stage
// (client links, storage fabric) saturates; very small stripes hurt on
// HDD (per-chunk positioning) but matter little on SSD.
#include <iostream>

#include "bench_util.hpp"
#include "workload/kernels.hpp"

using namespace pio;
using namespace pio::literals;

int main() {
  bench::banner("A1", "ablation: stripe count and stripe size");
  TextTable table{{"disk", "stripe count", "stripe size", "write bw"}};
  for (const auto disk : {pfs::DiskKind::kHdd, pfs::DiskKind::kSsd}) {
    for (const std::uint32_t count : {1u, 2u, 4u, 8u}) {
      for (const Bytes size : {64_KiB, 1_MiB, 8_MiB}) {
        auto system = bench::reference_testbed(disk);
        workload::IorConfig ior;
        ior.ranks = 16;
        ior.block_size = 32_MiB;
        ior.transfer_size = 8_MiB;
        // The driver assigns the layout at file creation.
        driver::SimRunConfig run_config;
        run_config.layout = pfs::StripeLayout{size, count, 0};
        sim::Engine engine{17};
        pfs::PfsModel model{engine, system};
        driver::ExecutionDrivenSimulator sim{engine, model, run_config};
        const auto result = sim.run(*workload::ior_like(ior));
        const auto bw = result.write_bandwidth();
        table.add_row({disk == pfs::DiskKind::kHdd ? "hdd" : "ssd", std::to_string(count),
                       format_bytes(size), format_bandwidth(bw)});
        bench::emit_row(Record{{"disk", std::string(disk == pfs::DiskKind::kHdd ? "hdd" : "ssd")},
                               {"stripe_count", static_cast<std::uint64_t>(count)},
                               {"stripe_kib", size.kib()},
                               {"write_mib_s", bw.mib_per_sec()}});
      }
    }
  }
  std::cout << table.to_string();
  std::cout << "\nshape check: bandwidth grows with stripe count until the fabric\n"
               "saturates; tiny stripes on HDD pay per-chunk positioning costs.\n";
  return 0;
}
