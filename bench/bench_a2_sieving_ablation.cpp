// A2 (ablation) — the data-sieving hole-fraction threshold.
//
// Design-choice ablation for DESIGN.md: mio's data sieving reads one big
// gulp when the strided pattern's hole fraction is below a threshold.
// Sweeps the hole fraction of the access pattern against the threshold and
// reports the POSIX read counts plus wasted (hole) bytes.
//
// Expected shape: below the threshold, POSIX reads collapse to 1 but extra
// bytes are fetched; above it, per-extent reads dominate. The crossover is
// exactly where the knob is set — showing what the hint trades off.
#include <atomic>
#include <iostream>

#include "bench_util.hpp"
#include "mio/mio.hpp"
#include "par/comm.hpp"
#include "vfs/backend.hpp"
#include "vfs/file_system.hpp"

using namespace pio;
using namespace pio::literals;

int main() {
  bench::banner("A2", "ablation: data-sieving hole-fraction threshold");
  TextTable table{{"pattern holes", "threshold", "POSIX reads", "bytes fetched",
                   "useful fraction"}};
  constexpr std::uint64_t kPiece = 64 * 1024;
  constexpr int kPieces = 32;
  for (const double hole_fraction : {0.25, 0.5, 0.75}) {
    for (const double threshold : {0.0, 0.5, 1.0}) {
      vfs::FileSystem fs;
      vfs::LocalBackend backend{fs};
      std::atomic<std::uint64_t> reads{0};
      std::atomic<std::uint64_t> bytes{0};
      par::Runtime runtime{1};
      runtime.run([&](par::Comm& comm) {
        mio::Hints hints;
        hints.ds_max_hole_fraction = threshold;
        auto file = mio::File::open_all(comm, backend, "/f", true, hints);
        if (!file.ok()) throw std::runtime_error(file.error().message);
        // Stride chosen so holes are `hole_fraction` of the span.
        const auto stride = static_cast<std::uint64_t>(
            static_cast<double>(kPiece) / (1.0 - hole_fraction));
        std::vector<std::byte> content(stride * kPieces);
        if (!file.value()->write_at(0, content).ok()) throw std::runtime_error("write");
        std::vector<mio::Extent> extents;
        for (int i = 0; i < kPieces; ++i) {
          extents.push_back(mio::Extent{static_cast<std::uint64_t>(i) * stride,
                                        Bytes{kPiece}});
        }
        std::vector<std::byte> out(kPiece * kPieces);
        const auto before = file.value()->posix_counters();
        if (!file.value()->read_strided(extents, out).ok()) throw std::runtime_error("read");
        const auto after = file.value()->posix_counters();
        reads = after.reads - before.reads;
        bytes = after.bytes_read.count() - before.bytes_read.count();
        (void)file.value()->close_all();
      });
      const double useful =
          static_cast<double>(kPiece * kPieces) / static_cast<double>(bytes.load());
      table.add_row({format_percent(hole_fraction), format_double(threshold, 2),
                     std::to_string(reads.load()), format_bytes(Bytes{bytes.load()}),
                     format_percent(useful)});
      bench::emit_row(Record{{"hole_fraction", hole_fraction},
                             {"threshold", threshold},
                             {"posix_reads", reads.load()},
                             {"bytes_fetched", bytes.load()},
                             {"useful_fraction", useful}});
    }
  }
  std::cout << table.to_string();
  std::cout << "\nshape check: one gulp (wasting hole bytes) when the pattern's hole\n"
               "fraction is at or below the threshold; per-extent reads otherwise.\n";
  return 0;
}
