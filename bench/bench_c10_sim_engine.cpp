// C10 — Discrete-event engine throughput (the §IV.C substrate).
//
// Paper: simulation is the stand-in for testbeds researchers do not have;
// that is only viable if the engine sustains millions of events per second.
// This is the one google-benchmark microbenchmark binary: engine event
// throughput, fluid-channel transfers, and end-to-end PFS model ops.
#include <benchmark/benchmark.h>

#include "net/fabric.hpp"
#include "pfs/pfs.hpp"
#include "sim/engine.hpp"
#include "sim/resources.hpp"

using namespace pio;
using namespace pio::literals;

namespace {

void BM_EngineEventStorm(benchmark::State& state) {
  const auto events = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    Rng rng = engine.rng_stream(1);
    for (std::uint64_t i = 0; i < events; ++i) {
      engine.schedule_at(SimTime::from_ns(static_cast<std::int64_t>(rng.next_below(1u << 20))),
                         [] {});
    }
    const auto executed = engine.run();
    benchmark::DoNotOptimize(executed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) * state.iterations());
}
BENCHMARK(BM_EngineEventStorm)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void BM_EngineSelfScheduling(benchmark::State& state) {
  // Event-chain pattern: each handler schedules the next (server-loop shape).
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t remaining = depth;
    std::function<void()> next = [&] {
      if (--remaining > 0) engine.schedule_after(1_us, next);
    };
    engine.schedule_after(1_us, next);
    engine.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(depth) * state.iterations());
}
BENCHMARK(BM_EngineSelfScheduling)->Arg(1 << 14)->Arg(1 << 17);

void BM_FairShareChannel(benchmark::State& state) {
  const auto flows = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    sim::FairShareChannel link{engine, Bandwidth::from_gib_per_sec(10.0), 1_us};
    for (std::uint64_t f = 0; f < flows; ++f) {
      // piolint: allow(C2) — engine.run() drains before link leaves scope.
      engine.schedule_at(SimTime::from_us(static_cast<double>(f % 64)), [&link] {
        link.transfer(1_MiB, [] {});
      });
    }
    engine.run();
    benchmark::DoNotOptimize(link.bytes_moved());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(flows) * state.iterations());
}
BENCHMARK(BM_FairShareChannel)->Arg(256)->Arg(1024);

void BM_PfsModelEndToEnd(benchmark::State& state) {
  const auto ops = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    pfs::PfsConfig config;
    config.clients = 8;
    config.io_nodes = 2;
    config.osts = 8;
    config.disk_kind = pfs::DiskKind::kSsd;
    pfs::PfsModel model{engine, config};
    pfs::MetaResult created;
    model.meta(0, pfs::MetaOp::kCreate, "/bench", [&](pfs::MetaResult r) { created = r; });
    engine.run();
    for (std::uint64_t i = 0; i < ops; ++i) {
      model.io(static_cast<pfs::ClientId>(i % 8), "/bench", created.inode->layout,
               (i % 64) << 20, 1_MiB, true, [](pfs::IoResult) {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.events_executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops) * state.iterations());
}
BENCHMARK(BM_PfsModelEndToEnd)->Arg(256)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
