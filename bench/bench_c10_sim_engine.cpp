// C10 — Discrete-event engine throughput (the §IV.C substrate).
//
// Paper: simulation is the stand-in for testbeds researchers do not have;
// that is only viable if the engine sustains millions of events per second.
// This is the one google-benchmark microbenchmark binary: engine event
// throughput, scheduler-queue comparisons (4-ary heap vs calendar queue),
// payload allocation (slab vs arena), fluid-channel transfers, and
// end-to-end PFS model ops.
#include <benchmark/benchmark.h>

#include <array>
#include <functional>

#include "net/fabric.hpp"
#include "pfs/pfs.hpp"
#include "sim/arena.hpp"
#include "sim/engine.hpp"
#include "sim/resources.hpp"

using namespace pio;
using namespace pio::literals;

namespace {

void BM_EngineEventStorm(benchmark::State& state) {
  const auto events = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    Rng rng = engine.rng_stream(1);
    for (std::uint64_t i = 0; i < events; ++i) {
      engine.schedule_at(SimTime::from_ns(static_cast<std::int64_t>(rng.next_below(1u << 20))),
                         [] {});
    }
    const auto executed = engine.run();
    benchmark::DoNotOptimize(executed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) * state.iterations());
}
BENCHMARK(BM_EngineEventStorm)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void BM_EngineSelfScheduling(benchmark::State& state) {
  // Event-chain pattern: each handler schedules the next (server-loop shape).
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t remaining = depth;
    std::function<void()> next = [&] {
      if (--remaining > 0) engine.schedule_after(1_us, next);
    };
    engine.schedule_after(1_us, next);
    engine.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(depth) * state.iterations());
}
BENCHMARK(BM_EngineSelfScheduling)->Arg(1 << 14)->Arg(1 << 17);

// ---- BM_SchedulerQueue: heap vs calendar head-to-head (DESIGN.md §16) ----
// Both produce the identical fire order (tests/test_parsim.cpp); these rows
// measure the constant-factor question the QueueKind knob exists to answer.
// arg0 selects the queue (0 = 4-ary heap, 1 = calendar), arg1 the volume.

sim::EngineOptions queue_options(std::int64_t kind) {
  return sim::EngineOptions{kind == 0 ? sim::QueueKind::kQuadHeap : sim::QueueKind::kCalendar};
}

void BM_SchedulerQueueStorm(benchmark::State& state) {
  // Uniform storm: the distribution calendar queues were built for — a large
  // standing population with uniform-ish times, pushed up front, drained flat.
  const auto events = static_cast<std::uint64_t>(state.range(1));
  for (auto _ : state) {
    sim::Engine engine{1, queue_options(state.range(0))};
    Rng rng = engine.rng_stream(1);
    for (std::uint64_t i = 0; i < events; ++i) {
      engine.schedule_at(SimTime::from_ns(static_cast<std::int64_t>(rng.next_below(1u << 20))),
                         [] {});
    }
    const auto executed = engine.run();
    benchmark::DoNotOptimize(executed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) * state.iterations());
}
BENCHMARK(BM_SchedulerQueueStorm)
    ->Args({0, 1 << 15})
    ->Args({1, 1 << 15})
    ->Args({0, 1 << 18})
    ->Args({1, 1 << 18});

void BM_SchedulerQueueSelfScheduling(benchmark::State& state) {
  // Steady-state self-scheduling: a standing population of handlers that
  // each reschedule themselves at a random future offset (server-loop
  // shape) — pops and pushes interleave, walking the calendar cursor.
  const auto events = static_cast<std::uint64_t>(state.range(1));
  constexpr std::uint64_t kPopulation = 4096;
  for (auto _ : state) {
    sim::Engine engine{1, queue_options(state.range(0))};
    Rng rng = engine.rng_stream(1);
    std::uint64_t budget = events;
    std::function<void()> tick = [&] {
      if (budget == 0) return;
      --budget;
      engine.schedule_after(
          SimTime::from_ns(static_cast<std::int64_t>(rng.next_below(1u << 14) + 1)), tick);
    };
    for (std::uint64_t p = 0; p < kPopulation; ++p) {
      engine.schedule_after(SimTime::from_ns(static_cast<std::int64_t>(rng.next_below(1u << 14))),
                            tick);
    }
    const auto executed = engine.run();
    benchmark::DoNotOptimize(executed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) * state.iterations());
}
BENCHMARK(BM_SchedulerQueueSelfScheduling)->Args({0, 1 << 15})->Args({1, 1 << 15});

void BM_EngineOversizePayloads(benchmark::State& state) {
  // Fat captures (> Task::kInlineBytes) force the oversized-payload path:
  // arg0 = 0 routes them through the engine's size-class slab, 1 through a
  // bump-allocating PayloadArena (the sharded engine's per-domain setup).
  constexpr std::uint64_t kEvents = 1 << 15;
  for (auto _ : state) {
    sim::PayloadArena arena;
    sim::Engine engine;
    if (state.range(0) == 1) engine.use_arena(&arena);
    Rng rng = engine.rng_stream(1);
    std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      std::array<std::uint64_t, 16> fat{};
      fat[0] = i;
      engine.schedule_at(SimTime::from_ns(static_cast<std::int64_t>(rng.next_below(1u << 20))),
                         // piolint: allow(C2) — run() drains before sink leaves scope.
                         [&sink, fat] { sink += fat[0]; });
    }
    engine.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kEvents) * state.iterations());
}
BENCHMARK(BM_EngineOversizePayloads)->Arg(0)->Arg(1);

void BM_FairShareChannel(benchmark::State& state) {
  const auto flows = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    sim::FairShareChannel link{engine, Bandwidth::from_gib_per_sec(10.0), 1_us};
    for (std::uint64_t f = 0; f < flows; ++f) {
      // piolint: allow(C2) — engine.run() drains before link leaves scope.
      engine.schedule_at(SimTime::from_us(static_cast<double>(f % 64)), [&link] {
        link.transfer(1_MiB, [] {});
      });
    }
    engine.run();
    benchmark::DoNotOptimize(link.bytes_moved());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(flows) * state.iterations());
}
BENCHMARK(BM_FairShareChannel)->Arg(256)->Arg(1024);

void BM_PfsModelEndToEnd(benchmark::State& state) {
  const auto ops = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    pfs::PfsConfig config;
    config.clients = 8;
    config.io_nodes = 2;
    config.osts = 8;
    config.disk_kind = pfs::DiskKind::kSsd;
    pfs::PfsModel model{engine, config};
    pfs::MetaResult created;
    model.meta(0, pfs::MetaOp::kCreate, "/bench", [&](pfs::MetaResult r) { created = r; });
    engine.run();
    for (std::uint64_t i = 0; i < ops; ++i) {
      model.io(static_cast<pfs::ClientId>(i % 8), "/bench", created.inode->layout,
               (i % 64) << 20, 1_MiB, true, [](pfs::IoResult) {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.events_executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops) * state.iterations());
}
BENCHMARK(BM_PfsModelEndToEnd)->Arg(256)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
