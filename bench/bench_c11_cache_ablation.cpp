// C-11 — client-side caching turns warm-epoch DL small reads into local
// hits; cache policy, capacity, and prefetching are campaign axes, not
// constants; write-back never drops an acknowledged byte across a crash.
//
// Paper §V.B: AI/DL training re-reads a bounded sample set every epoch
// through small, shuffled requests — the access pattern a stripe-and-seek
// PFS serves worst and a node-local cache serves best. This bench sweeps
// the pio::cache tier (DESIGN.md §10) on the reference testbed:
//
//   part A — policy x capacity sweep (LRU vs 2Q) on a shuffled DLIO
//            kernel. The hit-rate curve climbs with capacity until the
//            working set fits; makespan falls with it.
//   part B — warm-epoch speedup: with the sample set resident, a warm
//            epoch completes >= 2x faster than the same epoch with the
//            cache off. Prefetcher ablation (none / sequential readahead /
//            epoch-aware warming) at a capacity below the working set,
//            reporting prefetch used vs wasted.
//   part C — crash during write-back (invariant C1): a checkpoint's dirty
//            pages meet an OST outage; write-backs fail and retry until
//            recovery, the application never observes the crash, and every
//            acknowledged byte lands on the device (audited against the
//            durability ledger at quiescence).
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cache/cache.hpp"
#include "exec/pool.hpp"
#include "workload/dlio.hpp"
#include "workload/kernels.hpp"

using namespace pio;

namespace {

constexpr std::uint64_t kPageBytes = 64 * 1024;

/// The C-11 DL kernel: 8 ranks re-reading a 256-sample (16 MiB, 256-page)
/// set with per-epoch reshuffling and no compute, so I/O time is the
/// makespan.
workload::DlioConfig dl_kernel(std::int32_t epochs) {
  workload::DlioConfig config;
  config.ranks = 8;
  config.samples = 256;
  config.sample_size = Bytes::from_kib(64);
  config.samples_per_file = 64;
  config.batch_size = 8;
  config.epochs = epochs;
  config.shuffle = true;
  config.seed = 7;
  config.compute_per_batch = SimTime::zero();
  return config;
}

/// One cached DLIO run on a fresh engine + reference testbed (SSD).
driver::SimRunResult run_dlio(const cache::CacheConfig& cache_config, std::int32_t epochs) {
  sim::Engine engine{1};
  pfs::PfsModel model{engine, bench::reference_testbed(pfs::DiskKind::kSsd)};
  driver::SimRunConfig run_config;
  run_config.cache = cache_config;
  driver::ExecutionDrivenSimulator sim{engine, model, run_config};
  auto result = sim.run(*workload::dlio_like(dl_kernel(epochs)));
  engine.run();  // drain background write-back / warming past the workload
  return result;
}

cache::CacheConfig shared_cache(std::uint64_t capacity_pages, cache::EvictionPolicy policy,
                                cache::PrefetchMode prefetch) {
  cache::CacheConfig config;
  config.enabled = true;
  config.scope = cache::CacheScope::kShared;
  config.policy = policy;
  config.prefetch = prefetch;
  config.capacity_pages = capacity_pages;
  config.max_dirty_pages = capacity_pages / 2;
  return config;
}

/// Marginal cost of one extra epoch: makespan(2 epochs) - makespan(1).
/// Epoch one is cold either way, so this isolates the warm epoch.
SimTime warm_epoch_time(const cache::CacheConfig& cache_config) {
  return run_dlio(cache_config, 2).makespan - run_dlio(cache_config, 1).makespan;
}

struct CrashRun {
  driver::SimRunResult result;
  Bytes landed = Bytes::zero();
  bool audit_ok = false;
};

/// Part C: a 4-rank checkpoint (8 x 64 KiB pages per rank) absorbed by the
/// write-back cache while the only OST is down for the first 50 ms.
CrashRun run_crash_writeback() {
  std::vector<std::vector<workload::Op>> ops(4);
  for (std::int32_t r = 0; r < 4; ++r) {
    const std::string path = "/ckpt-" + std::to_string(r);
    auto& rank_ops = ops[static_cast<std::size_t>(r)];
    rank_ops.push_back(workload::Op::create(path));
    for (std::uint64_t p = 0; p < 8; ++p) {
      rank_ops.push_back(workload::Op::write(path, p * kPageBytes, Bytes::from_kib(64)));
    }
    rank_ops.push_back(workload::Op::fsync(path));
    rank_ops.push_back(workload::Op::close(path));
  }
  const workload::VectorWorkload checkpoint{"ckpt", std::move(ops)};

  sim::Engine engine{1};
  pfs::PfsConfig pfs_config;
  pfs_config.clients = 4;
  pfs_config.io_nodes = 1;
  pfs_config.osts = 1;
  pfs_config.disk_kind = pfs::DiskKind::kSsd;
  pfs_config.mds.default_layout = pfs::StripeLayout{Bytes::from_mib(1), 1, 0};
  pfs_config.faults.ost_down(0, SimTime::zero(), SimTime::from_ms(50.0));
  pfs::PfsModel model{engine, pfs_config};
  driver::SimRunConfig run_config;
  run_config.layout = pfs::StripeLayout{Bytes::from_mib(1), 1, 0};
  run_config.cache = shared_cache(256, cache::EvictionPolicy::kLru, cache::PrefetchMode::kNone);
  driver::ExecutionDrivenSimulator sim{engine, model, run_config};

  CrashRun out;
  out.result = sim.run(checkpoint);
  engine.run();
  out.landed = model.ost(0).stats().bytes_written;
  try {
    engine.assert_drained();
    model.assert_quiescent();  // F3 ledger agrees: nothing acked was lost
    out.audit_ok = true;
  } catch (const std::exception& e) {
    std::cout << "C1 audit FAILED: " << e.what() << "\n";
  }
  return out;
}

std::string percent(double fraction) { return format_double(fraction * 100.0, 1) + "%"; }

}  // namespace

int main() {
  bench::banner("C-11",
                "node-local caching converts warm-epoch DL small reads into hits; "
                "policy/capacity/prefetch are sweep axes; write-back keeps C1 across "
                "a crash (DESIGN.md section 10)");

  // Part A: policy x capacity hit-rate curve on the shuffled DL kernel.
  // The sweep points are independent runs on fresh engines: the pool fans
  // them out and the merged row order is the flattened loop order, so the
  // curve is byte-identical at any PIO_THREADS.
  const std::vector<std::uint64_t> capacities = {32, 64, 128, 256};
  const std::vector<cache::EvictionPolicy> policies = {cache::EvictionPolicy::kLru,
                                                       cache::EvictionPolicy::kTwoQ};
  exec::Pool pool;
  const auto curve_results =
      pool.map_ordered(policies.size() * capacities.size(), [&](std::size_t i) {
        const auto policy = policies[i / capacities.size()];
        const auto capacity = capacities[i % capacities.size()];
        return run_dlio(shared_cache(capacity, policy, cache::PrefetchMode::kNone), 3);
      });
  TextTable curve{{"policy", "capacity", "hit rate", "evictions", "makespan"}};
  bool curve_climbs = true;
  bool makespan_falls = true;
  for (std::size_t pi = 0; pi < policies.size(); ++pi) {
    const auto policy = policies[pi];
    double first_rate = -1.0;
    double last_rate = -1.0;
    double first_ms = 0.0;
    double last_ms = 0.0;
    for (std::size_t ci = 0; ci < capacities.size(); ++ci) {
      const auto capacity = capacities[ci];
      const auto& result = curve_results[pi * capacities.size() + ci];
      const double rate = result.cache_hit_rate();
      curve.add_row({to_string(policy), std::to_string(capacity) + " pages", percent(rate),
                     std::to_string(result.cache_evictions), format_time(result.makespan)});
      bench::emit_row(Record{{"part", std::string("curve")},
                             {"policy", std::string(to_string(policy))},
                             {"capacity_pages", capacity},
                             {"hit_rate", rate},
                             {"evictions", result.cache_evictions},
                             {"makespan_ms", result.makespan.ms()}});
      if (first_rate < 0.0) {
        first_rate = rate;
        first_ms = result.makespan.ms();
      }
      last_rate = rate;
      last_ms = result.makespan.ms();
    }
    curve_climbs = curve_climbs && last_rate > first_rate;
    makespan_falls = makespan_falls && last_ms < first_ms;
  }
  std::cout << curve.to_string();
  std::cout << "The working set is 256 pages: the curve climbs until it fits, and "
               "makespan tracks it down.\n\n";

  // Part B: warm-epoch speedup vs cache-off, then the prefetcher ablation.
  const auto fit = shared_cache(512, cache::EvictionPolicy::kLru, cache::PrefetchMode::kNone);
  cache::CacheConfig off;
  off.enabled = false;
  const SimTime warm_on = warm_epoch_time(fit);
  const SimTime warm_off = warm_epoch_time(off);
  const double speedup = warm_off.ms() / warm_on.ms();
  TextTable warm{{"config", "warm-epoch time", "speedup"}};
  warm.add_row({"cache off", format_time(warm_off), "1.0x"});
  warm.add_row({"shared cache (fits)", format_time(warm_on), format_double(speedup, 1) + "x"});
  std::cout << warm.to_string();
  bench::emit_row(Record{{"part", std::string("warm")},
                         {"warm_epoch_off_ms", warm_off.ms()},
                         {"warm_epoch_on_ms", warm_on.ms()},
                         {"speedup", speedup}});
  std::cout << "Warm-epoch small reads are served node-local instead of crossing the "
               "fabric to the OSTs.\n\n";

  const std::vector<cache::PrefetchMode> modes = {cache::PrefetchMode::kNone,
                                                  cache::PrefetchMode::kSequential,
                                                  cache::PrefetchMode::kEpoch};
  const auto prefetch_results = pool.map_ordered(modes.size(), [&modes](std::size_t i) {
    return run_dlio(shared_cache(96, cache::EvictionPolicy::kTwoQ, modes[i]), 3);
  });
  TextTable prefetch{{"prefetch", "hit rate", "issued", "used", "wasted", "makespan"}};
  std::uint64_t epoch_used = 0;
  bool prefetch_accounted = true;
  for (std::size_t mi = 0; mi < modes.size(); ++mi) {
    const auto mode = modes[mi];
    const auto& result = prefetch_results[mi];
    prefetch.add_row({to_string(mode), percent(result.cache_hit_rate()),
                      std::to_string(result.cache_prefetch_issued),
                      std::to_string(result.cache_prefetch_used),
                      std::to_string(result.cache_prefetch_wasted),
                      format_time(result.makespan)});
    bench::emit_row(Record{{"part", std::string("prefetch")},
                           {"mode", std::string(to_string(mode))},
                           {"hit_rate", result.cache_hit_rate()},
                           {"issued", result.cache_prefetch_issued},
                           {"used", result.cache_prefetch_used},
                           {"wasted", result.cache_prefetch_wasted},
                           {"makespan_ms", result.makespan.ms()}});
    if (mode == cache::PrefetchMode::kEpoch) epoch_used = result.cache_prefetch_used;
    prefetch_accounted = prefetch_accounted &&
                         result.cache_prefetch_issued ==
                             result.cache_prefetch_used + result.cache_prefetch_wasted;
  }
  std::cout << prefetch.to_string();
  std::cout << "Every speculative page is accounted for: issued == used + wasted.\n\n";

  // Part C: crash during write-back.
  const auto crash = run_crash_writeback();
  const Bytes absorbed{crash.result.cache_absorbed_writes * kPageBytes};
  TextTable c1{{"failed ops", "absorbed", "write-back failures", "landed", "audit"}};
  c1.add_row({std::to_string(crash.result.failed_ops), format_bytes(absorbed),
              std::to_string(crash.result.cache_writeback_failures), format_bytes(crash.landed),
              crash.audit_ok ? "clean" : "VIOLATED"});
  std::cout << c1.to_string();
  bench::emit_row(Record{{"part", std::string("crash_writeback")},
                         {"failed_ops", crash.result.failed_ops},
                         {"absorbed_bytes", absorbed.count()},
                         {"writeback_failures", crash.result.cache_writeback_failures},
                         {"landed_bytes", crash.landed.count()},
                         {"audit_ok", crash.audit_ok ? std::uint64_t{1} : std::uint64_t{0}}});
  const bool c1_holds = crash.result.failed_ops == 0 &&
                        crash.result.cache_writeback_failures > 0 && crash.landed == absorbed &&
                        crash.result.cache_writeback_bytes == absorbed && crash.audit_ok;
  std::cout << "The outage is invisible to the application; retries land every "
               "acknowledged byte once the OST returns.\n\n";

  const bool shape_holds =
      curve_climbs && makespan_falls && speedup >= 2.0 && epoch_used > 0 && prefetch_accounted &&
      c1_holds;
  std::cout << "shape check: " << (shape_holds ? "HOLDS" : "VIOLATED")
            << " (hit-rate curve climbs with capacity while makespan falls; warm epoch "
               ">= 2x faster than cache-off; epoch warming converts prefetches into hits "
               "with full accounting; C1 holds across the crash)\n";
  return shape_holds ? 0 : 1;
}
