// C-12 — parallel campaign execution: thread-count scaling of the closed
// evaluation loop with a byte-identical result at every width.
//
// DESIGN.md §11: the sweep inside one campaign iteration fans out across an
// exec::Pool — each workload's measure→replay→simulate chain runs on its
// own engine with seeds split via derive_seed, and the outcomes merge in
// submission order. This bench runs the same 4-workload x 3-iteration
// campaign at 1/2/4/8 threads, times each run against the sanctioned wall
// clock, and FNV-hashes the full CampaignResult: any digest mismatch means
// the parallel path leaked scheduling order into the science, which is a
// hard failure here (and in tests/test_exec.cpp).
//
// Wall-clock speedup depends on the host's core count — on a single-core
// container every width measures ~1x; the determinism column is the
// machine-independent claim.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "eval/campaign.hpp"
#include "workload/dlio.hpp"
#include "workload/kernels.hpp"
#include "workload/workflow.hpp"

using namespace pio;

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

class Fnv1a {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xffULL;
      hash_ *= kFnvPrime;
    }
  }
  void mix(const std::string& s) {
    for (const char c : s) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= kFnvPrime;
    }
    mix(s.size());
  }
  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = kFnvOffset;
};

std::uint64_t hash_campaign(const eval::CampaignResult& result) {
  Fnv1a h;
  for (const auto& iteration : result.iterations) {
    h.mix(iteration.index);
    h.mix(static_cast<std::uint64_t>(iteration.calibration_in_use * 1e12));
    for (const auto& p : iteration.points) {
      h.mix(p.workload);
      h.mix(static_cast<std::uint64_t>(p.measured.ns()));
      h.mix(static_cast<std::uint64_t>(p.simulated_raw.ns()));
      h.mix(static_cast<std::uint64_t>(p.predicted.ns()));
    }
  }
  h.mix(static_cast<std::uint64_t>(result.final_calibration * 1e12));
  for (const auto& record : result.profile.records()) {
    h.mix(static_cast<std::uint64_t>(record.rank));
    h.mix(record.path);
    h.mix(record.reads);
    h.mix(record.writes);
    h.mix(record.bytes_read.count());
    h.mix(record.bytes_written.count());
  }
  return h.digest();
}

/// The C-12 sweep: two IOR geometries, a shuffled DLIO epoch, and a DAG
/// workflow — four independent chains per iteration for the pool to spread.
struct Sweep {
  std::unique_ptr<workload::Workload> a, b, c, d;
  [[nodiscard]] std::vector<const workload::Workload*> view() const {
    return {a.get(), b.get(), c.get(), d.get()};
  }
};

Sweep build_sweep() {
  Sweep sweep;
  workload::IorConfig ior_a;
  ior_a.ranks = 8;
  ior_a.block_size = Bytes::from_mib(8);
  ior_a.transfer_size = Bytes::from_mib(1);
  sweep.a = workload::ior_like(ior_a);
  workload::IorConfig ior_b = ior_a;
  ior_b.transfer_size = Bytes::from_kib(256);
  sweep.b = workload::ior_like(ior_b);
  workload::DlioConfig dlio;
  dlio.ranks = 8;
  dlio.samples = 512;
  dlio.samples_per_file = 64;
  dlio.batch_size = 16;
  dlio.shuffle = true;
  dlio.seed = 5;
  sweep.c = workload::dlio_like(dlio);
  workload::WorkflowConfig wf;
  wf.workers = 8;
  wf.stages = 3;
  wf.tasks_per_stage = 16;
  wf.files_per_task = 2;
  sweep.d = workload::workflow_dag(wf);
  return sweep;
}

struct ScalingPoint {
  std::uint32_t threads = 1;
  double wall_ms = 0.0;
  std::uint64_t digest = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--json-out <path>]\n";
      return 2;
    }
  }

  bench::banner("C-12",
                "parallel campaign execution: thread-count scaling with a "
                "byte-identical CampaignResult (DESIGN.md section 11)");

  const Sweep sweep = build_sweep();
  const std::vector<std::uint32_t> widths = {1, 2, 4, 8};
  std::vector<ScalingPoint> points;
  const trace::WallClock wall;
  for (const std::uint32_t threads : widths) {
    eval::CampaignConfig config;
    config.testbed = bench::reference_testbed(pfs::DiskKind::kSsd);
    config.model = bench::reference_testbed(pfs::DiskKind::kHdd);  // mis-calibrated
    config.iterations = 3;
    config.seed = 11;
    config.threads = threads;
    eval::Campaign campaign{config};
    const SimTime start = wall.now();
    const auto result = campaign.run(sweep.view());
    const SimTime elapsed = wall.now() - start;
    points.push_back(ScalingPoint{threads, elapsed.ms(), hash_campaign(result)});
  }

  bool identical = true;
  for (const auto& point : points) identical = identical && point.digest == points[0].digest;

  TextTable table{{"threads", "wall time", "speedup", "digest", "identical"}};
  for (const auto& point : points) {
    const double speedup = points[0].wall_ms / point.wall_ms;
    std::ostringstream digest_hex;
    digest_hex << std::hex << point.digest;
    table.add_row({std::to_string(point.threads), format_double(point.wall_ms, 1) + " ms",
                   format_double(speedup, 2) + "x", digest_hex.str(),
                   point.digest == points[0].digest ? "yes" : "NO"});
    bench::emit_row(Record{{"threads", static_cast<std::uint64_t>(point.threads)},
                           {"wall_ms", point.wall_ms},
                           {"speedup", speedup},
                           {"digest", point.digest},
                           {"identical", point.digest == points[0].digest ? std::uint64_t{1}
                                                                          : std::uint64_t{0}}});
  }
  std::cout << table.to_string();

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << "{\n  \"bench\": \"c12_campaign_scaling\",\n"
        << "  \"host\": " << bench::host_context_json() << ",\n"
        << "  \"sweep_workloads\": 4,\n  \"iterations\": 3,\n  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::ostringstream digest_hex;
      digest_hex << std::hex << points[i].digest;
      out << "    {\"threads\": " << points[i].threads << ", \"wall_ms\": "
          << format_double(points[i].wall_ms, 3)
          << ", \"speedup\": " << format_double(points[0].wall_ms / points[i].wall_ms, 3)
          << ", \"digest\": \"0x" << digest_hex.str() << "\"}"
          << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"result_identical_across_threads\": " << (identical ? "true" : "false")
        << "\n}\n";
    std::cout << "wrote " << json_out << "\n";
  }

  std::cout << "shape check: " << (identical ? "HOLDS" : "VIOLATED")
            << " (CampaignResult digest is byte-identical at every thread count; "
               "wall-clock speedup is host-core-bound)\n";
  return identical ? 0 : 1;
}
