// C-13 — sharded facility execution: shard-count scaling of one multi-tenant
// facility run with a byte-identical FacilityResult at every width.
//
// DESIGN.md §16: a facility is many simulation cells coupled through a
// coordinator over a lookahead-bounded fabric, advancing in conservative
// safe windows under sim::ShardedEngine. This bench builds an eight-cell
// facility (two IOR geometries, shuffled DLIO epochs, DAG workflows — the
// C-12 shapes, one per tenant), runs it at 1/2/4/8 shards with a matching
// exec::Pool, times each run against the sanctioned wall clock, and hashes
// the full FacilityResult: any digest mismatch means shard scheduling leaked
// into the science, which is a hard failure here (and in
// tests/test_parsim.cpp across five system configurations).
//
// Wall-clock speedup depends on the host's core count — on a single-core
// container every width measures ~1x; the determinism column plus the
// shard-count-invariant window count are the machine-independent claims.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "eval/facility.hpp"
#include "workload/dlio.hpp"
#include "workload/kernels.hpp"
#include "workload/workflow.hpp"

using namespace pio;

namespace {

/// Eight tenant cells cycling the four C-12 workload shapes.
struct Tenants {
  std::vector<std::unique_ptr<workload::Workload>> owned;
  std::vector<eval::FacilityCell> cells;
};

Tenants build_tenants() {
  Tenants tenants;
  workload::IorConfig ior_a;
  ior_a.ranks = 4;
  ior_a.block_size = Bytes::from_mib(4);
  ior_a.transfer_size = Bytes::from_mib(1);
  tenants.owned.push_back(workload::ior_like(ior_a));
  workload::IorConfig ior_b = ior_a;
  ior_b.transfer_size = Bytes::from_kib(256);
  tenants.owned.push_back(workload::ior_like(ior_b));
  workload::DlioConfig dlio;
  dlio.ranks = 4;
  dlio.samples = 256;
  dlio.samples_per_file = 64;
  dlio.batch_size = 8;
  dlio.shuffle = true;
  dlio.seed = 5;
  tenants.owned.push_back(workload::dlio_like(dlio));
  workload::WorkflowConfig wf;
  wf.workers = 4;
  wf.stages = 2;
  wf.tasks_per_stage = 8;
  wf.files_per_task = 2;
  tenants.owned.push_back(workload::workflow_dag(wf));

  pfs::PfsConfig system;
  system.clients = 8;
  system.io_nodes = 2;
  system.osts = 4;
  system.disk_kind = pfs::DiskKind::kSsd;
  for (std::size_t i = 0; i < 8; ++i) {
    eval::FacilityCell cell;
    cell.system = system;
    cell.workload = tenants.owned[i % tenants.owned.size()].get();
    tenants.cells.push_back(cell);
  }
  return tenants;
}

struct ScalingPoint {
  std::uint32_t shards = 1;
  double wall_ms = 0.0;
  std::uint64_t digest = 0;
  std::uint64_t windows = 0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--json-out <path>]\n";
      return 2;
    }
  }

  bench::banner("C-13",
                "sharded facility execution: shard-count scaling with a "
                "byte-identical FacilityResult (DESIGN.md section 16)");

  const Tenants tenants = build_tenants();
  const std::vector<std::uint32_t> widths = {1, 2, 4, 8};
  std::vector<ScalingPoint> points;
  const trace::WallClock wall;
  for (const std::uint32_t shards : widths) {
    eval::FacilityConfig config;
    config.seed = 11;
    config.shards = shards;
    config.threads = static_cast<int>(shards);
    const SimTime start = wall.now();
    const auto result = eval::run_facility(config, tenants.cells);
    const SimTime elapsed = wall.now() - start;
    points.push_back(ScalingPoint{shards, elapsed.ms(), result.digest(), result.windows,
                                  result.events, result.messages});
  }

  bool identical = true;
  for (const auto& point : points) identical = identical && point.digest == points[0].digest;

  TextTable table{{"shards", "wall time", "speedup", "events/s", "windows", "digest", "identical"}};
  for (const auto& point : points) {
    const double speedup = points[0].wall_ms / point.wall_ms;
    const double events_per_sec =
        point.wall_ms > 0.0 ? static_cast<double>(point.events) / (point.wall_ms / 1e3) : 0.0;
    std::ostringstream digest_hex;
    digest_hex << std::hex << point.digest;
    table.add_row({std::to_string(point.shards), format_double(point.wall_ms, 1) + " ms",
                   format_double(speedup, 2) + "x", format_double(events_per_sec / 1e6, 2) + "M",
                   std::to_string(point.windows), digest_hex.str(),
                   point.digest == points[0].digest ? "yes" : "NO"});
    bench::emit_row(Record{{"shards", static_cast<std::uint64_t>(point.shards)},
                           {"wall_ms", point.wall_ms},
                           {"speedup", speedup},
                           {"windows", point.windows},
                           {"events", point.events},
                           {"messages", point.messages},
                           {"digest", point.digest},
                           {"identical", point.digest == points[0].digest ? std::uint64_t{1}
                                                                          : std::uint64_t{0}}});
  }
  std::cout << table.to_string();

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << "{\n  \"bench\": \"c13_sharded_engine\",\n"
        << "  \"host\": " << bench::host_context_json() << ",\n"
        << "  \"cells\": " << tenants.cells.size() << ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::ostringstream digest_hex;
      digest_hex << std::hex << points[i].digest;
      out << "    {\"shards\": " << points[i].shards
          << ", \"wall_ms\": " << format_double(points[i].wall_ms, 3)
          << ", \"speedup\": " << format_double(points[0].wall_ms / points[i].wall_ms, 3)
          << ", \"windows\": " << points[i].windows << ", \"events\": " << points[i].events
          << ", \"messages\": " << points[i].messages << ", \"digest\": \"0x" << digest_hex.str()
          << "\"}" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"result_identical_across_shards\": " << (identical ? "true" : "false")
        << "\n}\n";
    std::cout << "wrote " << json_out << "\n";
  }

  std::cout << "shape check: " << (identical ? "HOLDS" : "VIOLATED")
            << " (FacilityResult digest and window count are byte-identical at every shard "
               "count; wall-clock speedup is host-core-bound)\n";
  return identical ? 0 : 1;
}
