// C1 — HPC storage is no longer write-dominated (Patel et al. [53], §V).
//
// Paper: "A recent I/O behavior analysis of a year's worth of I/O activity
// at NERSC has revealed that HPC storage systems may no longer be dominated
// by write I/O — challenging the long- and widely-held belief that HPC
// workloads are write-intensive."
//
// We generate a 48-month synthetic facility log whose job mix evolves from
// a simulation-dominated 2015 era toward the 2019 emerging mix, then let
// the system-level temporal analysis find the read/write crossover.
// Expected shape: early months write-dominated, a crossover mid-series, a
// positive read-fraction trend.
#include <iostream>

#include "analysis/system_analysis.hpp"
#include "bench_util.hpp"
#include "workload/facility_mix.hpp"

using namespace pio;

int main() {
  bench::banner("C1", "the read/write balance shift across facility eras (Patel et al.)");
  workload::FacilityMixConfig config;
  config.months = 48;
  config.jobs_per_month = 2000;
  const auto log = workload::generate_facility_log(config);
  const auto monthly = workload::aggregate_by_month(log);
  const auto trend = analysis::analyze_facility_trend(monthly);

  TextTable table{{"month", "read", "written", "read share"}};
  for (const auto& m : monthly) {
    if (m.month % 6 != 0 && m.month + 1 != monthly.size()) continue;  // print quarterly-ish
    table.add_row({std::to_string(m.month), format_bytes(m.bytes_read),
                   format_bytes(m.bytes_written), format_percent(m.read_fraction())});
  }
  for (const auto& m : monthly) {
    bench::emit_row(Record{{"month", static_cast<std::uint64_t>(m.month)},
                           {"read_gib", m.bytes_read.gib()},
                           {"written_gib", m.bytes_written.gib()},
                           {"read_fraction", m.read_fraction()}});
  }
  std::cout << table.to_string() << "\n";
  std::cout << "read-fraction trend: " << format_double(trend.read_fraction_trend, 5)
            << " per month (positive = shifting toward reads)\n";
  std::cout << "read dominance from month: " << trend.read_dominance_onset << " of "
            << config.months << "\n";

  // Pure-era endpoints for the headline comparison.
  for (const bool emerging : {false, true}) {
    workload::FacilityMixConfig era;
    era.months = 1;
    era.jobs_per_month = 4000;
    era.from = era.to = emerging ? workload::era_emerging_2019()
                                 : workload::era_simulation_2015();
    const auto summary = workload::aggregate_by_month(workload::generate_facility_log(era));
    std::cout << (emerging ? "2019-era mix" : "2015-era mix")
              << " read share: " << format_percent(summary[0].read_fraction()) << "\n";
    bench::emit_row(Record{{"era", std::string(emerging ? "2019" : "2015")},
                           {"read_fraction", summary[0].read_fraction()}});
  }
  const bool shape_holds = trend.read_fraction_trend > 0.0 &&
                           trend.read_dominance_onset > 0 &&
                           monthly.front().read_fraction() < 0.5 &&
                           monthly.back().read_fraction() > 0.5;
  std::cout << "shape check: " << (shape_holds ? "HOLDS" : "VIOLATED")
            << " (write-dominated start, read-dominated end, positive trend)\n";
  return shape_holds ? 0 : 1;
}
