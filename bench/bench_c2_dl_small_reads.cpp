// C2 — DL training's random small reads vs sequential-optimized PFS (§V.B).
//
// Paper: "the DL training phase gives rise to highly random small file
// accesses. The requirement of randomly shuffled input imposes significant
// pressure to parallel file systems, which are typically designed and
// optimized for large sequential I/O."
//
// Expected shape: on the HDD-backed reference system, shuffled minibatch
// reads deliver a small fraction of the bandwidth of the same volume read
// sequentially, and both trail a bulk IOR read. Larger samples close part
// of the gap (seek cost amortizes).
#include <iostream>

#include "bench_util.hpp"
#include "workload/dlio.hpp"
#include "workload/kernels.hpp"

using namespace pio;
using namespace pio::literals;

namespace {

double run_reader(const workload::Workload& w) {
  const auto system = bench::reference_testbed(pfs::DiskKind::kHdd);
  const auto result = bench::simulate(system, w);
  return result.read_bandwidth().mib_per_sec();
}

}  // namespace

int main() {
  bench::banner("C2", "shuffled DL minibatch reads vs sequential access (§V.B)");
  TextTable table{{"sample size", "access pattern", "read bw", "vs sequential"}};
  for (const Bytes sample : {64_KiB, 256_KiB, 1_MiB}) {
    workload::DlioConfig dl;
    dl.ranks = 8;
    dl.samples = 2048;
    dl.sample_size = sample;
    dl.samples_per_file = 256;
    dl.compute_per_batch = SimTime::zero();
    dl.include_preparation = true;
    dl.shuffle = true;
    const double shuffled = run_reader(*workload::dlio_like(dl));
    dl.shuffle = false;
    const double sequential = run_reader(*workload::dlio_like(dl));
    table.add_row({format_bytes(sample), "shuffled minibatch",
                   format_double(shuffled, 1) + " MiB/s",
                   format_percent(shuffled / sequential)});
    table.add_row({format_bytes(sample), "sequential scan",
                   format_double(sequential, 1) + " MiB/s", "100.0%"});
    bench::emit_row(Record{{"sample_kib", sample.kib()},
                           {"shuffled_mib_s", shuffled},
                           {"sequential_mib_s", sequential},
                           {"slowdown", sequential / shuffled}});
  }
  // Traditional bulk read baseline at the same total volume.
  workload::IorConfig ior;
  ior.ranks = 8;
  ior.block_size = 16_MiB;
  ior.transfer_size = 8_MiB;
  ior.write_phase = true;
  ior.read_phase = true;
  const auto system = bench::reference_testbed(pfs::DiskKind::kHdd);
  const auto bulk = bench::simulate(system, *workload::ior_like(ior));
  table.add_row({"-", "IOR bulk read",
                 format_double(bulk.read_bandwidth().mib_per_sec(), 1) + " MiB/s", "-"});
  std::cout << table.to_string();
  std::cout << "\nshape check: shuffled minibatch bandwidth must be a small fraction of\n"
               "the sequential scan on seek-bound disks, with the gap narrowing as the\n"
               "sample size grows.\n";
  return 0;
}
