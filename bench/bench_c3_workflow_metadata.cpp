// C3 — Data-intensive workflows are metadata-intensive (§V.C).
//
// Paper: "In sharp contrast to the traditional highly coherent, sequential,
// large-transaction reads and writes, data-intensive workflows have been
// shown to often utilize non-sequential, metadata-intensive, and small-
// transaction reads and writes."
//
// Expected shape: per byte moved, the workflow issues orders of magnitude
// more metadata operations than the checkpoint workload; the MDS — not the
// OSTs — becomes the busy server.
#include <iostream>

#include "bench_util.hpp"
#include "trace/server_stats.hpp"
#include "workload/kernels.hpp"
#include "workload/workflow.hpp"

using namespace pio;
using namespace pio::literals;

namespace {

struct RunSummary {
  std::uint64_t mds_ops = 0;
  Bytes moved = Bytes::zero();
  SimTime mds_busy = SimTime::zero();
  SimTime makespan = SimTime::zero();
  double mean_op_kib = 0.0;
};

RunSummary run(const workload::Workload& w) {
  sim::Engine engine{3};
  auto system = bench::reference_testbed(pfs::DiskKind::kSsd);
  pfs::PfsModel model{engine, system};
  driver::ExecutionDrivenSimulator sim{engine, model};
  const auto result = sim.run(w);
  engine.run();
  RunSummary summary;
  summary.mds_ops = model.mds().stats().ops_total;
  summary.moved = result.bytes_read + result.bytes_written;
  summary.mds_busy = model.mds().stats().busy_time;
  summary.makespan = result.makespan;
  summary.mean_op_kib = result.data_ops == 0
                            ? 0.0
                            : summary.moved.kib() / static_cast<double>(result.data_ops);
  return summary;
}

}  // namespace

int main() {
  bench::banner("C3", "workflows are metadata-intensive, small-transaction (§V.C)");

  workload::WorkflowConfig wf;
  wf.workers = 16;
  wf.stages = 4;
  wf.tasks_per_stage = 64;
  wf.files_per_task = 4;
  wf.file_size = 256_KiB;
  wf.transaction_size = 16_KiB;
  wf.compute_per_task = SimTime::zero();
  const auto workflow = run(*workload::workflow_dag(wf));

  workload::CheckpointConfig ckpt;
  ckpt.ranks = 16;
  ckpt.checkpoint_per_rank = 16_MiB;
  ckpt.transfer_size = 8_MiB;
  ckpt.checkpoints = 1;
  ckpt.compute_phase = SimTime::zero();
  const auto checkpoint = run(*workload::checkpoint_restart(ckpt));

  TextTable table{{"workload", "bytes moved", "MDS ops", "MDS ops/GiB", "mean data op",
                   "MDS busy"}};
  auto add = [&](const std::string& name, const RunSummary& s) {
    const double per_gib =
        s.moved.gib() == 0.0 ? 0.0 : static_cast<double>(s.mds_ops) / s.moved.gib();
    table.add_row({name, format_bytes(s.moved), std::to_string(s.mds_ops),
                   format_double(per_gib, 0), format_double(s.mean_op_kib, 0) + " KiB",
                   format_time(s.mds_busy)});
    bench::emit_row(Record{{"workload", name},
                           {"moved_gib", s.moved.gib()},
                           {"mds_ops", s.mds_ops},
                           {"mds_ops_per_gib", per_gib},
                           {"mean_op_kib", s.mean_op_kib}});
  };
  add("workflow DAG", workflow);
  add("checkpoint", checkpoint);
  std::cout << table.to_string();

  const double wf_per_gib = static_cast<double>(workflow.mds_ops) / workflow.moved.gib();
  const double ck_per_gib = static_cast<double>(checkpoint.mds_ops) / checkpoint.moved.gib();
  std::cout << "\nmetadata intensity ratio (workflow / checkpoint): "
            << format_double(wf_per_gib / ck_per_gib, 1) << "x\n";
  std::cout << "shape check: the workflow must issue >10x more MDS ops per GiB with\n"
               "far smaller data transactions.\n";
  return wf_per_gib > 10.0 * ck_per_gib ? 0 : 1;
}
