// C4 — Neural networks predict I/O time better than linear models
// (Schmid & Kunkel [56], §IV.B.2).
//
// Paper: "use neural networks to analyze and predict file access times of a
// Lustre file system from the client's perspective, and show that the
// average prediction error can be significantly improved in comparison to
// linear models."
//
// We sample hundreds of single-client access patterns (request size x
// randomness x op count), measure each on the HDD-backed storage model,
// and train three predictors on the resulting (features -> I/O time)
// dataset. Expected shape: NN and random forest clearly below the linear
// baseline, because seek costs make the surface strongly nonlinear.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "predict/evaluate.hpp"
#include "predict/forest.hpp"
#include "predict/nn.hpp"
#include "stats/regression.hpp"
#include "workload/op.hpp"

using namespace pio;
using namespace pio::literals;

namespace {

/// One sampled access pattern executed on the model: `ops` requests of
/// `size` bytes; a fraction `randomness` jump to random offsets, the rest
/// continue sequentially.
std::unique_ptr<workload::Workload> access_pattern(std::uint64_t size, double randomness,
                                                   std::uint64_t ops, std::uint64_t seed) {
  Rng rng{seed, 0xACCE55};
  const std::uint64_t extent = 1ULL << 30;  // 1 GiB file
  std::vector<workload::Op> sequence;
  sequence.push_back(workload::Op::create("/data"));
  // Pre-populate so reads hit real extents.
  sequence.push_back(workload::Op::write("/data", 0, Bytes{extent / 64}));
  std::uint64_t cursor = 0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::uint64_t offset = rng.chance(randomness)
                                     ? rng.next_below(extent - size)
                                     : cursor % (extent - size);
    sequence.push_back(workload::Op::read("/data", offset, Bytes{size}));
    cursor = offset + size;
  }
  sequence.push_back(workload::Op::close("/data"));
  return std::make_unique<workload::VectorWorkload>(
      "pattern", std::vector<std::vector<workload::Op>>{std::move(sequence)});
}

}  // namespace

int main() {
  bench::banner("C4", "NN vs linear model on file access time prediction (Schmid & Kunkel)");
  const auto system = bench::reference_testbed(pfs::DiskKind::kHdd);
  Rng rng{99, 0};
  std::vector<std::vector<double>> features;
  std::vector<double> targets;
  constexpr int kSamples = 240;
  for (int i = 0; i < kSamples; ++i) {
    const double log_size = rng.uniform(12.0, 23.0);  // 4 KiB .. 8 MiB
    const auto size = static_cast<std::uint64_t>(std::exp2(log_size));
    const double randomness = rng.uniform(0.0, 1.0);
    const std::uint64_t ops = 16 + rng.next_below(48);
    const auto w = access_pattern(size, randomness, ops, 1000 + static_cast<std::uint64_t>(i));
    const auto result = bench::simulate(system, *w, nullptr, 7);
    features.push_back({log_size, randomness, static_cast<double>(ops)});
    targets.push_back(result.read_time.sec());
  }

  const auto split = predict::train_test_split(features, targets, 0.25, 5);

  const auto linear = stats::LinearModel::fit(split.train_x, split.train_y);
  std::vector<double> linear_pred;
  for (const auto& row : split.test_x) linear_pred.push_back(linear.predict(row));
  const auto linear_err = stats::compute_errors(linear_pred, split.test_y);

  predict::NnConfig nn_config;
  nn_config.epochs = 400;
  const auto net = predict::NeuralNet::fit(split.train_x, split.train_y, nn_config);
  const auto nn_err = stats::compute_errors(net.predict_all(split.test_x), split.test_y);

  const auto forest = predict::RandomForest::fit(split.train_x, split.train_y);
  const auto rf_err = stats::compute_errors(forest.predict_all(split.test_x), split.test_y);

  TextTable table{{"model", "test MAPE", "test RMSE (s)", "test MAE (s)"}};
  auto add = [&](const std::string& name, const stats::ErrorMetrics& m) {
    table.add_row({name, format_percent(m.mape), format_double(m.rmse, 4),
                   format_double(m.mae, 4)});
    bench::emit_row(
        Record{{"model", name}, {"mape", m.mape}, {"rmse", m.rmse}, {"mae", m.mae}});
  };
  add("linear regression", linear_err);
  add("neural network", nn_err);
  add("random forest", rf_err);
  std::cout << table.to_string();
  std::cout << "\n(training set " << split.train_x.size() << " runs, test set "
            << split.test_x.size() << " runs; features: log2(size), randomness, op count)\n";
  const bool shape_holds = nn_err.mape < linear_err.mape && rf_err.mape < linear_err.mape;
  std::cout << "shape check: nonlinear models beat the linear baseline: "
            << (shape_holds ? "HOLDS" : "VIOLATED") << "\n";
  return shape_holds ? 0 : 1;
}
