// C5 — Grammar-based trace compression (Hao et al. [15], §IV.B.3).
//
// Paper: the benchmark-generation framework "performs a trace compressing
// algorithm based on a suffix tree to reduce the size of traces, and then
// generates ... the corresponding benchmark."
//
// Expected shape: regular HPC patterns (IOR, HACC, checkpoint, BT-IO)
// compress by orders of magnitude; shuffled DL reads barely compress; the
// reconstruction is exactly lossless, and the regenerated benchmark
// replays with the original's simulated performance.
#include <iostream>

#include "bench_util.hpp"
#include "replay/compress.hpp"
#include "replay/fidelity.hpp"
#include "workload/dlio.hpp"
#include "workload/kernels.hpp"

using namespace pio;
using namespace pio::literals;

int main() {
  bench::banner("C5", "trace compression + benchmark regeneration (Hao et al.)");
  struct Case {
    std::string name;
    std::unique_ptr<workload::Workload> workload;
  };
  std::vector<Case> cases;
  {
    workload::IorConfig ior;
    ior.ranks = 8;
    ior.block_size = 256_MiB;
    ior.transfer_size = 1_MiB;
    ior.read_phase = true;
    cases.push_back({"IOR 256 MiB/rank", workload::ior_like(ior)});
  }
  {
    workload::HaccIoConfig hacc;
    hacc.ranks = 8;
    hacc.particles_per_rank = 1'000'000;
    cases.push_back({"HACC-IO 1M particles", workload::hacc_io_like(hacc)});
  }
  {
    workload::CheckpointConfig ckpt;
    ckpt.ranks = 8;
    ckpt.checkpoint_per_rank = 64_MiB;
    ckpt.transfer_size = 1_MiB;
    ckpt.checkpoints = 8;
    cases.push_back({"checkpoint x8", workload::checkpoint_restart(ckpt)});
  }
  {
    workload::BtioConfig bt;
    bt.ranks = 16;
    bt.grid_points = 64;
    bt.time_steps = 4;
    cases.push_back({"BT-IO 64^3", workload::btio_like(bt)});
  }
  {
    workload::MdtestConfig md;
    md.ranks = 8;
    md.files_per_rank = 512;
    cases.push_back({"mdtest 512/rank", workload::mdtest_like(md)});
  }
  {
    workload::DlioConfig dl;
    dl.ranks = 8;
    dl.samples = 4096;
    dl.samples_per_file = 512;
    cases.push_back({"DLIO shuffled", workload::dlio_like(dl)});
    workload::DlioConfig seq = dl;
    seq.shuffle = false;
    cases.push_back({"DLIO sequential", workload::dlio_like(seq)});
  }

  TextTable table{{"workload", "ops", "stored symbols", "ratio", "distinct tokens",
                   "lossless"}};
  for (const auto& c : cases) {
    const auto compressed = replay::CompressedWorkload::compress(*c.workload);
    const auto restored = compressed.decompress();
    // Losslessness: byte-identical op streams.
    const auto a = workload::materialize(*c.workload);
    const auto b = workload::materialize(*restored);
    bool lossless = a.size() == b.size();
    for (std::size_t r = 0; lossless && r < a.size(); ++r) {
      if (a[r].size() != b[r].size()) {
        lossless = false;
        break;
      }
      for (std::size_t i = 0; i < a[r].size(); ++i) {
        if (a[r][i].kind != b[r][i].kind || a[r][i].path != b[r][i].path ||
            a[r][i].offset != b[r][i].offset || a[r][i].size != b[r][i].size) {
          lossless = false;
          break;
        }
      }
    }
    table.add_row({c.name, std::to_string(compressed.original_ops()),
                   std::to_string(compressed.stored_symbols()),
                   format_double(compressed.compression_ratio(), 1) + "x",
                   std::to_string(compressed.distinct_tokens()),
                   lossless ? "yes" : "NO"});
    bench::emit_row(Record{{"workload", c.name},
                           {"ops", static_cast<std::uint64_t>(compressed.original_ops())},
                           {"stored", static_cast<std::uint64_t>(compressed.stored_symbols())},
                           {"ratio", compressed.compression_ratio()},
                           {"lossless", lossless}});
  }
  std::cout << table.to_string();

  // Replay-equivalence of the regenerated benchmark (spot check on IOR).
  const auto system = bench::reference_testbed(pfs::DiskKind::kSsd);
  workload::IorConfig small;
  small.ranks = 8;
  small.block_size = 16_MiB;
  small.transfer_size = 1_MiB;
  const auto original = workload::ior_like(small);
  const auto regenerated = replay::CompressedWorkload::compress(*original).decompress();
  const auto original_run = bench::simulate(system, *original);
  const auto regenerated_run = bench::simulate(system, *regenerated);
  const auto fidelity = replay::compare_runs(original_run, regenerated_run);
  std::cout << "\nregenerated-benchmark fidelity (IOR): " << fidelity.to_string() << "\n";
  std::cout << "shape check: loop-structured patterns compress dramatically (BT-IO ~100x,\n"
               "IOR ~10x), while workloads whose ops are inherently unique — shuffled DL\n"
               "reads, per-file mdtest paths — stay near 1x; every reconstruction is\n"
               "lossless.\n";
  return 0;
}
