// C6 — Trace extrapolation (Luo et al. ScalaIOExtrap [16, 17]).
//
// Paper: "gather I/O traces on a small system, to analyze the traces and
// extrapolate them, and then finally enable I/O replay to verify the
// correctness of the projected extrapolation of the I/O behavior."
//
// We record a 4-rank file-per-process run in simulation, fit the
// rank-affine model to the *recorded trace* (not the generator), project to
// 8/16/32 ranks, replay each projection, and compare against directly
// generated runs at the same scale. Expected shape: byte volumes exact,
// makespans within a few percent.
#include <iostream>

#include "bench_util.hpp"
#include "replay/extrapolate.hpp"
#include "replay/fidelity.hpp"
#include "replay/trace_workload.hpp"
#include "trace/tracer.hpp"
#include "workload/dsl.hpp"

using namespace pio;
using namespace pio::literals;

namespace {

std::unique_ptr<workload::Workload> fpp_app(int ranks) {
  // A symmetric file-per-process application. Compute phases are omitted:
  // recorded inter-op gaps include queueing noise that varies per rank, and
  // a real extrapolation pipeline fits the I/O pattern, not the noise.
  return workload::parse_dsl("name \"fpp-app\"\nranks " + std::to_string(ranks) + R"(
    mkdir "/out"
    create "/out/part.{rank}"
    loop step 4 {
      loop t 16 {
        write "/out/part.{rank}" at step * 16MiB + t * 1MiB size 1MiB
      }
      fsync "/out/part.{rank}"
    }
    close "/out/part.{rank}"
  )");
}

}  // namespace

int main() {
  bench::banner("C6", "capture small, extrapolate, replay, verify (ScalaIOExtrap)");
  const auto system = bench::reference_testbed(pfs::DiskKind::kSsd);

  // Capture: record the 4-rank run's trace in simulation.
  trace::Tracer tracer;
  const auto captured_app = fpp_app(4);
  (void)bench::simulate(system, *captured_app, &tracer);
  replay::TraceReplayConfig replay_config;
  replay_config.preserve_think_time = false;  // fit the I/O pattern, not noise
  const auto recorded = replay::workload_from_trace(tracer.take(), replay_config);

  // Fit the rank-parametric model to the *recorded* workload.
  replay::ExtrapolationError error;
  const auto model = replay::ExtrapolationModel::fit(*recorded, &error);
  if (!model.has_value()) {
    std::cout << "extrapolation failed at op " << error.position << ": " << error.reason
              << "\n";
    return 1;
  }
  std::cout << "fitted rank-affine pattern: " << model->ops_per_rank()
            << " ops/rank from " << model->captured_ranks() << " captured ranks\n\n";

  TextTable table{{"target ranks", "direct makespan", "extrapolated makespan", "bytes ratio",
                   "makespan ratio"}};
  bool all_faithful = true;
  for (const int target : {8, 16, 32}) {
    const auto projected = model->generate(target);
    const auto direct = fpp_app(target);
    const auto projected_run = bench::simulate(system, *projected, nullptr, 11);
    const auto direct_run = bench::simulate(system, *direct, nullptr, 11);
    const auto fidelity = replay::compare_runs(direct_run, projected_run);
    table.add_row({std::to_string(target), format_time(direct_run.makespan),
                   format_time(projected_run.makespan),
                   format_double(fidelity.bytes_written_ratio, 3),
                   format_double(fidelity.makespan_ratio, 3)});
    bench::emit_row(Record{{"ranks", static_cast<std::int64_t>(target)},
                           {"direct_s", direct_run.makespan.sec()},
                           {"extrapolated_s", projected_run.makespan.sec()},
                           {"makespan_ratio", fidelity.makespan_ratio}});
    all_faithful = all_faithful && std::abs(fidelity.bytes_written_ratio - 1.0) < 1e-9 &&
                   std::abs(fidelity.makespan_ratio - 1.0) < 0.1;
  }
  std::cout << table.to_string();
  std::cout << "\nshape check: extrapolated replays match direct runs "
            << (all_faithful ? "(HOLDS, within 10%)" : "(VIOLATED)") << "\n";
  return all_faithful ? 0 : 1;
}
