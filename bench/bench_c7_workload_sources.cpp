// C7 — Workload sources trade accuracy for flexibility (Snyder et al. [20]).
//
// Paper §IV.B.4: "Each method offers distinct trade-offs; no technique
// works best in all scenarios" across the three workload sources — I/O
// traces, I/O characterization profiles, and synthetic descriptions.
//
// We run one "application" (a mixed read/write job with a strided phase),
// then regenerate it three ways and replay each on the same storage model.
// Expected shape: trace replay is the most accurate, characterization-based
// generation lands close on volumes but diverges on fine-grained timing,
// and the hand-written synthetic approximation diverges the most.
#include <iostream>

#include "bench_util.hpp"
#include "replay/fidelity.hpp"
#include "replay/trace_workload.hpp"
#include "trace/profiler.hpp"
#include "trace/tracer.hpp"
#include "workload/dsl.hpp"
#include "workload/from_profile.hpp"

using namespace pio;
using namespace pio::literals;

int main() {
  bench::banner("C7", "trace vs characterization vs synthetic workload sources (IOWA)");
  const auto system = bench::reference_testbed(pfs::DiskKind::kHdd);

  // The "application": per-rank output file written sequentially, then a
  // strided read-back of every fourth megabyte.
  const auto app = workload::parse_dsl(R"(
    name "mixed-app"
    ranks 8
    mkdir "/app"
    create "/app/out.{rank}"
    loop t 32 {
      write "/app/out.{rank}" at t * 1MiB size 1MiB
    }
    loop s 8 {
      read "/app/out.{rank}" at s * 4MiB size 256KiB
    }
    close "/app/out.{rank}"
  )");

  trace::Tracer tracer;
  trace::Profiler profiler;
  trace::MultiSink sinks;
  sinks.add(tracer);
  sinks.add(profiler);
  const auto original = bench::simulate(system, *app, &sinks);

  // Source 1: lossless trace replay.
  const auto from_trace = replay::workload_from_trace(tracer.take());
  // Source 2: characterization-based regeneration (statistical).
  const auto from_profile =
      workload::workload_from_profile(profiler.snapshot(), workload::FromProfileConfig{});
  // Source 3: a hand-written synthetic approximation — the author knows the
  // volumes but guesses one access size and skips the strided read-back.
  const auto synthetic = workload::parse_dsl(R"(
    name "synthetic-guess"
    ranks 8
    mkdir "/app"
    create "/app/out.{rank}"
    loop t 9 {
      write "/app/out.{rank}" at t * 4MiB size 4MiB
    }
    read "/app/out.{rank}" at 0 size 2MiB
    close "/app/out.{rank}"
  )");

  TextTable table{{"workload source", "bytes ratio (w)", "bytes ratio (r)", "makespan ratio",
                   "worst deviation"}};
  struct Case {
    std::string name;
    const workload::Workload* workload;
  };
  double deviations[3] = {0, 0, 0};
  int idx = 0;
  for (const Case& c : {Case{"I/O trace replay", from_trace.get()},
                        Case{"characterization profile", from_profile.get()},
                        Case{"synthetic description", synthetic.get()}}) {
    const auto replayed = bench::simulate(system, *c.workload, nullptr, 13);
    const auto fidelity = replay::compare_runs(original, replayed);
    table.add_row({c.name, format_double(fidelity.bytes_written_ratio, 3),
                   format_double(fidelity.bytes_read_ratio, 3),
                   format_double(fidelity.makespan_ratio, 3),
                   format_percent(fidelity.worst_deviation())});
    bench::emit_row(Record{{"source", c.name},
                           {"bytes_written_ratio", fidelity.bytes_written_ratio},
                           {"bytes_read_ratio", fidelity.bytes_read_ratio},
                           {"makespan_ratio", fidelity.makespan_ratio},
                           {"worst_deviation", fidelity.worst_deviation()}});
    deviations[idx++] = fidelity.worst_deviation();
  }
  std::cout << table.to_string();
  const bool ordering = deviations[0] <= deviations[1] && deviations[1] <= deviations[2];
  std::cout << "\nshape check: accuracy ordering trace <= characterization <= synthetic: "
            << (ordering ? "HOLDS" : "VIOLATED") << "\n";
  return ordering ? 0 : 1;
}
