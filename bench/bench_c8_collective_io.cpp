// C8 — Collective buffering transforms the POSIX-level pattern (Fig. 2 /
// the BT-IO motivation).
//
// Expected shape: for NPB BT-IO's nested strided writes, two-phase
// collective buffering replaces thousands of small strided POSIX writes
// with a handful of large contiguous ones, and the simulated write time on
// a seek-bound storage system drops accordingly.
#include <atomic>
#include <iostream>

#include "bench_util.hpp"
#include "mio/mio.hpp"
#include "par/comm.hpp"
#include "vfs/backend.hpp"
#include "vfs/file_system.hpp"
#include "workload/kernels.hpp"

using namespace pio;
using namespace pio::literals;

namespace {

struct CbOutcome {
  std::uint64_t posix_writes = 0;
  std::uint64_t posix_bytes = 0;
};

/// Drive the BT-IO pattern through mio on the measured path and count the
/// POSIX ops it produces.
CbOutcome run_btio_through_mio(std::uint32_t cb_nodes) {
  vfs::FileSystem fs;
  vfs::LocalBackend backend{fs};
  constexpr int kRanks = 16;
  const workload::BtioConfig bt{kRanks, 64, Bytes{40}, 1, "/btio/solution"};
  const auto ops = workload::materialize(*workload::btio_like(bt));
  std::atomic<std::uint64_t> writes{0};
  std::atomic<std::uint64_t> bytes{0};
  par::Runtime runtime{kRanks};
  runtime.run([&](par::Comm& comm) {
    mio::Hints hints;
    hints.cb_nodes = cb_nodes;
    if (comm.rank() == 0) (void)backend.mkdir("/btio");
    comm.barrier();
    auto file = mio::File::open_all(comm, backend, bt.file, true, hints);
    if (!file.ok()) throw std::runtime_error(file.error().message);
    // Gather this rank's write extents from the kernel's op stream.
    std::vector<mio::Extent> extents;
    std::vector<std::byte> payload;
    for (const auto& op : ops[static_cast<std::size_t>(comm.rank())]) {
      if (op.kind != workload::OpKind::kWrite) continue;
      extents.push_back(mio::Extent{op.offset, op.size});
      payload.resize(payload.size() + op.size.count());
    }
    auto r = file.value()->write_at_all(extents, payload);
    if (!r.ok()) throw std::runtime_error(r.error().message);
    writes += file.value()->posix_counters().writes;
    bytes += file.value()->posix_counters().bytes_written.count();
    (void)file.value()->close_all();
  });
  return CbOutcome{writes.load(), bytes.load()};
}

/// Simulated write time of an equivalent POSIX op stream on the HDD system.
SimTime simulated_write_time(std::uint64_t op_count, Bytes total) {
  const Bytes op_size = total / op_count;
  std::vector<std::vector<workload::Op>> per_rank(1);
  auto& seq = per_rank[0];
  seq.push_back(workload::Op::create("/sim/out"));
  for (std::uint64_t i = 0; i < op_count; ++i) {
    // Strided placement mirrors the pre-aggregation pattern.
    seq.push_back(workload::Op::write("/sim/out", (i * 7919) % total.count(), op_size));
  }
  seq.push_back(workload::Op::close("/sim/out"));
  const workload::VectorWorkload w{"cb-sim", std::move(per_rank)};
  const auto result = bench::simulate(bench::reference_testbed(pfs::DiskKind::kHdd), w);
  return result.write_time;
}

}  // namespace

int main() {
  bench::banner("C8", "two-phase collective buffering vs independent I/O (BT-IO)");
  TextTable table{{"mode", "POSIX writes", "bytes", "mean write", "simulated HDD time"}};
  for (const std::uint32_t cb : {0u, 1u, 2u, 4u}) {
    const auto outcome = run_btio_through_mio(cb);
    const auto mean = Bytes{outcome.posix_bytes / std::max<std::uint64_t>(1, outcome.posix_writes)};
    const auto sim_time = simulated_write_time(outcome.posix_writes, Bytes{outcome.posix_bytes});
    table.add_row({cb == 0 ? "independent" : "collective cb=" + std::to_string(cb),
                   std::to_string(outcome.posix_writes), format_bytes(Bytes{outcome.posix_bytes}),
                   format_bytes(mean), format_time(sim_time)});
    bench::emit_row(Record{{"cb_nodes", static_cast<std::uint64_t>(cb)},
                           {"posix_writes", outcome.posix_writes},
                           {"mean_write_bytes", mean.count()},
                           {"simulated_s", sim_time.sec()}});
  }
  std::cout << table.to_string();
  std::cout << "\nshape check: collective rows must show orders-of-magnitude fewer, far\n"
               "larger POSIX writes and a correspondingly shorter seek-bound write time.\n";
  return 0;
}
