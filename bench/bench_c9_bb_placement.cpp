// C9 — Burst-buffer placement (Khetawat et al. [33]).
//
// Paper §IV.A: simulation lets researchers "evaluat[e] burst buffer
// placement in HPC systems" without a testbed. We sweep placement
// (none / per-I/O-node / shared) and drain bandwidth for a bursty
// checkpoint workload.
//
// Expected shape: any buffer beats direct writes; per-node buffers beat a
// single shared buffer at equal aggregate capacity (no cross-node
// contention on the staging device); faster drains shorten the window
// until the next burst can be absorbed.
#include <iostream>

#include "bench_util.hpp"
#include "workload/kernels.hpp"

using namespace pio;
using namespace pio::literals;

int main() {
  bench::banner("C9", "burst-buffer placement sweep (Khetawat et al.)");
  TextTable table{{"placement", "drain bw", "burst time", "perceived bw", "drain done",
                   "bypassed"}};
  workload::CheckpointConfig ckpt;
  ckpt.ranks = 16;
  ckpt.checkpoint_per_rank = 128_MiB;
  ckpt.transfer_size = 8_MiB;
  ckpt.checkpoints = 2;
  ckpt.compute_phase = SimTime::from_sec(2.0);
  const auto w = workload::checkpoint_restart(ckpt);

  struct Placement {
    std::string name;
    pfs::BbPlacement placement;
  };
  for (const auto& p :
       {Placement{"none (direct)", pfs::BbPlacement::kNone},
        Placement{"per I/O node", pfs::BbPlacement::kPerIoNode},
        Placement{"shared", pfs::BbPlacement::kShared}}) {
    for (const double drain_mib : {200.0, 800.0}) {
      if (p.placement == pfs::BbPlacement::kNone && drain_mib > 200.0) continue;
      auto system = bench::reference_testbed(pfs::DiskKind::kHdd);
      system.bb_placement = p.placement;
      // Equal aggregate staging capacity across placements: 4 IONs x 1 GiB
      // vs one shared 4 GiB buffer.
      system.bb.capacity = p.placement == pfs::BbPlacement::kShared ? 4_GiB : 1_GiB;
      system.bb.drain_bandwidth = Bandwidth::from_mib_per_sec(drain_mib);

      sim::Engine engine{21};
      pfs::PfsModel model{engine, system};
      driver::ExecutionDrivenSimulator sim{engine, model};
      const auto result = sim.run(*w);
      const SimTime burst_time = result.makespan - SimTime::from_sec(4.0);  // minus compute
      engine.run();
      const SimTime drain_done = engine.now();
      Bytes bypassed = Bytes::zero();
      for (const auto& buffer : model.burst_buffers()) bypassed += buffer->stats().bypassed;
      const auto perceived = observed_bandwidth(result.bytes_written, burst_time);
      table.add_row({p.name,
                     p.placement == pfs::BbPlacement::kNone
                         ? "-"
                         : format_double(drain_mib, 0) + " MiB/s",
                     format_time(burst_time), format_bandwidth(perceived),
                     format_time(drain_done), format_bytes(bypassed)});
      bench::emit_row(Record{{"placement", p.name},
                             {"drain_mib_s", drain_mib},
                             {"burst_s", burst_time.sec()},
                             {"perceived_mib_s", perceived.mib_per_sec()},
                             {"drain_done_s", drain_done.sec()},
                             {"bypassed_mib", bypassed.mib()}});
    }
  }
  std::cout << table.to_string();
  std::cout << "\nshape check: buffered placements must beat direct writes on burst time;\n"
               "per-node staging must beat the shared buffer at equal capacity.\n";
  return 0;
}
