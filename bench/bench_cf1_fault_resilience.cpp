// C-F1 — straggler OST tail-latency amplification and retry recovery.
//
// Paper §V: evaluation techniques must cover degraded operation, not just
// fair weather — "the main challenge remains in the lack of understanding
// [of] the expected I/O behavior" when components misbehave. This bench
// exercises pio::fault end to end on the reference testbed:
//
//   part A  — one straggling OST (8x service time) amplifies the p99 data-op
//             latency far more than the p50: stripes touching the slow OST
//             pay the full penalty while the median op is barely moved.
//   part B  — a dead OST under the default fail-fast policy surfaces as
//             failed operations (no silent corruption, no hangs).
//   part C  — the same outage with retries + failover enabled completes
//             cleanly; the resilience counters record the work it took.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "exec/pool.hpp"
#include "stats/descriptive.hpp"
#include "trace/tracer.hpp"
#include "workload/kernels.hpp"

using namespace pio;

namespace {

struct Tail {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// p50/p99 over the POSIX-layer data ops of one traced run.
Tail data_op_tail(const trace::Trace& trace) {
  std::vector<double> latencies;
  for (const auto& e : trace.events()) {
    if (e.layer != trace::Layer::kPosix || !trace::is_data_op(e.op)) continue;
    latencies.push_back(e.duration().ms());
  }
  return Tail{stats::quantile(latencies, 0.5), stats::quantile(latencies, 0.99)};
}

}  // namespace

int main() {
  bench::banner("C-F1",
                "straggler OST tail-latency amplification and retry recovery (pio::fault)");
  workload::IorConfig ior;
  ior.ranks = 16;
  ior.block_size = Bytes::from_mib(8);
  ior.transfer_size = Bytes::from_mib(1);
  const auto workload = workload::ior_like(ior);
  const auto base_config = bench::reference_testbed(pfs::DiskKind::kSsd);
  const SimTime forever = SimTime::from_sec(3600.0);

  // All four runs (healthy, straggler, fail-fast outage, resilient outage)
  // are independent simulations on fresh engines: fan them out through the
  // pool and merge in submission order, so output is byte-identical at any
  // PIO_THREADS. Tail percentiles are computed inside each task to avoid
  // shipping whole traces back.
  auto straggling = base_config;
  straggling.faults.ost_straggler(0, SimTime::zero(), forever, 8.0);
  auto dead_ost = base_config;
  dead_ost.faults.ost_down(0, SimTime::zero(), forever);
  auto resilient_config = dead_ost;
  resilient_config.retry.max_attempts = 4;
  resilient_config.retry.failover = true;
  resilient_config.retry.op_timeout = SimTime::from_ms(250.0);

  struct RunOut {
    driver::SimRunResult result;
    Tail tail;
  };
  const pfs::PfsConfig* const configs[] = {&base_config, &straggling, &dead_ost,
                                           &resilient_config};
  exec::Pool pool;
  const auto runs = pool.map_ordered(4, [&configs, &workload](std::size_t i) {
    const bool traced = i < 2;  // only parts A needs per-op latencies
    trace::Tracer tracer;
    RunOut out;
    out.result = bench::simulate(*configs[i], *workload, traced ? &tracer : nullptr);
    if (traced) out.tail = data_op_tail(tracer.snapshot());
    return out;
  });
  const auto& healthy = runs[0].result;
  const Tail& healthy_tail = runs[0].tail;
  const auto& straggled = runs[1].result;
  const Tail& straggler_tail = runs[1].tail;
  const auto& fail_fast = runs[2].result;
  const auto& resilient = runs[3].result;

  const double p50_amp = straggler_tail.p50_ms / healthy_tail.p50_ms;
  const double p99_amp = straggler_tail.p99_ms / healthy_tail.p99_ms;

  TextTable tail_table{{"run", "p50 latency", "p99 latency", "makespan"}};
  tail_table.add_row({"healthy", format_double(healthy_tail.p50_ms, 3) + " ms",
                      format_double(healthy_tail.p99_ms, 3) + " ms",
                      format_time(healthy.makespan)});
  tail_table.add_row({"1 OST straggling 8x", format_double(straggler_tail.p50_ms, 3) + " ms",
                      format_double(straggler_tail.p99_ms, 3) + " ms",
                      format_time(straggled.makespan)});
  std::cout << tail_table.to_string();
  std::cout << "amplification: p50 x" << format_double(p50_amp, 2) << ", p99 x"
            << format_double(p99_amp, 2) << "\n\n";
  bench::emit_row(Record{{"part", std::string("straggler")},
                         {"p50_amplification", p50_amp},
                         {"p99_amplification", p99_amp}});

  // Parts B + C: a dead OST, fail-fast vs resilient.
  TextTable outage_table{
      {"policy", "failed ops", "retries", "timeouts", "failovers", "makespan"}};
  outage_table.add_row({"fail-fast (default)", std::to_string(fail_fast.failed_ops),
                        std::to_string(fail_fast.retries), std::to_string(fail_fast.timeouts),
                        std::to_string(fail_fast.failovers), format_time(fail_fast.makespan)});
  outage_table.add_row({"retry+failover", std::to_string(resilient.failed_ops),
                        std::to_string(resilient.retries), std::to_string(resilient.timeouts),
                        std::to_string(resilient.failovers), format_time(resilient.makespan)});
  std::cout << outage_table.to_string();
  bench::emit_row(Record{{"part", std::string("outage")},
                         {"fail_fast_failed_ops", fail_fast.failed_ops},
                         {"resilient_failed_ops", resilient.failed_ops},
                         {"resilient_failovers", resilient.failovers}});

  const bool shape_holds = p99_amp > 1.5 && p99_amp > p50_amp && fail_fast.failed_ops > 0 &&
                           fail_fast.retries == 0 && resilient.failed_ops == 0 &&
                           resilient.failovers > 0;
  std::cout << "shape check: " << (shape_holds ? "HOLDS" : "VIOLATED")
            << " (p99 amplified above p50; outage fails fast by default, completes with "
              "retry+failover)\n";
  return shape_holds ? 0 : 1;
}
