// C-F2 — stripe replication masks an OST crash; unreplicated failover
// loses acknowledged data; rebuild bandwidth bounds the recovery window.
//
// Paper §V: emerging workloads demand evaluation under degraded operation,
// and "degraded" includes the recovery path — what happens to acknowledged
// data when a storage target dies and comes back. This bench exercises the
// durability layer (DESIGN.md §9) end to end on the reference testbed with
// an IOR-like crash schedule (one OST dies mid-write-phase, recovers before
// the read-back phase):
//
//   part A  — replication factor sweep R in {1, 2, 3}. R=1 with degraded-
//             mode failover acknowledges writes onto a substitute OST the
//             read path never consults: the read-back fails with kDataLost
//             and the durability audit reports lost bytes. R >= 2 completes
//             every op; the crash is absorbed as degraded reads and the
//             recovered OST is resynced online (invariant F3 holds).
//   part B  — rebuild bandwidth cap sweep at R=2. The resync of the missed
//             chunks finishes strictly faster at higher caps, so the cap is
//             the knob that trades recovery time against background load.
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exec/pool.hpp"
#include "workload/kernels.hpp"

using namespace pio;

namespace {

struct DurabilityRun {
  driver::SimRunResult result;
  pfs::ResilienceStats stats;
  pfs::PfsModel::DurabilityReport report;
  SimTime rebuild_window = SimTime::zero();  ///< first kRebuildStart -> last kRebuildDone
};

/// One IOR-like run under the C-F2 crash schedule: OST 0 dies during the
/// write phase and recovers before the read-back phase.
DurabilityRun run_one(std::uint32_t replicas, Bandwidth rebuild_cap) {
  auto config = bench::reference_testbed(pfs::DiskKind::kSsd);
  config.durability.track_contents = true;
  config.durability.rebuild_bandwidth = rebuild_cap;
  config.durability.rebuild_jitter_fraction = 0.0;  // clean part-B monotonicity
  config.faults.ost_down(0, SimTime::from_ms(5.0), SimTime::from_ms(50.0));
  config.retry.max_attempts = 3;  // absorb attempts interrupted by the crash edge
  config.retry.failover = true;   // the R=1 durability hole needs degraded striping

  sim::Engine engine{1};
  pfs::PfsModel model{engine, config};
  SimTime rebuild_start = SimTime::max();
  SimTime rebuild_end = SimTime::zero();
  model.set_resilience_observer([&](const pfs::ResilienceRecord& r) {
    if (r.kind == pfs::ResilienceEventKind::kRebuildStart && r.at < rebuild_start) {
      rebuild_start = r.at;
    }
    if (r.kind == pfs::ResilienceEventKind::kRebuildDone && r.at > rebuild_end) {
      rebuild_end = r.at;
    }
  });

  driver::SimRunConfig run_config;
  run_config.layout.replicas = replicas;
  driver::ExecutionDrivenSimulator sim{engine, model, run_config};
  workload::IorConfig ior;
  ior.ranks = 16;
  ior.block_size = Bytes::from_mib(8);
  ior.transfer_size = Bytes::from_mib(1);
  ior.read_phase = true;  // the read-back is what catches (or masks) the loss

  DurabilityRun out;
  out.result = sim.run(*workload::ior_like(ior));
  engine.run();  // drain the online rebuild past the workload
  engine.assert_drained();
  out.stats = model.resilience_stats();
  out.report = model.durability_report();
  if (rebuild_end > rebuild_start) out.rebuild_window = rebuild_end - rebuild_start;
  return out;
}

}  // namespace

int main() {
  bench::banner("C-F2",
                "replication masks an OST crash, R=1 failover loses acked data, "
                "rebuild bandwidth bounds recovery (DESIGN.md section 9)");
  const Bandwidth default_cap = Bandwidth::from_mib_per_sec(256.0);

  // Both sweeps flattened into one fan-out: part A's replication factors
  // (at the default cap) and part B's rebuild caps (at R=2). Each run_one
  // builds its own engine, so the pool spreads them across PIO_THREADS and
  // the merged row order — hence the output — never changes.
  const std::vector<double> caps_mib = {64.0, 256.0, 1024.0};
  struct SweepPoint {
    std::uint32_t replicas;
    Bandwidth cap;
  };
  std::vector<SweepPoint> plan;
  for (std::uint32_t r = 1; r <= 3; ++r) plan.push_back({r, default_cap});
  for (const double cap : caps_mib) plan.push_back({2, Bandwidth::from_mib_per_sec(cap)});
  exec::Pool pool;
  const auto runs = pool.map_ordered(
      plan.size(), [&plan](std::size_t i) { return run_one(plan[i].replicas, plan[i].cap); });

  // Part A: replication factor sweep under the crash schedule.
  std::vector<DurabilityRun> sweep;
  TextTable table{{"replicas", "failed ops", "data lost ops", "lost bytes", "degraded reads",
                   "rebuilt", "makespan"}};
  for (std::uint32_t r = 1; r <= 3; ++r) {
    const auto& run = runs[r - 1];
    table.add_row({std::to_string(r), std::to_string(run.stats.failed_ops),
                   std::to_string(run.stats.data_lost_ops), format_bytes(run.report.lost),
                   std::to_string(run.stats.degraded_reads),
                   format_bytes(run.stats.rebuilt_bytes), format_time(run.result.makespan)});
    bench::emit_row(Record{{"part", std::string("replication")},
                           {"replicas", static_cast<std::uint64_t>(r)},
                           {"failed_ops", run.stats.failed_ops},
                           {"data_lost_ops", run.stats.data_lost_ops},
                           {"lost_bytes", run.report.lost.count()},
                           {"degraded_reads", run.stats.degraded_reads},
                           {"rebuilt_bytes", run.stats.rebuilt_bytes.count()},
                           {"makespan_ms", run.result.makespan.ms()}});
    sweep.push_back(run);
  }
  std::cout << table.to_string();
  std::cout << "R=1: every acked byte the failover shipped off-replica is unreadable once "
               "the primary returns; R>=2 serves it degraded and resyncs online.\n\n";

  // Part B: rebuild bandwidth cap sweep at R=2.
  std::vector<SimTime> windows;
  TextTable cap_table{{"rebuild cap", "rebuild window", "rebuilt"}};
  for (std::size_t ci = 0; ci < caps_mib.size(); ++ci) {
    const double cap = caps_mib[ci];
    const auto& run = runs[3 + ci];
    windows.push_back(run.rebuild_window);
    cap_table.add_row({format_double(cap, 0) + " MiB/s", format_time(run.rebuild_window),
                       format_bytes(run.stats.rebuilt_bytes)});
    bench::emit_row(Record{{"part", std::string("rebuild_cap")},
                           {"cap_mib_per_sec", cap},
                           {"rebuild_window_ms", run.rebuild_window.ms()},
                           {"rebuilt_bytes", run.stats.rebuilt_bytes.count()}});
  }
  std::cout << cap_table.to_string();

  const auto& r1 = sweep[0];
  const auto& r2 = sweep[1];
  const auto& r3 = sweep[2];
  const bool r1_loses = r1.stats.data_lost_ops > 0 && r1.report.lost > Bytes::zero();
  const bool replicas_mask = r2.stats.failed_ops == 0 && r2.report.lost == Bytes::zero() &&
                             r2.stats.degraded_reads > 0 && r2.stats.rebuilds_completed > 0 &&
                             r3.stats.failed_ops == 0 && r3.report.lost == Bytes::zero();
  const bool cap_paces = windows[0] > windows[1] && windows[1] > windows[2] &&
                         windows[2] > SimTime::zero();
  const bool shape_holds = r1_loses && replicas_mask && cap_paces;
  std::cout << "shape check: " << (shape_holds ? "HOLDS" : "VIOLATED")
            << " (R=1 loses acked data; R>=2 completes with degraded reads + online "
               "rebuild; rebuild window shrinks monotonically with the cap)\n";
  return shape_holds ? 0 : 1;
}
