// C-F3 — epoch-versioned membership: heartbeat detection latency is the
// grace period (not zero), placement mode sets the migration bill for a
// live drain, and the rebuild cap paces how fast the drain completes.
//
// Paper §V: emerging workloads run on *elastic* storage — targets join,
// drain and fail while jobs run — and evaluation must model the transition
// windows, not just the steady states. This bench exercises the cluster
// membership layer (DESIGN.md §13) end to end on the reference testbed
// with an IOR-like workload:
//
//   part A  — heartbeat grace sweep under a mid-write OST crash. Detection
//             is not omniscient: clients keep addressing the dead OST (and
//             eating retries) until `grace` silent intervals elapse, so the
//             measured detection latency grows monotonically with the
//             grace while staying inside one extra heartbeat of it.
//   part B  — placement-mode sweep under a live drain. Rendezvous hashing
//             migrates only the drained OST's stripes; round-robin's
//             modulus shift reshuffles the pool and pays a strictly larger
//             migration volume for the same operator action.
//   part C  — rebuild-cap sweep at rendezvous placement. The drain's
//             migration window shrinks strictly as the cap grows: the cap
//             is the knob trading drain time against background load.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exec/pool.hpp"
#include "workload/kernels.hpp"

using namespace pio;

namespace {

constexpr SimTime kCrashAt = SimTime::from_ms(10.0);

struct MembershipRun {
  driver::SimRunResult result;
  pfs::ResilienceStats stats;
  SimTime detect_latency = SimTime::zero();   ///< first kDetectedDown - true crash
  SimTime migration_window = SimTime::zero(); ///< first kRebuildStart -> last kRebuildDone
};

struct SweepPoint {
  std::uint32_t grace = 3;
  pfs::PlacementMode mode = pfs::PlacementMode::kRendezvousHash;
  Bandwidth cap = Bandwidth::from_mib_per_sec(256.0);
  bool crash = false;
  bool drain = false;
};

/// One IOR-like run on the cluster-mode testbed under the C-F3 schedule:
/// optionally a mid-write OST crash (recovering before read-back) and/or a
/// live drain of OST 0.
MembershipRun run_one(const SweepPoint& point) {
  auto config = bench::reference_testbed(pfs::DiskKind::kSsd);
  config.durability.track_contents = true;
  config.durability.rebuild_bandwidth = point.cap;
  config.durability.rebuild_jitter_fraction = 0.0;  // clean part-C monotonicity
  config.cluster.enabled = true;
  config.cluster.placement = point.mode;
  config.cluster.heartbeat_interval = SimTime::from_ms(2.0);
  config.cluster.heartbeat_jitter_fraction = 0.0;  // clean part-A latency readout
  config.cluster.heartbeat_grace = point.grace;
  config.cluster.horizon = SimTime::from_ms(400.0);
  if (point.crash) config.faults.ost_down(1, kCrashAt, SimTime::from_ms(60.0));
  if (point.drain) config.cluster.drain(0, SimTime::from_ms(30.0));
  config.retry.max_attempts = 6;
  config.retry.base_backoff = SimTime::from_ms(1.0);

  sim::Engine engine{1};
  pfs::PfsModel model{engine, config};
  SimTime detected = SimTime::max();
  SimTime rebuild_start = SimTime::max();
  SimTime rebuild_end = SimTime::zero();
  model.set_resilience_observer([&](const pfs::ResilienceRecord& r) {
    if (r.kind == pfs::ResilienceEventKind::kDetectedDown && r.at < detected) detected = r.at;
    if (r.kind == pfs::ResilienceEventKind::kRebuildStart && r.at < rebuild_start) {
      rebuild_start = r.at;
    }
    if (r.kind == pfs::ResilienceEventKind::kRebuildDone && r.at > rebuild_end) {
      rebuild_end = r.at;
    }
  });

  driver::SimRunConfig run_config;
  run_config.layout.replicas = 2;
  driver::ExecutionDrivenSimulator sim{engine, model, run_config};
  workload::IorConfig ior;
  ior.ranks = 16;
  ior.block_size = Bytes::from_mib(4);
  ior.transfer_size = Bytes::from_mib(1);
  ior.read_phase = true;  // the read-back crosses the post-churn placements

  MembershipRun out;
  out.result = sim.run(*workload::ior_like(ior));
  engine.run();  // drain the heartbeat horizon + migration resync
  engine.assert_drained();
  model.assert_quiescent();  // F4: every acked byte readable under the final map
  out.stats = model.resilience_stats();
  if (detected < SimTime::max()) out.detect_latency = detected - kCrashAt;
  if (rebuild_end > rebuild_start) out.migration_window = rebuild_end - rebuild_start;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--json-out <path>]\n";
      return 2;
    }
  }

  bench::banner("C-F3",
                "cluster membership: detection latency tracks the heartbeat grace, "
                "rendezvous placement migrates less than round-robin on a live "
                "drain, and the rebuild cap paces the drain (DESIGN.md section 13)");

  // One flattened fan-out: part A's grace sweep (crash, no drain), part B's
  // placement modes (drain, no crash), part C's rebuild caps (drain at
  // rendezvous). Each run builds its own engine, so the pool spreads them
  // across PIO_THREADS with a fixed merged row order.
  const std::vector<std::uint32_t> graces = {2, 3, 5, 8};
  const std::vector<pfs::PlacementMode> modes = {pfs::PlacementMode::kRoundRobin,
                                                 pfs::PlacementMode::kRendezvousHash};
  const std::vector<double> caps_mib = {64.0, 256.0, 1024.0};
  std::vector<SweepPoint> plan;
  for (const std::uint32_t grace : graces) {
    plan.push_back({grace, pfs::PlacementMode::kRendezvousHash,
                    Bandwidth::from_mib_per_sec(256.0), /*crash=*/true, /*drain=*/false});
  }
  for (const pfs::PlacementMode mode : modes) {
    plan.push_back({3, mode, Bandwidth::from_mib_per_sec(256.0), /*crash=*/false,
                    /*drain=*/true});
  }
  for (const double cap : caps_mib) {
    plan.push_back({3, pfs::PlacementMode::kRendezvousHash, Bandwidth::from_mib_per_sec(cap),
                    /*crash=*/false, /*drain=*/true});
  }
  exec::Pool pool;
  const auto runs =
      pool.map_ordered(plan.size(), [&plan](std::size_t i) { return run_one(plan[i]); });

  // Part A: heartbeat grace sweep under the crash schedule.
  std::vector<SimTime> latencies;
  TextTable grace_table{{"grace", "detect latency", "retries", "stale retries", "failed ops",
                         "degraded reads"}};
  for (std::size_t gi = 0; gi < graces.size(); ++gi) {
    const auto& run = runs[gi];
    latencies.push_back(run.detect_latency);
    grace_table.add_row({std::to_string(graces[gi]), format_time(run.detect_latency),
                         std::to_string(run.stats.retries),
                         std::to_string(run.stats.stale_map_retries),
                         std::to_string(run.result.failed_ops),
                         std::to_string(run.stats.degraded_reads)});
    bench::emit_row(Record{{"part", std::string("detection")},
                           {"grace", static_cast<std::uint64_t>(graces[gi])},
                           {"detect_latency_ms", run.detect_latency.ms()},
                           {"retries", run.stats.retries},
                           {"stale_map_retries", run.stats.stale_map_retries},
                           {"failed_ops", run.result.failed_ops},
                           {"degraded_reads", run.stats.degraded_reads}});
  }
  std::cout << grace_table.to_string();
  std::cout << "clients keep addressing the dead OST until the grace expires: the window "
               "is a measured quantity, swept by one config knob.\n\n";

  // Part B: placement mode under a live drain.
  std::vector<Bytes> marked;
  TextTable mode_table{{"placement", "migration marked", "stale retries", "map refreshes",
                        "makespan"}};
  for (std::size_t mi = 0; mi < modes.size(); ++mi) {
    const auto& run = runs[graces.size() + mi];
    marked.push_back(run.stats.migration_marked_bytes);
    mode_table.add_row({pfs::to_string(modes[mi]),
                        format_bytes(run.stats.migration_marked_bytes),
                        std::to_string(run.stats.stale_map_retries),
                        std::to_string(run.stats.map_refreshes),
                        format_time(run.result.makespan)});
    bench::emit_row(Record{{"part", std::string("placement")},
                           {"mode", std::string(pfs::to_string(modes[mi]))},
                           {"migration_marked_bytes", run.stats.migration_marked_bytes.count()},
                           {"stale_map_retries", run.stats.stale_map_retries},
                           {"map_refreshes", run.stats.map_refreshes},
                           {"makespan_ms", run.result.makespan.ms()}});
  }
  std::cout << mode_table.to_string();
  std::cout << "the same drain bills round-robin for a pool-wide reshuffle and rendezvous "
               "hashing for the drained OST's share only.\n\n";

  // Part C: rebuild cap sweep on the drain migration (rendezvous).
  std::vector<SimTime> windows;
  TextTable cap_table{{"rebuild cap", "migration window", "rebuilt"}};
  for (std::size_t ci = 0; ci < caps_mib.size(); ++ci) {
    const auto& run = runs[graces.size() + modes.size() + ci];
    windows.push_back(run.migration_window);
    cap_table.add_row({format_double(caps_mib[ci], 0) + " MiB/s",
                       format_time(run.migration_window),
                       format_bytes(run.stats.rebuilt_bytes)});
    bench::emit_row(Record{{"part", std::string("drain_cap")},
                           {"cap_mib_per_sec", caps_mib[ci]},
                           {"migration_window_ms", run.migration_window.ms()},
                           {"rebuilt_bytes", run.stats.rebuilt_bytes.count()}});
  }
  std::cout << cap_table.to_string();

  bool latency_monotone = latencies.front() > SimTime::zero();
  for (std::size_t i = 1; i < latencies.size(); ++i) {
    latency_monotone = latency_monotone && latencies[i] > latencies[i - 1];
  }
  const bool hrw_cheaper = marked[1] > Bytes::zero() && marked[1] < marked[0];
  const bool cap_paces = windows[0] > windows[1] && windows[1] > windows[2] &&
                         windows[2] > SimTime::zero();
  const bool shape_holds = latency_monotone && hrw_cheaper && cap_paces;

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << "{\n  \"bench\": \"cf3_membership\",\n  \"detection\": [\n";
    for (std::size_t i = 0; i < graces.size(); ++i) {
      out << "    {\"grace\": " << graces[i]
          << ", \"detect_latency_ms\": " << format_double(latencies[i].ms(), 3) << "}"
          << (i + 1 < graces.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"placement\": [\n";
    for (std::size_t i = 0; i < modes.size(); ++i) {
      out << "    {\"mode\": \"" << pfs::to_string(modes[i])
          << "\", \"migration_marked_bytes\": " << marked[i].count() << "}"
          << (i + 1 < modes.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"drain_cap\": [\n";
    for (std::size_t i = 0; i < caps_mib.size(); ++i) {
      out << "    {\"cap_mib_per_sec\": " << format_double(caps_mib[i], 0)
          << ", \"migration_window_ms\": " << format_double(windows[i].ms(), 3) << "}"
          << (i + 1 < caps_mib.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"shape_holds\": " << (shape_holds ? "true" : "false") << "\n}\n";
    std::cout << "wrote " << json_out << "\n";
  }

  std::cout << "shape check: " << (shape_holds ? "HOLDS" : "VIOLATED")
            << " (detection latency grows monotonically with the grace; rendezvous "
               "migration volume < round-robin; drain window shrinks with the cap)\n";
  return shape_holds ? 0 : 1;
}
