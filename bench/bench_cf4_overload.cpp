// C-F4 — overload control: under a transient capacity loss at open-loop
// arrivals, naive retries congestion-collapse (goodput craters and stays
// down long after the fault clears, retry amplification multiplies the
// offered load) while the overload-controlled stack degrades gracefully
// (bounded sojourn via CoDel shedding, retry budget, per-server breakers,
// adaptive timeouts, end-to-end deadlines) and recovers promptly.
//
// Paper §V: emerging workloads are elastic and bursty; evaluation must
// capture the *transition* behaviour — meltdown and recovery — not just
// steady-state bandwidth. This bench drives the same open-loop arrival
// schedule (fixed-rate issue, independent of completions — the regime where
// retry storms feed on themselves) through two client/server policy stacks
// on the same testbed and compares windowed goodput, tail latency and retry
// amplification (DESIGN.md §14).
//
// piolint: allow-file(C2) — run_one() schedules against a stack-local
// engine/model and drains it before returning, so by-reference captures
// cannot outlive their frame; library code gets no such exemption.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exec/pool.hpp"

using namespace pio;

namespace {

constexpr std::uint32_t kClients = 8;
constexpr std::uint32_t kOsts = 4;
constexpr SimTime kFirstArrival = SimTime::from_ms(5.0);
constexpr SimTime kInterval = SimTime::from_us(1800.0);  // per-client issue period
constexpr SimTime kHorizon = SimTime::from_ms(240.0);    // last arrival before this
constexpr SimTime kStormStart = SimTime::from_ms(40.0);
constexpr SimTime kStormEnd = SimTime::from_ms(140.0);
constexpr double kStormFactor = 10.0;                    // transient 10x service slowdown
constexpr SimTime kWindow = SimTime::from_ms(20.0);
const Bytes kOpSize = Bytes::from_kib(256);

struct OverloadRun {
  std::uint64_t submitted = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  double p99_ms = 0.0;
  double amplification = 0.0;  ///< device-path attempts per submitted op
  std::uint64_t server_shed = 0;
  std::uint64_t server_rejected = 0;
  std::uint64_t budget_denied = 0;
  std::uint64_t deadline_giveups = 0;
  std::vector<std::uint64_t> goodput;  ///< ok completions per kWindow bucket
};

/// The naive stack: unbounded queues, aggressive fixed-timeout retries and
/// nothing to stop them — the configuration that melts down.
pfs::RetryPolicy naive_policy() {
  pfs::RetryPolicy retry;
  retry.max_attempts = 6;
  retry.op_timeout = SimTime::from_ms(10.0);
  retry.base_backoff = SimTime::from_us(500.0);
  retry.backoff_multiplier = 2.0;
  retry.jitter_fraction = 0.2;
  return retry;
}

/// The controlled stack: same retry aggressiveness, but every §14 mechanism
/// armed — CoDel shedding server-side; budget, breakers, adaptive timeouts
/// and a deadline client-side.
pfs::RetryPolicy controlled_policy() {
  pfs::RetryPolicy retry = naive_policy();
  retry.adaptive_timeout = true;
  retry.initial_timeout = SimTime::from_ms(10.0);
  retry.min_timeout = SimTime::from_ms(1.0);
  retry.max_timeout = SimTime::from_ms(50.0);
  retry.op_deadline = SimTime::from_ms(50.0);
  retry.retry_budget = true;
  retry.budget_ratio = 0.1;
  retry.budget_cap = 20.0;
  retry.breaker = true;
  retry.breaker_threshold = 8;
  retry.breaker_open_base = SimTime::from_ms(5.0);
  return retry;
}

OverloadRun run_one(bool controlled) {
  pfs::PfsConfig config;
  config.clients = kClients;
  config.io_nodes = 2;
  config.osts = kOsts;
  config.disk_kind = pfs::DiskKind::kSsd;
  for (std::uint32_t i = 0; i < kOsts; ++i) {
    config.faults.ost_straggler(i, kStormStart, kStormEnd, kStormFactor);
  }
  config.retry = controlled ? controlled_policy() : naive_policy();
  if (controlled) {
    config.admission.policy = pfs::AdmissionPolicy::kCodelShed;
    config.admission.shed_target = SimTime::from_ms(2.0);
  }

  sim::Engine engine{1};
  pfs::PfsModel model{engine, config};

  // One single-chunk file per client, rotated across the OST pool so the
  // open-loop storm loads every target evenly.
  std::vector<pfs::StripeLayout> layouts(kClients);
  for (std::uint32_t c = 0; c < kClients; ++c) {
    layouts[c] = pfs::StripeLayout{Bytes::from_mib(1), 1, c % kOsts};
    bool created = false;
    model.meta(c, pfs::MetaOp::kCreate, "/f" + std::to_string(c),
               [&created](pfs::MetaResult r) { created = r.ok(); }, layouts[c]);
    engine.run();
    if (!created) throw std::runtime_error("cf4: create failed");
  }

  // Open-loop arrivals: client c issues a 256 KiB write every kInterval
  // regardless of completions — offered load is fixed by the clock, so a
  // slow server cannot push back and retry storms feed on themselves.
  OverloadRun out;
  std::vector<double> latencies_ms;
  const auto windows = static_cast<std::size_t>(kHorizon.ns() / kWindow.ns()) + 16;
  out.goodput.assign(windows, 0);
  for (std::uint32_t c = 0; c < kClients; ++c) {
    std::uint64_t k = 0;
    for (SimTime t = kFirstArrival + (kInterval / static_cast<std::int64_t>(kClients)) *
                                         static_cast<std::int64_t>(c);
         t < kHorizon; t = t + kInterval, ++k) {
      engine.schedule_at(t, [&, c, k] {
        ++out.submitted;
        model.io(c, "/f" + std::to_string(c), layouts[c], (k % 64) * kOpSize.count(),
                 kOpSize, /*is_write=*/true, [&](pfs::IoResult r) {
                   if (!r.ok) {
                     ++out.failed;
                     return;
                   }
                   ++out.ok;
                   latencies_ms.push_back(r.latency().ms());
                   const auto w = static_cast<std::size_t>(r.completed.ns() / kWindow.ns());
                   if (w < out.goodput.size()) ++out.goodput[w];
                 });
      });
    }
  }
  engine.run();  // arrivals, storm, and the post-storm backlog drain
  engine.assert_drained();
  model.assert_quiescent();  // F5a/F5b hold under both stacks

  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    out.p99_ms = latencies_ms[std::min(latencies_ms.size() - 1,
                                       (latencies_ms.size() * 99) / 100)];
  }
  const auto& res = model.resilience_stats();
  out.amplification = out.submitted == 0
                          ? 0.0
                          : static_cast<double>(res.attempts) / static_cast<double>(out.submitted);
  out.budget_denied = res.budget_denied;
  out.deadline_giveups = res.deadline_giveups;
  const auto server = model.server_overload_totals();
  out.server_shed = server.shed;
  out.server_rejected = server.rejected;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--json-out <path>]\n";
      return 2;
    }
  }

  bench::banner("C-F4",
                "overload control: open-loop arrivals through a transient 10x capacity "
                "loss congestion-collapse with naive retries and degrade gracefully "
                "with admission control + retry budgets + breakers + deadlines "
                "(DESIGN.md section 14)");

  exec::Pool pool;
  const auto runs = pool.map_ordered(2, [](std::size_t i) { return run_one(i == 1); });
  const OverloadRun& naive = runs[0];
  const OverloadRun& controlled = runs[1];

  TextTable table{{"stack", "submitted", "ok", "failed", "p99 latency", "attempts/op",
                   "server shed", "budget denied", "deadline giveups"}};
  const auto row = [&table](const char* name, const OverloadRun& r) {
    table.add_row({name, std::to_string(r.submitted), std::to_string(r.ok),
                   std::to_string(r.failed), format_double(r.p99_ms, 3) + " ms",
                   format_double(r.amplification, 2), std::to_string(r.server_shed),
                   std::to_string(r.budget_denied), std::to_string(r.deadline_giveups)});
  };
  row("naive", naive);
  row("controlled", controlled);
  std::cout << table.to_string();

  // Recovery: goodput in the windows after the storm clears (plus one window
  // of slack). A collapsed stack is still digesting its retry backlog there.
  const auto recovery_from = static_cast<std::size_t>(kStormEnd.ns() / kWindow.ns()) + 1;
  std::uint64_t naive_recovery = 0, controlled_recovery = 0;
  for (std::size_t w = recovery_from; w < naive.goodput.size(); ++w) {
    naive_recovery += naive.goodput[w];
    controlled_recovery += controlled.goodput[w];
  }
  std::cout << "post-storm goodput (ok ops after " << format_time(kStormEnd + kWindow)
            << "): naive=" << naive_recovery << " controlled=" << controlled_recovery << "\n";
  for (std::size_t w = 0; w < naive.goodput.size(); ++w) {
    if (naive.goodput[w] == 0 && controlled.goodput[w] == 0 &&
        w > recovery_from) {
      continue;  // past both tails
    }
    bench::emit_row(Record{{"window", static_cast<std::uint64_t>(w)},
                           {"window_start_ms", kWindow.ms() * static_cast<double>(w)},
                           {"naive_ok", naive.goodput[w]},
                           {"controlled_ok", controlled.goodput[w]}});
  }

  // Shape checks (the C-F4 claim):
  //  1. graceful degradation beats collapse on total goodput;
  //  2. bounded sojourn: the controlled tail is far below the naive tail;
  //  3. the budget kills retry amplification;
  //  4. the control plane actually engaged (sheds happened, retries were
  //     denied) — a vacuous pass would hide a dead knob;
  //  5. recovery: once the fault clears, the controlled stack out-delivers
  //     the naive stack, which is still digesting its backlog.
  const bool more_goodput = controlled.ok > naive.ok;
  const bool tighter_tail = controlled.p99_ms < naive.p99_ms / 2.0;
  const bool damped_retries = controlled.amplification < naive.amplification;
  const bool engaged = controlled.server_shed > 0 && controlled.budget_denied > 0 &&
                       naive.server_shed == 0 && naive.server_rejected == 0;
  const bool recovers = controlled_recovery > naive_recovery;
  const bool shape_holds =
      more_goodput && tighter_tail && damped_retries && engaged && recovers;

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    const auto stack = [&out](const char* name, const OverloadRun& r,
                              std::uint64_t recovery) {
      out << "    \"" << name << "\": {\"submitted\": " << r.submitted << ", \"ok\": " << r.ok
          << ", \"failed\": " << r.failed << ", \"p99_ms\": " << format_double(r.p99_ms, 3)
          << ", \"attempts_per_op\": " << format_double(r.amplification, 3)
          << ", \"server_shed\": " << r.server_shed
          << ", \"server_rejected\": " << r.server_rejected
          << ", \"budget_denied\": " << r.budget_denied
          << ", \"deadline_giveups\": " << r.deadline_giveups
          << ", \"post_storm_ok\": " << recovery << "}";
    };
    out << "{\n  \"bench\": \"cf4_overload\",\n"
        << "  \"storm\": {\"start_ms\": " << format_double(kStormStart.ms(), 1)
        << ", \"end_ms\": " << format_double(kStormEnd.ms(), 1)
        << ", \"factor\": " << format_double(kStormFactor, 1) << "},\n  \"stacks\": {\n";
    stack("naive", naive, naive_recovery);
    out << ",\n";
    stack("controlled", controlled, controlled_recovery);
    out << "\n  },\n  \"shape_holds\": " << (shape_holds ? "true" : "false") << "\n}\n";
    std::cout << "wrote " << json_out << "\n";
  }

  std::cout << "shape check: " << (shape_holds ? "HOLDS" : "VIOLATED")
            << " (controlled stack delivers more goodput, a far tighter p99, lower retry "
               "amplification, engages its control plane, and out-recovers the naive "
               "stack after the storm)\n";
  return shape_holds ? 0 : 1;
}
