// C-F5 — evaluation as a service: a pioevald instance under a simulated
// many-client population computes each distinct campaign point once. With
// thousands of sessions drawing campaigns from a shared spec pool, the
// digest-keyed result cache turns the aggregate workload from
// points-completed simulations into cache-entries simulations: the hit
// rate clears 50%, a served point costs far less wall time than a cold
// one, and cold/cached/coalesced deliveries of one key are byte-identical.
//
// Paper §V: shared benchmarks and community corpora make results
// comparable because everyone evaluates the *same* points — an evaluation
// service exploits exactly that redundancy. The harness drives the full
// framed protocol (SubmitCampaign → SubmitAck | Error(kOverloaded) →
// PointResult stream → CampaignDone) in arrival waves with rejected
// submissions retried after their retry-after hint, then audits the
// service's cache accounting to the last counter (DESIGN.md §15).
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/seed_streams.hpp"
#include "common/types.hpp"
#include "svc/evald.hpp"

using namespace pio;

namespace {

constexpr std::uint64_t kSeed = 7;
constexpr std::uint32_t kSessions = 1200;
constexpr std::uint32_t kWaveSize = 150;
constexpr std::uint32_t kPoolSpecs = 24;     // distinct campaign specs
constexpr std::uint32_t kWarmSpecs = 12;     // pre-warmed by the cold phase
constexpr std::uint32_t kPumpsPerWave = 3;   // partial service between waves

/// Deterministic pool of distinct campaign specs. Two sessions drawing the
/// same `which` submit byte-identical specs, so every point they request
/// shares a cache key; distinct `which` values still overlap wherever the
/// (workload, index) pair coincides.
svc::CampaignSpec pool_spec(std::uint32_t which) {
  svc::CampaignSpec spec;
  spec.seed = kSeed;
  spec.calibration = 0.9;
  spec.testbed = {4, 2, 4, 1};
  spec.model = {4, 2, 2, 1};
  const std::uint32_t points = 3 + which % 3;
  for (std::uint32_t j = 0; j < points; ++j) {
    const std::uint32_t v = which * 7 + j;
    svc::WorkloadSpec w;
    switch (v % 3) {
      case 0:
        // The block size carries the spec id, so every spec contributes at
        // least one point no other spec requests (the cold tail the load
        // phase must compute); ranks/read sweep for variety.
        w.kind = svc::WorkloadKind::kIor;
        w.ranks = 2 + (v % 2) * 2;
        w.block_kib = 256 * (1 + which);
        w.transfer_kib = 32u << (j % 3);
        w.read_phase = v % 2 == 0;
        break;
      case 1:
        w.kind = svc::WorkloadKind::kDlio;
        w.ranks = 2;
        w.samples = 32;
        w.sample_kib = 16;
        w.samples_per_file = 8;
        w.batch = 4;
        w.workload_seed = 100 + v;
        break;
      default:
        // Workflow points alias across some spec ids on purpose: shared
        // cache keys between *different* campaigns are part of the claim.
        w.kind = svc::WorkloadKind::kWorkflow;
        w.ranks = 2;
        w.stages = 2;
        w.tasks_per_stage = 2 + which % 8;
        w.files_per_task = 1 + j % 2;
        break;
    }
    spec.workloads.push_back(w);
  }
  return spec;
}

struct SessionLog {
  svc::SessionId id = 0;
  std::uint32_t spec = 0;
  std::vector<std::uint8_t> received;  ///< accumulated server→client bytes
  bool accepted = false;
  std::uint32_t rejections = 0;
  std::uint64_t last_retry_after_ns = 0;
};

/// Feed one SubmitCampaign and read back the synchronous answer (Ack or
/// Error) from the freshly emitted frames, which also accumulate into the
/// session's log for end-of-run verification.
void submit(svc::Evald& evald, SessionLog& log) {
  std::vector<std::uint8_t> wire;
  svc::append_frame(svc::MsgType::kSubmitCampaign,
                    svc::encode(svc::SubmitCampaign{pool_spec(log.spec)}), wire);
  evald.feed(log.id, wire);
  const std::vector<std::uint8_t> fresh = evald.take_output(log.id);
  for (const svc::Frame& frame : svc::split_frames(fresh)) {
    if (frame.type == svc::MsgType::kSubmitAck) log.accepted = true;
    if (frame.type == svc::MsgType::kError) {
      svc::Error err;
      if (svc::decode(frame.payload, &err) && err.code == svc::ErrorCode::kOverloaded) {
        ++log.rejections;
        log.last_retry_after_ns = err.retry_after_ns;
      }
    }
  }
  log.received.insert(log.received.end(), fresh.begin(), fresh.end());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--json-out <path>]\n";
      return 2;
    }
  }

  bench::banner("C-F5",
                "evaluation as a service: 1200 client sessions with overlapping campaign "
                "sweeps through one pioevald instance; the digest-keyed result cache "
                "computes each distinct point once (hit rate > 50%, served points far "
                "cheaper than cold ones, byte-identical across cold/cached/coalesced) "
                "and the cache accounting audits exactly (DESIGN.md section 15)");

  svc::EvaldConfig config;
  config.batch_points = 64;
  config.max_queue_points = 2048;  // tight enough that late waves hit the door
  svc::Evald evald{config};
  trace::WallClock clock;

  // Cold phase: one session computes the warm half of the pool, timing the
  // uncached cost of a point.
  const SimTime cold_start = clock.now();
  const svc::SessionId warm_session = evald.open_session();
  for (std::uint32_t which = 0; which < kWarmSpecs; ++which) {
    std::vector<std::uint8_t> wire;
    svc::append_frame(svc::MsgType::kSubmitCampaign,
                      svc::encode(svc::SubmitCampaign{pool_spec(which)}), wire);
    evald.feed(warm_session, wire);
  }
  evald.drain();
  const std::uint64_t cold_points = evald.stats().points_computed;
  const SimTime cold_elapsed = clock.now() - cold_start;
  (void)evald.take_output(warm_session);
  evald.finish(warm_session);
  evald.close_session(warm_session);

  // Load phase: kSessions sessions arrive in waves, draw a spec from the
  // full pool (warmed and cold halves alike), and overlap: each wave gets
  // only partial service before the next arrives, so the submission queue
  // deepens until admission control rejects at the door; rejected sessions
  // retry between waves.
  const SimTime load_start = clock.now();
  Rng arrivals{kSeed, seeds::kSvcArrivalJitterStream};
  std::vector<SessionLog> logs;
  logs.reserve(kSessions);
  std::vector<std::size_t> retry_pool;
  for (std::uint32_t s = 0; s < kSessions; ++s) {
    SessionLog log;
    log.id = evald.open_session();
    log.spec = static_cast<std::uint32_t>(arrivals.next_below(kPoolSpecs));
    logs.push_back(std::move(log));
    submit(evald, logs.back());
    if (!logs.back().accepted) retry_pool.push_back(logs.size() - 1);
    if ((s + 1) % kWaveSize == 0) {
      for (std::uint32_t p = 0; p < kPumpsPerWave; ++p) (void)evald.pump();
      // The door opened again after the partial service round: honour the
      // retry-after hints in arrival order.
      std::vector<std::size_t> still_rejected;
      for (const std::size_t idx : retry_pool) {
        submit(evald, logs[idx]);
        if (!logs[idx].accepted) still_rejected.push_back(idx);
      }
      retry_pool = std::move(still_rejected);
    }
  }
  while (!retry_pool.empty()) {
    (void)evald.pump();
    std::vector<std::size_t> still_rejected;
    for (const std::size_t idx : retry_pool) {
      submit(evald, logs[idx]);
      if (!logs[idx].accepted) still_rejected.push_back(idx);
    }
    retry_pool = std::move(still_rejected);
  }
  evald.drain();
  const SimTime load_elapsed = clock.now() - load_start;

  // Verification sweep: per-key byte identity across delivery sources, one
  // CampaignDone per session, digests consistent with the carried blobs.
  std::map<std::uint64_t, std::pair<std::vector<std::uint8_t>, std::uint8_t>> by_key;
  std::uint64_t done = 0, mismatched = 0, bad_digest = 0, rejections = 0;
  std::uint64_t max_retry_after_ns = 0;
  for (SessionLog& log : logs) {
    const std::vector<std::uint8_t> rest = evald.take_output(log.id);
    log.received.insert(log.received.end(), rest.begin(), rest.end());
    rejections += log.rejections;
    if (log.last_retry_after_ns > max_retry_after_ns)
      max_retry_after_ns = log.last_retry_after_ns;
    for (const svc::Frame& frame : svc::split_frames(log.received)) {
      if (frame.type == svc::MsgType::kCampaignDone) ++done;
      if (frame.type != svc::MsgType::kPointResult) continue;
      svc::PointResult result;
      if (!svc::decode(frame.payload, &result)) return 1;
      auto [it, fresh] = by_key.emplace(
          result.key, std::make_pair(result.blob, static_cast<std::uint8_t>(0)));
      if (!fresh && it->second.first != result.blob) ++mismatched;
      it->second.second |= static_cast<std::uint8_t>(1u << static_cast<int>(result.source));
      eval::CampaignPoint point;
      if (!svc::decode_point(result.blob, &point)) ++bad_digest;
    }
    evald.finish(log.id);
    evald.close_session(log.id);
  }
  std::uint64_t keys_all_sources = 0;
  for (const auto& [key, entry] : by_key)
    if (entry.second == 0b111) ++keys_all_sources;

  const svc::ServiceStats& s = evald.stats();
  const double hit_rate = s.cache_lookups == 0
                              ? 0.0
                              : static_cast<double>(s.cache_hits) /
                                    static_cast<double>(s.cache_lookups);
  const double cold_us = cold_points == 0
                             ? 0.0
                             : cold_elapsed.us() / static_cast<double>(cold_points);
  const std::uint64_t load_points = s.points_completed - cold_points;
  const double served_us =
      load_points == 0 ? 0.0 : load_elapsed.us() / static_cast<double>(load_points);
  const double speedup = served_us == 0.0 ? 0.0 : cold_us / served_us;

  TextTable table{{"phase", "sessions", "points", "computed", "cached", "coalesced",
                   "us/point", "hit rate"}};
  table.add_row({"cold", "1", std::to_string(cold_points), std::to_string(cold_points), "0",
                 "0", format_double(cold_us, 1), "0.0 %"});
  table.add_row({"load", std::to_string(kSessions), std::to_string(load_points),
                 std::to_string(s.points_computed - cold_points),
                 std::to_string(s.points_cached), std::to_string(s.points_coalesced),
                 format_double(served_us, 1), format_double(hit_rate * 100.0, 1) + " %"});
  std::cout << table.to_string();
  std::cout << "admission: " << rejections << " rejections across "
            << s.campaigns_rejected << " rejected submissions, max retry-after "
            << format_double(SimTime::from_ns(static_cast<std::int64_t>(max_retry_after_ns)).ms(), 2) << " ms\n";
  std::cout << "byte identity: " << by_key.size() << " distinct keys, " << keys_all_sources
            << " observed via all three sources, " << mismatched << " mismatches\n";
  bench::emit_row(Record{{"sessions", static_cast<std::uint64_t>(kSessions)},
                         {"points_completed", s.points_completed},
                         {"points_computed", s.points_computed},
                         {"points_cached", s.points_cached},
                         {"points_coalesced", s.points_coalesced},
                         {"hit_rate", hit_rate},
                         {"cold_us_per_point", cold_us},
                         {"served_us_per_point", served_us},
                         {"speedup", speedup}});

  bool audit_ok = true;
  try {
    evald.audit_quiescent();
  } catch (const std::exception& e) {
    audit_ok = false;
    std::cerr << "audit failed: " << e.what() << "\n";
  }

  // Shape checks (the C-F5 claim):
  //  1. real many-client scale with every campaign resolved;
  //  2. the cache carries the population: hit rate > 50%, far fewer
  //     simulations than deliveries;
  //  3. a served point is much cheaper than a cold one;
  //  4. byte identity across cold/cached/coalesced, with at least one key
  //     actually observed through all three sources;
  //  5. admission control engaged and every rejected session got through
  //     on retry;
  //  6. the cache accounting audit holds to the last counter.
  const bool scale = s.sessions_opened >= 1000 && done == kSessions;
  const bool cache_carries = hit_rate > 0.5 && s.points_computed < s.points_completed / 2;
  const bool served_cheap = speedup > 5.0;
  const bool byte_identical = mismatched == 0 && bad_digest == 0 && keys_all_sources > 0;
  const bool door_worked = rejections > 0 &&
                           s.campaigns_accepted == kSessions + kWarmSpecs &&
                           max_retry_after_ns > 0;
  const bool shape_holds =
      scale && cache_carries && served_cheap && byte_identical && door_worked && audit_ok &&
      s.protocol_errors == 0;

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << "{\n  \"bench\": \"cf5_service\",\n"
        << "  \"sessions\": " << s.sessions_opened << ",\n"
        << "  \"campaigns\": {\"submitted\": " << s.campaigns_submitted
        << ", \"accepted\": " << s.campaigns_accepted
        << ", \"rejected\": " << s.campaigns_rejected
        << ", \"completed\": " << s.campaigns_completed << "},\n"
        << "  \"points\": {\"completed\": " << s.points_completed
        << ", \"computed\": " << s.points_computed << ", \"cached\": " << s.points_cached
        << ", \"coalesced\": " << s.points_coalesced << "},\n"
        << "  \"cache\": {\"lookups\": " << s.cache_lookups << ", \"hits\": " << s.cache_hits
        << ", \"misses\": " << s.cache_misses << ", \"entries\": " << s.cache_entries
        << ", \"hit_rate\": " << format_double(hit_rate, 4) << "},\n"
        << "  \"latency\": {\"cold_us_per_point\": " << format_double(cold_us, 2)
        << ", \"served_us_per_point\": " << format_double(served_us, 2)
        << ", \"speedup\": " << format_double(speedup, 2) << "},\n"
        << "  \"byte_identity\": {\"distinct_keys\": " << by_key.size()
        << ", \"keys_all_sources\": " << keys_all_sources
        << ", \"mismatches\": " << mismatched << "},\n"
        << "  \"admission\": {\"rejections\": " << rejections
        << ", \"max_retry_after_ms\": "
        << format_double(SimTime::from_ns(static_cast<std::int64_t>(max_retry_after_ns)).ms(), 3) << "},\n"
        << "  \"audit_ok\": " << (audit_ok ? "true" : "false") << ",\n"
        << "  \"shape_holds\": " << (shape_holds ? "true" : "false") << "\n}\n";
    std::cout << "wrote " << json_out << "\n";
  }

  std::cout << "shape check: " << (shape_holds ? "HOLDS" : "VIOLATED")
            << " (>=1000 sessions all resolve, cache hit rate > 50%, served points >5x "
               "cheaper than cold, byte-identical results across sources, admission "
               "rejections recover on retry, accounting audit exact)\n";
  return shape_holds ? 0 : 1;
}
