// Fig. 1 — HPC system with a center-wide parallel file system.
//
// Paper: "I/O nodes ... potentially integrate a tier of solid-state devices
// to absorb the burst of random or high volume operations, so that
// transfers to/from the staging area from/to the traditional parallel file
// system can be done more efficiently. The connection to the storage
// cluster is often times through a secondary, slower fabric."
//
// Expected shape: with a burst buffer at the I/O nodes, the *client-
// perceived* checkpoint bandwidth rises far above what the storage cluster
// can sink, while the drain continues in the background; without the
// buffer, clients are throttled to the end-to-end path. The advantage
// shrinks once the burst exceeds the buffer capacity.
#include <iostream>

#include "bench_util.hpp"
#include "workload/kernels.hpp"

using namespace pio;
using namespace pio::literals;

int main() {
  bench::banner("fig1",
                "burst absorption along the compute->ION->storage path (Fig. 1)");
  TextTable table{{"burst/rank", "tier", "perceived write bw", "client burst time",
                   "full drain time"}};
  for (const Bytes burst : {64_MiB, 256_MiB, 512_MiB}) {
    for (const bool with_bb : {false, true}) {
      auto system = bench::reference_testbed();
      if (with_bb) {
        system.bb_placement = pfs::BbPlacement::kPerIoNode;
        system.bb.capacity = 2_GiB;  // 4 IONs x 2 GiB vs 16 ranks x burst
        system.bb.drain_bandwidth = Bandwidth::from_mib_per_sec(400.0);
      }
      workload::CheckpointConfig ckpt;
      ckpt.ranks = 16;
      ckpt.checkpoint_per_rank = burst;
      ckpt.transfer_size = 8_MiB;
      ckpt.checkpoints = 1;
      ckpt.compute_phase = SimTime::zero();
      pfs::PfsModel* model = nullptr;
      sim::Engine engine{7};
      pfs::PfsModel pfs_model{engine, system};
      model = &pfs_model;
      driver::ExecutionDrivenSimulator sim{engine, pfs_model};
      const auto result = sim.run(*workload::checkpoint_restart(ckpt));
      const SimTime burst_done = result.makespan;
      engine.run();  // finish background drains
      const SimTime drain_done = engine.now();
      const auto perceived = observed_bandwidth(result.bytes_written, burst_done);
      table.add_row({format_bytes(burst), with_bb ? "burst buffer" : "direct",
                     format_bandwidth(perceived), format_time(burst_done),
                     format_time(drain_done)});
      bench::emit_row(Record{{"burst_mib", burst.mib()},
                             {"tier", std::string(with_bb ? "bb" : "direct")},
                             {"perceived_mib_s", perceived.mib_per_sec()},
                             {"burst_s", burst_done.sec()},
                             {"drain_s", drain_done.sec()}});
      (void)model;
    }
  }
  std::cout << table.to_string();
  std::cout << "\nshape check: burst-buffer rows must show higher perceived bandwidth\n"
               "until the burst exceeds the staging capacity (512 MiB/rank row).\n";
  return 0;
}
