// Fig. 2 — Parallel I/O architecture (HDF5 -> MPI-IO -> POSIX -> PFS).
//
// Paper: "an application can use a high-level library such as HDF5 ...
// implemented on top of MPI-IO which, in turn, performs POSIX I/O calls
// against a parallel file system."
//
// Expected shape: one application-level dataset write appears as a handful
// of HDF5 events, more MPI-IO events, and many more POSIX events; with
// collective buffering the POSIX count collapses back toward one large op
// per aggregator.
#include <iostream>

#include "bench_util.hpp"
#include "h5/h5.hpp"
#include "par/comm.hpp"
#include "trace/backend_shim.hpp"
#include "trace/tracer.hpp"
#include "vfs/backend.hpp"
#include "vfs/file_system.hpp"

using namespace pio;
using namespace pio::literals;

namespace {

struct LayerCounts {
  std::size_t ops = 0;
  std::uint64_t bytes = 0;
};

LayerCounts count_layer(const trace::Trace& trace, trace::Layer layer) {
  LayerCounts counts;
  const auto filtered = trace.layer(layer);
  for (const auto& e : filtered.events()) {
    if (e.op != trace::OpKind::kRead && e.op != trace::OpKind::kWrite) continue;
    ++counts.ops;
    counts.bytes += e.size;
  }
  return counts;
}

}  // namespace

int main() {
  bench::banner("fig2", "one logical write observed at every stack layer (Fig. 2)");
  TextTable table{{"mode", "layer", "data ops", "bytes", "mean op size"}};
  for (const bool collective : {false, true}) {
    vfs::FileSystem fs;
    vfs::LocalBackend inner{fs};
    trace::Tracer tracer;
    trace::WallClock clock;
    constexpr int kRanks = 8;
    par::Runtime runtime{kRanks};
    runtime.run([&](par::Comm& comm) {
      trace::TracingBackend posix{inner, tracer, clock, comm.rank()};
      mio::Hints hints;
      hints.cb_nodes = collective ? 2 : 0;
      auto file = h5::H5File::create_all(comm, posix, "/stack.h5", hints, &tracer, &clock);
      if (!file.ok()) throw std::runtime_error(file.error().message);
      // 256 x 512 grid of 8-byte elements; each rank owns a column block,
      // so ONE application-level write decomposes into 256 strided
      // row-fragments at the POSIX layer (the canonical Fig. 2 blow-up).
      auto ds = file.value()->create_dataset("/u", 8, h5::Dataspace{{256, 512}});
      if (!ds.ok()) throw std::runtime_error(ds.error().message);
      const std::uint64_t cols_per_rank = 512 / kRanks;
      std::vector<std::byte> data(256 * cols_per_rank * 8);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::byte>(i);
      const h5::Hyperslab slab{{0, static_cast<std::uint64_t>(comm.rank()) * cols_per_rank},
                               {256, cols_per_rank}};
      auto r = ds.value().write(slab, data, collective);
      if (!r.ok()) throw std::runtime_error(r.error().message);
      (void)file.value()->close_all();
    });
    const auto trace = tracer.snapshot();
    const std::string mode = collective ? "collective (cb=2)" : "independent";
    for (const auto layer :
         {trace::Layer::kHdf5, trace::Layer::kMpiIo, trace::Layer::kPosix}) {
      const auto counts = count_layer(trace, layer);
      table.add_row({mode, trace::to_string(layer), std::to_string(counts.ops),
                     format_bytes(Bytes{counts.bytes}),
                     counts.ops == 0 ? "-"
                                     : format_bytes(Bytes{counts.bytes / counts.ops})});
      bench::emit_row(Record{{"mode", mode},
                             {"layer", std::string(trace::to_string(layer))},
                             {"ops", static_cast<std::uint64_t>(counts.ops)},
                             {"bytes", counts.bytes}});
    }
  }
  std::cout << table.to_string();
  std::cout << "\nshape check: POSIX ops >= MPI-IO ops >= HDF5 ops in independent mode;\n"
               "collective buffering collapses POSIX ops into a few large writes.\n";
  return 0;
}
