// Fig. 3 — Percentage distribution of included papers.
//
// Paper §III: "In the end, we identified 51 research articles to be
// included in this overview. Figure 3 presents the percentage distribution
// of paper types and publishers."
//
// The published figure is an image; this harness regenerates the
// distribution from the reconstructed corpus (see src/corpus/corpus.cpp
// for the reconstruction rules).
#include <iostream>

#include "bench_util.hpp"
#include "corpus/corpus.hpp"

using namespace pio;

namespace {

void print_shares(const std::string& heading, const std::vector<corpus::Share>& shares) {
  TextTable table{{heading, "articles", "share"}};
  for (const auto& s : shares) {
    table.add_row({s.label, std::to_string(s.count), format_double(s.percent, 1) + "%"});
    bench::emit_row(Record{{"axis", heading},
                           {"label", s.label},
                           {"count", static_cast<std::uint64_t>(s.count)},
                           {"percent", s.percent}});
  }
  std::cout << table.to_string() << "\n";
}

}  // namespace

int main() {
  bench::banner("fig3", "percentage distribution of the 51 surveyed articles (Fig. 3)");
  const auto dist = corpus::compute_distribution();
  std::cout << "total included articles: " << dist.total << " (2015-2020)\n\n";
  print_shares("paper type", dist.by_type);
  print_shares("publisher", dist.by_publisher);
  print_shares("year", dist.by_year);
  print_shares("taxonomy phase", dist.by_category);
  std::cout << "shape check: conference papers and IEEE venues dominate; the\n"
               "measurement/characterization phase has the widest coverage, matching\n"
               "the paper's key finding that most research is characterization-heavy.\n";
  return 0;
}
