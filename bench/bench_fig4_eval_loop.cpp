// Fig. 4 — Phases of the iterative large-scale I/O evaluation process.
//
// Paper: "the process of understanding I/O behavior and performance ... is
// performed iteratively and empirically in a closed loop fashion" with
// feedback between measurement, modeling/prediction, and simulation.
//
// Expected shape: starting from a deliberately mis-calibrated storage
// model, each trip around the loop (measure -> replay-model -> simulate ->
// calibrate) reduces the prediction error.
#include <iostream>

#include "bench_util.hpp"
#include "eval/campaign.hpp"
#include "workload/kernels.hpp"

using namespace pio;
using namespace pio::literals;

int main() {
  bench::banner("fig4", "the closed evaluation loop converges (Fig. 4)");
  eval::CampaignConfig config;
  config.testbed = bench::reference_testbed();
  config.model = bench::reference_testbed();
  // The model's disks are 3x too fast and its MDS 2x too slow — the loop
  // must calibrate this away.
  config.model.hdd.stream_bandwidth = Bandwidth::from_mib_per_sec(540.0);
  config.model.mds.create_cost = config.model.mds.create_cost * 2;
  config.iterations = 5;

  std::vector<std::unique_ptr<workload::Workload>> sweep;
  for (const Bytes transfer : {1_MiB, 4_MiB, 16_MiB}) {
    workload::IorConfig ior;
    ior.ranks = 8;
    ior.block_size = 64_MiB;
    ior.transfer_size = transfer;
    sweep.push_back(workload::ior_like(ior));
  }
  std::vector<const workload::Workload*> borrowed;
  for (const auto& w : sweep) borrowed.push_back(w.get());

  eval::Campaign campaign{config};
  const auto result = campaign.run(borrowed);
  std::cout << result.to_string() << "\n";
  for (const auto& iteration : result.iterations) {
    bench::emit_row(Record{{"iteration", static_cast<std::uint64_t>(iteration.index)},
                           {"calibration", iteration.calibration_in_use},
                           {"mean_abs_pct_error", iteration.mean_abs_pct_error()}});
  }
  std::cout << "shape check: the mean |error| column must fall from iteration 0 to the\n"
               "last iteration (feedback loop converging): "
            << (result.converged() ? "CONVERGED" : "DID NOT CONVERGE") << "\n";
  return result.converged() ? 0 : 1;
}
