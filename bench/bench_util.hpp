// Shared helpers for the PIOEval bench harnesses.
//
// Every bench binary reproduces one figure or quantitative claim of the
// paper (see DESIGN.md §4) and prints (a) a human-readable table and (b)
// machine-readable JSON lines prefixed with "##" for re-plotting.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "common/format.hpp"
#include "common/record_io.hpp"
#include "common/types.hpp"
#include "driver/sim_driver.hpp"
#include "pfs/pfs.hpp"
#include "sim/engine.hpp"
#include "trace/event.hpp"
#include "workload/op.hpp"

namespace pio::bench {

/// Reference testbed sized like the Fig. 1 sketch: a small cluster with a
/// two-tier fabric and an HDD-backed storage cluster.
inline pfs::PfsConfig reference_testbed(pfs::DiskKind disk = pfs::DiskKind::kHdd) {
  pfs::PfsConfig config;
  config.clients = 16;
  config.io_nodes = 4;
  config.osts = 8;
  config.disk_kind = disk;
  return config;
}

/// One execution-driven run on a fresh engine + model.
inline driver::SimRunResult simulate(const pfs::PfsConfig& system,
                                     const workload::Workload& workload,
                                     trace::Sink* sink = nullptr, std::uint64_t seed = 1,
                                     pfs::PfsModel** model_out = nullptr) {
  static thread_local std::unique_ptr<sim::Engine> engine;
  static thread_local std::unique_ptr<pfs::PfsModel> model;
  engine = std::make_unique<sim::Engine>(seed);
  model = std::make_unique<pfs::PfsModel>(*engine, system);
  if (model_out != nullptr) *model_out = model.get();
  driver::ExecutionDrivenSimulator sim{*engine, *model};
  auto result = sim.run(workload, sink);
  // Let background drains finish so server-side stats are complete.
  engine->run();
  return result;
}

/// Print the bench banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "==============================================================\n";
  std::cout << "pioeval bench " << id << "\n";
  std::cout << claim << "\n";
  std::cout << "==============================================================\n";
}

/// Emit one machine-readable series row.
inline void emit_row(const Record& record) {
  std::cout << "## " << record.to_json_line() << "\n";
}

/// Host execution context as a JSON object fragment, for committed bench
/// artifacts: numbers collected on a loaded host, a different core count, or
/// a debug build are not comparable, so the artifact records all three.
inline std::string host_context_json() {
  double load[3] = {-1.0, -1.0, -1.0};
  if (::getloadavg(load, 3) != 3) load[0] = load[1] = load[2] = -1.0;
#if defined(NDEBUG)
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  std::ostringstream out;
  out << "{\"num_cpus\": " << std::thread::hardware_concurrency()
      << ", \"load_avg_1m\": " << format_double(load[0], 2)
      << ", \"load_avg_5m\": " << format_double(load[1], 2)
      << ", \"load_avg_15m\": " << format_double(load[2], 2) << ", \"build_type\": \""
      << build_type << "\"}";
  return out.str();
}

}  // namespace pio::bench
