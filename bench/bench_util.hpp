// Shared helpers for the PIOEval bench harnesses.
//
// Every bench binary reproduces one figure or quantitative claim of the
// paper (see DESIGN.md §4) and prints (a) a human-readable table and (b)
// machine-readable JSON lines prefixed with "##" for re-plotting.
#pragma once

#include <iostream>
#include <string>

#include "common/format.hpp"
#include "common/record_io.hpp"
#include "common/types.hpp"
#include "driver/sim_driver.hpp"
#include "pfs/pfs.hpp"
#include "sim/engine.hpp"
#include "trace/event.hpp"
#include "workload/op.hpp"

namespace pio::bench {

/// Reference testbed sized like the Fig. 1 sketch: a small cluster with a
/// two-tier fabric and an HDD-backed storage cluster.
inline pfs::PfsConfig reference_testbed(pfs::DiskKind disk = pfs::DiskKind::kHdd) {
  pfs::PfsConfig config;
  config.clients = 16;
  config.io_nodes = 4;
  config.osts = 8;
  config.disk_kind = disk;
  return config;
}

/// One execution-driven run on a fresh engine + model.
inline driver::SimRunResult simulate(const pfs::PfsConfig& system,
                                     const workload::Workload& workload,
                                     trace::Sink* sink = nullptr, std::uint64_t seed = 1,
                                     pfs::PfsModel** model_out = nullptr) {
  static thread_local std::unique_ptr<sim::Engine> engine;
  static thread_local std::unique_ptr<pfs::PfsModel> model;
  engine = std::make_unique<sim::Engine>(seed);
  model = std::make_unique<pfs::PfsModel>(*engine, system);
  if (model_out != nullptr) *model_out = model.get();
  driver::ExecutionDrivenSimulator sim{*engine, *model};
  auto result = sim.run(workload, sink);
  // Let background drains finish so server-side stats are complete.
  engine->run();
  return result;
}

/// Print the bench banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "==============================================================\n";
  std::cout << "pioeval bench " << id << "\n";
  std::cout << claim << "\n";
  std::cout << "==============================================================\n";
}

/// Emit one machine-readable series row.
inline void emit_row(const Record& record) {
  std::cout << "## " << record.to_json_line() << "\n";
}

}  // namespace pio::bench
