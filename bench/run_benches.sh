#!/usr/bin/env bash
# Regenerate the committed benchmark artifacts at the repo root:
#
#   BENCH_engine.json           — google-benchmark JSON for the C-10 DES
#                                 engine microbenchmarks (event storm,
#                                 self-scheduling cascade, scheduler-queue
#                                 heap-vs-calendar rows, payload slab vs
#                                 arena)
#   BENCH_campaign_scaling.json — C-12 campaign thread-scaling curve with
#                                 the cross-thread determinism digest
#   BENCH_parsim.json           — C-13 sharded facility shard-count scaling
#                                 with the cross-shard determinism digest
#   BENCH_membership.json       — C-F3 cluster-membership curves: detection
#                                 latency vs heartbeat grace, migration
#                                 volume by placement mode, drain window vs
#                                 rebuild cap
#   BENCH_overload.json         — C-F4 overload-control comparison: naive
#                                 retry storm (congestion collapse) vs the
#                                 controlled stack (admission control, retry
#                                 budget, breakers, deadlines) through a
#                                 transient capacity loss
#   BENCH_service.json          — C-F5 campaign-service load harness: 1200
#                                 client sessions through one pioevald
#                                 instance; result-cache hit rate, cold vs
#                                 served per-point cost, byte-identity and
#                                 cache-accounting audit
#
# Usage:  bench/run_benches.sh [build-dir]
#
# Numbers are host-dependent; commit them as an honest record of the machine
# the PR was validated on (CI treats the committed files as documentation,
# not as a regression gate).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [[ ! -x "$build_dir/bench/bench_c10_sim_engine" ]]; then
  echo "error: $build_dir/bench/bench_c10_sim_engine not built" >&2
  echo "hint: cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
  exit 1
fi

# Committed BENCH_*.json artifacts must come from an optimized build: debug
# numbers are meaningless as a performance record (and google-benchmark would
# stamp them "library_build_type": "debug").
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt" 2>/dev/null || true)"
if [[ "$build_type" != "Release" ]]; then
  echo "error: refusing to record BENCH_*.json from a non-Release build" >&2
  echo "       (CMAKE_BUILD_TYPE='${build_type:-<unset>}' in $build_dir/CMakeCache.txt)" >&2
  echo "hint: cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j" >&2
  exit 1
fi

# Repetitions + aggregates: on a small (often 1-CPU) host a single run's
# mean is hostage to scheduler noise; recording mean/median/stddev across
# repetitions makes the committed number reproducible — read the median.
echo "== C-10 engine microbenchmarks -> BENCH_engine.json"
"$build_dir/bench/bench_c10_sim_engine" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_engine.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.3 \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true

echo "== C-12 campaign scaling -> BENCH_campaign_scaling.json"
"$build_dir/bench/bench_c12_campaign_scaling" \
  --json-out "$repo_root/BENCH_campaign_scaling.json"

echo "== C-13 sharded facility -> BENCH_parsim.json"
"$build_dir/bench/bench_c13_sharded_engine" \
  --json-out "$repo_root/BENCH_parsim.json"

echo "== C-F3 cluster membership -> BENCH_membership.json"
"$build_dir/bench/bench_cf3_membership" \
  --json-out "$repo_root/BENCH_membership.json"

echo "== C-F4 overload control -> BENCH_overload.json"
"$build_dir/bench/bench_cf4_overload" \
  --json-out "$repo_root/BENCH_overload.json"

echo "== C-F5 campaign service -> BENCH_service.json"
"$build_dir/bench/bench_cf5_service" \
  --json-out "$repo_root/BENCH_service.json"

echo "done: $repo_root/BENCH_engine.json $repo_root/BENCH_campaign_scaling.json $repo_root/BENCH_parsim.json $repo_root/BENCH_membership.json $repo_root/BENCH_overload.json $repo_root/BENCH_service.json"
