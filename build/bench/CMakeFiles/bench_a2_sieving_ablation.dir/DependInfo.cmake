
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_a2_sieving_ablation.cpp" "bench/CMakeFiles/bench_a2_sieving_ablation.dir/bench_a2_sieving_ablation.cpp.o" "gcc" "bench/CMakeFiles/bench_a2_sieving_ablation.dir/bench_a2_sieving_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/pio_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/pio_par.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/pio_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mio/CMakeFiles/pio_mio.dir/DependInfo.cmake"
  "/root/repo/build/src/h5/CMakeFiles/pio_h5.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pio_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pio_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pio_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pio_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/pio_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/pio_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/pio_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/pio_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/pio_corpus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
