
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_c10_sim_engine.cpp" "bench/CMakeFiles/bench_c10_sim_engine.dir/bench_c10_sim_engine.cpp.o" "gcc" "bench/CMakeFiles/bench_c10_sim_engine.dir/bench_c10_sim_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/pio_pfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
