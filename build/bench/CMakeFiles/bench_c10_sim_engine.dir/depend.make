# Empty dependencies file for bench_c10_sim_engine.
# This may be replaced when dependencies are built.
