file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_read_write_shift.dir/bench_c1_read_write_shift.cpp.o"
  "CMakeFiles/bench_c1_read_write_shift.dir/bench_c1_read_write_shift.cpp.o.d"
  "bench_c1_read_write_shift"
  "bench_c1_read_write_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_read_write_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
