# Empty compiler generated dependencies file for bench_c1_read_write_shift.
# This may be replaced when dependencies are built.
