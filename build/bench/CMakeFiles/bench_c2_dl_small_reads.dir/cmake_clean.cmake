file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_dl_small_reads.dir/bench_c2_dl_small_reads.cpp.o"
  "CMakeFiles/bench_c2_dl_small_reads.dir/bench_c2_dl_small_reads.cpp.o.d"
  "bench_c2_dl_small_reads"
  "bench_c2_dl_small_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_dl_small_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
