# Empty dependencies file for bench_c2_dl_small_reads.
# This may be replaced when dependencies are built.
