file(REMOVE_RECURSE
  "CMakeFiles/bench_c3_workflow_metadata.dir/bench_c3_workflow_metadata.cpp.o"
  "CMakeFiles/bench_c3_workflow_metadata.dir/bench_c3_workflow_metadata.cpp.o.d"
  "bench_c3_workflow_metadata"
  "bench_c3_workflow_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c3_workflow_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
