# Empty dependencies file for bench_c3_workflow_metadata.
# This may be replaced when dependencies are built.
