# Empty compiler generated dependencies file for bench_c4_nn_vs_linear.
# This may be replaced when dependencies are built.
