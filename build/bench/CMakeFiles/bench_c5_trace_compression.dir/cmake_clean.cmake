file(REMOVE_RECURSE
  "CMakeFiles/bench_c5_trace_compression.dir/bench_c5_trace_compression.cpp.o"
  "CMakeFiles/bench_c5_trace_compression.dir/bench_c5_trace_compression.cpp.o.d"
  "bench_c5_trace_compression"
  "bench_c5_trace_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c5_trace_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
