# Empty dependencies file for bench_c5_trace_compression.
# This may be replaced when dependencies are built.
