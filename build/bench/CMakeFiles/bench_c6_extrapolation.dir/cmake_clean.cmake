file(REMOVE_RECURSE
  "CMakeFiles/bench_c6_extrapolation.dir/bench_c6_extrapolation.cpp.o"
  "CMakeFiles/bench_c6_extrapolation.dir/bench_c6_extrapolation.cpp.o.d"
  "bench_c6_extrapolation"
  "bench_c6_extrapolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c6_extrapolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
