# Empty dependencies file for bench_c6_extrapolation.
# This may be replaced when dependencies are built.
