file(REMOVE_RECURSE
  "CMakeFiles/bench_c7_workload_sources.dir/bench_c7_workload_sources.cpp.o"
  "CMakeFiles/bench_c7_workload_sources.dir/bench_c7_workload_sources.cpp.o.d"
  "bench_c7_workload_sources"
  "bench_c7_workload_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c7_workload_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
