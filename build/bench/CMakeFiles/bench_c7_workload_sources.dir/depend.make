# Empty dependencies file for bench_c7_workload_sources.
# This may be replaced when dependencies are built.
