file(REMOVE_RECURSE
  "CMakeFiles/bench_c8_collective_io.dir/bench_c8_collective_io.cpp.o"
  "CMakeFiles/bench_c8_collective_io.dir/bench_c8_collective_io.cpp.o.d"
  "bench_c8_collective_io"
  "bench_c8_collective_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c8_collective_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
