# Empty dependencies file for bench_c8_collective_io.
# This may be replaced when dependencies are built.
