file(REMOVE_RECURSE
  "CMakeFiles/bench_c9_bb_placement.dir/bench_c9_bb_placement.cpp.o"
  "CMakeFiles/bench_c9_bb_placement.dir/bench_c9_bb_placement.cpp.o.d"
  "bench_c9_bb_placement"
  "bench_c9_bb_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c9_bb_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
