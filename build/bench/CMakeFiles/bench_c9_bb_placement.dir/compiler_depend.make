# Empty compiler generated dependencies file for bench_c9_bb_placement.
# This may be replaced when dependencies are built.
