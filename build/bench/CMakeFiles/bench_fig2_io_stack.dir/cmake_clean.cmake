file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_io_stack.dir/bench_fig2_io_stack.cpp.o"
  "CMakeFiles/bench_fig2_io_stack.dir/bench_fig2_io_stack.cpp.o.d"
  "bench_fig2_io_stack"
  "bench_fig2_io_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_io_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
