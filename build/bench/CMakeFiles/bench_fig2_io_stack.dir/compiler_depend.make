# Empty compiler generated dependencies file for bench_fig2_io_stack.
# This may be replaced when dependencies are built.
