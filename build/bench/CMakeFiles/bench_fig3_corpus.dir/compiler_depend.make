# Empty compiler generated dependencies file for bench_fig3_corpus.
# This may be replaced when dependencies are built.
