# Empty compiler generated dependencies file for bench_fig4_eval_loop.
# This may be replaced when dependencies are built.
