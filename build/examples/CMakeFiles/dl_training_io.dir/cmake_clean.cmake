file(REMOVE_RECURSE
  "CMakeFiles/dl_training_io.dir/dl_training_io.cpp.o"
  "CMakeFiles/dl_training_io.dir/dl_training_io.cpp.o.d"
  "dl_training_io"
  "dl_training_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_training_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
