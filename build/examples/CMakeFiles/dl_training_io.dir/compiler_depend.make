# Empty compiler generated dependencies file for dl_training_io.
# This may be replaced when dependencies are built.
