file(REMOVE_RECURSE
  "CMakeFiles/trace_replay_extrapolate.dir/trace_replay_extrapolate.cpp.o"
  "CMakeFiles/trace_replay_extrapolate.dir/trace_replay_extrapolate.cpp.o.d"
  "trace_replay_extrapolate"
  "trace_replay_extrapolate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_replay_extrapolate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
