# Empty compiler generated dependencies file for trace_replay_extrapolate.
# This may be replaced when dependencies are built.
