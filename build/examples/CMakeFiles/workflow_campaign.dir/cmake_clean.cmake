file(REMOVE_RECURSE
  "CMakeFiles/workflow_campaign.dir/workflow_campaign.cpp.o"
  "CMakeFiles/workflow_campaign.dir/workflow_campaign.cpp.o.d"
  "workflow_campaign"
  "workflow_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
