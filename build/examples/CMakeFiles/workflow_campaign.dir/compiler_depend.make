# Empty compiler generated dependencies file for workflow_campaign.
# This may be replaced when dependencies are built.
