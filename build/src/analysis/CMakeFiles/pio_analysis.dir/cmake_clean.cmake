file(REMOVE_RECURSE
  "CMakeFiles/pio_analysis.dir/job_analysis.cpp.o"
  "CMakeFiles/pio_analysis.dir/job_analysis.cpp.o.d"
  "CMakeFiles/pio_analysis.dir/system_analysis.cpp.o"
  "CMakeFiles/pio_analysis.dir/system_analysis.cpp.o.d"
  "libpio_analysis.a"
  "libpio_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
