file(REMOVE_RECURSE
  "libpio_analysis.a"
)
