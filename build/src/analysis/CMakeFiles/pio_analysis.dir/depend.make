# Empty dependencies file for pio_analysis.
# This may be replaced when dependencies are built.
