file(REMOVE_RECURSE
  "CMakeFiles/pio_common.dir/format.cpp.o"
  "CMakeFiles/pio_common.dir/format.cpp.o.d"
  "CMakeFiles/pio_common.dir/histogram.cpp.o"
  "CMakeFiles/pio_common.dir/histogram.cpp.o.d"
  "CMakeFiles/pio_common.dir/interval_set.cpp.o"
  "CMakeFiles/pio_common.dir/interval_set.cpp.o.d"
  "CMakeFiles/pio_common.dir/record_io.cpp.o"
  "CMakeFiles/pio_common.dir/record_io.cpp.o.d"
  "CMakeFiles/pio_common.dir/rng.cpp.o"
  "CMakeFiles/pio_common.dir/rng.cpp.o.d"
  "libpio_common.a"
  "libpio_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
