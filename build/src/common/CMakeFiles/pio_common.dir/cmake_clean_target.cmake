file(REMOVE_RECURSE
  "libpio_common.a"
)
