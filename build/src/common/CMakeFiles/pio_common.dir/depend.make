# Empty dependencies file for pio_common.
# This may be replaced when dependencies are built.
