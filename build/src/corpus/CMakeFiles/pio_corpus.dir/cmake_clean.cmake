file(REMOVE_RECURSE
  "CMakeFiles/pio_corpus.dir/corpus.cpp.o"
  "CMakeFiles/pio_corpus.dir/corpus.cpp.o.d"
  "libpio_corpus.a"
  "libpio_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
