file(REMOVE_RECURSE
  "libpio_corpus.a"
)
