# Empty compiler generated dependencies file for pio_corpus.
# This may be replaced when dependencies are built.
