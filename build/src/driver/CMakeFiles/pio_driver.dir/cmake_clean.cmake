file(REMOVE_RECURSE
  "CMakeFiles/pio_driver.dir/measured_runner.cpp.o"
  "CMakeFiles/pio_driver.dir/measured_runner.cpp.o.d"
  "CMakeFiles/pio_driver.dir/sim_driver.cpp.o"
  "CMakeFiles/pio_driver.dir/sim_driver.cpp.o.d"
  "libpio_driver.a"
  "libpio_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
