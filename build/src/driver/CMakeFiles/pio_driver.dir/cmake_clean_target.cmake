file(REMOVE_RECURSE
  "libpio_driver.a"
)
