# Empty compiler generated dependencies file for pio_driver.
# This may be replaced when dependencies are built.
