file(REMOVE_RECURSE
  "CMakeFiles/pio_eval.dir/campaign.cpp.o"
  "CMakeFiles/pio_eval.dir/campaign.cpp.o.d"
  "libpio_eval.a"
  "libpio_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
