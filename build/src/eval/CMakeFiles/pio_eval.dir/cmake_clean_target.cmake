file(REMOVE_RECURSE
  "libpio_eval.a"
)
