# Empty dependencies file for pio_eval.
# This may be replaced when dependencies are built.
