file(REMOVE_RECURSE
  "CMakeFiles/pio_h5.dir/h5.cpp.o"
  "CMakeFiles/pio_h5.dir/h5.cpp.o.d"
  "libpio_h5.a"
  "libpio_h5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio_h5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
