file(REMOVE_RECURSE
  "libpio_h5.a"
)
