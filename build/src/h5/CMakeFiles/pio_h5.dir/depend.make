# Empty dependencies file for pio_h5.
# This may be replaced when dependencies are built.
