file(REMOVE_RECURSE
  "CMakeFiles/pio_mio.dir/mio.cpp.o"
  "CMakeFiles/pio_mio.dir/mio.cpp.o.d"
  "libpio_mio.a"
  "libpio_mio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio_mio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
