file(REMOVE_RECURSE
  "libpio_mio.a"
)
