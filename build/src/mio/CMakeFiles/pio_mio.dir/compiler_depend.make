# Empty compiler generated dependencies file for pio_mio.
# This may be replaced when dependencies are built.
