file(REMOVE_RECURSE
  "CMakeFiles/pio_net.dir/fabric.cpp.o"
  "CMakeFiles/pio_net.dir/fabric.cpp.o.d"
  "libpio_net.a"
  "libpio_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
