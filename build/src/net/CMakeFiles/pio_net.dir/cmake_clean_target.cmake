file(REMOVE_RECURSE
  "libpio_net.a"
)
