# Empty compiler generated dependencies file for pio_net.
# This may be replaced when dependencies are built.
