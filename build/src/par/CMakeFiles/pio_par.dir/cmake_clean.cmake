file(REMOVE_RECURSE
  "CMakeFiles/pio_par.dir/comm.cpp.o"
  "CMakeFiles/pio_par.dir/comm.cpp.o.d"
  "libpio_par.a"
  "libpio_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
