file(REMOVE_RECURSE
  "libpio_par.a"
)
