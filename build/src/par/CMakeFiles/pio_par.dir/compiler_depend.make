# Empty compiler generated dependencies file for pio_par.
# This may be replaced when dependencies are built.
