
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pfs/burst_buffer.cpp" "src/pfs/CMakeFiles/pio_pfs.dir/burst_buffer.cpp.o" "gcc" "src/pfs/CMakeFiles/pio_pfs.dir/burst_buffer.cpp.o.d"
  "/root/repo/src/pfs/disk.cpp" "src/pfs/CMakeFiles/pio_pfs.dir/disk.cpp.o" "gcc" "src/pfs/CMakeFiles/pio_pfs.dir/disk.cpp.o.d"
  "/root/repo/src/pfs/mds.cpp" "src/pfs/CMakeFiles/pio_pfs.dir/mds.cpp.o" "gcc" "src/pfs/CMakeFiles/pio_pfs.dir/mds.cpp.o.d"
  "/root/repo/src/pfs/ost.cpp" "src/pfs/CMakeFiles/pio_pfs.dir/ost.cpp.o" "gcc" "src/pfs/CMakeFiles/pio_pfs.dir/ost.cpp.o.d"
  "/root/repo/src/pfs/pfs.cpp" "src/pfs/CMakeFiles/pio_pfs.dir/pfs.cpp.o" "gcc" "src/pfs/CMakeFiles/pio_pfs.dir/pfs.cpp.o.d"
  "/root/repo/src/pfs/stripe.cpp" "src/pfs/CMakeFiles/pio_pfs.dir/stripe.cpp.o" "gcc" "src/pfs/CMakeFiles/pio_pfs.dir/stripe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
