file(REMOVE_RECURSE
  "CMakeFiles/pio_pfs.dir/burst_buffer.cpp.o"
  "CMakeFiles/pio_pfs.dir/burst_buffer.cpp.o.d"
  "CMakeFiles/pio_pfs.dir/disk.cpp.o"
  "CMakeFiles/pio_pfs.dir/disk.cpp.o.d"
  "CMakeFiles/pio_pfs.dir/mds.cpp.o"
  "CMakeFiles/pio_pfs.dir/mds.cpp.o.d"
  "CMakeFiles/pio_pfs.dir/ost.cpp.o"
  "CMakeFiles/pio_pfs.dir/ost.cpp.o.d"
  "CMakeFiles/pio_pfs.dir/pfs.cpp.o"
  "CMakeFiles/pio_pfs.dir/pfs.cpp.o.d"
  "CMakeFiles/pio_pfs.dir/stripe.cpp.o"
  "CMakeFiles/pio_pfs.dir/stripe.cpp.o.d"
  "libpio_pfs.a"
  "libpio_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
