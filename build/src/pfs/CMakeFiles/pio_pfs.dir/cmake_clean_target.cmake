file(REMOVE_RECURSE
  "libpio_pfs.a"
)
