# Empty compiler generated dependencies file for pio_pfs.
# This may be replaced when dependencies are built.
