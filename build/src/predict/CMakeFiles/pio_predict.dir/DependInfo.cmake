
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/evaluate.cpp" "src/predict/CMakeFiles/pio_predict.dir/evaluate.cpp.o" "gcc" "src/predict/CMakeFiles/pio_predict.dir/evaluate.cpp.o.d"
  "/root/repo/src/predict/forest.cpp" "src/predict/CMakeFiles/pio_predict.dir/forest.cpp.o" "gcc" "src/predict/CMakeFiles/pio_predict.dir/forest.cpp.o.d"
  "/root/repo/src/predict/nn.cpp" "src/predict/CMakeFiles/pio_predict.dir/nn.cpp.o" "gcc" "src/predict/CMakeFiles/pio_predict.dir/nn.cpp.o.d"
  "/root/repo/src/predict/omnisio.cpp" "src/predict/CMakeFiles/pio_predict.dir/omnisio.cpp.o" "gcc" "src/predict/CMakeFiles/pio_predict.dir/omnisio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pio_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pio_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/pio_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/pio_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pio_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/pio_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/pio_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/pio_par.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
