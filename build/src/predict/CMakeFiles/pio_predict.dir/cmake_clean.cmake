file(REMOVE_RECURSE
  "CMakeFiles/pio_predict.dir/evaluate.cpp.o"
  "CMakeFiles/pio_predict.dir/evaluate.cpp.o.d"
  "CMakeFiles/pio_predict.dir/forest.cpp.o"
  "CMakeFiles/pio_predict.dir/forest.cpp.o.d"
  "CMakeFiles/pio_predict.dir/nn.cpp.o"
  "CMakeFiles/pio_predict.dir/nn.cpp.o.d"
  "CMakeFiles/pio_predict.dir/omnisio.cpp.o"
  "CMakeFiles/pio_predict.dir/omnisio.cpp.o.d"
  "libpio_predict.a"
  "libpio_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
