file(REMOVE_RECURSE
  "libpio_predict.a"
)
