# Empty compiler generated dependencies file for pio_predict.
# This may be replaced when dependencies are built.
