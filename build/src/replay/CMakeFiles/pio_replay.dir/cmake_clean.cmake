file(REMOVE_RECURSE
  "CMakeFiles/pio_replay.dir/compress.cpp.o"
  "CMakeFiles/pio_replay.dir/compress.cpp.o.d"
  "CMakeFiles/pio_replay.dir/extrapolate.cpp.o"
  "CMakeFiles/pio_replay.dir/extrapolate.cpp.o.d"
  "CMakeFiles/pio_replay.dir/fidelity.cpp.o"
  "CMakeFiles/pio_replay.dir/fidelity.cpp.o.d"
  "CMakeFiles/pio_replay.dir/trace_workload.cpp.o"
  "CMakeFiles/pio_replay.dir/trace_workload.cpp.o.d"
  "libpio_replay.a"
  "libpio_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
