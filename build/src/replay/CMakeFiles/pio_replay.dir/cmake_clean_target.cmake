file(REMOVE_RECURSE
  "libpio_replay.a"
)
