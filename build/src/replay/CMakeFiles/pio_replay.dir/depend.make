# Empty dependencies file for pio_replay.
# This may be replaced when dependencies are built.
