file(REMOVE_RECURSE
  "CMakeFiles/pio_sim.dir/engine.cpp.o"
  "CMakeFiles/pio_sim.dir/engine.cpp.o.d"
  "CMakeFiles/pio_sim.dir/resources.cpp.o"
  "CMakeFiles/pio_sim.dir/resources.cpp.o.d"
  "libpio_sim.a"
  "libpio_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
