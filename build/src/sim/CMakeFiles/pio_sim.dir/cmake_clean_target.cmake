file(REMOVE_RECURSE
  "libpio_sim.a"
)
