# Empty compiler generated dependencies file for pio_sim.
# This may be replaced when dependencies are built.
