
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/pio_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/pio_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/hypothesis.cpp" "src/stats/CMakeFiles/pio_stats.dir/hypothesis.cpp.o" "gcc" "src/stats/CMakeFiles/pio_stats.dir/hypothesis.cpp.o.d"
  "/root/repo/src/stats/markov.cpp" "src/stats/CMakeFiles/pio_stats.dir/markov.cpp.o" "gcc" "src/stats/CMakeFiles/pio_stats.dir/markov.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/stats/CMakeFiles/pio_stats.dir/regression.cpp.o" "gcc" "src/stats/CMakeFiles/pio_stats.dir/regression.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
