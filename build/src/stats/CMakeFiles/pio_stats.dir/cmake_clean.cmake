file(REMOVE_RECURSE
  "CMakeFiles/pio_stats.dir/descriptive.cpp.o"
  "CMakeFiles/pio_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/pio_stats.dir/hypothesis.cpp.o"
  "CMakeFiles/pio_stats.dir/hypothesis.cpp.o.d"
  "CMakeFiles/pio_stats.dir/markov.cpp.o"
  "CMakeFiles/pio_stats.dir/markov.cpp.o.d"
  "CMakeFiles/pio_stats.dir/regression.cpp.o"
  "CMakeFiles/pio_stats.dir/regression.cpp.o.d"
  "libpio_stats.a"
  "libpio_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
