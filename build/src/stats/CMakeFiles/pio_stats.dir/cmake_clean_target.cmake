file(REMOVE_RECURSE
  "libpio_stats.a"
)
