# Empty compiler generated dependencies file for pio_stats.
# This may be replaced when dependencies are built.
