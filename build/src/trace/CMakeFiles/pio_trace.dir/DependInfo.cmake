
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/backend_shim.cpp" "src/trace/CMakeFiles/pio_trace.dir/backend_shim.cpp.o" "gcc" "src/trace/CMakeFiles/pio_trace.dir/backend_shim.cpp.o.d"
  "/root/repo/src/trace/event.cpp" "src/trace/CMakeFiles/pio_trace.dir/event.cpp.o" "gcc" "src/trace/CMakeFiles/pio_trace.dir/event.cpp.o.d"
  "/root/repo/src/trace/profiler.cpp" "src/trace/CMakeFiles/pio_trace.dir/profiler.cpp.o" "gcc" "src/trace/CMakeFiles/pio_trace.dir/profiler.cpp.o.d"
  "/root/repo/src/trace/server_stats.cpp" "src/trace/CMakeFiles/pio_trace.dir/server_stats.cpp.o" "gcc" "src/trace/CMakeFiles/pio_trace.dir/server_stats.cpp.o.d"
  "/root/repo/src/trace/tracer.cpp" "src/trace/CMakeFiles/pio_trace.dir/tracer.cpp.o" "gcc" "src/trace/CMakeFiles/pio_trace.dir/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/pio_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/pio_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
