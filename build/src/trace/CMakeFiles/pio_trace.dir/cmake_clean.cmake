file(REMOVE_RECURSE
  "CMakeFiles/pio_trace.dir/backend_shim.cpp.o"
  "CMakeFiles/pio_trace.dir/backend_shim.cpp.o.d"
  "CMakeFiles/pio_trace.dir/event.cpp.o"
  "CMakeFiles/pio_trace.dir/event.cpp.o.d"
  "CMakeFiles/pio_trace.dir/profiler.cpp.o"
  "CMakeFiles/pio_trace.dir/profiler.cpp.o.d"
  "CMakeFiles/pio_trace.dir/server_stats.cpp.o"
  "CMakeFiles/pio_trace.dir/server_stats.cpp.o.d"
  "CMakeFiles/pio_trace.dir/tracer.cpp.o"
  "CMakeFiles/pio_trace.dir/tracer.cpp.o.d"
  "libpio_trace.a"
  "libpio_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
