file(REMOVE_RECURSE
  "libpio_trace.a"
)
