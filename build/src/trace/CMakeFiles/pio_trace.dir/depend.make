# Empty dependencies file for pio_trace.
# This may be replaced when dependencies are built.
