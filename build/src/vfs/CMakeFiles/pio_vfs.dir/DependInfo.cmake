
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vfs/backend.cpp" "src/vfs/CMakeFiles/pio_vfs.dir/backend.cpp.o" "gcc" "src/vfs/CMakeFiles/pio_vfs.dir/backend.cpp.o.d"
  "/root/repo/src/vfs/fault_injection.cpp" "src/vfs/CMakeFiles/pio_vfs.dir/fault_injection.cpp.o" "gcc" "src/vfs/CMakeFiles/pio_vfs.dir/fault_injection.cpp.o.d"
  "/root/repo/src/vfs/file_system.cpp" "src/vfs/CMakeFiles/pio_vfs.dir/file_system.cpp.o" "gcc" "src/vfs/CMakeFiles/pio_vfs.dir/file_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
