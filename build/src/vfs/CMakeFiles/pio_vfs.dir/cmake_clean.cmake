file(REMOVE_RECURSE
  "CMakeFiles/pio_vfs.dir/backend.cpp.o"
  "CMakeFiles/pio_vfs.dir/backend.cpp.o.d"
  "CMakeFiles/pio_vfs.dir/fault_injection.cpp.o"
  "CMakeFiles/pio_vfs.dir/fault_injection.cpp.o.d"
  "CMakeFiles/pio_vfs.dir/file_system.cpp.o"
  "CMakeFiles/pio_vfs.dir/file_system.cpp.o.d"
  "libpio_vfs.a"
  "libpio_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
