file(REMOVE_RECURSE
  "libpio_vfs.a"
)
