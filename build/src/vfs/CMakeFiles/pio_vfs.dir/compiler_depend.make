# Empty compiler generated dependencies file for pio_vfs.
# This may be replaced when dependencies are built.
