
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/dlio.cpp" "src/workload/CMakeFiles/pio_workload.dir/dlio.cpp.o" "gcc" "src/workload/CMakeFiles/pio_workload.dir/dlio.cpp.o.d"
  "/root/repo/src/workload/dsl.cpp" "src/workload/CMakeFiles/pio_workload.dir/dsl.cpp.o" "gcc" "src/workload/CMakeFiles/pio_workload.dir/dsl.cpp.o.d"
  "/root/repo/src/workload/facility_mix.cpp" "src/workload/CMakeFiles/pio_workload.dir/facility_mix.cpp.o" "gcc" "src/workload/CMakeFiles/pio_workload.dir/facility_mix.cpp.o.d"
  "/root/repo/src/workload/from_profile.cpp" "src/workload/CMakeFiles/pio_workload.dir/from_profile.cpp.o" "gcc" "src/workload/CMakeFiles/pio_workload.dir/from_profile.cpp.o.d"
  "/root/repo/src/workload/kernels.cpp" "src/workload/CMakeFiles/pio_workload.dir/kernels.cpp.o" "gcc" "src/workload/CMakeFiles/pio_workload.dir/kernels.cpp.o.d"
  "/root/repo/src/workload/op.cpp" "src/workload/CMakeFiles/pio_workload.dir/op.cpp.o" "gcc" "src/workload/CMakeFiles/pio_workload.dir/op.cpp.o.d"
  "/root/repo/src/workload/workflow.cpp" "src/workload/CMakeFiles/pio_workload.dir/workflow.cpp.o" "gcc" "src/workload/CMakeFiles/pio_workload.dir/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pio_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/pio_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/pio_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
