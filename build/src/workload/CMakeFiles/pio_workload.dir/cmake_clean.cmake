file(REMOVE_RECURSE
  "CMakeFiles/pio_workload.dir/dlio.cpp.o"
  "CMakeFiles/pio_workload.dir/dlio.cpp.o.d"
  "CMakeFiles/pio_workload.dir/dsl.cpp.o"
  "CMakeFiles/pio_workload.dir/dsl.cpp.o.d"
  "CMakeFiles/pio_workload.dir/facility_mix.cpp.o"
  "CMakeFiles/pio_workload.dir/facility_mix.cpp.o.d"
  "CMakeFiles/pio_workload.dir/from_profile.cpp.o"
  "CMakeFiles/pio_workload.dir/from_profile.cpp.o.d"
  "CMakeFiles/pio_workload.dir/kernels.cpp.o"
  "CMakeFiles/pio_workload.dir/kernels.cpp.o.d"
  "CMakeFiles/pio_workload.dir/op.cpp.o"
  "CMakeFiles/pio_workload.dir/op.cpp.o.d"
  "CMakeFiles/pio_workload.dir/workflow.cpp.o"
  "CMakeFiles/pio_workload.dir/workflow.cpp.o.d"
  "libpio_workload.a"
  "libpio_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
