file(REMOVE_RECURSE
  "libpio_workload.a"
)
