# Empty compiler generated dependencies file for pio_workload.
# This may be replaced when dependencies are built.
