file(REMOVE_RECURSE
  "CMakeFiles/test_mio.dir/test_mio.cpp.o"
  "CMakeFiles/test_mio.dir/test_mio.cpp.o.d"
  "test_mio"
  "test_mio.pdb"
  "test_mio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
