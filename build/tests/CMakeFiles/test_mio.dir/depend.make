# Empty dependencies file for test_mio.
# This may be replaced when dependencies are built.
