file(REMOVE_RECURSE
  "CMakeFiles/test_omnisio.dir/test_omnisio.cpp.o"
  "CMakeFiles/test_omnisio.dir/test_omnisio.cpp.o.d"
  "test_omnisio"
  "test_omnisio.pdb"
  "test_omnisio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_omnisio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
