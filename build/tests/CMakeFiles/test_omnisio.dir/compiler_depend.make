# Empty compiler generated dependencies file for test_omnisio.
# This may be replaced when dependencies are built.
