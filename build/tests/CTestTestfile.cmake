# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_pfs[1]_include.cmake")
include("/root/repo/build/tests/test_par[1]_include.cmake")
include("/root/repo/build/tests/test_vfs[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_mio[1]_include.cmake")
include("/root/repo/build/tests/test_h5[1]_include.cmake")
include("/root/repo/build/tests/test_predict[1]_include.cmake")
include("/root/repo/build/tests/test_replay[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_omnisio[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
