file(REMOVE_RECURSE
  "CMakeFiles/pio-dsl.dir/pio_dsl_tool.cpp.o"
  "CMakeFiles/pio-dsl.dir/pio_dsl_tool.cpp.o.d"
  "pio-dsl"
  "pio-dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio-dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
