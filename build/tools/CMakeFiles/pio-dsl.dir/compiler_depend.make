# Empty compiler generated dependencies file for pio-dsl.
# This may be replaced when dependencies are built.
