
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/pio_trace_tool.cpp" "tools/CMakeFiles/pio-trace.dir/pio_trace_tool.cpp.o" "gcc" "tools/CMakeFiles/pio-trace.dir/pio_trace_tool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pio_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/pio_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/pio_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
