file(REMOVE_RECURSE
  "CMakeFiles/pio-trace.dir/pio_trace_tool.cpp.o"
  "CMakeFiles/pio-trace.dir/pio_trace_tool.cpp.o.d"
  "pio-trace"
  "pio-trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pio-trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
