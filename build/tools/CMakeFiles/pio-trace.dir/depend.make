# Empty dependencies file for pio-trace.
# This may be replaced when dependencies are built.
