// PIOEval example: evaluating deep-learning training I/O (§V.B).
//
// Simulates a DLIO-style distributed training job on the HDD-backed
// reference system, then runs both analysis lenses over the observations:
// the job-level analyzer on the client trace and the system-level analyzer
// on the server-side monitoring series. Demonstrates why shuffled
// minibatch input stresses a sequential-optimized file system.
//
//   $ ./examples/dl_training_io
#include <iostream>

#include "analysis/job_analysis.hpp"
#include "analysis/system_analysis.hpp"
#include "common/format.hpp"
#include "driver/sim_driver.hpp"
#include "trace/server_stats.hpp"
#include "trace/tracer.hpp"
#include "workload/dlio.hpp"

using namespace pio;
using namespace pio::literals;

int main() {
  // The training job: 8 workers, 2048 samples of 256 KiB in 8 shards,
  // 2 epochs of globally shuffled minibatches.
  workload::DlioConfig dl;
  dl.ranks = 8;
  dl.samples = 2048;
  dl.sample_size = 256_KiB;
  dl.samples_per_file = 256;
  dl.batch_size = 32;
  dl.epochs = 2;
  dl.compute_per_batch = SimTime::from_ms(20.0);

  // The system under evaluation: an HDD-backed center-wide file system.
  pfs::PfsConfig system;
  system.clients = 8;
  system.io_nodes = 2;
  system.osts = 8;
  system.disk_kind = pfs::DiskKind::kHdd;

  sim::Engine engine{2024};
  pfs::PfsModel model{engine, system};
  trace::Tracer tracer;
  trace::ServerStatsCollector servers{SimTime::from_ms(50.0)};
  servers.attach(model);

  driver::ExecutionDrivenSimulator sim{engine, model};
  const auto result = sim.run(*workload::dlio_like(dl), &tracer);
  engine.run();

  std::cout << "simulated training run: " << format_time(result.makespan) << " makespan, "
            << format_bytes(result.bytes_read) << " read at "
            << format_bandwidth(result.read_bandwidth()) << "\n\n";

  // Job-level lens: periodicity (epochs), burstiness, rank variability.
  analysis::JobAnalysisConfig job_config;
  job_config.window = SimTime::from_ms(50.0);
  std::cout << analysis::analyze_job(tracer.take(), job_config).to_string() << "\n";

  // System-level lens: temporal read/write balance, OST imbalance, and the
  // MDS/OST activity correlation.
  std::cout << analysis::analyze_system(servers).to_string();

  // The §V.B diagnosis in one number: how random were the reads?
  std::uint64_t seeks = 0;
  std::uint64_t sequential = 0;
  for (std::uint32_t i = 0; i < model.ost_count(); ++i) {
    if (const auto* hdd = dynamic_cast<const pfs::HddModel*>(&model.ost(i).disk())) {
      seeks += hdd->seeks();
      sequential += hdd->sequential_hits();
    }
  }
  std::cout << "\ndevice-level view: " << seeks << " seeks vs " << sequential
            << " sequential hits — shuffled minibatch input turns the dataset\n"
               "scan into seek-bound random I/O, exactly the pressure the paper\n"
               "describes for DL workloads on PFS designed for sequential access.\n";
  return 0;
}
