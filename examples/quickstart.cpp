// PIOEval quickstart: profile a parallel application end to end.
//
// This example shows the measurement path of the toolkit on ten lines of
// setup: run an IOR-like benchmark with threads-as-ranks against the
// in-memory VFS, observe every POSIX call through a Darshan-style profiler
// and a Recorder-style tracer, and print the characterization report.
//
//   $ ./examples/quickstart
#include <iostream>
#include <sstream>

#include "common/format.hpp"
#include "driver/measured_runner.hpp"
#include "trace/profiler.hpp"
#include "trace/tracer.hpp"
#include "vfs/file_system.hpp"
#include "workload/kernels.hpp"

using namespace pio;
using namespace pio::literals;

int main() {
  // 1. Describe the workload: 8 ranks, 16 MiB per rank in 1 MiB transfers,
  //    write then read back, one shared file.
  workload::IorConfig config;
  config.ranks = 8;
  config.block_size = 16_MiB;
  config.transfer_size = 1_MiB;
  config.write_phase = true;
  config.read_phase = true;
  const auto workload = workload::ior_like(config);

  // 2. Attach the observation tools: a profiler (bounded counters) and a
  //    tracer (lossless event log) fed from the same interposition shim.
  trace::Profiler profiler;
  trace::Tracer tracer;
  trace::MultiSink sinks;
  sinks.add(profiler);
  sinks.add(tracer);

  // 3. Run for real on the in-memory file system.
  vfs::FileSystem fs;
  const auto result = driver::run_measured(fs, *workload, &sinks);

  std::cout << "measured run: " << result.ops << " ops, "
            << format_bytes(result.bytes_written) << " written, "
            << format_bytes(result.bytes_read) << " read in "
            << format_time(result.wall_time) << " ("
            << (result.failed_ops == 0 ? "no failures" : "FAILURES!") << ")\n\n";

  // 4. The Darshan-style characterization report.
  std::cout << profiler.snapshot().report() << "\n";

  // 5. The lossless trace can be serialized for later replay or analysis.
  const auto trace = tracer.take();
  std::ostringstream jsonl;
  trace.write_jsonl(jsonl);
  std::ostringstream binary;
  trace.write_binary(binary);
  std::cout << "trace: " << trace.size() << " events, " << jsonl.str().size()
            << " bytes as JSONL, " << binary.str().size() << " bytes as binary\n";
  std::cout << "first event: " << trace::to_string(trace.events().front().op) << " "
            << trace.events().front().path << "\n";
  return result.failed_ops == 0 ? 0 : 1;
}
