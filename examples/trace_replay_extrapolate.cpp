// PIOEval example: the record -> compress -> extrapolate -> replay pipeline.
//
// The §IV.B.3 workflow end to end: capture a small-scale run's trace,
// compress it into a grammar (Hao et al.), reconstruct it losslessly, fit
// the rank-parametric pattern (ScalaIOExtrap), project to 4x the scale,
// replay the projection, and score the fidelity against a direct run.
//
//   $ ./examples/trace_replay_extrapolate
#include <iostream>

#include "common/format.hpp"
#include "driver/sim_driver.hpp"
#include "replay/compress.hpp"
#include "replay/extrapolate.hpp"
#include "replay/fidelity.hpp"
#include "replay/trace_workload.hpp"
#include "trace/tracer.hpp"
#include "workload/dsl.hpp"

using namespace pio;
using namespace pio::literals;

namespace {

std::unique_ptr<workload::Workload> app_at(int ranks) {
  return workload::parse_dsl("name \"phases\"\nranks " + std::to_string(ranks) + R"(
    mkdir "/run"
    create "/run/state.{rank}"
    loop phase 3 {
      loop t 8 {
        write "/run/state.{rank}" at phase * 8MiB + t * 1MiB size 1MiB
      }
      fsync "/run/state.{rank}"
    }
    loop t 6 {
      read "/run/state.{rank}" at t * 4MiB size 512KiB
    }
    close "/run/state.{rank}"
  )");
}

driver::SimRunResult simulate(const workload::Workload& w, trace::Sink* sink = nullptr) {
  sim::Engine engine{5};
  pfs::PfsConfig system;
  system.clients = 32;
  system.io_nodes = 4;
  system.osts = 8;
  system.disk_kind = pfs::DiskKind::kSsd;
  pfs::PfsModel model{engine, system};
  driver::ExecutionDrivenSimulator sim{engine, model};
  return sim.run(w, sink);
}

}  // namespace

int main() {
  // 1. Record: trace a 4-rank run of the application in the simulator.
  std::cout << "[1/5] recording a 4-rank run...\n";
  trace::Tracer tracer;
  const auto small = app_at(4);
  const auto small_run = simulate(*small, &tracer);
  const auto trace = tracer.take();
  std::cout << "      " << trace.size() << " events, makespan "
            << format_time(small_run.makespan) << "\n";

  // 2. Convert the trace into a replayable workload (I/O pattern only).
  replay::TraceReplayConfig replay_config;
  replay_config.preserve_think_time = false;
  const auto recorded = replay::workload_from_trace(trace, replay_config);

  // 3. Compress: grammar-based trace compression, losslessly reversible.
  std::cout << "[2/5] compressing the recorded op stream...\n";
  const auto compressed = replay::CompressedWorkload::compress(*recorded);
  std::cout << "      " << compressed.original_ops() << " ops -> "
            << compressed.stored_symbols() << " grammar symbols ("
            << format_double(compressed.compression_ratio(), 1) << "x)\n";
  const auto restored = compressed.decompress();

  // 4. Extrapolate: fit the rank-affine pattern and project to 16 ranks.
  std::cout << "[3/5] fitting the rank-parametric pattern...\n";
  replay::ExtrapolationError error;
  const auto model = replay::ExtrapolationModel::fit(*restored, &error);
  if (!model.has_value()) {
    std::cout << "      extrapolation failed at op " << error.position << ": "
              << error.reason << "\n";
    return 1;
  }
  std::cout << "      " << model->ops_per_rank() << " ops/rank, captured at "
            << model->captured_ranks() << " ranks\n";
  std::cout << "[4/5] projecting to 16 ranks and replaying...\n";
  const auto projected = model->generate(16);
  const auto projected_run = simulate(*projected);

  // 5. Verify: compare against a directly generated 16-rank run.
  std::cout << "[5/5] verifying against a direct 16-rank run...\n";
  const auto direct_run = simulate(*app_at(16));
  const auto fidelity = replay::compare_runs(direct_run, projected_run);
  std::cout << "      " << fidelity.to_string() << "\n";
  std::cout << (fidelity.faithful(0.1) ? "extrapolated replay is faithful (within 10%)\n"
                                       : "extrapolated replay diverged!\n");
  return fidelity.faithful(0.1) ? 0 : 1;
}
