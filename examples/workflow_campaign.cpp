// PIOEval example: a full Fig. 4 evaluation campaign on emerging workloads.
//
// Runs the closed measure -> model -> simulate -> feedback loop for a
// mixed sweep (a data-intensive workflow plus a traditional checkpoint),
// against a deliberately mis-calibrated storage model, and prints the
// per-iteration convergence plus the final characterization profile.
//
// The per-iteration sweep fans out across a worker pool; the result is
// byte-identical at any width (DESIGN.md §11):
//
//   $ ./examples/workflow_campaign             # serial (or $PIO_THREADS)
//   $ ./examples/workflow_campaign --threads 4
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/format.hpp"
#include "eval/campaign.hpp"
#include "workload/kernels.hpp"
#include "workload/workflow.hpp"

using namespace pio;
using namespace pio::literals;

int main(int argc, char** argv) {
  eval::CampaignConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      config.threads = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::cerr << "usage: " << argv[0] << " [--threads <n>]\n";
      return 2;
    }
  }
  // The testbed: SSD-backed system we can "measure".
  config.testbed.clients = 8;
  config.testbed.io_nodes = 2;
  config.testbed.osts = 8;
  config.testbed.disk_kind = pfs::DiskKind::kSsd;
  // The model starts mis-calibrated: its SSDs are twice as fast and its
  // MDS has twice the service threads.
  config.model = config.testbed;
  config.model.ssd.read_bandwidth = Bandwidth::from_gib_per_sec(6.0);
  config.model.ssd.write_bandwidth = Bandwidth::from_gib_per_sec(4.0);
  config.model.mds.service_threads = 8;
  config.iterations = 4;

  // The sweep: one emerging workload, one traditional one.
  workload::WorkflowConfig wf;
  wf.workers = 8;
  wf.stages = 3;
  wf.tasks_per_stage = 24;
  wf.files_per_task = 3;
  wf.compute_per_task = SimTime::from_ms(5.0);
  const auto workflow = workload::workflow_dag(wf);

  workload::CheckpointConfig ckpt;
  ckpt.ranks = 8;
  ckpt.checkpoint_per_rank = 32_MiB;
  ckpt.transfer_size = 4_MiB;
  ckpt.checkpoints = 2;
  ckpt.compute_phase = SimTime::from_ms(500.0);
  const auto checkpoint = workload::checkpoint_restart(ckpt);

  eval::Campaign campaign{config};
  const auto result = campaign.run({workflow.get(), checkpoint.get()});

  std::cout << result.to_string() << "\n";
  std::cout << "per-workload detail of the final iteration:\n";
  for (const auto& point : result.iterations.back().points) {
    std::cout << "  " << point.workload << ": measured " << format_time(point.measured)
              << ", predicted " << format_time(point.predicted) << " (|error| "
              << format_percent(point.abs_pct_error()) << ")\n";
  }
  std::cout << "\ncharacterization of the final measurement pass:\n";
  const auto summary = result.profile.summarize();
  std::cout << "  files touched: " << summary.files << ", metadata share of ops: "
            << format_percent(summary.metadata_fraction_ops()) << ", bytes r/w: "
            << format_bytes(summary.bytes_read) << " / " << format_bytes(summary.bytes_written)
            << "\n";
  std::cout << "\nloop " << (result.converged() ? "converged" : "did NOT converge")
            << "; final calibration factor " << format_double(result.final_calibration, 3)
            << "\n";
  return result.converged() ? 0 : 1;
}
