#include "analysis/job_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/format.hpp"
#include "stats/descriptive.hpp"

namespace pio::analysis {

namespace {

/// Normalized autocorrelation of a mean-centered series at a given lag.
double autocorrelation(const std::vector<double>& series, std::size_t lag) {
  if (lag >= series.size()) return 0.0;
  const double m = stats::mean(series);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double d = series[i] - m;
    den += d * d;
    if (i + lag < series.size()) num += d * (series[i + lag] - m);
  }
  return den == 0.0 ? 0.0 : num / den;
}

}  // namespace

JobIoReport analyze_job(const trace::Trace& trace, const JobAnalysisConfig& config) {
  JobIoReport report;
  report.window = config.window;
  if (trace.empty()) return report;

  SimTime first = SimTime::max();
  SimTime last = SimTime::zero();
  std::map<std::int32_t, SimTime> rank_io_time;
  for (const auto& e : trace.events()) {
    first = std::min(first, e.start);
    last = std::max(last, e.end);
    switch (e.op) {
      case trace::OpKind::kRead:
        ++report.reads;
        report.bytes_read += Bytes{e.size};
        rank_io_time[e.rank] += e.duration();
        break;
      case trace::OpKind::kWrite:
        ++report.writes;
        report.bytes_written += Bytes{e.size};
        rank_io_time[e.rank] += e.duration();
        break;
      default:
        if (trace::is_metadata_op(e.op)) ++report.metadata_ops;
        break;
    }
  }
  report.span = last - first;
  report.mean_bandwidth = observed_bandwidth(report.bytes_read + report.bytes_written,
                                             report.span);

  // Binned byte series (data ops attributed to their completion window).
  const auto windows = static_cast<std::size_t>(report.span / config.window) + 1;
  report.bytes_per_window.assign(windows, 0.0);
  for (const auto& e : trace.events()) {
    if (!trace::is_data_op(e.op)) continue;
    const auto w = static_cast<std::size_t>((e.end - first) / config.window);
    report.bytes_per_window[std::min(w, windows - 1)] += static_cast<double>(e.size);
  }

  // Periodicity: strongest autocorrelation peak over lags >= 2 that is a
  // local maximum.
  const std::size_t max_lag = std::min(config.max_lag, windows / 2);
  double best_strength = 0.0;
  std::size_t best_lag = 0;
  for (std::size_t lag = 2; lag + 1 < max_lag; ++lag) {
    const double here = autocorrelation(report.bytes_per_window, lag);
    const double prev = autocorrelation(report.bytes_per_window, lag - 1);
    const double next = autocorrelation(report.bytes_per_window, lag + 1);
    if (here > best_strength && here >= prev && here >= next) {
      best_strength = here;
      best_lag = lag;
    }
  }
  if (best_strength >= config.min_period_strength) {
    report.period = config.window * static_cast<std::int64_t>(best_lag);
    report.period_strength = best_strength;
  }

  // Burstiness.
  std::vector<double> busy;
  double total_bytes = 0.0;
  for (const double b : report.bytes_per_window) {
    total_bytes += b;
    if (b > 0.0) busy.push_back(b);
  }
  if (!busy.empty()) {
    report.peak_to_mean = stats::max(busy) / stats::mean(busy);
    std::vector<double> sorted = report.bytes_per_window;
    std::sort(sorted.rbegin(), sorted.rend());
    const std::size_t top = std::max<std::size_t>(1, sorted.size() / 10);
    double top_bytes = 0.0;
    for (std::size_t i = 0; i < top; ++i) top_bytes += sorted[i];
    report.burst_concentration = total_bytes == 0.0 ? 0.0 : top_bytes / total_bytes;
  }

  // Rank variability.
  std::vector<double> io_times;
  io_times.reserve(rank_io_time.size());
  for (const auto& [rank, t] : rank_io_time) io_times.push_back(t.sec());
  report.rank_io_time_cov = stats::coefficient_of_variation(io_times);

  // Phases: maximal runs of busy windows.
  std::size_t w = 0;
  while (w < windows) {
    if (report.bytes_per_window[w] <= 0.0) {
      ++w;
      continue;
    }
    IoPhase phase;
    phase.start = first + config.window * static_cast<std::int64_t>(w);
    double phase_bytes = 0.0;
    while (w < windows && report.bytes_per_window[w] > 0.0) {
      phase_bytes += report.bytes_per_window[w];
      ++w;
    }
    phase.end = first + config.window * static_cast<std::int64_t>(w);
    phase.bytes = Bytes{static_cast<std::uint64_t>(phase_bytes)};
    report.phases.push_back(phase);
  }
  return report;
}

std::string JobIoReport::to_string() const {
  std::ostringstream out;
  out << "# job-level I/O analysis\n";
  out << "span " << format_time(span) << ", read " << format_bytes(bytes_read) << ", written "
      << format_bytes(bytes_written) << ", mean bw " << format_bandwidth(mean_bandwidth)
      << "\n";
  out << "ops: " << reads << " reads, " << writes << " writes, " << metadata_ops
      << " metadata (" << format_percent(metadata_fraction()) << " metadata)\n";
  if (period > SimTime::zero()) {
    out << "periodic I/O every " << format_time(period) << " (strength "
        << format_double(period_strength) << ")\n";
  } else {
    out << "no dominant I/O period detected\n";
  }
  out << "burstiness: peak/mean " << format_double(peak_to_mean) << ", top-10% windows carry "
      << format_percent(burst_concentration) << " of bytes\n";
  out << "rank I/O-time CoV " << format_double(rank_io_time_cov) << ", " << phases.size()
      << " I/O phases\n";
  return out.str();
}

}  // namespace pio::analysis
