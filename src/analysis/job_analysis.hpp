// PIOEval analysis: job-level I/O behavior analysis (§IV.B.1, category 1).
//
// "Analysis work of type (1) describes the I/O behavior of specific
// applications, such as data transfer rates, I/O periodicity and
// repetition, and I/O variability of individual jobs." This analyzer
// consumes a trace and produces exactly those: a binned I/O time series,
// an autocorrelation-based periodicity estimate, burstiness measures,
// cross-rank variability, and detected I/O phases.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/tracer.hpp"

namespace pio::analysis {

/// One detected I/O phase: a maximal run of busy windows.
struct IoPhase {
  SimTime start = SimTime::zero();
  SimTime end = SimTime::zero();
  Bytes bytes = Bytes::zero();
};

struct JobIoReport {
  // -- volume and rates ------------------------------------------------
  Bytes bytes_read = Bytes::zero();
  Bytes bytes_written = Bytes::zero();
  SimTime span = SimTime::zero();
  Bandwidth mean_bandwidth{};

  // -- time series -----------------------------------------------------
  SimTime window = SimTime::zero();
  std::vector<double> bytes_per_window;

  // -- periodicity -----------------------------------------------------
  /// Dominant I/O period (autocorrelation peak), zero when aperiodic.
  SimTime period = SimTime::zero();
  /// Autocorrelation value at the detected period (0..1-ish confidence).
  double period_strength = 0.0;

  // -- burstiness ------------------------------------------------------
  /// Peak-window bytes / mean-window bytes (over busy windows).
  double peak_to_mean = 0.0;
  /// Fraction of all bytes moved inside the busiest 10% of windows.
  double burst_concentration = 0.0;

  // -- variability -----------------------------------------------------
  /// Coefficient of variation of per-rank total I/O time (stragglers).
  double rank_io_time_cov = 0.0;

  // -- phases ----------------------------------------------------------
  std::vector<IoPhase> phases;

  // -- op mix ----------------------------------------------------------
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t metadata_ops = 0;
  [[nodiscard]] double metadata_fraction() const {
    const auto total = reads + writes + metadata_ops;
    return total == 0 ? 0.0 : static_cast<double>(metadata_ops) / static_cast<double>(total);
  }

  [[nodiscard]] std::string to_string() const;
};

struct JobAnalysisConfig {
  SimTime window = SimTime::from_ms(100.0);
  /// Autocorrelation lags to scan (in windows).
  std::size_t max_lag = 256;
  /// Minimum autocorrelation to accept a periodicity hypothesis.
  double min_period_strength = 0.3;
};

[[nodiscard]] JobIoReport analyze_job(const trace::Trace& trace,
                                      const JobAnalysisConfig& config = {});

}  // namespace pio::analysis
