#include "analysis/system_analysis.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/format.hpp"
#include "stats/descriptive.hpp"
#include "stats/regression.hpp"

namespace pio::analysis {

SystemReport analyze_system(const trace::ServerStatsCollector& stats) {
  SystemReport report;
  const auto aggregate = stats.aggregate_osts();

  // ---- temporal ----------------------------------------------------------
  report.temporal.windows = aggregate.size();
  std::vector<double> xs;
  for (const auto& [window, sample] : aggregate) {
    report.temporal.total_read += sample.bytes_read;
    report.temporal.total_written += sample.bytes_written;
    const double total = sample.bytes_read.as_double() + sample.bytes_written.as_double();
    const double fraction = total == 0.0 ? 0.0 : sample.bytes_read.as_double() / total;
    report.temporal.read_fraction_series.push_back(fraction);
    xs.push_back(static_cast<double>(window));
    if (report.temporal.read_dominance_onset < 0 && fraction >= 0.5 && total > 0.0) {
      report.temporal.read_dominance_onset = static_cast<std::int64_t>(window);
    }
  }
  if (xs.size() >= 2) {
    report.temporal.read_fraction_trend =
        stats::fit_simple(xs, report.temporal.read_fraction_series).slope;
  }

  // ---- spatial ------------------------------------------------------------
  report.spatial.servers = stats.ost_series().size();
  for (const auto& [window, factor] : stats.ost_imbalance()) {
    report.spatial.imbalance_series.push_back(factor);
  }
  if (!report.spatial.imbalance_series.empty()) {
    report.spatial.mean_imbalance = stats::mean(report.spatial.imbalance_series);
    report.spatial.worst_imbalance = stats::max(report.spatial.imbalance_series);
  }
  double total_bytes = 0.0;
  double hottest_bytes = 0.0;
  for (const auto& [ost, series] : stats.ost_series()) {
    double bytes = 0.0;
    for (const auto& [window, sample] : series) {
      bytes += sample.bytes_read.as_double() + sample.bytes_written.as_double();
    }
    total_bytes += bytes;
    if (bytes > hottest_bytes) {
      hottest_bytes = bytes;
      report.spatial.hottest_server = ost;
    }
  }
  report.spatial.hottest_share = total_bytes == 0.0 ? 0.0 : hottest_bytes / total_bytes;

  // ---- correlative ---------------------------------------------------------
  // Align MDS and OST series on the union of windows.
  std::map<std::uint64_t, std::pair<double, double>> joined;  // window -> (mds ops, ost bytes)
  for (const auto& [window, sample] : stats.mds_series()) {
    joined[window].first = static_cast<double>(sample.meta_ops);
  }
  for (const auto& [window, sample] : aggregate) {
    joined[window].second = sample.bytes_read.as_double() + sample.bytes_written.as_double();
  }
  std::vector<double> mds_series;
  std::vector<double> ost_series;
  for (const auto& [window, pair] : joined) {
    mds_series.push_back(pair.first);
    ost_series.push_back(pair.second);
  }
  if (mds_series.size() >= 2) {
    report.correlative.mds_vs_ost_activity = stats::pearson(mds_series, ost_series);
  }
  std::vector<double> depth_series;
  std::vector<double> latency_series;
  for (const auto& [window, sample] : aggregate) {
    const auto data_ops = sample.read_ops + sample.write_ops;
    if (data_ops == 0) continue;
    depth_series.push_back(static_cast<double>(sample.max_queue_depth));
    latency_series.push_back(sample.total_latency.sec() / static_cast<double>(data_ops));
  }
  if (depth_series.size() >= 2) {
    report.correlative.queue_depth_vs_latency = stats::pearson(depth_series, latency_series);
  }
  return report;
}

TemporalReport analyze_facility_trend(const std::vector<workload::MonthlyIoSummary>& monthly) {
  TemporalReport report;
  report.windows = monthly.size();
  std::vector<double> xs;
  for (const auto& m : monthly) {
    report.total_read += m.bytes_read;
    report.total_written += m.bytes_written;
    report.read_fraction_series.push_back(m.read_fraction());
    xs.push_back(static_cast<double>(m.month));
    if (report.read_dominance_onset < 0 && m.read_fraction() >= 0.5) {
      report.read_dominance_onset = m.month;
    }
  }
  if (xs.size() >= 2) {
    report.read_fraction_trend = stats::fit_simple(xs, report.read_fraction_series).slope;
  }
  return report;
}

std::string SystemReport::to_string() const {
  std::ostringstream out;
  out << "# system-level analysis (temporal / spatial / correlative)\n";
  out << "temporal: " << temporal.windows << " windows, read "
      << format_bytes(temporal.total_read) << " vs written "
      << format_bytes(temporal.total_written) << ", read-fraction trend "
      << format_double(temporal.read_fraction_trend, 5) << "/window, read dominance from window "
      << temporal.read_dominance_onset << "\n";
  out << "spatial: " << spatial.servers << " OSTs, mean imbalance "
      << format_double(spatial.mean_imbalance) << "x, worst " << format_double(spatial.worst_imbalance)
      << "x, hottest OST " << spatial.hottest_server << " carries "
      << format_percent(spatial.hottest_share) << "\n";
  out << "correlative: corr(MDS ops, OST bytes) = "
      << format_double(correlative.mds_vs_ost_activity) << ", corr(queue depth, latency) = "
      << format_double(correlative.queue_depth_vs_latency) << "\n";
  return out.str();
}

}  // namespace pio::analysis
