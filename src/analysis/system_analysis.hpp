// PIOEval analysis: storage-system-level analysis (§IV.B.1, category 2).
//
// Patel et al. [53] "introduce[d] the possibility to gain insights about
// the storage systems through temporal, spatial, and correlative analysis."
// This module applies those three lenses to (a) server-side monitoring
// series from the PFS model and (b) facility-scale job logs — including the
// read/write-balance trend analysis behind the paper's headline claim that
// HPC storage "may no longer be dominated by write I/O" (experiment C1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/server_stats.hpp"
#include "workload/facility_mix.hpp"

namespace pio::analysis {

/// Temporal lens: trends of cluster-wide traffic over time.
struct TemporalReport {
  std::size_t windows = 0;
  Bytes total_read = Bytes::zero();
  Bytes total_written = Bytes::zero();
  /// Read fraction per window (bytes_read / bytes_total).
  std::vector<double> read_fraction_series;
  /// Linear-regression slope of the read fraction per window (positive =
  /// the system is trending toward read dominance).
  double read_fraction_trend = 0.0;
  /// First window with read fraction >= 0.5; -1 when never.
  std::int64_t read_dominance_onset = -1;
};

/// Spatial lens: load placement across servers.
struct SpatialReport {
  std::size_t servers = 0;
  /// Per-window max/mean imbalance factors (1.0 = perfectly balanced).
  std::vector<double> imbalance_series;
  double mean_imbalance = 0.0;
  double worst_imbalance = 0.0;
  /// Index of the busiest server by total bytes.
  std::uint32_t hottest_server = 0;
  /// Its share of all bytes moved.
  double hottest_share = 0.0;
};

/// Correlative lens: relationships between metrics.
struct CorrelativeReport {
  /// Correlation of per-window MDS op count vs OST data volume: high values
  /// mean metadata load tracks data load; low/negative values expose
  /// metadata-heavy phases that data-centric monitoring would miss.
  double mds_vs_ost_activity = 0.0;
  /// Correlation of per-window OST queue depth vs mean op latency —
  /// queueing is the latency driver when this is high.
  double queue_depth_vs_latency = 0.0;
};

struct SystemReport {
  TemporalReport temporal;
  SpatialReport spatial;
  CorrelativeReport correlative;
  [[nodiscard]] std::string to_string() const;
};

/// Analyze server-side monitoring output.
[[nodiscard]] SystemReport analyze_system(const trace::ServerStatsCollector& stats);

/// Facility-log variant of the temporal lens (per-month granularity).
[[nodiscard]] TemporalReport analyze_facility_trend(
    const std::vector<workload::MonthlyIoSummary>& monthly);

}  // namespace pio::analysis
