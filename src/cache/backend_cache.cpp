#include "cache/backend_cache.hpp"

#include <algorithm>
#include <cstring>

namespace pio::cache {

namespace {

Error cache_full_error() {
  return Error{-7,
               "cache: write-back failed and the cache is full of dirty pages; "
               "refusing to acknowledge a write that could be dropped (C1)"};
}

}  // namespace

CacheBackend::CacheBackend(vfs::Backend& inner, const CacheConfig& config)
    : inner_(inner), config_(config), cache_(config) {
  config_.validate();
}

CacheBackend::FileState* CacheBackend::state_of(vfs::Fd fd) {
  const auto it = fd_paths_.find(fd);
  if (it == fd_paths_.end()) return nullptr;
  const auto fs = files_.find(it->second);
  return fs == files_.end() ? nullptr : &fs->second;
}

vfs::Fd CacheBackend::any_fd_of(std::uint64_t file_id) const {
  const auto path = paths_by_id_.find(file_id);
  if (path == paths_by_id_.end()) return -1;
  const auto fs = files_.find(path->second);
  if (fs == files_.end() || fs->second.open_fds.empty()) return -1;
  return *fs->second.open_fds.begin();
}

Result<vfs::Fd> CacheBackend::open(const std::string& path, const vfs::OpenOptions& options) {
  const std::scoped_lock lock(mutex_);
  auto fd = inner_.open(path, options);
  if (!fd.ok()) return fd;
  auto [it, inserted] = files_.try_emplace(path);
  FileState& fs = it->second;
  if (inserted) {
    fs.id = next_file_id_++;
    paths_by_id_.emplace(fs.id, path);
  }
  if (options.truncate && options.mode != vfs::OpenMode::kRead) {
    // Inner truncated the file: cached pages (dirty included — truncation
    // discards them like unlink does) and the size view are stale.
    cache_.erase_file(fs.id);
    fs.size = Bytes::zero();
  } else if (inserted) {
    if (const auto info = inner_.stat(path); info.ok()) fs.size = info.value().size;
  }
  fs.open_fds.insert(fd.value());
  fd_paths_.emplace(fd.value(), path);
  return fd;
}

Page* CacheBackend::fill_page(vfs::Fd fd, FileState& fs, std::uint64_t page_index,
                              bool prefetched, Error* error) {
  const std::uint64_t psz = config_.page_size.count();
  std::vector<std::byte> buffer(static_cast<std::size_t>(psz));
  const auto got = inner_.pread(fd, buffer, page_index * psz);
  if (!got.ok()) {
    if (error != nullptr) *error = got.error();
    return nullptr;
  }
  Page& page = cache_.insert(PageKey{fs.id, page_index}, SimTime::zero());
  page.data = std::move(buffer);
  page.valid_bytes = got.value();
  page.prefetched = prefetched;
  if (prefetched) ++cache_.stats_mut().prefetch_issued;
  return &page;
}

Result<std::size_t> CacheBackend::pread(vfs::Fd fd, std::span<std::byte> out,
                                        std::uint64_t offset) {
  const std::scoped_lock lock(mutex_);
  FileState* fs = state_of(fd);
  if (fs == nullptr) return inner_.pread(fd, out, offset);  // unknown fd: let inner diagnose
  if (out.empty()) return std::size_t{0};
  const std::uint64_t size = fs->size.count();
  if (offset >= size) return std::size_t{0};  // read at/past EOF
  const std::uint64_t readable = std::min<std::uint64_t>(out.size(), size - offset);
  const std::uint64_t psz = config_.page_size.count();
  const std::uint64_t first = offset / psz;
  const std::uint64_t last = (offset + readable - 1) / psz;
  for (std::uint64_t p = first; p <= last; ++p) {
    const std::uint64_t page_start = p * psz;
    const std::uint64_t lo = std::max(offset, page_start);
    const std::uint64_t hi = std::min(offset + readable, page_start + psz);
    Page* page = cache_.lookup(PageKey{fs->id, p}, SimTime::zero());
    if (page == nullptr) {
      Error error{};
      page = fill_page(fd, *fs, p, /*prefetched=*/false, &error);
      if (page == nullptr) return error;
      cache_.stats_mut().miss_bytes += Bytes{hi - lo};
    } else {
      cache_.stats_mut().hit_bytes += Bytes{hi - lo};
    }
    // Within-file bytes past the page's valid extent are holes: zeros.
    const std::uint64_t valid_end = page_start + page->valid_bytes;
    const std::uint64_t copy_hi = std::min(hi, std::max(lo, valid_end));
    if (copy_hi > lo) {
      std::memcpy(out.data() + (lo - offset), page->data.data() + (lo - page_start),
                  static_cast<std::size_t>(copy_hi - lo));
    }
    if (hi > copy_hi) {
      std::memset(out.data() + (copy_hi - offset), 0, static_cast<std::size_t>(hi - copy_hi));
    }
  }
  if (config_.prefetch == PrefetchMode::kSequential) {
    if (offset == fs->next_offset) {
      const std::uint64_t end_page = last;
      for (std::uint32_t ahead = 1; ahead <= config_.readahead_pages; ++ahead) {
        const std::uint64_t p = end_page + ahead;
        if (p * psz >= size) break;  // nothing beyond EOF to prefetch
        if (cache_.contains(PageKey{fs->id, p})) continue;
        Error error{};
        if (fill_page(fd, *fs, p, /*prefetched=*/true, &error) == nullptr) break;
      }
    }
    fs->next_offset = offset + readable;
  }
  return static_cast<std::size_t>(readable);
}

bool CacheBackend::write_back_page(const PageKey& key) {
  Page* page = cache_.peek(key);
  if (page == nullptr || !page->dirty) return true;
  const vfs::Fd fd = any_fd_of(key.file);
  if (fd < 0) {
    ++cache_.stats_mut().writeback_failures;
    return false;  // no open descriptor; stays dirty until the next flush
  }
  const std::uint64_t psz = config_.page_size.count();
  const auto wrote = inner_.pwrite(
      fd, std::span<const std::byte>(page->data.data(), page->valid_bytes), key.page * psz);
  if (!wrote.ok() || wrote.value() != page->valid_bytes) {
    ++cache_.stats_mut().writeback_failures;
    return false;  // stays dirty: C1 — acknowledged bytes are never dropped
  }
  cache_.mark_clean(key);
  ++cache_.stats_mut().writebacks;
  cache_.stats_mut().writeback_bytes += Bytes{page->valid_bytes};
  return true;
}

bool CacheBackend::flush_oldest(std::size_t max) {
  for (const PageKey& key : cache_.oldest_dirty(max)) {
    if (!write_back_page(key)) return false;
  }
  return true;
}

bool CacheBackend::flush_file(FileState& fs) {
  ++cache_.stats_mut().flushes;
  for (const PageKey& key : cache_.oldest_dirty(cache_.dirty_count())) {
    if (key.file != fs.id) continue;
    if (!write_back_page(key)) return false;
  }
  return true;
}

Result<std::size_t> CacheBackend::pwrite(vfs::Fd fd, std::span<const std::byte> data,
                                         std::uint64_t offset) {
  const std::scoped_lock lock(mutex_);
  FileState* fs = state_of(fd);
  if (fs == nullptr) return inner_.pwrite(fd, data, offset);
  if (data.empty()) return std::size_t{0};
  if (!config_.write_back) {
    // Write-through: durable first, then cache the pages clean so re-reads
    // hit (write-allocate).
    const auto wrote = inner_.pwrite(fd, data, offset);
    if (!wrote.ok()) return wrote;
    fs->size = std::max(fs->size, Bytes{offset + wrote.value()});
  }
  const std::uint64_t psz = config_.page_size.count();
  const std::uint64_t first = offset / psz;
  const std::uint64_t last = (offset + data.size() - 1) / psz;
  for (std::uint64_t p = first; p <= last; ++p) {
    const std::uint64_t page_start = p * psz;
    const std::uint64_t lo = std::max(offset, page_start);
    const std::uint64_t hi = std::min(offset + data.size(), page_start + psz);
    Page* page = cache_.peek(PageKey{fs->id, p});
    if (page != nullptr) {
      // resident: overwrite in place (no hit/miss accounting on writes)
    } else if ((lo != page_start || hi != page_start + psz) &&
               page_start < fs->size.count()) {
      // Partial write over existing content: read-modify-write.
      Error error{};
      page = fill_page(fd, *fs, p, /*prefetched=*/false, &error);
      if (page == nullptr) return error;
    } else {
      if (config_.write_back && cache_.dirty_count() >= config_.capacity_pages - 1 &&
          !flush_oldest(config_.max_dirty_pages)) {
        return cache_full_error();  // cannot make a clean victim: refuse, not drop
      }
      page = &cache_.insert(PageKey{fs->id, p}, SimTime::zero());
      page->data.assign(static_cast<std::size_t>(psz), std::byte{0});
      page->valid_bytes = 0;
    }
    if (page->data.size() < psz) page->data.resize(static_cast<std::size_t>(psz), std::byte{0});
    std::memcpy(page->data.data() + (lo - page_start), data.data() + (lo - offset),
                static_cast<std::size_t>(hi - lo));
    page->valid_bytes = std::max(page->valid_bytes, hi - page_start);
    ++page->version;
    if (config_.write_back) cache_.mark_dirty(PageKey{fs->id, p});
  }
  if (config_.write_back) {
    fs->size = std::max(fs->size, Bytes{offset + data.size()});
    ++cache_.stats_mut().absorbed_writes;
    cache_.stats_mut().absorbed_bytes += Bytes{data.size()};
    if (cache_.dirty_count() > config_.max_dirty_pages) {
      // Best-effort pressure relief; failures leave pages dirty for the
      // fsync/close barrier to surface.
      (void)flush_oldest(cache_.dirty_count() - config_.max_dirty_pages);
    }
  }
  return data.size();
}

vfs::FsStatus CacheBackend::close(vfs::Fd fd) {
  const std::scoped_lock lock(mutex_);
  FileState* fs = state_of(fd);
  if (fs == nullptr) return inner_.close(fd);
  if (!flush_file(*fs)) return vfs::FsStatus::kInvalid;  // stays open; caller retries
  const vfs::FsStatus status = inner_.close(fd);
  fs->open_fds.erase(fd);
  fd_paths_.erase(fd);
  return status;
}

vfs::FsStatus CacheBackend::fsync(vfs::Fd fd) {
  const std::scoped_lock lock(mutex_);
  FileState* fs = state_of(fd);
  if (fs == nullptr) return inner_.fsync(fd);
  if (!flush_file(*fs)) return vfs::FsStatus::kInvalid;
  return inner_.fsync(fd);
}

vfs::FsStatus CacheBackend::mkdir(const std::string& path) {
  const std::scoped_lock lock(mutex_);
  return inner_.mkdir(path);
}

vfs::FsStatus CacheBackend::remove(const std::string& path) {
  const std::scoped_lock lock(mutex_);
  const vfs::FsStatus status = inner_.remove(path);
  if (status == vfs::FsStatus::kOk) {
    if (const auto it = files_.find(path); it != files_.end()) {
      cache_.erase_file(it->second.id);
      paths_by_id_.erase(it->second.id);
      files_.erase(it);
    }
  }
  return status;
}

Result<vfs::FileInfo> CacheBackend::stat(const std::string& path) {
  const std::scoped_lock lock(mutex_);
  auto info = inner_.stat(path);
  if (!info.ok()) return info;
  // Dirty extensions live only in the cache until write-back; surface the
  // caller-visible size, not the backend's stale one.
  if (const auto it = files_.find(path); it != files_.end() && !info.value().is_dir) {
    info.value().size = std::max(info.value().size, it->second.size);
  }
  return info;
}

Result<std::vector<std::string>> CacheBackend::readdir(const std::string& path) {
  const std::scoped_lock lock(mutex_);
  return inner_.readdir(path);
}

CacheStats CacheBackend::stats() const {
  const std::scoped_lock lock(mutex_);
  return cache_.stats();
}

std::uint64_t CacheBackend::dirty_pages() const {
  const std::scoped_lock lock(mutex_);
  return cache_.dirty_count();
}

std::uint64_t CacheBackend::cached_pages() const {
  const std::scoped_lock lock(mutex_);
  return cache_.size();
}

}  // namespace pio::cache
