// PIOEval cache: the POSIX-path integration — a vfs::Backend decorator.
//
// CacheBackend interposes a write-back page cache between any Backend
// consumer and its inner backend, exactly where a client-side cache sits in
// the real stack. It composes freely with the other decorators:
//
//   TracingBackend(CacheBackend(LocalBackend))   — traces application ops,
//       hits and misses alike (what the app experienced);
//   CacheBackend(TracingBackend(LocalBackend))   — traces only the misses
//       and write-backs that reached the backend (what the storage saw).
//
// Ordering rules and the C1 invariant are documented in DESIGN.md §10. In
// short: a dirty page holds bytes already acknowledged to the caller, so it
// is never dropped — eviction takes clean pages only, failed write-backs
// (e.g. under FaultInjectionBackend) re-mark pages dirty and surface the
// error on fsync/close, and a full-of-dirty cache fails the incoming write
// instead of silently shedding an acknowledged one.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "cache/cache.hpp"
#include "cache/page_cache.hpp"
#include "vfs/backend.hpp"

namespace pio::cache {

class CacheBackend final : public vfs::Backend {
 public:
  CacheBackend(vfs::Backend& inner, const CacheConfig& config);

  [[nodiscard]] Result<vfs::Fd> open(const std::string& path,
                                     const vfs::OpenOptions& options) override;
  [[nodiscard]] Result<std::size_t> pread(vfs::Fd fd, std::span<std::byte> out,
                                          std::uint64_t offset) override;
  [[nodiscard]] Result<std::size_t> pwrite(vfs::Fd fd, std::span<const std::byte> data,
                                           std::uint64_t offset) override;
  /// Flushes the file's dirty pages first; on write-back failure returns
  /// kInvalid and keeps the descriptor open so the caller can retry.
  vfs::FsStatus close(vfs::Fd fd) override;
  /// Write-back barrier: flushes the file's dirty pages, then fsyncs inner.
  vfs::FsStatus fsync(vfs::Fd fd) override;
  vfs::FsStatus mkdir(const std::string& path) override;
  /// Invalidates the file's cached pages (dirty included: unlink discards).
  vfs::FsStatus remove(const std::string& path) override;
  /// Reflects cached (not yet written back) size extensions.
  [[nodiscard]] Result<vfs::FileInfo> stat(const std::string& path) override;
  [[nodiscard]] Result<std::vector<std::string>> readdir(const std::string& path) override;
  [[nodiscard]] std::string path_of(vfs::Fd fd) const override { return inner_.path_of(fd); }

  /// Counter block (hits/misses/evictions/prefetch/write-back).
  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::uint64_t dirty_pages() const;
  [[nodiscard]] std::uint64_t cached_pages() const;

 private:
  struct FileState {
    std::uint64_t id = 0;
    Bytes size = Bytes::zero();
    std::uint64_t next_offset = 0;  ///< sequential-stream detector
    std::set<vfs::Fd> open_fds;
  };

  [[nodiscard]] FileState* state_of(vfs::Fd fd);
  /// Load one page from inner (read-through); returns nullptr on error.
  Page* fill_page(vfs::Fd fd, FileState& fs, std::uint64_t page_index, bool prefetched,
                  Error* error);
  /// Write back up to `max` oldest dirty pages of any file. Returns false
  /// (and re-marks pages dirty) on the first failed inner write.
  bool flush_oldest(std::size_t max);
  /// Write back every dirty page of one file.
  bool flush_file(FileState& fs);
  bool write_back_page(const PageKey& key);
  [[nodiscard]] vfs::Fd any_fd_of(std::uint64_t file_id) const;

  mutable std::mutex mutex_;
  vfs::Backend& inner_;
  CacheConfig config_;
  PageCache cache_;
  std::map<std::string, FileState> files_;  ///< persists across open/close
  std::map<std::uint64_t, std::string> paths_by_id_;
  std::map<vfs::Fd, std::string> fd_paths_;
  std::uint64_t next_file_id_ = 1;
};

}  // namespace pio::cache

namespace pio::vfs {
/// The decorator under its stack-position name (ISSUE/DESIGN spelling).
using CacheBackend = pio::cache::CacheBackend;
}  // namespace pio::vfs
