#include "cache/cache.hpp"

#include <stdexcept>

namespace pio::cache {

const char* to_string(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru: return "lru";
    case EvictionPolicy::kTwoQ: return "2q";
  }
  return "?";
}

const char* to_string(PrefetchMode mode) {
  switch (mode) {
    case PrefetchMode::kNone: return "none";
    case PrefetchMode::kSequential: return "sequential";
    case PrefetchMode::kEpoch: return "epoch";
  }
  return "?";
}

const char* to_string(CacheScope scope) {
  switch (scope) {
    case CacheScope::kPerRank: return "per-rank";
    case CacheScope::kShared: return "shared";
  }
  return "?";
}

const char* to_string(CacheEventKind kind) {
  switch (kind) {
    case CacheEventKind::kHit: return "hit";
    case CacheEventKind::kMiss: return "miss";
    case CacheEventKind::kEviction: return "eviction";
    case CacheEventKind::kPrefetchIssue: return "prefetch-issue";
    case CacheEventKind::kWriteback: return "writeback";
    case CacheEventKind::kAbsorbedWrite: return "absorbed-write";
  }
  return "?";
}

void CacheConfig::validate() const {
  if (page_size <= Bytes::zero()) {
    throw std::invalid_argument("CacheConfig: page_size must be positive");
  }
  if (capacity_pages == 0) {
    throw std::invalid_argument("CacheConfig: capacity_pages must be positive");
  }
  if (write_back && max_dirty_pages >= capacity_pages) {
    throw std::invalid_argument(
        "CacheConfig: max_dirty_pages must be below capacity_pages so eviction "
        "always has a clean victim (invariant C1)");
  }
  if (prefetch == PrefetchMode::kSequential && readahead_pages == 0) {
    throw std::invalid_argument("CacheConfig: sequential prefetch needs readahead_pages > 0");
  }
  if (hit_latency < SimTime::zero()) {
    throw std::invalid_argument("CacheConfig: hit_latency must be non-negative");
  }
  if (local_bandwidth.bytes_per_sec() <= 0.0) {
    throw std::invalid_argument("CacheConfig: local_bandwidth must be positive");
  }
}

CacheStats& CacheStats::operator+=(const CacheStats& other) {
  hits += other.hits;
  misses += other.misses;
  evictions += other.evictions;
  prefetch_issued += other.prefetch_issued;
  prefetch_used += other.prefetch_used;
  prefetch_wasted += other.prefetch_wasted;
  writebacks += other.writebacks;
  writeback_failures += other.writeback_failures;
  absorbed_writes += other.absorbed_writes;
  flushes += other.flushes;
  hit_bytes += other.hit_bytes;
  miss_bytes += other.miss_bytes;
  writeback_bytes += other.writeback_bytes;
  absorbed_bytes += other.absorbed_bytes;
  return *this;
}

}  // namespace pio::cache
