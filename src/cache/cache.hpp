// PIOEval cache: the client-side caching & prefetching tier (DESIGN.md §10).
//
// The paper's emerging-workload findings (§V.B) center on AI/DL training
// I/O: many small, random, re-read-heavy accesses that a stripe-and-seek
// storage stack serves poorly. Node-local caching and prefetching is the
// mitigation the surveyed systems reach for — and, in the FBench spirit,
// cache policy must be a sweepable campaign axis, not a hardcoded constant.
// This header defines the shared vocabulary: configuration knobs, the
// counter block every integration exports, and the observer record that
// feeds hit-rate time series into the monitoring layer.
#pragma once

#include <cstdint>

#include "common/seed_streams.hpp"
#include "common/types.hpp"

namespace pio::cache {

/// Engine Rng stream id reserved for epoch-warming order/pacing. Warm
/// schedules must replay byte-identically for equal campaign seeds; claimed
/// in the seed-stream registry (common/seed_streams.hpp, rule S1).
inline constexpr std::uint64_t kWarmRngStream = seeds::kCacheWarmStream;

/// Page replacement policy.
enum class EvictionPolicy : std::uint8_t {
  kLru,   ///< classic least-recently-used
  kTwoQ,  ///< 2Q/ARC-lite: FIFO admission queue + LRU main + ghost list
};

[[nodiscard]] const char* to_string(EvictionPolicy policy);

/// Prefetching strategy layered on the page cache.
enum class PrefetchMode : std::uint8_t {
  kNone,
  kSequential,  ///< readahead: N pages beyond a detected sequential stream
  kEpoch,       ///< DL-epoch-aware: warm the previous epoch's access set
};

[[nodiscard]] const char* to_string(PrefetchMode mode);

/// Who shares one cache instance on the simulated path. Per-rank models a
/// private process cache; shared models a node-local tier every rank can
/// hit (the distinction matters under DL reshuffling, where each epoch
/// re-partitions samples across ranks).
enum class CacheScope : std::uint8_t { kPerRank, kShared };

[[nodiscard]] const char* to_string(CacheScope scope);

/// Cache configuration — a first-class campaign sweep axis.
struct CacheConfig {
  /// Master switch for the simulated client tier (the vfs decorator is
  /// enabled by constructing it, so it ignores this flag).
  bool enabled = false;
  Bytes page_size = Bytes::from_kib(64);
  std::uint64_t capacity_pages = 1024;
  EvictionPolicy policy = EvictionPolicy::kLru;
  PrefetchMode prefetch = PrefetchMode::kNone;
  /// Pages of readahead per detected sequential stream.
  std::uint32_t readahead_pages = 4;
  /// Write-back: absorb writes into dirty pages, flush on pressure, fsync,
  /// close, and quiescence. False = write-through (pages cached clean).
  bool write_back = true;
  /// Dirty-page bound; exceeding it triggers write-back of the oldest dirty
  /// pages. Must stay below capacity_pages so eviction always has a clean
  /// victim (invariant C1: dirty pages are never silently dropped).
  std::uint64_t max_dirty_pages = 256;
  /// Simulated-tier only: cache sharing scope.
  CacheScope scope = CacheScope::kPerRank;
  /// Simulated-tier cost model: a hit costs node-local latency + transfer
  /// instead of a fabric + OST round trip.
  SimTime hit_latency = SimTime::from_us(2.0);
  Bandwidth local_bandwidth = Bandwidth::from_gib_per_sec(2.0);
  /// Delay before a failed write-back is retried (keeps C1 under faults).
  SimTime writeback_retry = SimTime::from_ms(5.0);
  /// In-flight cap for epoch-warming prefetch reads.
  std::uint32_t warm_concurrency = 4;

  /// Throws std::invalid_argument on nonsensical combinations (zero page
  /// size, dirty bound >= capacity, ...).
  void validate() const;
};

/// The counter block every cache integration exports. Flows through
/// ServerStats -> SimRunResult -> CampaignPoint like the fault/durability
/// counters.
struct CacheStats {
  std::uint64_t hits = 0;             ///< page lookups served from cache
  std::uint64_t misses = 0;           ///< page lookups that went to the backend
  std::uint64_t evictions = 0;        ///< pages dropped to make room
  std::uint64_t prefetch_issued = 0;  ///< pages fetched speculatively
  std::uint64_t prefetch_used = 0;    ///< prefetched pages later hit
  std::uint64_t prefetch_wasted = 0;  ///< prefetched pages evicted/expired unused
  std::uint64_t writebacks = 0;       ///< dirty pages written through
  std::uint64_t writeback_failures = 0;  ///< write-back attempts that failed (retried)
  std::uint64_t absorbed_writes = 0;  ///< write ops acknowledged from the cache
  std::uint64_t flushes = 0;          ///< explicit flush passes (fsync/close/quiesce)
  Bytes hit_bytes = Bytes::zero();    ///< request bytes served from cached pages
  Bytes miss_bytes = Bytes::zero();   ///< request bytes fetched from the backend
  Bytes writeback_bytes = Bytes::zero();  ///< dirty bytes written through
  Bytes absorbed_bytes = Bytes::zero();   ///< write bytes acknowledged from cache

  /// Page-granular hit rate in [0, 1]; 0 when the cache saw no lookups.
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }

  CacheStats& operator+=(const CacheStats& other);
};

/// Cache activity event (observer unit, like OstOpRecord/ResilienceRecord):
/// feeds hit-rate time series into ServerStatsCollector.
enum class CacheEventKind : std::uint8_t {
  kHit,            ///< an op served (partly) from cache; bytes = hit bytes
  kMiss,           ///< an op that fetched from the backend; bytes = miss bytes
  kEviction,       ///< a page dropped; bytes = page size
  kPrefetchIssue,  ///< speculative pages requested; bytes = prefetched bytes
  kWriteback,      ///< dirty bytes written through; bytes = flushed bytes
  kAbsorbedWrite,  ///< a write acknowledged from the cache; bytes = op bytes
};

[[nodiscard]] const char* to_string(CacheEventKind kind);

struct CacheRecord {
  CacheEventKind kind = CacheEventKind::kHit;
  SimTime at = SimTime::zero();
  std::int32_t rank = 0;  ///< rank (per-rank scope) or issuing rank (shared)
  Bytes bytes = Bytes::zero();
};

}  // namespace pio::cache
