#include "cache/client_tier.hpp"

#include <algorithm>
#include <utility>

#include "common/rng.hpp"

namespace pio::cache {

ClientCacheTier::ClientCacheTier(sim::Engine& engine, pfs::PfsModel& model,
                                 const CacheConfig& config, std::int32_t ranks)
    : engine_(engine), model_(model), config_(config) {
  config_.validate();
  const std::size_t slots =
      config_.scope == CacheScope::kShared ? 1 : static_cast<std::size_t>(std::max(ranks, 1));
  slots_.reserve(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    slots_.push_back(std::make_unique<Slot>(config_));
    slots_.back()->cache.set_eviction_observer([this](const Page& page) {
      record(CacheEventKind::kEviction, page.owner, config_.page_size);
    });
  }
}

std::size_t ClientCacheTier::slot_index(std::int32_t rank) const {
  if (config_.scope == CacheScope::kShared) return 0;
  return static_cast<std::size_t>(rank) % slots_.size();
}

pfs::ClientId ClientCacheTier::client_of(std::int32_t rank) const {
  return static_cast<pfs::ClientId>(rank) % model_.config().clients;
}

std::uint64_t ClientCacheTier::file_id(const std::string& path,
                                       const pfs::StripeLayout& layout) {
  const auto [it, inserted] = ids_.try_emplace(path, next_file_id_);
  if (inserted) {
    metas_.emplace(next_file_id_, FileMeta{path, layout});
    ++next_file_id_;
  }
  return it->second;
}

bool ClientCacheTier::can_insert(const PageCache& cache, std::uint64_t capacity) {
  // Free slot, or at least one clean resident page to evict (C1: a cache
  // full of dirty pages must not accept an insert).
  return cache.size() < capacity || cache.dirty_count() < cache.size();
}

void ClientCacheTier::record(CacheEventKind kind, std::int32_t rank, Bytes bytes) {
  if (!observer_) return;
  observer_(CacheRecord{kind, engine_.now(), rank, bytes});
}

void ClientCacheTier::note_access(Slot& slot, PageKey key) {
  if (config_.prefetch != PrefetchMode::kEpoch) return;
  if (slot.epoch_seen.insert(key).second) slot.epoch_order.push_back(key);
}

SimTime ClientCacheTier::local_cost(Bytes bytes) const {
  return config_.hit_latency + config_.local_bandwidth.transfer_time(bytes);
}

namespace {

/// Completion latch shared by the local-service leg and each miss-run fetch.
struct IoLatch {
  std::size_t pending = 0;
  bool ok = true;
  Bytes hit = Bytes::zero();
  ClientCacheTier::IoDone done;

  void arm(bool leg_ok) {
    if (!leg_ok) ok = false;
    if (--pending == 0) done(ok, hit);
  }
};

}  // namespace

void ClientCacheTier::read(std::int32_t rank, const std::string& path,
                           const pfs::StripeLayout& layout, std::uint64_t offset, Bytes size,
                           IoDone on_done) {
  if (size == Bytes::zero()) {
    engine_.schedule_after(SimTime::zero(),
                           [on_done] { on_done(true, Bytes::zero()); });
    return;
  }
  const std::uint64_t fid = file_id(path, layout);
  const std::size_t sidx = slot_index(rank);
  Slot& slot = *slots_[sidx];
  const std::uint64_t psz = config_.page_size.count();
  const std::uint64_t first = offset / psz;
  const std::uint64_t last = (offset + size.count() - 1) / psz;

  struct Run {
    std::uint64_t first_page = 0;
    std::uint64_t pages = 0;
  };
  Bytes hit = Bytes::zero();
  Bytes missed = Bytes::zero();
  std::vector<Run> runs;
  for (std::uint64_t p = first; p <= last; ++p) {
    const std::uint64_t lo = std::max(offset, p * psz);
    const std::uint64_t hi = std::min(offset + size.count(), (p + 1) * psz);
    const PageKey key{fid, p};
    note_access(slot, key);
    if (slot.cache.lookup(key, engine_.now()) != nullptr) {
      hit += Bytes{hi - lo};
    } else {
      missed += Bytes{hi - lo};
      if (!runs.empty() && runs.back().first_page + runs.back().pages == p) {
        ++runs.back().pages;
      } else {
        runs.push_back(Run{p, 1});
      }
    }
  }
  slot.cache.stats_mut().hit_bytes += hit;
  slot.cache.stats_mut().miss_bytes += missed;
  if (hit > Bytes::zero()) record(CacheEventKind::kHit, rank, hit);
  if (missed > Bytes::zero()) record(CacheEventKind::kMiss, rank, missed);

  auto latch = std::make_shared<IoLatch>();
  latch->pending = runs.size() + 1;
  latch->hit = hit;
  latch->done = std::move(on_done);
  // The cached portion (and the fixed lookup hop) is served at node-local
  // speed; pure misses still pay the lookup latency before going remote.
  engine_.schedule_after(hit > Bytes::zero() ? local_cost(hit) : config_.hit_latency,
                         [latch] { latch->arm(true); });
  const pfs::ClientId client = client_of(rank);
  for (const Run& run : runs) {
    // Misses fetch whole pages: page-aligned, page-granular (may over-fetch
    // relative to the request — that cost is the point of measuring it).
    model_.io(client, path, layout, run.first_page * psz, Bytes{run.pages * psz},
              /*is_write=*/false,
              [this, sidx, fid, run, rank, latch](pfs::IoResult result) {
                if (result.ok) {
                  Slot& s = *slots_[sidx];
                  for (std::uint64_t i = 0; i < run.pages; ++i) {
                    const PageKey key{fid, run.first_page + i};
                    if (s.cache.contains(key)) continue;
                    if (!can_insert(s.cache, config_.capacity_pages)) break;
                    Page& page = s.cache.insert(key, engine_.now());
                    page.owner = rank;
                    page.valid_bytes = config_.page_size.count();
                  }
                }
                latch->arm(result.ok);
              });
  }

  if (config_.prefetch == PrefetchMode::kSequential) {
    auto& next = slot.next_offset[fid];
    const bool sequential = offset == next;
    next = offset + size.count();
    if (sequential) {
      std::uint64_t pf_first = 0;
      std::uint64_t pf_count = 0;
      for (std::uint32_t ahead = 1; ahead <= config_.readahead_pages; ++ahead) {
        const PageKey key{fid, last + ahead};
        if (slot.cache.contains(key)) continue;
        if (!can_insert(slot.cache, config_.capacity_pages)) break;
        if (pf_count == 0) pf_first = key.page;
        if (pf_count > 0 && pf_first + pf_count != key.page) break;  // keep one run
        ++pf_count;
      }
      if (pf_count > 0) {
        slot.cache.stats_mut().prefetch_issued += pf_count;
        record(CacheEventKind::kPrefetchIssue, rank, Bytes{pf_count * psz});
        model_.io(client, path, layout, pf_first * psz, Bytes{pf_count * psz},
                  /*is_write=*/false,
                  [this, sidx, fid, pf_first, pf_count, rank](pfs::IoResult result) {
                    if (!result.ok) {
                      slots_[sidx]->cache.stats_mut().prefetch_wasted += pf_count;
                      return;  // speculation: failures are not retried
                    }
                    Slot& s = *slots_[sidx];
                    for (std::uint64_t i = 0; i < pf_count; ++i) {
                      const PageKey key{fid, pf_first + i};
                      if (s.cache.contains(key) ||
                          !can_insert(s.cache, config_.capacity_pages)) {
                        ++s.cache.stats_mut().prefetch_wasted;
                        continue;
                      }
                      Page& page = s.cache.insert(key, engine_.now());
                      page.owner = rank;
                      page.prefetched = true;
                      page.valid_bytes = config_.page_size.count();
                    }
                  });
      }
    }
  }
}

void ClientCacheTier::write(std::int32_t rank, const std::string& path,
                            const pfs::StripeLayout& layout, std::uint64_t offset, Bytes size,
                            IoDone on_done) {
  if (size == Bytes::zero()) {
    engine_.schedule_after(SimTime::zero(),
                           [on_done] { on_done(true, Bytes::zero()); });
    return;
  }
  const std::uint64_t fid = file_id(path, layout);
  const std::size_t sidx = slot_index(rank);
  Slot& slot = *slots_[sidx];
  const std::uint64_t psz = config_.page_size.count();
  const std::uint64_t first = offset / psz;
  const std::uint64_t last = (offset + size.count() - 1) / psz;
  const std::uint64_t pages = last - first + 1;

  bool absorb = config_.write_back;
  if (absorb) {
    // Conservative headroom check: the op dirties up to `pages` pages and
    // may insert that many new ones; if clean victims could run out midway,
    // degrade to write-through rather than risk an unevictable cache (C1).
    const std::uint64_t free_slots = config_.capacity_pages - slot.cache.size();
    const std::uint64_t clean = slot.cache.size() - slot.cache.dirty_count();
    if (pages * 2 > free_slots + clean) absorb = false;
  }

  if (!absorb) {
    // Write-through: the op costs the full simulated path; pages the cache
    // already holds are refreshed in place so later reads stay coherent.
    model_.io(client_of(rank), path, layout, offset, size, /*is_write=*/true,
              [this, sidx, fid, first, last, offset, size, rank, psz,
               on_done](pfs::IoResult result) {
                if (result.ok) {
                  Slot& s = *slots_[sidx];
                  for (std::uint64_t p = first; p <= last; ++p) {
                    Page* page = s.cache.peek(PageKey{fid, p});
                    if (page == nullptr) continue;
                    const std::uint64_t hi = std::min(offset + size.count(), (p + 1) * psz);
                    page->valid_bytes = std::max(page->valid_bytes, hi - p * psz);
                    page->owner = rank;
                    ++page->version;
                  }
                }
                on_done(result.ok, Bytes::zero());
              });
    return;
  }

  for (std::uint64_t p = first; p <= last; ++p) {
    const PageKey key{fid, p};
    note_access(slot, key);
    const std::uint64_t hi = std::min(offset + size.count(), (p + 1) * psz);
    Page& page = slot.cache.insert(key, engine_.now());  // resident or fresh
    page.owner = rank;
    page.valid_bytes = std::max(page.valid_bytes, hi - p * psz);
    ++page.version;
    slot.cache.mark_dirty(key);
  }
  ++slot.cache.stats_mut().absorbed_writes;
  slot.cache.stats_mut().absorbed_bytes += size;
  record(CacheEventKind::kAbsorbedWrite, rank, size);
  engine_.schedule_after(local_cost(size),
                         [on_done, size] { on_done(true, size); });
  pump_writebacks(sidx);
}

void ClientCacheTier::settle_page(std::size_t slot_idx, PageKey key,
                                  std::function<void()> on_clean) {
  Slot& slot = *slots_[slot_idx];
  Page* page = slot.cache.peek(key);
  if (page == nullptr || !page->dirty) {
    on_clean();
    return;
  }
  if (slot.inflight.contains(key)) {
    // Another flush owns this page's write-back; check again after it.
    engine_.schedule_after(config_.writeback_retry,
                           [this, slot_idx, key, on_clean = std::move(on_clean)] {
                             settle_page(slot_idx, key, on_clean);
                           });
    return;
  }
  const auto meta = metas_.find(key.file);
  if (meta == metas_.end()) {  // cannot happen: dirty pages come from write()
    slot.cache.mark_clean(key);
    on_clean();
    return;
  }
  slot.inflight.insert(key);
  const Bytes bytes{page->valid_bytes};
  const std::uint64_t version = page->version;
  const std::int32_t owner = page->owner;
  model_.io(client_of(owner), meta->second.path, meta->second.layout,
            key.page * config_.page_size.count(), bytes, /*is_write=*/true,
            [this, slot_idx, key, bytes, version, owner,
             on_clean = std::move(on_clean)](pfs::IoResult result) {
              Slot& s = *slots_[slot_idx];
              s.inflight.erase(key);
              Page* now_page = s.cache.peek(key);
              if (now_page == nullptr) {  // invalidated mid-flight (unlink)
                on_clean();
                return;
              }
              // A rewrite during the flight means the landed bytes are stale:
              // the page stays dirty and goes around again (C1).
              if (result.ok && now_page->version == version) {
                s.cache.mark_clean(key);
                ++s.cache.stats_mut().writebacks;
                s.cache.stats_mut().writeback_bytes += bytes;
                record(CacheEventKind::kWriteback, owner, bytes);
                on_clean();
                return;
              }
              if (!result.ok) ++s.cache.stats_mut().writeback_failures;
              engine_.schedule_after(config_.writeback_retry,
                                     [this, slot_idx, key, on_clean] {
                                       settle_page(slot_idx, key, on_clean);
                                     });
            });
}

void ClientCacheTier::pump_writebacks(std::size_t slot_idx) {
  Slot& slot = *slots_[slot_idx];
  const std::uint64_t dirty = slot.cache.dirty_count();
  if (dirty <= config_.max_dirty_pages) return;
  for (const PageKey& key : slot.cache.oldest_dirty(dirty - config_.max_dirty_pages)) {
    settle_page(slot_idx, key, [] {});
  }
}

void ClientCacheTier::flush_path(std::int32_t rank, const std::string& path,
                                 std::function<void()> on_done) {
  const auto id_it = ids_.find(path);
  if (id_it == ids_.end()) {
    engine_.schedule_after(SimTime::zero(), std::move(on_done));
    return;
  }
  const std::uint64_t fid = id_it->second;
  ++slots_[slot_index(rank)]->cache.stats_mut().flushes;
  auto latch = std::make_shared<std::size_t>(1);
  auto arm = [latch, on_done = std::move(on_done)] {
    if (--*latch == 0) on_done();
  };
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    Slot& slot = *slots_[s];
    for (const PageKey& key : slot.cache.oldest_dirty(slot.cache.dirty_count())) {
      if (key.file != fid) continue;
      ++*latch;
      settle_page(s, key, arm);
    }
  }
  engine_.schedule_after(SimTime::zero(), arm);  // resolves the initial count
}

void ClientCacheTier::invalidate_path(const std::string& path) {
  const auto id_it = ids_.find(path);
  if (id_it == ids_.end()) return;
  for (auto& slot : slots_) {
    slot->cache.erase_file(id_it->second);
    slot->next_offset.erase(id_it->second);
  }
}

void ClientCacheTier::flush_all() {
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    Slot& slot = *slots_[s];
    if (slot.cache.dirty_count() == 0) continue;
    ++slot.cache.stats_mut().flushes;
    for (const PageKey& key : slot.cache.oldest_dirty(slot.cache.dirty_count())) {
      settle_page(s, key, [] {});
    }
  }
}

void ClientCacheTier::epoch_mark() {
  ++epochs_;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    Slot& slot = *slots_[s];
    std::vector<PageKey> learned = std::move(slot.epoch_order);
    slot.epoch_order.clear();
    slot.epoch_seen.clear();
    if (config_.prefetch != PrefetchMode::kEpoch) continue;
    // Deterministic warm order: one substream per (epoch, slot) of the
    // reserved engine stream, so cache warming never perturbs other draws.
    Rng rng = engine_.rng_stream(kWarmRngStream).substream(epochs_ * 4096 + s);
    rng.shuffle(learned);
    slot.warm_queue.assign(learned.begin(), learned.end());
    while (slot.warm_inflight < config_.warm_concurrency && !slot.warm_queue.empty()) {
      warm_next(s);
    }
  }
}

void ClientCacheTier::warm_next(std::size_t slot_idx) {
  Slot& slot = *slots_[slot_idx];
  while (!slot.warm_queue.empty()) {
    const PageKey key = slot.warm_queue.front();
    slot.warm_queue.pop_front();
    if (slot.cache.contains(key)) continue;
    if (!can_insert(slot.cache, config_.capacity_pages)) {
      slot.warm_queue.clear();  // no room: stop warming, don't thrash
      return;
    }
    const auto meta = metas_.find(key.file);
    if (meta == metas_.end()) continue;
    const std::int32_t rank = static_cast<std::int32_t>(slot_idx);
    ++slot.warm_inflight;
    ++slot.cache.stats_mut().prefetch_issued;
    record(CacheEventKind::kPrefetchIssue, rank, config_.page_size);
    model_.io(client_of(rank), meta->second.path, meta->second.layout,
              key.page * config_.page_size.count(), config_.page_size,
              /*is_write=*/false, [this, slot_idx, key, rank](pfs::IoResult result) {
                Slot& s = *slots_[slot_idx];
                --s.warm_inflight;
                if (!result.ok || s.cache.contains(key) ||
                    !can_insert(s.cache, config_.capacity_pages)) {
                  ++s.cache.stats_mut().prefetch_wasted;
                } else {
                  Page& page = s.cache.insert(key, engine_.now());
                  page.owner = rank;
                  page.prefetched = true;
                  page.valid_bytes = config_.page_size.count();
                }
                warm_next(slot_idx);
              });
    return;
  }
}

void ClientCacheTier::finalize() {
  for (auto& slot : slots_) {
    slot->warm_queue.clear();
    slot->cache.finalize_prefetch_waste();
  }
}

CacheStats ClientCacheTier::stats() const {
  CacheStats total;
  for (const auto& slot : slots_) total += slot->cache.stats();
  return total;
}

std::uint64_t ClientCacheTier::dirty_pages() const {
  std::uint64_t total = 0;
  for (const auto& slot : slots_) total += slot->cache.dirty_count();
  return total;
}

}  // namespace pio::cache
