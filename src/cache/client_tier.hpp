// PIOEval cache: the simulated-path integration — a DES-timed client cache.
//
// ClientCacheTier sits between the execution-driven simulator and the
// PfsModel data path, exactly where a node-local cache sits between an
// application and its parallel file system client. A page hit costs
// node-local latency plus a local-bandwidth transfer; a miss fetches whole
// pages through the full simulated stack (fabric, I/O node, OST) and
// populates the cache. Writes are absorbed into dirty pages (write-back) or
// passed through (write-through); dirty pages drain in the background under
// the max_dirty_pages bound and synchronously on fsync/close.
//
// Invariant C1: an absorbed write is an acknowledgement, so its dirty page
// is never dropped. Eviction takes clean pages only (PageCache enforces
// this structurally); a failed write-back — an OST down under pio::fault —
// leaves the page dirty and retries after writeback_retry until the bytes
// land. At quiescence the driver asserts dirty_pages() == 0
// (sim::check::cache_writeback_drained) and PfsModel::assert_quiescent
// audits the durability ledger (F3), closing the loop from cache
// acknowledgement to replica-held bytes.
//
// The epoch prefetcher (PrefetchMode::kEpoch) learns each epoch's page
// access set per cache instance and, at the epoch barrier, warms the pages
// that are no longer resident in a deterministic shuffled order drawn from
// engine Rng stream kWarmRngStream, with at most warm_concurrency fetches
// in flight. Under DL reshuffling a *shared* (node-local) cache re-hits the
// warmed set in full; per-rank caches only re-hit their ~1/N share — the
// scope axis exists to expose exactly that effect.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "cache/page_cache.hpp"
#include "common/types.hpp"
#include "pfs/pfs.hpp"
#include "pfs/stripe.hpp"
#include "sim/engine.hpp"

namespace pio::cache {

class ClientCacheTier {
 public:
  /// `ranks` sizes the per-rank cache array (ignored for kShared scope).
  ClientCacheTier(sim::Engine& engine, pfs::PfsModel& model, const CacheConfig& config,
                  std::int32_t ranks);

  ClientCacheTier(const ClientCacheTier&) = delete;
  ClientCacheTier& operator=(const ClientCacheTier&) = delete;

  /// Completion of one cached data op: `ok` is the op outcome, `hit_bytes`
  /// how much of it was served from resident pages (for trace/observability).
  using IoDone = std::function<void(bool ok, Bytes hit_bytes)>;

  /// Read through the cache: resident pages cost node-local time, missing
  /// page runs fetch through the PFS model and populate the cache.
  void read(std::int32_t rank, const std::string& path, const pfs::StripeLayout& layout,
            std::uint64_t offset, Bytes size, IoDone on_done);

  /// Write through the cache: absorbed into dirty pages under write-back
  /// (hit_bytes = absorbed bytes), else written through (hit_bytes = 0).
  void write(std::int32_t rank, const std::string& path, const pfs::StripeLayout& layout,
             std::uint64_t offset, Bytes size, IoDone on_done);

  /// Write-back barrier for one path (fsync/close semantics): completes only
  /// after every dirty page of the path has landed, retrying failed
  /// write-backs after writeback_retry (C1: never drop, always retry).
  void flush_path(std::int32_t rank, const std::string& path, std::function<void()> on_done);

  /// Drop every cached page of a path, dirty included (unlink discards).
  void invalidate_path(const std::string& path);

  /// Start draining every remaining dirty page (end-of-run quiescence; the
  /// engine run that follows completes the write-backs, retries included).
  void flush_all();

  /// Epoch boundary (the driver calls this at each global barrier release):
  /// rotates the learned access set and, for PrefetchMode::kEpoch, starts
  /// warming the previous epoch's pages on Rng stream kWarmRngStream.
  void epoch_mark();

  /// End-of-run bookkeeping: folds never-hit prefetched pages into
  /// prefetch_wasted. Call after the engine drained.
  void finalize();

  /// Aggregated counter block across all cache instances.
  [[nodiscard]] CacheStats stats() const;
  /// Total dirty pages across all cache instances (C1: must be zero at
  /// quiescence).
  [[nodiscard]] std::uint64_t dirty_pages() const;
  [[nodiscard]] std::uint64_t epochs_marked() const { return epochs_; }

  /// Subscribe to cache activity (hit/miss/eviction/write-back records).
  void set_observer(std::function<void(const CacheRecord&)> observer) {
    observer_ = std::move(observer);
  }

 private:
  /// One cache instance plus its prefetch/write-back state. kShared scope
  /// has exactly one slot; kPerRank has one per rank.
  struct Slot {
    explicit Slot(const CacheConfig& config) : cache(config) {}
    PageCache cache;
    std::vector<PageKey> epoch_order;  ///< this epoch's first-touches, in order
    std::set<PageKey> epoch_seen;
    std::set<PageKey> inflight;        ///< write-backs currently in the model
    std::list<PageKey> warm_queue;
    std::uint32_t warm_inflight = 0;
    std::map<std::uint64_t, std::uint64_t> next_offset;  ///< sequential detector
  };

  struct FileMeta {
    std::string path;
    pfs::StripeLayout layout;
  };

  [[nodiscard]] std::size_t slot_index(std::int32_t rank) const;
  [[nodiscard]] std::uint64_t file_id(const std::string& path, const pfs::StripeLayout& layout);
  [[nodiscard]] pfs::ClientId client_of(std::int32_t rank) const;
  /// True when an insert can find a free slot or a clean victim.
  [[nodiscard]] static bool can_insert(const PageCache& cache, std::uint64_t capacity);
  void record(CacheEventKind kind, std::int32_t rank, Bytes bytes);
  void note_access(Slot& slot, PageKey key);
  /// Simulated node-local service time for `bytes` served from cache.
  [[nodiscard]] SimTime local_cost(Bytes bytes) const;
  /// Drive one dirty page to clean: issues the write-back unless one is
  /// already in flight, retries failures after writeback_retry, and calls
  /// `on_clean` once the page is clean (or gone).
  void settle_page(std::size_t slot_idx, PageKey key, std::function<void()> on_clean);
  /// Background pressure relief: settle oldest dirty pages above the bound.
  void pump_writebacks(std::size_t slot_idx);
  void warm_next(std::size_t slot_idx);

  sim::Engine& engine_;
  pfs::PfsModel& model_;
  CacheConfig config_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::map<std::string, std::uint64_t> ids_;
  std::map<std::uint64_t, FileMeta> metas_;
  std::function<void(const CacheRecord&)> observer_;
  std::uint64_t next_file_id_ = 1;
  std::uint64_t epochs_ = 0;
};

}  // namespace pio::cache
