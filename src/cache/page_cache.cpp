#include "cache/page_cache.hpp"

#include <algorithm>
#include <stdexcept>

namespace pio::cache {

PageCache::PageCache(const CacheConfig& config) : config_(config) {
  config_.validate();
}

std::uint64_t PageCache::a1in_target() const {
  // Classic 2Q sizing: the admission FIFO holds ~25% of capacity, the main
  // LRU the rest. At tiny capacities keep at least one admission slot.
  return std::max<std::uint64_t>(1, config_.capacity_pages / 4);
}

Page* PageCache::lookup(PageKey key, SimTime now) {
  const auto it = pages_.find(key);
  if (it == pages_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  Entry& entry = it->second;
  entry.page.last_access = now;
  if (entry.page.prefetched) {
    entry.page.prefetched = false;
    ++stats_.prefetch_used;
  }
  if (config_.policy == EvictionPolicy::kLru) {
    main_.splice(main_.begin(), main_, entry.recency);
  } else if (entry.queue == Queue::kMain) {
    // 2Q: hits in Am promote; hits in A1in deliberately do not — a page must
    // prove reuse *after* leaving the admission window to earn Am residency.
    main_.splice(main_.begin(), main_, entry.recency);
  }
  return &entry.page;
}

bool PageCache::contains(PageKey key) const { return pages_.contains(key); }

Page* PageCache::peek(PageKey key) {
  const auto it = pages_.find(key);
  return it == pages_.end() ? nullptr : &it->second.page;
}

const Page* PageCache::peek(PageKey key) const {
  const auto it = pages_.find(key);
  return it == pages_.end() ? nullptr : &it->second.page;
}

Page& PageCache::insert(PageKey key, SimTime now) {
  if (auto it = pages_.find(key); it != pages_.end()) {
    it->second.page.last_access = now;
    return it->second.page;
  }
  while (pages_.size() >= config_.capacity_pages) evict_one();

  Entry entry;
  entry.page.key = key;
  entry.page.last_access = now;
  const bool ghost_hit = ghost_index_.contains(key);
  if (config_.policy == EvictionPolicy::kTwoQ && !ghost_hit) {
    a1in_.push_front(key);
    entry.queue = Queue::kA1In;
    entry.recency = a1in_.begin();
  } else {
    // LRU always; 2Q when the ghost list remembers the key (proven reuse).
    main_.push_front(key);
    entry.queue = Queue::kMain;
    entry.recency = main_.begin();
  }
  if (ghost_hit) {
    ghost_.erase(ghost_index_.at(key));
    ghost_index_.erase(key);
  }
  auto [it, inserted] = pages_.emplace(key, std::move(entry));
  (void)inserted;
  return it->second.page;
}

bool PageCache::evict_clean_from(std::list<PageKey>& queue) {
  for (auto it = queue.rbegin(); it != queue.rend(); ++it) {
    const auto found = pages_.find(*it);
    if (found == pages_.end()) continue;  // cannot happen; defensive
    if (found->second.page.dirty) continue;  // C1: never evict dirty pages
    if (found->second.page.prefetched) ++stats_.prefetch_wasted;
    ++stats_.evictions;
    if (eviction_observer_) eviction_observer_(found->second.page);
    if (config_.policy == EvictionPolicy::kTwoQ && found->second.queue == Queue::kA1In) {
      // Remember evicted admission-queue keys: a re-miss within the ghost
      // window is the 2Q signal of real reuse.
      ghost_.push_front(found->first);
      ghost_index_.emplace(found->first, ghost_.begin());
      while (ghost_.size() > config_.capacity_pages / 2 + 1) {
        ghost_index_.erase(ghost_.back());
        ghost_.pop_back();
      }
    }
    remove_entry(found);
    return true;
  }
  return false;
}

void PageCache::evict_one() {
  if (config_.policy == EvictionPolicy::kLru) {
    if (evict_clean_from(main_)) return;
  } else {
    // 2Q: shrink the admission FIFO when over target, else the main LRU;
    // fall back to whichever holds a clean page.
    if (a1in_.size() > a1in_target()) {
      if (evict_clean_from(a1in_)) return;
      if (evict_clean_from(main_)) return;
    } else {
      if (evict_clean_from(main_)) return;
      if (evict_clean_from(a1in_)) return;
    }
  }
  throw std::logic_error(
      "PageCache: every resident page is dirty — write-back pressure bound "
      "violated (invariant C1 forbids dropping dirty pages)");
}

void PageCache::remove_entry(std::map<PageKey, Entry>::iterator it) {
  Entry& entry = it->second;
  if (entry.page.dirty) {
    dirty_order_.erase(entry.dirty_pos);
    --dirty_count_;
  }
  if (entry.queue == Queue::kA1In) {
    a1in_.erase(entry.recency);
  } else {
    main_.erase(entry.recency);
  }
  pages_.erase(it);
}

void PageCache::mark_dirty(PageKey key) {
  const auto it = pages_.find(key);
  if (it == pages_.end()) throw std::logic_error("PageCache::mark_dirty: page not resident");
  Entry& entry = it->second;
  if (entry.page.dirty) return;
  entry.page.dirty = true;
  dirty_order_.push_back(key);
  entry.dirty_pos = std::prev(dirty_order_.end());
  ++dirty_count_;
}

void PageCache::mark_clean(PageKey key) {
  const auto it = pages_.find(key);
  if (it == pages_.end()) return;
  Entry& entry = it->second;
  if (!entry.page.dirty) return;
  entry.page.dirty = false;
  dirty_order_.erase(entry.dirty_pos);
  --dirty_count_;
}

std::vector<PageKey> PageCache::oldest_dirty(std::size_t max) const {
  std::vector<PageKey> out;
  out.reserve(std::min<std::size_t>(max, dirty_order_.size()));
  for (const PageKey& key : dirty_order_) {
    if (out.size() >= max) break;
    out.push_back(key);
  }
  return out;
}

void PageCache::erase(PageKey key) {
  const auto it = pages_.find(key);
  if (it != pages_.end()) remove_entry(it);
  if (const auto ghost = ghost_index_.find(key); ghost != ghost_index_.end()) {
    ghost_.erase(ghost->second);
    ghost_index_.erase(ghost);
  }
}

void PageCache::erase_file(std::uint64_t file) {
  // Keys are ordered (file, page): the file's pages form one contiguous map
  // range, so this walk is deterministic and touches nothing else.
  auto it = pages_.lower_bound(PageKey{file, 0});
  while (it != pages_.end() && it->first.file == file) {
    const auto next = std::next(it);
    remove_entry(it);
    it = next;
  }
  auto ghost = ghost_index_.lower_bound(PageKey{file, 0});
  while (ghost != ghost_index_.end() && ghost->first.file == file) {
    ghost_.erase(ghost->second);
    ghost = ghost_index_.erase(ghost);
  }
}

void PageCache::finalize_prefetch_waste() {
  for (auto& [key, entry] : pages_) {
    (void)key;
    if (entry.page.prefetched) {
      entry.page.prefetched = false;
      ++stats_.prefetch_wasted;
    }
  }
}

}  // namespace pio::cache
