// PIOEval cache: the deterministic page-cache core.
//
// Both integrations — the functional vfs::Backend decorator and the
// DES-timed client tier — share this structure: a bounded set of fixed-size
// pages keyed by (file, page index), with pluggable replacement (LRU and a
// 2Q/ARC-lite policy that resists scan pollution), dirty tracking for
// write-back, and prefetch bookkeeping (issued/used/wasted).
//
// Determinism rules (piolint D1/D2): recency is logical — list order updated
// on access — never wall-clock; `last_access` carries the *simulated* or
// caller-supplied time for observability only. All internal containers are
// ordered, so iteration (e.g. collecting dirty pages for write-back) is
// reproducible across runs.
//
// Invariant C1 (enforced here structurally): eviction only ever selects
// CLEAN pages. A dirty page — bytes acknowledged to the application but not
// yet written through — can leave the cache only via mark_clean (after a
// successful write-back) or erase by an owner that already flushed it.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <vector>

#include "cache/cache.hpp"
#include "common/types.hpp"

namespace pio::cache {

/// Identity of one cached page.
struct PageKey {
  std::uint64_t file = 0;  ///< interned file id (integration-specific)
  std::uint64_t page = 0;  ///< page index = offset / page_size

  friend auto operator<=>(const PageKey&, const PageKey&) = default;
};

/// One resident page. `data` holds real bytes on the functional path and
/// stays empty on the simulated (time-only) path; `valid_bytes` is how much
/// of the page is backed by file content (short at EOF).
struct Page {
  PageKey key;
  bool dirty = false;
  bool prefetched = false;  ///< speculatively fetched, not yet hit
  std::int32_t owner = 0;   ///< client/rank to charge write-back traffic to
  std::uint64_t valid_bytes = 0;
  /// Bumped by owners on every write into the page. An async write-back that
  /// started at version v may only mark the page clean if it is still at v —
  /// otherwise newer acknowledged bytes would be silently dropped (C1).
  std::uint64_t version = 0;
  SimTime last_access = SimTime::zero();
  std::vector<std::byte> data;
};

class PageCache {
 public:
  explicit PageCache(const CacheConfig& config);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Look up a page for an access: counts a hit (promoting per policy, and
  /// resolving prefetched -> used) or a miss. Returns nullptr when absent.
  [[nodiscard]] Page* lookup(PageKey key, SimTime now);

  /// Presence probe: no promotion, no counter movement.
  [[nodiscard]] bool contains(PageKey key) const;

  /// Internal access for write/write-back paths: returns the resident page
  /// without touching hit/miss counters or recency (those measure the read
  /// path only). nullptr when absent.
  [[nodiscard]] Page* peek(PageKey key);
  [[nodiscard]] const Page* peek(PageKey key) const;

  /// Insert (or reset) a page, evicting clean victims as needed. Throws
  /// std::logic_error if every resident page is dirty — callers must bound
  /// dirty pages below capacity (CacheConfig::validate enforces the config
  /// side). Returns the resident page for the caller to fill in.
  Page& insert(PageKey key, SimTime now);

  /// Mark an existing page dirty (appends to the dirty FIFO on transition).
  void mark_dirty(PageKey key);

  /// Mark a page clean after a successful write-back.
  void mark_clean(PageKey key);

  /// Up to `max` dirty pages, oldest-dirtied first (deterministic write-back
  /// order). Pages remain dirty until mark_clean.
  [[nodiscard]] std::vector<PageKey> oldest_dirty(std::size_t max) const;

  /// Drop one page (any state — the caller is responsible for having
  /// flushed it) or every page of one file (e.g. unlink/truncate).
  void erase(PageKey key);
  void erase_file(std::uint64_t file);

  /// Fold remaining never-hit prefetched pages into prefetch_wasted (end of
  /// run: speculation that never paid off must be reported, not forgotten).
  void finalize_prefetch_waste();

  [[nodiscard]] std::uint64_t size() const { return static_cast<std::uint64_t>(pages_.size()); }
  [[nodiscard]] std::uint64_t dirty_count() const { return dirty_count_; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  /// Counter block, writable so integrations can fold in byte-level and
  /// write-back accounting next to the page-level counters kept here.
  [[nodiscard]] CacheStats& stats_mut() { return stats_; }

  /// Observer called with each evicted page before removal (always clean).
  void set_eviction_observer(std::function<void(const Page&)> observer) {
    eviction_observer_ = std::move(observer);
  }

 private:
  /// Which recency list a resident page lives on.
  enum class Queue : std::uint8_t { kMain, kA1In };

  struct Entry {
    Page page;
    Queue queue = Queue::kMain;
    std::list<PageKey>::iterator recency;  ///< position in its queue
    std::list<PageKey>::iterator dirty_pos;  ///< position in dirty_order_ (if dirty)
  };

  void evict_one();
  /// Pop the oldest *clean* page off `queue` (back = coldest); false if the
  /// queue holds no clean page.
  bool evict_clean_from(std::list<PageKey>& queue);
  void remove_entry(std::map<PageKey, Entry>::iterator it);
  [[nodiscard]] std::uint64_t a1in_target() const;

  CacheConfig config_;
  CacheStats stats_;
  std::map<PageKey, Entry> pages_;
  std::list<PageKey> main_;   ///< LRU list (front = most recent); 2Q's Am
  std::list<PageKey> a1in_;   ///< 2Q admission FIFO (front = newest)
  std::list<PageKey> ghost_;  ///< 2Q ghost keys (front = newest)
  std::map<PageKey, std::list<PageKey>::iterator> ghost_index_;
  std::list<PageKey> dirty_order_;  ///< FIFO of dirty pages (front = oldest)
  std::uint64_t dirty_count_ = 0;
  std::function<void(const Page&)> eviction_observer_;
};

}  // namespace pio::cache
