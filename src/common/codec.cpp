#include "common/codec.hpp"

#include <array>

namespace pio::codec {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = kCrcTable[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace pio::codec
