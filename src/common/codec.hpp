// PIOEval common: bounds-checked binary encode/decode primitives.
//
// The service layer (DESIGN.md §15) speaks a length-prefixed, CRC-guarded
// frame protocol; these are the byte-level building blocks. Encoding is
// explicit little-endian regardless of host order, so encoded bytes are a
// stable wire/cache format. Decoding never throws and never reads out of
// bounds: a `Reader` goes *sticky-bad* on the first short or malformed
// read, every subsequent extraction returns a default value, and the
// caller checks `ok()` (and usually `done()`) once at the end — strict
// decoders reject both truncated and trailing bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace pio::codec {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `n` bytes.
/// The frame codec guards every payload with it; check value for the
/// ASCII bytes "123456789" is 0xCBF43926.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

/// Append-only little-endian encoder.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void i64(std::int64_t v) { le(static_cast<std::uint64_t>(v), 8); }
  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    le(bits, 8);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// u32 length prefix + raw bytes.
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }
  void bytes(const std::uint8_t* data, std::size_t n) { buf_.insert(buf_.end(), data, data + n); }

  [[nodiscard]] const std::vector<std::uint8_t>& view() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  void le(std::uint64_t v, int width) {
    for (int i = 0; i < width; ++i) buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
  std::vector<std::uint8_t> buf_;
};

/// Sticky-failure little-endian decoder over a borrowed byte span.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t n) : data_(data), size_(n) {}

  [[nodiscard]] std::uint8_t u8() { return static_cast<std::uint8_t>(le(1)); }
  [[nodiscard]] std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  [[nodiscard]] std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  [[nodiscard]] std::uint64_t u64() { return le(8); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(le(8)); }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = le(8);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return ok_ ? v : 0.0;
  }
  [[nodiscard]] bool boolean() { return u8() != 0; }
  /// Length-prefixed string; a prefix longer than the remaining bytes or
  /// than `max_len` marks the reader bad (defends against hostile lengths).
  [[nodiscard]] std::string str(std::size_t max_len = 1 << 16) {
    const std::uint32_t n = u32();
    if (!ok_ || n > max_len || n > size_ - pos_) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  /// True until the first out-of-bounds or malformed extraction.
  [[nodiscard]] bool ok() const { return ok_; }
  /// True when every byte has been consumed (and the reader is still ok).
  [[nodiscard]] bool done() const { return ok_ && pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  std::uint64_t le(int width) {
    if (!ok_ || static_cast<std::size_t>(width) > size_ - pos_) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < width; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    pos_ += static_cast<std::size_t>(width);
    return v;
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace pio::codec
