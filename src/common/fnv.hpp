// PIOEval common: the canonical FNV-1a 64-bit mixer.
//
// Every determinism digest in the repo — the same-seed campaign regression
// hashes, the thread-count-invariance oracle (C-12), and the service
// layer's per-point result digests — is an FNV-1a fold over a canonical
// field order. The mixer lives here so library code (eval::point_digest,
// svc result cache) and the test/bench hashers agree on one byte-for-byte
// definition; the historical copies in tests/benches predate this header
// and fold identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace pio {

inline constexpr std::uint64_t kFnv64Offset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnv64Prime = 1099511628211ULL;

/// FNV-1a 64 accumulator. `mix(std::uint64_t)` folds the value's eight
/// little-endian bytes; `mix(std::string)` folds the characters followed by
/// the length (so "ab","c" and "a","bc" digest differently).
class Fnv64 {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xffULL;
      hash_ *= kFnv64Prime;
    }
  }
  void mix(const std::string& s) {
    for (const char c : s) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= kFnv64Prime;
    }
    mix(s.size());
  }
  void mix_bytes(const std::uint8_t* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= data[i];
      hash_ *= kFnv64Prime;
    }
  }
  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = kFnv64Offset;
};

}  // namespace pio
