#include "common/format.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace pio {

namespace {

std::string with_unit(double v, const char* unit, int decimals) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(decimals);
  out << v << " " << unit;
  return out.str();
}

}  // namespace

std::string format_bytes(Bytes b) {
  const double v = b.as_double();
  if (v >= 1024.0 * 1024.0 * 1024.0) return with_unit(b.gib(), "GiB", 2);
  if (v >= 1024.0 * 1024.0) return with_unit(b.mib(), "MiB", 2);
  if (v >= 1024.0) return with_unit(b.kib(), "KiB", 2);
  return std::to_string(b.count()) + " B";
}

std::string format_time(SimTime t) {
  // Unit selection on exact integer nanoseconds; only the final display
  // value goes through the floating-point accessors.
  const std::int64_t mag = t.ns() < 0 ? -t.ns() : t.ns();
  if (mag >= 1'000'000'000) return with_unit(t.sec(), "s", 3);
  if (mag >= 1'000'000) return with_unit(t.ms(), "ms", 3);
  if (mag >= 1'000) return with_unit(t.us(), "us", 3);
  return std::to_string(t.ns()) + " ns";
}

std::string format_bandwidth(Bandwidth bw) {
  const double v = bw.bytes_per_sec();
  if (v >= 1024.0 * 1024.0 * 1024.0) return with_unit(bw.gib_per_sec(), "GiB/s", 2);
  if (v >= 1024.0 * 1024.0) return with_unit(bw.mib_per_sec(), "MiB/s", 2);
  if (v >= 1024.0) return with_unit(v / 1024.0, "KiB/s", 2);
  return with_unit(v, "B/s", 1);
}

Bytes parse_bytes(std::string_view text) {
  std::size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
  std::size_t start = i;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i])) != 0) ++i;
  if (i == start) throw std::invalid_argument("parse_bytes: no digits in '" + std::string{text} + "'");
  const std::uint64_t value = std::stoull(std::string{text.substr(start, i - start)});
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
  std::string suffix;
  for (; i < text.size(); ++i) {
    if (std::isspace(static_cast<unsigned char>(text[i])) != 0) break;
    suffix.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(text[i]))));
  }
  if (suffix.empty() || suffix == "b") return Bytes{value};
  if (suffix == "k" || suffix == "kb" || suffix == "kib") return Bytes::from_kib(value);
  if (suffix == "m" || suffix == "mb" || suffix == "mib") return Bytes::from_mib(value);
  if (suffix == "g" || suffix == "gb" || suffix == "gib") return Bytes::from_gib(value);
  throw std::invalid_argument("parse_bytes: unknown suffix '" + suffix + "'");
}

std::string format_double(double v, int decimals) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(decimals);
  out << v;
  return out.str();
}

std::string format_percent(double fraction, int decimals) {
  return format_double(fraction * 100.0, decimals) + "%";
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
      out << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c + 1 == widths.size() ? 0 : 2);
  out << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace pio
