// PIOEval common: human-readable formatting and parsing of sizes/times, plus
// a minimal fixed-width table printer used by the bench harnesses so every
// reproduced figure prints in a consistent, diffable layout.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace pio {

/// "4.00 KiB", "1.50 GiB", "17 B".
[[nodiscard]] std::string format_bytes(Bytes b);

/// "12.3 us", "4.56 ms", "1.23 s".
[[nodiscard]] std::string format_time(SimTime t);

/// "123.4 MiB/s", "2.30 GiB/s".
[[nodiscard]] std::string format_bandwidth(Bandwidth bw);

/// Parse "64KiB", "4 MiB", "1GiB", "512", "512B" (case-insensitive suffix).
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] Bytes parse_bytes(std::string_view text);

/// Fixed-point with `decimals` fractional digits.
[[nodiscard]] std::string format_double(double v, int decimals = 2);

/// Percentage "42.3%".
[[nodiscard]] std::string format_percent(double fraction, int decimals = 1);

/// Minimal aligned-column table for bench/report output.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with a header underline; columns padded to the widest cell.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pio
