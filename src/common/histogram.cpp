#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <stdexcept>

namespace pio {

void Log2Histogram::add(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  const std::size_t bucket =
      value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value) - 1);
  buckets_[bucket] += count;
  total_ += count;
  sum_ += value * count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

std::uint64_t Log2Histogram::bucket_count(std::size_t bucket) const {
  return buckets_.at(bucket);
}

double Log2Histogram::mean() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(total_);
}

std::uint64_t Log2Histogram::quantile_bucket_floor(double q) const {
  if (q < 0.0 || q > 1.0) throw std::domain_error("quantile_bucket_floor: q out of [0,1]");
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t running = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    running += buckets_[k];
    if (running > target || (running == total_ && running >= target)) {
      return k == 0 ? 0 : (1ULL << k);
    }
  }
  return 1ULL << (kBuckets - 1);
}

std::pair<std::size_t, std::size_t> Log2Histogram::nonempty_range() const {
  std::size_t first = kBuckets;
  std::size_t last = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    if (buckets_[k] != 0) {
      first = std::min(first, k);
      last = std::max(last, k);
    }
  }
  return {first, last};
}

Log2Histogram& Log2Histogram::merge(const Log2Histogram& other) {
  for (std::size_t k = 0; k < kBuckets; ++k) buckets_[k] += other.buckets_[k];
  total_ += other.total_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  return *this;
}

std::string Log2Histogram::to_string() const {
  std::ostringstream out;
  const auto [first, last] = nonempty_range();
  for (std::size_t k = first; k <= last && first < kBuckets; ++k) {
    const std::uint64_t lo = k == 0 ? 0 : (1ULL << k);
    out << "[" << lo << ", " << (1ULL << (k + 1)) << "): " << buckets_[k] << "\n";
  }
  return out.str();
}

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::domain_error("LinearHistogram: zero bins");
  if (!(lo < hi)) throw std::domain_error("LinearHistogram: lo must be < hi");
}

void LinearHistogram::add(double value, std::uint64_t count) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>((value - lo_) / width);
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += count;
  total_ += count;
}

double LinearHistogram::bin_lo(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double LinearHistogram::bin_hi(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin + 1);
}

}  // namespace pio
