// PIOEval common: fixed-bucket and log2-bucket histograms.
//
// Darshan-style I/O characterization is built on access-size histograms with
// power-of-two buckets; the profiler and the statistics layer both use these.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pio {

/// Histogram over power-of-two buckets: bucket k counts values v with
/// 2^k <= v < 2^(k+1); values of 0 land in bucket 0.
class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void add(std::uint64_t value, std::uint64_t count = 1);

  [[nodiscard]] std::uint64_t bucket_count(std::size_t bucket) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t min() const { return total_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const;

  /// Smallest bucket lower bound b such that at least `q` (0..1) of the mass
  /// lies in buckets <= b. Approximate quantile with bucket resolution.
  [[nodiscard]] std::uint64_t quantile_bucket_floor(double q) const;

  /// Index of the first and last non-empty bucket; (kBuckets, 0) when empty.
  [[nodiscard]] std::pair<std::size_t, std::size_t> nonempty_range() const;

  Log2Histogram& merge(const Log2Histogram& other);

  /// Human-readable rows "[lo, hi): count" for non-empty buckets.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::uint64_t> buckets_ = std::vector<std::uint64_t>(kBuckets, 0);
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

/// Equal-width histogram over [lo, hi) with out-of-range values clamped to
/// the edge buckets. Used by the analysis layer for time-series binning.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double value, std::uint64_t count = 1);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace pio
