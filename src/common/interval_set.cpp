#include "common/interval_set.hpp"

#include <algorithm>

namespace pio {

void IntervalSet::insert(std::uint64_t lo, std::uint64_t hi) {
  if (lo >= hi) return;
  // Find the first interval that could touch [lo, hi): the one before lo.
  auto it = map_.upper_bound(lo);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= lo) {  // touches or overlaps
      lo = prev->first;
      hi = std::max(hi, prev->second);
      total_ -= prev->second - prev->first;
      it = map_.erase(prev);
    }
  }
  // Absorb all intervals starting within [lo, hi].
  while (it != map_.end() && it->first <= hi) {
    hi = std::max(hi, it->second);
    total_ -= it->second - it->first;
    it = map_.erase(it);
  }
  map_.emplace(lo, hi);
  total_ += hi - lo;
}

void IntervalSet::erase(std::uint64_t lo, std::uint64_t hi) {
  if (lo >= hi) return;
  auto it = map_.upper_bound(lo);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > lo) it = prev;
  }
  while (it != map_.end() && it->first < hi) {
    const std::uint64_t cur_lo = it->first;
    const std::uint64_t cur_hi = it->second;
    total_ -= cur_hi - cur_lo;
    it = map_.erase(it);
    if (cur_lo < lo) {
      map_.emplace(cur_lo, lo);
      total_ += lo - cur_lo;
    }
    if (cur_hi > hi) {
      map_.emplace(hi, cur_hi);
      total_ += cur_hi - hi;
    }
  }
}

bool IntervalSet::contains(std::uint64_t lo, std::uint64_t hi) const {
  if (lo >= hi) return true;
  auto it = map_.upper_bound(lo);
  if (it == map_.begin()) return false;
  const auto prev = std::prev(it);
  return prev->first <= lo && prev->second >= hi;
}

std::uint64_t IntervalSet::covered_bytes(std::uint64_t lo, std::uint64_t hi) const {
  if (lo >= hi) return 0;
  std::uint64_t covered = 0;
  auto it = map_.upper_bound(lo);
  if (it != map_.begin()) {
    const auto prev = std::prev(it);
    if (prev->second > lo) {
      covered += std::min(prev->second, hi) - lo;
    }
  }
  for (; it != map_.end() && it->first < hi; ++it) {
    covered += std::min(it->second, hi) - it->first;
  }
  return covered;
}

std::vector<IntervalSet::Interval> IntervalSet::gaps(std::uint64_t lo, std::uint64_t hi) const {
  std::vector<Interval> result;
  if (lo >= hi) return result;
  std::uint64_t cursor = lo;
  auto it = map_.upper_bound(lo);
  if (it != map_.begin()) {
    const auto prev = std::prev(it);
    if (prev->second > lo) cursor = std::min(prev->second, hi);
  }
  for (; it != map_.end() && it->first < hi && cursor < hi; ++it) {
    if (it->first > cursor) result.push_back(Interval{cursor, std::min(it->first, hi)});
    cursor = std::max(cursor, std::min(it->second, hi));
  }
  if (cursor < hi) result.push_back(Interval{cursor, hi});
  return result;
}

std::vector<IntervalSet::Interval> IntervalSet::to_vector() const {
  std::vector<Interval> result;
  result.reserve(map_.size());
  for (const auto& [lo, hi] : map_) result.push_back(Interval{lo, hi});
  return result;
}

void IntervalSet::clear() {
  map_.clear();
  total_ = 0;
}

}  // namespace pio
