// PIOEval common: a set of disjoint half-open byte intervals [lo, hi).
//
// Used for burst-buffer residency tracking, data-sieving hole analysis, and
// VFS sparse-file accounting. Adjacent/overlapping inserts coalesce.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace pio {

class IntervalSet {
 public:
  struct Interval {
    std::uint64_t lo;
    std::uint64_t hi;  // exclusive
    friend bool operator==(const Interval&, const Interval&) = default;
  };

  /// Insert [lo, hi); merges with neighbours. No-op for empty ranges.
  void insert(std::uint64_t lo, std::uint64_t hi);

  /// Remove [lo, hi); may split an existing interval.
  void erase(std::uint64_t lo, std::uint64_t hi);

  /// True iff [lo, hi) is entirely covered.
  [[nodiscard]] bool contains(std::uint64_t lo, std::uint64_t hi) const;

  /// Number of bytes of [lo, hi) that are covered.
  [[nodiscard]] std::uint64_t covered_bytes(std::uint64_t lo, std::uint64_t hi) const;

  /// Total bytes across all intervals.
  [[nodiscard]] std::uint64_t total_bytes() const { return total_; }

  /// The sub-ranges of [lo, hi) that are NOT covered, in order.
  [[nodiscard]] std::vector<Interval> gaps(std::uint64_t lo, std::uint64_t hi) const;

  [[nodiscard]] std::size_t interval_count() const { return map_.size(); }
  [[nodiscard]] bool empty() const { return map_.empty(); }
  [[nodiscard]] std::vector<Interval> to_vector() const;

  void clear();

 private:
  std::map<std::uint64_t, std::uint64_t> map_;  // lo -> hi
  std::uint64_t total_ = 0;
};

}  // namespace pio
