#include "common/record_io.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pio {

namespace {

std::string escape_json_string(const std::string& s) {
  std::string out = "\"";
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string to_json(const FieldValue& v) {
  return std::visit(
      [](const auto& x) -> std::string {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, bool>) {
          return x ? "true" : "false";
        } else if constexpr (std::is_same_v<T, std::string>) {
          return escape_json_string(x);
        } else if constexpr (std::is_same_v<T, double>) {
          std::ostringstream out;
          out.precision(17);
          out << x;
          return out.str();
        } else {
          return std::to_string(x);
        }
      },
      v);
}

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

Record::Record(std::initializer_list<std::pair<std::string, FieldValue>> fields) {
  for (auto& [k, v] : fields) set(k, v);
}

Record& Record::set(std::string key, FieldValue value) {
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  fields_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const FieldValue& Record::at(const std::string& key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return v;
  }
  throw std::out_of_range("Record::at: missing key '" + key + "'");
}

bool Record::contains(const std::string& key) const {
  return std::any_of(fields_.begin(), fields_.end(),
                     [&](const auto& kv) { return kv.first == key; });
}

std::string Record::to_json_line() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : fields_) {
    if (!first) out += ",";
    first = false;
    out += escape_json_string(k) + ":" + to_json(v);
  }
  out += "}";
  return out;
}

void CsvWriter::write(const Record& record) {
  if (header_.empty()) {
    for (const auto& [k, v] : record.fields()) header_.push_back(k);
    for (std::size_t i = 0; i < header_.size(); ++i) {
      out_ << csv_escape(header_[i]) << (i + 1 == header_.size() ? "\n" : ",");
    }
  }
  for (std::size_t i = 0; i < header_.size(); ++i) {
    std::string cell;
    if (record.contains(header_[i])) {
      const auto& v = record.at(header_[i]);
      if (const auto* s = std::get_if<std::string>(&v)) cell = *s;
      else cell = to_json(v);
    }
    out_ << csv_escape(cell) << (i + 1 == header_.size() ? "\n" : ",");
  }
}

}  // namespace pio
