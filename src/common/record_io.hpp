// PIOEval common: tiny CSV and JSON-lines emitters.
//
// Bench harnesses write machine-readable series next to the human-readable
// tables so that figures can be re-plotted without re-running the sweep.
#pragma once

#include <initializer_list>
#include <map>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace pio {

/// One JSON-compatible scalar.
using FieldValue = std::variant<std::int64_t, std::uint64_t, double, bool, std::string>;

/// Render a scalar as JSON (strings escaped, doubles round-trippable).
[[nodiscard]] std::string to_json(const FieldValue& v);

/// Escape a string for a CSV cell (RFC-4180 quoting when needed).
[[nodiscard]] std::string csv_escape(const std::string& cell);

/// Ordered key/value record; insertion order is preserved for output.
class Record {
 public:
  Record() = default;
  Record(std::initializer_list<std::pair<std::string, FieldValue>> fields);

  Record& set(std::string key, FieldValue value);

  [[nodiscard]] const FieldValue& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, FieldValue>>& fields() const {
    return fields_;
  }

  [[nodiscard]] std::string to_json_line() const;

 private:
  std::vector<std::pair<std::string, FieldValue>> fields_;
};

/// Streams records as CSV; the header is fixed by the first record written.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write(const Record& record);

 private:
  std::ostream& out_;
  std::vector<std::string> header_;
};

/// Streams records as JSON lines.
class JsonlWriter {
 public:
  explicit JsonlWriter(std::ostream& out) : out_(out) {}

  void write(const Record& record) { out_ << record.to_json_line() << "\n"; }

 private:
  std::ostream& out_;
};

}  // namespace pio
