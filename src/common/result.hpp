// PIOEval common: a tiny Expected-style result type for hot-path APIs where
// exceptions would be the wrong tool (per-op I/O status is a normal outcome,
// not an exceptional one).
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace pio {

/// Error code + message.
struct Error {
  int code = 0;
  std::string message;
};

template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error().message);
    return std::get<T>(data_);
  }
  [[nodiscard]] const T& value() const {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error().message);
    return std::get<T>(data_);
  }
  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::runtime_error("Result::error on value");
    return std::get<Error>(data_);
  }

 private:
  std::variant<T, Error> data_;
};

}  // namespace pio
