#include "common/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pio {

using detail::mix64;

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t phase, std::uint64_t iteration,
                          std::uint64_t index) {
  // Chain the finaliser over the whole key ("PIOSEEDS" domain-separates it
  // from the Rng counter construction below).
  std::uint64_t h = mix64(seed ^ 0x50494F5345454453ULL);
  h = mix64(h ^ phase);
  h = mix64(h ^ iteration);
  return mix64(h ^ index);
}

void Rng::throw_zero_bound() { throw std::domain_error("Rng::next_below(0)"); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::domain_error("Rng::uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1ULL;
  // span==0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t draw = (span == 0) ? next_u64() : next_below(span);
  return lo + static_cast<std::int64_t>(draw);
}

double Rng::uniform() {
  // 53-bit mantissa → uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::domain_error("Rng::uniform: lo > hi");
  return lo + (hi - lo) * uniform();
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::domain_error("Rng::exponential: mean <= 0");
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

std::uint64_t Rng::zipf(std::uint64_t n, double alpha) {
  if (n == 0) throw std::domain_error("Rng::zipf: n == 0");
  if (alpha <= 0.0) return next_below(n);
  // Inverse-CDF via the approximate harmonic normaliser; exact enough for
  // workload skew and O(1) per draw for alpha != 1.
  const double x = uniform();
  if (std::abs(alpha - 1.0) < 1e-9) {
    const double h = std::log(static_cast<double>(n) + 1.0);
    const double r = std::exp(x * h) - 1.0;
    const auto k = static_cast<std::uint64_t>(r);
    return k >= n ? n - 1 : k;
  }
  const double a1 = 1.0 - alpha;
  const double hn = (std::pow(static_cast<double>(n) + 1.0, a1) - 1.0) / a1;
  const double r = std::pow(x * hn * a1 + 1.0, 1.0 / a1) - 1.0;
  const auto k = static_cast<std::uint64_t>(r);
  return k >= n ? n - 1 : k;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::substream(std::uint64_t k) const {
  return Rng{seed_, mix64(stream_) ^ mix64(k + 0x517cc1b727220a95ULL)};
}

}  // namespace pio
