// PIOEval common: deterministic, stream-splittable random number generation.
//
// Everything stochastic in the toolkit (workload generators, disk service
// jitter, ML initialisation) draws from `Rng` streams derived from a single
// campaign seed. Streams are keyed by (seed, stream id), so components can be
// added or reordered without perturbing each other's draws — a requirement
// for the replay/extrapolation experiments, which compare two runs event by
// event.
#pragma once

#include <cstdint>
#include <vector>

namespace pio {

namespace detail {

/// SplitMix64 finaliser: a high-quality 64-bit mix. Header-inline because it
/// is the whole per-draw cost of `Rng` — keeping draws out-of-line costs a
/// call plus redundant key mixing per event in the DES hot loop.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace detail

/// Deterministic seed split: derive a collision-resistant seed for one
/// (phase, iteration, index) coordinate of a campaign. Unlike `seed + k`
/// arithmetic — where `seed + iter` and `seed + 1000 + iter` collide at
/// iter >= 1000 — the full key is SplitMix64-mixed, so distinct coordinates
/// map to distinct streams for any practical sweep size.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t phase,
                                        std::uint64_t iteration = 0, std::uint64_t index = 0);

/// SplitMix64-based counter RNG. Stateless apart from a 64-bit counter, so a
/// stream can be forked (`substream`) without sharing state with its parent.
class Rng {
 public:
  /// Stream keyed by (seed, stream). Identical keys yield identical draws.
  /// The per-stream key is mixed once here, not on every draw.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0)
      : seed_(seed), stream_(stream), key_(detail::mix64(seed) ^ detail::mix64(~stream)) {}

  /// Uniform on [0, 2^64). Counter mode: output = mix(key ^ mix(counter));
  /// counter increments per draw, no hidden state beyond it.
  std::uint64_t next_u64() { return detail::mix64(key_ ^ detail::mix64(counter_++)); }

  /// Uniform on [0, bound). `bound` must be > 0. Uses rejection sampling to
  /// avoid modulo bias. Header-inline so a loop-constant `bound` lets the
  /// compiler hoist the threshold and strength-reduce both `%`s.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) throw_zero_bound();
    // Rejection sampling on the top of the range to kill modulo bias.
    const std::uint64_t threshold = (0ULL - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer on [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real on [0, 1).
  double uniform();

  /// Uniform real on [lo, hi).
  double uniform(double lo, double hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Box-Muller (two draws per call, no caching, so the
  /// stream position stays deterministic under reordering).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal parameterised by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// Zipf-distributed rank on [0, n): probability of rank k proportional to
  /// 1/(k+1)^alpha. Used for skewed file-popularity models.
  std::uint64_t zipf(std::uint64_t n, double alpha);

  /// Bernoulli trial.
  bool chance(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(next_below(i + 1));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Deterministic child stream: fork `k` from this stream's key.
  [[nodiscard]] Rng substream(std::uint64_t k) const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::uint64_t stream() const { return stream_; }

 private:
  [[noreturn]] static void throw_zero_bound();

  std::uint64_t seed_;
  std::uint64_t stream_;
  std::uint64_t key_;  ///< mix64(seed) ^ mix64(~stream), fixed per stream
  std::uint64_t counter_ = 0;
};

}  // namespace pio
