// PIOEval common: the canonical engine RNG seed-stream registry.
//
// Every subsystem that draws engine-level randomness does so on a dedicated
// `pio::Rng` stream keyed by (campaign seed, stream id) — that is what makes
// components composable without perturbing each other's draws, and what
// keeps the campaign determinism digest thread-count-invariant (DESIGN.md
// §7, §11). Two subsystems sharing a stream id silently draw *correlated*
// randomness, and a raw hex literal at a call site is exactly the kind of
// cross-file duplication that caused it: before this registry the
// 0xFA0170xx block was spelled out independently in src/fault, src/cache,
// and src/pfs.
//
// Registry policy (enforced by piolint rule S1, which runs in CI):
//   1. Every engine-level stream id is *defined* here and only here, as an
//      `inline constexpr std::uint64_t k<Subsystem><Purpose>Stream`.
//   2. Subsystems reference the registry constant by name — either directly
//      or through a local alias initialised from it (aliases are fine; a
//      fresh integer literal is not).
//   3. To claim a new stream: take the next free id in the block, append it
//      to this file *and* to `detail::kAllStreams` below (the static_assert
//      makes a copy-paste collision a compile error), and note the owning
//      subsystem in the comment. Never reuse a retired id — old campaign
//      digests were computed against it.
//   4. Sub-draws inside one subsystem fork from its stream via
//      `Rng::substream(k)`; they do not claim new registry ids.
//
// piolint S1 flags (a) any `k...Stream = <literal>` definition outside this
// file, (b) two definitions sharing a value, and (c) any raw literal equal
// to a claimed id anywhere in the tree.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pio::seeds {

// 0xFA017000 block: engine-level subsystem streams ("FA017" ≈ fault-to-IO
// evaluation, the PR-2 era prefix kept for digest compatibility).

/// pio::fault — materializing stochastic fault plans from the campaign seed.
inline constexpr std::uint64_t kFaultPlanStream = 0xFA017000ULL;

/// pio::pfs — client retry/backoff jitter (resilience.hpp).
inline constexpr std::uint64_t kRetryJitterStream = 0xFA017001ULL;

/// pio::pfs — online OST rebuild pacing jitter (durability.hpp).
inline constexpr std::uint64_t kRebuildPaceStream = 0xFA017002ULL;

/// pio::cache — DL-epoch warming order/pacing (cache.hpp).
inline constexpr std::uint64_t kCacheWarmStream = 0xFA017003ULL;

/// pio::pfs — per-OST heartbeat emission jitter (cluster_map.hpp). Each OST
/// forks its own substream(i) so adding an OST never shifts another's beats.
inline constexpr std::uint64_t kHeartbeatJitterStream = 0xFA017004ULL;

/// pio::pfs — membership-migration (drain) rebuild pacing jitter
/// (cluster_map.hpp). Distinct from kRebuildPaceStream so crash-recovery
/// resyncs and drain-driven migrations never share draws.
inline constexpr std::uint64_t kDrainPaceStream = 0xFA017005ULL;

/// pio::pfs — circuit-breaker open-window jitter (resilience.hpp). Each
/// breaker's open duration is decorrelated so half-open probes from many
/// clients never synchronize into a probe storm.
inline constexpr std::uint64_t kBreakerProbeStream = 0xFA017006ULL;

/// pio::svc load harness — per-session arrival jitter and campaign-spec
/// sampling in the many-client generator (bench_cf5_service, pioevald
/// --load). Service-side scheduling itself draws no randomness; only the
/// simulated client population does.
inline constexpr std::uint64_t kSvcArrivalJitterStream = 0xFA017007ULL;

/// pio::eval facility runs — per-cell campaign arrival jitter (facility.hpp).
/// Each cell forks substream(cell index), so adding a cell never shifts
/// another cell's start time; sharded execution itself draws no randomness.
inline constexpr std::uint64_t kFacilityArrivalStream = 0xFA017008ULL;

namespace detail {

inline constexpr std::uint64_t kAllStreams[] = {
    kFaultPlanStream,
    kRetryJitterStream,
    kRebuildPaceStream,
    kCacheWarmStream,
    kHeartbeatJitterStream,
    kDrainPaceStream,
    kBreakerProbeStream,
    kSvcArrivalJitterStream,
    kFacilityArrivalStream,
};

constexpr bool all_distinct() {
  constexpr std::size_t n = sizeof(kAllStreams) / sizeof(kAllStreams[0]);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (kAllStreams[i] == kAllStreams[j]) return false;
    }
  }
  return true;
}

}  // namespace detail

static_assert(detail::all_distinct(),
              "seed-stream registry: two subsystems claim the same stream id");

}  // namespace pio::seeds
