// PIOEval common: strong scalar types used across the toolkit.
//
// The simulation engine works in integer nanoseconds (`SimTime`) and integer
// bytes (`Bytes`). Keeping these as distinct types (rather than bare int64_t)
// catches unit mix-ups at compile time, which matters in a codebase where
// "rate = bytes / time" conversions appear in every model.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace pio {

/// Simulated time in integer nanoseconds. Signed so durations can be
/// subtracted freely; negative absolute times never occur in a valid run.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() { return SimTime{std::numeric_limits<std::int64_t>::max()}; }
  static constexpr SimTime from_ns(std::int64_t v) { return SimTime{v}; }
  static constexpr SimTime from_us(double v) { return SimTime{static_cast<std::int64_t>(v * 1e3)}; }
  static constexpr SimTime from_ms(double v) { return SimTime{static_cast<std::int64_t>(v * 1e6)}; }
  static constexpr SimTime from_sec(double v) { return SimTime{static_cast<std::int64_t>(v * 1e9)}; }
  /// Seconds rounded *up* to the next nanosecond. Use when a modelled
  /// duration must never complete early (e.g. draining a transfer).
  static SimTime from_sec_ceil(double v) {
    return SimTime{static_cast<std::int64_t>(std::ceil(v * 1e9))};
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime other) {
    ns_ -= other.ns_;
    return *this;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.ns_ + b.ns_}; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.ns_ - b.ns_}; }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime{a.ns_ * k}; }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return a * k; }
  friend constexpr std::int64_t operator/(SimTime a, SimTime b) { return a.ns_ / b.ns_; }
  friend constexpr SimTime operator/(SimTime a, std::int64_t k) { return SimTime{a.ns_ / k}; }

 private:
  std::int64_t ns_ = 0;
};

/// Byte count. Unsigned: a size is never negative.
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t v) : v_(v) {}

  [[nodiscard]] constexpr std::uint64_t count() const { return v_; }
  [[nodiscard]] constexpr double as_double() const { return static_cast<double>(v_); }
  [[nodiscard]] constexpr double kib() const { return as_double() / 1024.0; }
  [[nodiscard]] constexpr double mib() const { return as_double() / (1024.0 * 1024.0); }
  [[nodiscard]] constexpr double gib() const { return as_double() / (1024.0 * 1024.0 * 1024.0); }

  static constexpr Bytes zero() { return Bytes{0}; }
  static constexpr Bytes from_kib(std::uint64_t v) { return Bytes{v * 1024ULL}; }
  static constexpr Bytes from_mib(std::uint64_t v) { return Bytes{v * 1024ULL * 1024ULL}; }
  static constexpr Bytes from_gib(std::uint64_t v) { return Bytes{v * 1024ULL * 1024ULL * 1024ULL}; }

  constexpr auto operator<=>(const Bytes&) const = default;

  constexpr Bytes& operator+=(Bytes other) {
    v_ += other.v_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes other) {
    if (other.v_ > v_) throw std::underflow_error("Bytes underflow");
    v_ -= other.v_;
    return *this;
  }
  friend constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes{a.v_ + b.v_}; }
  friend Bytes operator-(Bytes a, Bytes b) {
    Bytes r = a;
    r -= b;
    return r;
  }
  friend constexpr Bytes operator*(Bytes a, std::uint64_t k) { return Bytes{a.v_ * k}; }
  friend constexpr Bytes operator*(std::uint64_t k, Bytes a) { return a * k; }
  friend constexpr Bytes operator/(Bytes a, std::uint64_t k) { return Bytes{a.v_ / k}; }
  friend constexpr std::uint64_t operator/(Bytes a, Bytes b) { return a.v_ / b.v_; }
  friend constexpr Bytes operator%(Bytes a, Bytes b) { return Bytes{a.v_ % b.v_}; }

 private:
  std::uint64_t v_ = 0;
};

/// A transfer rate in bytes per second, with exact integer time/size math.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  constexpr explicit Bandwidth(double bytes_per_sec) : bps_(bytes_per_sec) {}

  static constexpr Bandwidth from_mib_per_sec(double v) { return Bandwidth{v * 1024.0 * 1024.0}; }
  static constexpr Bandwidth from_gib_per_sec(double v) {
    return Bandwidth{v * 1024.0 * 1024.0 * 1024.0};
  }

  [[nodiscard]] constexpr double bytes_per_sec() const { return bps_; }
  [[nodiscard]] constexpr double mib_per_sec() const { return bps_ / (1024.0 * 1024.0); }
  [[nodiscard]] constexpr double gib_per_sec() const { return bps_ / (1024.0 * 1024.0 * 1024.0); }

  /// Time to move `size` at this rate. Throws if the rate is non-positive.
  [[nodiscard]] SimTime transfer_time(Bytes size) const {
    if (bps_ <= 0.0) throw std::domain_error("Bandwidth::transfer_time on non-positive rate");
    return SimTime::from_sec(size.as_double() / bps_);
  }

  constexpr auto operator<=>(const Bandwidth&) const = default;
  friend constexpr Bandwidth operator/(Bandwidth a, double k) { return Bandwidth{a.bps_ / k}; }
  friend constexpr Bandwidth operator*(Bandwidth a, double k) { return Bandwidth{a.bps_ * k}; }

 private:
  double bps_ = 0.0;
};

/// Observed rate over an interval; the canonical "result" unit of benches.
[[nodiscard]] inline Bandwidth observed_bandwidth(Bytes moved, SimTime elapsed) {
  if (elapsed <= SimTime::zero()) return Bandwidth{0.0};
  return Bandwidth{moved.as_double() / elapsed.sec()};
}

namespace literals {
constexpr SimTime operator""_ns(unsigned long long v) { return SimTime{static_cast<std::int64_t>(v)}; }
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime{static_cast<std::int64_t>(v) * 1000};
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime{static_cast<std::int64_t>(v) * 1000 * 1000};
}
constexpr SimTime operator""_s(unsigned long long v) {
  return SimTime{static_cast<std::int64_t>(v) * 1000 * 1000 * 1000};
}
constexpr Bytes operator""_B(unsigned long long v) { return Bytes{v}; }
constexpr Bytes operator""_KiB(unsigned long long v) { return Bytes::from_kib(v); }
constexpr Bytes operator""_MiB(unsigned long long v) { return Bytes::from_mib(v); }
constexpr Bytes operator""_GiB(unsigned long long v) { return Bytes::from_gib(v); }
}  // namespace literals

}  // namespace pio
