#include "corpus/corpus.hpp"

#include <algorithm>

namespace pio::corpus {

const char* to_string(VenueType type) {
  switch (type) {
    case VenueType::kJournal: return "journal";
    case VenueType::kConference: return "conference";
    case VenueType::kWorkshop: return "workshop";
  }
  return "?";
}

const char* to_string(Publisher publisher) {
  switch (publisher) {
    case Publisher::kIeee: return "IEEE";
    case Publisher::kAcm: return "ACM";
    case Publisher::kSpringer: return "Springer";
    case Publisher::kUsenix: return "USENIX";
    case Publisher::kElsevier: return "Elsevier";
    case Publisher::kOther: return "Other";
  }
  return "?";
}

const char* to_string(Category category) {
  switch (category) {
    case Category::kMeasurement: return "measurement";
    case Category::kModeling: return "modeling";
    case Category::kSimulation: return "simulation";
    case Category::kEmerging: return "emerging";
  }
  return "?";
}

const std::vector<Article>& surveyed_articles() {
  using VT = VenueType;
  using P = Publisher;
  using C = Category;
  // Reconstructed from the paper's reference list (see header comment).
  // Duplicate works dropped to reach the stated 51: [13] (CUG'17 re-issue
  // of [12]), [19] (TOS journal version of [18]), [65] (motivation only).
  static const std::vector<Article> articles{
      {10, "Messer", "MiniApps derived from production HPC applications", 2018,
       "IJHPCA", VT::kJournal, P::kOther, {C::kMeasurement}},
      {11, "Herbein", "Performance characterization of irregular I/O", 2016,
       "Parallel Computing", VT::kJournal, P::kElsevier, {C::kMeasurement, C::kModeling}},
      {12, "Dickson", "Replicating HPC I/O workloads with proxy applications", 2016,
       "PDSW-DISCS", VT::kWorkshop, P::kIeee, {C::kMeasurement, C::kModeling}},
      {14, "Logan", "Extending Skel for next generation I/O systems", 2017,
       "CLUSTER", VT::kConference, P::kIeee, {C::kMeasurement}},
      {15, "Hao", "Automatic generation of benchmarks for I/O-intensive applications", 2019,
       "JPDC", VT::kJournal, P::kElsevier, {C::kMeasurement, C::kModeling}},
      {16, "Luo", "HPC I/O trace extrapolation", 2015,
       "ESPT", VT::kWorkshop, P::kAcm, {C::kMeasurement, C::kModeling, C::kSimulation}},
      {17, "Luo", "ScalaIOExtrap: elastic I/O tracing and extrapolation", 2017,
       "IPDPS", VT::kConference, P::kIeee, {C::kMeasurement, C::kModeling, C::kSimulation}},
      {18, "Haghdoost", "Accuracy and scalability of intensive I/O workload replay", 2017,
       "FAST", VT::kConference, P::kUsenix, {C::kMeasurement, C::kModeling}},
      {20, "Snyder", "Techniques for modeling large-scale HPC I/O workloads", 2015,
       "PMBS", VT::kWorkshop, P::kAcm, {C::kModeling, C::kSimulation}},
      {21, "Carothers", "Durango: scalable synthetic workload generation", 2017,
       "SIGSIM-PADS", VT::kConference, P::kAcm, {C::kModeling, C::kSimulation}},
      {23, "Xu", "DXT: Darshan eXtended Tracing", 2017,
       "CUG", VT::kConference, P::kOther, {C::kMeasurement}},
      {24, "Chien", "tf-Darshan: fine-grained I/O in ML workloads", 2020,
       "CLUSTER", VT::kConference, P::kIeee, {C::kMeasurement, C::kEmerging}},
      {26, "Wang", "Recorder 2.0: efficient parallel I/O tracing", 2020,
       "IPDPSW", VT::kWorkshop, P::kIeee, {C::kMeasurement}},
      {27, "Paul", "Toward scalable monitoring on large-scale storage", 2017,
       "PDSW-DISCS", VT::kWorkshop, P::kAcm, {C::kMeasurement}},
      {28, "Paul", "FSMonitor: scalable file system monitoring", 2019,
       "CLUSTER", VT::kConference, P::kIeee, {C::kMeasurement}},
      {29, "Paul", "I/O load balancing for big data HPC applications", 2017,
       "Big Data", VT::kConference, P::kIeee, {C::kMeasurement, C::kEmerging}},
      {30, "Luu", "A multiplatform study of I/O behavior on petascale supercomputers", 2015,
       "HPDC", VT::kConference, P::kAcm, {C::kMeasurement, C::kModeling}},
      {31, "Snyder", "Modular HPC I/O characterization with Darshan", 2016,
       "ESPT", VT::kWorkshop, P::kIeee, {C::kMeasurement}},
      {32, "Rodrigo", "Towards understanding HPC users and systems (NERSC)", 2017,
       "JPDC", VT::kJournal, P::kElsevier, {C::kMeasurement}},
      {33, "Khetawat", "Evaluating burst buffer placement in HPC systems", 2019,
       "CLUSTER", VT::kConference, P::kIeee, {C::kMeasurement, C::kSimulation}},
      {34, "Saif", "IOscope: flexible I/O tracer", 2018,
       "ISC Workshops", VT::kWorkshop, P::kSpringer, {C::kMeasurement}},
      {35, "He", "PIONEER: parallel I/O workload characterization and generation", 2015,
       "CCGrid", VT::kConference, P::kIeee, {C::kMeasurement, C::kModeling}},
      {36, "Sangaiah", "SynchroTrace: synchronization-aware traces", 2018,
       "ACM TACO", VT::kJournal, P::kAcm, {C::kMeasurement, C::kSimulation}},
      {37, "Azevedo", "Improving fairness in a large scale HTC system", 2019,
       "Euro-Par", VT::kConference, P::kSpringer, {C::kModeling, C::kSimulation}},
      {38, "Kunkel", "Tools for analyzing parallel I/O", 2018,
       "ISC HPC", VT::kConference, P::kSpringer, {C::kMeasurement}},
      {39, "Vazhkudai", "GUIDE: scalable information directory service", 2017,
       "SC", VT::kConference, P::kAcm, {C::kMeasurement, C::kModeling}},
      {40, "Yildiz", "Root causes of cross-application I/O interference", 2016,
       "IPDPS", VT::kConference, P::kIeee, {C::kMeasurement, C::kModeling}},
      {41, "Di", "LOGAIDER: mining potential correlations of HPC log events", 2017,
       "CCGRID", VT::kConference, P::kIeee, {C::kMeasurement}},
      {42, "Lockwood", "TOKIO on ClusterStor: holistic I/O performance analysis", 2018,
       "CUG", VT::kConference, P::kOther, {C::kMeasurement}},
      {43, "Park", "Big data meets HPC log analytics", 2017,
       "CLUSTER", VT::kConference, P::kIeee, {C::kMeasurement, C::kEmerging}},
      {44, "Lockwood", "UMAMI: meaningful metrics through holistic analysis", 2017,
       "PDSW-DISCS", VT::kWorkshop, P::kAcm, {C::kMeasurement}},
      {45, "Yang", "End-to-end I/O monitoring on a leading supercomputer", 2019,
       "NSDI", VT::kConference, P::kUsenix, {C::kMeasurement}},
      {46, "Wadhwa", "iez: resource contention aware load balancing", 2019,
       "IPDPS", VT::kConference, P::kIeee, {C::kMeasurement}},
      {47, "Lockwood", "A year in the life of a parallel file system", 2018,
       "SC", VT::kConference, P::kIeee, {C::kMeasurement, C::kModeling}},
      {48, "Luettgau", "Toward understanding I/O behavior in HPC workflows", 2018,
       "PDSW-DISCS", VT::kWorkshop, P::kIeee, {C::kMeasurement, C::kEmerging}},
      {49, "Wang", "IOMiner: large-scale analytics framework for I/O logs", 2018,
       "CLUSTER", VT::kConference, P::kIeee, {C::kMeasurement, C::kModeling}},
      {50, "Xie", "Predicting output performance of a petascale supercomputer", 2017,
       "HPDC", VT::kConference, P::kAcm, {C::kModeling}},
      {51, "Obaida", "Parallel application performance prediction (PyPassT)", 2018,
       "SIGSIM-PADS", VT::kConference, P::kAcm, {C::kModeling, C::kSimulation}},
      {52, "Gunasekaran", "Comparative I/O workload characterization of two clusters", 2015,
       "PDSW", VT::kWorkshop, P::kAcm, {C::kMeasurement}},
      {53, "Patel", "Revisiting I/O behavior in large-scale storage systems", 2019,
       "SC", VT::kConference, P::kAcm, {C::kMeasurement, C::kModeling, C::kEmerging}},
      {54, "Paul", "Understanding HPC application I/O behavior using system stats", 2020,
       "HiPC", VT::kConference, P::kIeee, {C::kMeasurement, C::kModeling}},
      {55, "Dorier", "Omnisc'IO: formal grammars to predict I/O behavior", 2016,
       "IEEE TPDS", VT::kJournal, P::kIeee, {C::kModeling}},
      {56, "Schmid", "Predicting I/O performance using artificial neural networks", 2016,
       "Supercomput. Front. Innov.", VT::kJournal, P::kOther, {C::kModeling}},
      {57, "Sun", "Automated performance modeling of HPC applications using ML", 2020,
       "IEEE TC", VT::kJournal, P::kIeee, {C::kModeling}},
      {58, "Chowdhury", "Emulating I/O behavior in scientific workflows", 2020,
       "PDSW", VT::kWorkshop, P::kIeee, {C::kModeling, C::kSimulation, C::kEmerging}},
      {61, "Liu", "Performance evaluation and modeling of HPC I/O on NVM", 2017,
       "NAS", VT::kConference, P::kIeee, {C::kModeling, C::kSimulation}},
      {66, "Xuan", "Accelerating big data analytics with two-level storage", 2017,
       "Parallel Computing", VT::kJournal, P::kElsevier, {C::kEmerging}},
      {71, "Chowdhury", "I/O characterization of BeeGFS for deep learning", 2019,
       "ICPP", VT::kConference, P::kAcm, {C::kMeasurement, C::kEmerging}},
      {72, "Daley", "Workflow characterization for optimal burst buffer use", 2020,
       "FGCS", VT::kJournal, P::kElsevier, {C::kMeasurement, C::kEmerging}},
      {73, "Ferreira da Silva", "Characterization of workflow management systems", 2017,
       "FGCS", VT::kJournal, P::kElsevier, {C::kEmerging}},
      {79, "Bae", "I/O performance evaluation of large-scale deep learning", 2019,
       "HPCS", VT::kConference, P::kIeee, {C::kMeasurement, C::kEmerging}},
  };
  return articles;
}

namespace {

template <typename Key, typename Label>
std::vector<Share> to_shares(const std::map<Key, std::size_t>& counts, std::size_t total,
                             Label label) {
  std::vector<Share> shares;
  for (const auto& [key, count] : counts) {
    Share share;
    share.label = label(key);
    share.count = count;
    share.percent = total == 0 ? 0.0
                               : 100.0 * static_cast<double>(count) /
                                     static_cast<double>(total);
    shares.push_back(std::move(share));
  }
  std::sort(shares.begin(), shares.end(),
            [](const Share& a, const Share& b) { return a.count > b.count; });
  return shares;
}

}  // namespace

Distribution compute_distribution(const std::vector<Article>& articles) {
  Distribution dist;
  dist.total = articles.size();
  std::map<VenueType, std::size_t> types;
  std::map<Publisher, std::size_t> publishers;
  std::map<int, std::size_t> years;
  std::map<Category, std::size_t> categories;
  std::size_t category_total = 0;
  for (const auto& a : articles) {
    ++types[a.type];
    ++publishers[a.publisher];
    ++years[a.year];
    for (const auto c : a.categories) {
      ++categories[c];
      ++category_total;
    }
  }
  dist.by_type = to_shares(types, dist.total, [](VenueType t) { return to_string(t); });
  dist.by_publisher =
      to_shares(publishers, dist.total, [](Publisher p) { return to_string(p); });
  dist.by_year = to_shares(years, dist.total, [](int y) { return std::to_string(y); });
  dist.by_category =
      to_shares(categories, category_total, [](Category c) { return to_string(c); });
  return dist;
}

Distribution compute_distribution() { return compute_distribution(surveyed_articles()); }

std::vector<Article> filter_by_category(Category category) {
  std::vector<Article> out;
  for (const auto& a : surveyed_articles()) {
    if (std::find(a.categories.begin(), a.categories.end(), category) != a.categories.end()) {
      out.push_back(a);
    }
  }
  return out;
}

std::vector<Article> filter_by_year(int from, int to) {
  std::vector<Article> out;
  for (const auto& a : surveyed_articles()) {
    if (a.year >= from && a.year <= to) out.push_back(a);
  }
  return out;
}

}  // namespace pio::corpus
