// PIOEval corpus: the surveyed-literature dataset behind §III and Fig. 3.
//
// The paper "identified 51 research articles to be included in this
// overview" (2015-2020) and reports their percentage distribution by paper
// type and publisher (Fig. 3). The published figure is an image without a
// data table, so this module reconstructs the corpus from the paper's own
// reference list: every 2015-2020 research article cited by the survey
// sections, with venue metadata taken from the citations, trimmed to
// exactly 51 entries by dropping journal/venue duplicates of the same work
// (documented per entry). The aggregation API regenerates the Fig. 3
// distribution from this data.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pio::corpus {

enum class VenueType : std::uint8_t { kJournal, kConference, kWorkshop };
enum class Publisher : std::uint8_t { kIeee, kAcm, kSpringer, kUsenix, kElsevier, kOther };

/// Taxonomy phases of Fig. 4 (plus the emerging-workload discussion of §V)
/// an article contributes to.
enum class Category : std::uint8_t {
  kMeasurement,   ///< §IV.A workloads / monitoring / collection
  kModeling,      ///< §IV.B statistics / prediction / replay / generation
  kSimulation,    ///< §IV.C simulation types and techniques
  kEmerging,      ///< §V emerging HPC workloads
};

[[nodiscard]] const char* to_string(VenueType type);
[[nodiscard]] const char* to_string(Publisher publisher);
[[nodiscard]] const char* to_string(Category category);

struct Article {
  int reference = 0;               ///< bracket number in the paper
  std::string first_author;
  std::string short_title;
  int year = 0;
  std::string venue;
  VenueType type = VenueType::kConference;
  Publisher publisher = Publisher::kIeee;
  std::vector<Category> categories;
};

/// The reconstructed 51-article corpus (static data, validated by tests).
[[nodiscard]] const std::vector<Article>& surveyed_articles();

/// Aggregated shares for one attribute.
struct Share {
  std::string label;
  std::size_t count = 0;
  double percent = 0.0;
};

struct Distribution {
  std::vector<Share> by_type;       ///< Fig. 3 left: paper types
  std::vector<Share> by_publisher;  ///< Fig. 3 right: publishers
  std::vector<Share> by_year;
  std::vector<Share> by_category;   ///< taxonomy coverage (articles may count multiply)
  std::size_t total = 0;
};

[[nodiscard]] Distribution compute_distribution(const std::vector<Article>& articles);
[[nodiscard]] Distribution compute_distribution();  ///< over the full corpus

/// Articles matching a category.
[[nodiscard]] std::vector<Article> filter_by_category(Category category);
/// Articles within [from, to] inclusive.
[[nodiscard]] std::vector<Article> filter_by_year(int from, int to);

}  // namespace pio::corpus
