#include "driver/measured_runner.hpp"

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "par/comm.hpp"
#include "trace/backend_shim.hpp"

namespace pio::driver {

namespace {

/// Sink that ignores everything (used when the caller passes nullptr).
class NullSink final : public trace::Sink {
 public:
  void record(const trace::TraceEvent&) override {}
};

}  // namespace

MeasuredRunResult run_measured(vfs::FileSystem& fs, const workload::Workload& workload,
                               trace::Sink* sink, const MeasuredRunConfig& config) {
  NullSink null_sink;
  trace::Sink& out = sink != nullptr ? *sink : static_cast<trace::Sink&>(null_sink);
  const trace::WallClock clock;
  vfs::LocalBackend shared_backend{fs};

  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> bytes_read{0};
  std::atomic<std::uint64_t> bytes_written{0};

  par::Runtime runtime{workload.ranks()};
  const SimTime start = clock.now();
  runtime.run([&](par::Comm& comm) {
    const std::int32_t rank = comm.rank();
    trace::TracingBackend backend{shared_backend, out, clock, rank};
    auto stream = workload.stream(rank);
    std::map<std::string, vfs::Fd> open_fds;
    std::vector<std::byte> buffer;
    while (auto op = stream->next()) {
      using K = workload::OpKind;
      ++ops;
      bool ok = true;
      switch (op->kind) {
        case K::kCreate: {
          auto fd = backend.open(op->path, {vfs::OpenMode::kReadWrite, true, true});
          ok = fd.ok();
          if (ok) open_fds[op->path] = fd.value();
          break;
        }
        case K::kOpen: {
          auto fd = backend.open(op->path, {vfs::OpenMode::kReadWrite, false, false});
          ok = fd.ok();
          if (ok) open_fds[op->path] = fd.value();
          break;
        }
        case K::kClose: {
          const auto it = open_fds.find(op->path);
          if (it == open_fds.end()) {
            ok = false;
            break;
          }
          ok = backend.close(it->second) == vfs::FsStatus::kOk;
          open_fds.erase(it);
          break;
        }
        case K::kRead:
        case K::kWrite: {
          auto it = open_fds.find(op->path);
          if (it == open_fds.end()) {
            // Implicit open (profile-generated workloads may elide opens).
            auto fd = backend.open(op->path, {vfs::OpenMode::kReadWrite, true, false});
            if (!fd.ok()) {
              ok = false;
              break;
            }
            it = open_fds.emplace(op->path, fd.value()).first;
          }
          const auto size = static_cast<std::size_t>(op->size.count());
          if (buffer.size() < size) buffer.resize(size);
          if (op->kind == K::kWrite) {
            if (config.touch_data) {
              // Deterministic pattern: function of offset so read-back
              // verification in tests is possible.
              for (std::size_t i = 0; i < size; ++i) {
                buffer[i] = static_cast<std::byte>((op->offset + i) & 0xFF);
              }
            }
            auto r = backend.pwrite(it->second, std::span{buffer.data(), size}, op->offset);
            ok = r.ok() && r.value() == size;
            if (r.ok()) bytes_written += r.value();
          } else {
            auto r = backend.pread(it->second, std::span{buffer.data(), size}, op->offset);
            ok = r.ok();
            if (r.ok()) bytes_read += r.value();
          }
          break;
        }
        case K::kStat: ok = backend.stat(op->path).ok(); break;
        case K::kMkdir: {
          const auto status = backend.mkdir(op->path);
          ok = status == vfs::FsStatus::kOk || status == vfs::FsStatus::kExists;
          break;
        }
        case K::kUnlink: ok = backend.remove(op->path) == vfs::FsStatus::kOk; break;
        case K::kReaddir: ok = backend.readdir(op->path).ok(); break;
        case K::kFsync: {
          const auto it = open_fds.find(op->path);
          ok = it != open_fds.end() && backend.fsync(it->second) == vfs::FsStatus::kOk;
          break;
        }
        case K::kCompute: {
          if (config.compute_scale > 0.0) {
            const auto ns = static_cast<std::int64_t>(
                static_cast<double>(op->think_time.ns()) * config.compute_scale);
            std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
          }
          break;
        }
        case K::kBarrier: comm.barrier(); break;
      }
      if (!ok) ++failed;
    }
    // Close anything the workload leaked.
    for (const auto& [path, fd] : open_fds) backend.close(fd);
  });

  MeasuredRunResult result;
  result.wall_time = clock.now() - start;
  result.ops = ops.load();
  result.failed_ops = failed.load();
  result.bytes_read = Bytes{bytes_read.load()};
  result.bytes_written = Bytes{bytes_written.load()};
  return result;
}

}  // namespace pio::driver
