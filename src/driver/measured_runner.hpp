// PIOEval driver: the measured-execution path (§IV.A "Measurements ...
// conducted on real-world computing environments").
//
// Runs a workload for real: rank threads (pio::par) execute every operation
// against the in-memory VFS through a per-rank TracingBackend, so the
// profiler/tracer observe genuine POSIX-layer calls with wall-clock
// timestamps. Compute phases can be honoured (sleep), scaled, or skipped.
#pragma once

#include <cstdint>
#include <memory>

#include "common/types.hpp"
#include "trace/event.hpp"
#include "vfs/backend.hpp"
#include "vfs/file_system.hpp"
#include "workload/op.hpp"

namespace pio::driver {

struct MeasuredRunConfig {
  /// Multiplier applied to kCompute think times before sleeping. 0 skips
  /// compute entirely (the usual choice for I/O-focused measurement).
  double compute_scale = 0.0;
  /// Fill written buffers with a deterministic byte pattern and, on reads,
  /// return the buffer (contents are not verified here; correctness tests
  /// live in the test suite).
  bool touch_data = true;
};

struct MeasuredRunResult {
  SimTime wall_time = SimTime::zero();
  std::uint64_t ops = 0;
  std::uint64_t failed_ops = 0;
  Bytes bytes_read = Bytes::zero();
  Bytes bytes_written = Bytes::zero();
};

/// Execute `workload` with threads-as-ranks against `fs`. Events from all
/// ranks are recorded into `sink` (if non-null) with a shared wall clock.
MeasuredRunResult run_measured(vfs::FileSystem& fs, const workload::Workload& workload,
                               trace::Sink* sink, const MeasuredRunConfig& config = {});

}  // namespace pio::driver
