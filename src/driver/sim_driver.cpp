#include "driver/sim_driver.hpp"

#include <stdexcept>

namespace pio::driver {

namespace {

trace::OpKind to_trace_op(workload::OpKind kind) {
  using W = workload::OpKind;
  using T = trace::OpKind;
  switch (kind) {
    case W::kCreate:
    case W::kOpen: return T::kOpen;
    case W::kClose: return T::kClose;
    case W::kRead: return T::kRead;
    case W::kWrite: return T::kWrite;
    case W::kStat: return T::kStat;
    case W::kMkdir: return T::kMkdir;
    case W::kUnlink: return T::kUnlink;
    case W::kReaddir: return T::kReaddir;
    case W::kFsync: return T::kFsync;
    case W::kCompute: return T::kOther;
    case W::kBarrier: return T::kSync;
  }
  return T::kOther;
}

}  // namespace

ExecutionDrivenSimulator::ExecutionDrivenSimulator(sim::Engine& engine, pfs::PfsModel& model,
                                                   SimRunConfig config)
    : engine_(engine), model_(model), config_(config) {}

pfs::ClientId ExecutionDrivenSimulator::client_of(std::int32_t rank) const {
  return static_cast<pfs::ClientId>(rank) % model_.config().clients;
}

const pfs::StripeLayout& ExecutionDrivenSimulator::layout_of(const std::string& path) const {
  const auto it = layouts_.find(path);
  return it == layouts_.end() ? config_.layout : it->second;
}

void ExecutionDrivenSimulator::begin_impl(const workload::Workload& workload,
                                          trace::Sink* sink) {
  sink_ = sink;
  result_ = SimRunResult{};
  layouts_.clear();
  barrier_waiting_ = 0;
  const auto n = static_cast<std::size_t>(workload.ranks());
  if (n == 0) throw std::invalid_argument("ExecutionDrivenSimulator: zero-rank workload");
  tier_.reset();
  if (config_.cache.enabled) {
    tier_ = std::make_unique<cache::ClientCacheTier>(engine_, model_, config_.cache,
                                                     static_cast<std::int32_t>(n));
    if (cache_observer_) tier_->set_observer(cache_observer_);
  }
  ranks_.clear();
  ranks_.resize(n);
  result_.rank_finish.assign(n, SimTime::zero());
  active_ranks_ = n;
  res_before_ = model_.resilience_stats();
  srv_before_ = model_.server_overload_totals();
  start_time_ = engine_.now();
  for (std::size_t r = 0; r < n; ++r) {
    ranks_[r].stream = workload.stream(static_cast<std::int32_t>(r));
    // Stagger nothing: all ranks start together, like an MPI job after
    // MPI_Init.
    engine_.schedule_after(SimTime::zero(),
                           [this, r] { advance(static_cast<std::int32_t>(r)); });
  }
}

void ExecutionDrivenSimulator::begin(const workload::Workload& workload, trace::Sink* sink) {
  external_drive_ = true;
  begin_impl(workload, sink);
}

SimRunResult ExecutionDrivenSimulator::collect() {
  if (active_ranks_ != 0) {
    throw std::runtime_error(
        "ExecutionDrivenSimulator: run stalled (mismatched barriers or time limit); "
        "active ranks: " + std::to_string(active_ranks_));
  }
  return collect_impl();
}

SimRunResult ExecutionDrivenSimulator::run(const workload::Workload& workload,
                                           trace::Sink* sink) {
  external_drive_ = false;
  begin_impl(workload, sink);
  engine_.run(start_time_ + config_.time_limit);
  if (active_ranks_ != 0) {
    throw std::runtime_error(
        "ExecutionDrivenSimulator: run stalled (mismatched barriers or time limit); "
        "active ranks: " + std::to_string(active_ranks_));
  }
  if (tier_ != nullptr) {
    // Quiescence drain: any dirty page a workload left behind (a file never
    // closed) is written back now; C1 then requires zero residual.
    tier_->flush_all();
    engine_.run(start_time_ + config_.time_limit);
  }
  return collect_impl();
}

SimRunResult ExecutionDrivenSimulator::collect_impl() {
  const std::size_t n = ranks_.size();
  if (tier_ != nullptr) {
    tier_->finalize();
    sim::check::cache_writeback_drained(tier_->dirty_pages());
    const cache::CacheStats cs = tier_->stats();
    result_.cache_hits = cs.hits;
    result_.cache_misses = cs.misses;
    result_.cache_evictions = cs.evictions;
    result_.cache_prefetch_issued = cs.prefetch_issued;
    result_.cache_prefetch_used = cs.prefetch_used;
    result_.cache_prefetch_wasted = cs.prefetch_wasted;
    result_.cache_writebacks = cs.writebacks;
    result_.cache_writeback_failures = cs.writeback_failures;
    result_.cache_absorbed_writes = cs.absorbed_writes;
    result_.cache_hit_bytes = cs.hit_bytes;
    result_.cache_miss_bytes = cs.miss_bytes;
    result_.cache_writeback_bytes = cs.writeback_bytes;
  }
  SimTime last = start_time_;
  for (std::size_t r = 0; r < n; ++r) last = std::max(last, ranks_[r].finish);
  result_.makespan = last - start_time_;
  for (std::size_t r = 0; r < n; ++r) {
    result_.rank_finish[r] = ranks_[r].finish - start_time_;
  }
  const pfs::ResilienceStats& res_after = model_.resilience_stats();
  result_.retries = res_after.retries - res_before_.retries;
  result_.timeouts = res_after.timeouts - res_before_.timeouts;
  result_.giveups = res_after.giveups - res_before_.giveups;
  result_.failovers = res_after.failovers - res_before_.failovers;
  result_.degraded_reads = res_after.degraded_reads - res_before_.degraded_reads;
  result_.data_lost_ops = res_after.data_lost_ops - res_before_.data_lost_ops;
  result_.rebuilds_completed = res_after.rebuilds_completed - res_before_.rebuilds_completed;
  result_.rebuilt_bytes = res_after.rebuilt_bytes - res_before_.rebuilt_bytes;
  result_.stale_map_retries = res_after.stale_map_retries - res_before_.stale_map_retries;
  result_.map_refreshes = res_after.map_refreshes - res_before_.map_refreshes;
  result_.down_detections = res_after.down_detections - res_before_.down_detections;
  result_.migration_marked_bytes =
      res_after.migration_marked_bytes - res_before_.migration_marked_bytes;
  result_.overload_rejections = res_after.overload_rejections - res_before_.overload_rejections;
  result_.budget_denied = res_after.budget_denied - res_before_.budget_denied;
  result_.breaker_opens = res_after.breaker_opens - res_before_.breaker_opens;
  result_.breaker_fast_fails = res_after.breaker_fast_fails - res_before_.breaker_fast_fails;
  result_.deadline_giveups = res_after.deadline_giveups - res_before_.deadline_giveups;
  const pfs::PfsModel::ServerOverloadTotals srv_after = model_.server_overload_totals();
  result_.server_overload_rejected = srv_after.rejected - srv_before_.rejected;
  result_.server_shed = srv_after.shed - srv_before_.shed;
  return result_;
}

void ExecutionDrivenSimulator::advance(std::int32_t rank) {
  auto& state = ranks_[static_cast<std::size_t>(rank)];
  auto op = state.stream->next();
  if (!op) {
    state.done = true;
    state.finish = engine_.now();
    --active_ranks_;
    // A shrinking-communicator barrier: ranks that exited no longer
    // participate, so symmetric workloads with early-exiting ranks cannot
    // deadlock the rest.
    if (barrier_waiting_ > 0 && barrier_waiting_ == active_ranks_) release_barrier();
    if (active_ranks_ == 0 && external_drive_) {
      // Externally driven run: nobody calls engine_.run() on our behalf
      // after the workload, so kick off the cache quiescence flush from the
      // completing event and tell the owner (the facility cell) we're done.
      if (tier_ != nullptr) tier_->flush_all();
      if (on_complete_) on_complete_();
    }
    return;
  }
  issue(rank, std::move(*op));
}

void ExecutionDrivenSimulator::issue(std::int32_t rank, workload::Op op) {
  using K = workload::OpKind;
  const SimTime start = engine_.now();
  const pfs::ClientId client = client_of(rank);
  switch (op.kind) {
    case K::kCompute: {
      engine_.schedule_after(op.think_time, [this, rank, op, start] {
        complete_op(rank, op, start, true);
      });
      return;
    }
    case K::kBarrier: {
      ++barrier_waiting_;
      auto& state = ranks_[static_cast<std::size_t>(rank)];
      state.at_barrier = true;
      state.barrier_arrival = start;
      if (barrier_waiting_ == active_ranks_) release_barrier();
      return;
    }
    case K::kRead:
    case K::kWrite: {
      const bool is_write = op.kind == K::kWrite;
      if (tier_ != nullptr) {
        auto done = [this, rank, op, start, is_write](bool ok, Bytes hit_bytes) {
          if (sink_ != nullptr) {
            // One kCache annotation per data op: size = bytes the cache
            // served (read hits) or absorbed (write-back). Replay and
            // profiling filter on kPosix, so these are purely additive.
            trace::TraceEvent e;
            e.layer = trace::Layer::kCache;
            e.op = is_write ? trace::OpKind::kWrite : trace::OpKind::kRead;
            e.rank = rank;
            e.path = op.path;
            e.offset = op.offset;
            e.size = hit_bytes.count();
            e.start = start;
            e.end = engine_.now();
            e.ok = ok;
            sink_->record(e);
          }
          complete_op(rank, op, start, ok);
        };
        if (is_write) {
          tier_->write(rank, op.path, layout_of(op.path), op.offset, op.size, done);
        } else {
          tier_->read(rank, op.path, layout_of(op.path), op.offset, op.size, done);
        }
        return;
      }
      model_.io(client, op.path, layout_of(op.path), op.offset, op.size, is_write,
                [this, rank, op, start](pfs::IoResult result) {
                  complete_op(rank, op, start, result.ok);
                });
      return;
    }
    case K::kCreate:
    case K::kOpen:
    case K::kStat:
    case K::kMkdir:
    case K::kUnlink:
    case K::kReaddir:
    case K::kClose:
    case K::kFsync: {
      pfs::MetaOp meta_op;
      switch (op.kind) {
        case K::kCreate: meta_op = pfs::MetaOp::kCreate; break;
        case K::kOpen: meta_op = pfs::MetaOp::kOpen; break;
        case K::kStat: meta_op = pfs::MetaOp::kStat; break;
        case K::kMkdir: meta_op = pfs::MetaOp::kMkdir; break;
        case K::kUnlink: meta_op = pfs::MetaOp::kUnlink; break;
        case K::kReaddir: meta_op = pfs::MetaOp::kReaddir; break;
        // fsync has no MDS meaning in this model; charge it as a close-cost
        // round trip (the commit RPC).
        case K::kFsync:
        case K::kClose: meta_op = pfs::MetaOp::kClose; break;
        default: meta_op = pfs::MetaOp::kStat; break;
      }
      const std::optional<pfs::StripeLayout> layout =
          op.kind == K::kCreate ? std::optional<pfs::StripeLayout>(config_.layout)
                                : std::nullopt;
      if (tier_ != nullptr && op.kind == K::kUnlink) tier_->invalidate_path(op.path);
      auto issue_meta = [this, client, meta_op, rank, op, start, layout] {
        model_.meta(client, meta_op, op.path,
                    [this, rank, op, start](pfs::MetaResult result) {
                      // Re-creating an existing file behaves like O_CREAT
                      // without O_EXCL, and mkdir like mkdir -p: success.
                      // (The measured path applies the same tolerance.)
                      const bool ok =
                          result.ok() ||
                          ((op.kind == K::kCreate || op.kind == K::kMkdir) &&
                           result.status == pfs::MetaStatus::kExists);
                      if (result.inode.has_value()) {
                        layouts_[op.path] = result.inode->layout;
                      }
                      complete_op(rank, op, start, ok);
                    },
                    layout);
      };
      if (tier_ != nullptr && (op.kind == K::kFsync || op.kind == K::kClose)) {
        // Write-back barrier: the commit RPC is issued only once every dirty
        // page of the file has landed (C1: flush-on-close/fsync).
        tier_->flush_path(rank, op.path, std::move(issue_meta));
        return;
      }
      issue_meta();
      return;
    }
  }
}

void ExecutionDrivenSimulator::complete_op(std::int32_t rank, const workload::Op& op,
                                           SimTime start, bool ok) {
  const SimTime end = engine_.now();
  ++result_.ops;
  if (!ok) ++result_.failed_ops;
  using K = workload::OpKind;
  switch (op.kind) {
    case K::kRead:
      ++result_.data_ops;
      result_.bytes_read += op.size;
      result_.read_time += end - start;
      break;
    case K::kWrite:
      ++result_.data_ops;
      result_.bytes_written += op.size;
      result_.write_time += end - start;
      break;
    case K::kCompute:
    case K::kBarrier:
      break;
    default:
      ++result_.meta_ops;
      result_.meta_time += end - start;
      break;
  }
  if (sink_ != nullptr && op.kind != K::kCompute) {
    trace::TraceEvent e;
    e.layer = trace::Layer::kPosix;
    e.op = to_trace_op(op.kind);
    e.rank = rank;
    e.path = op.path;
    e.offset = op.offset;
    e.size = op.size.count();
    e.start = start;
    e.end = end;
    e.ok = ok;
    sink_->record(e);
  }
  advance(rank);
}

void ExecutionDrivenSimulator::release_barrier() {
  barrier_waiting_ = 0;
  // Global barriers delimit DL epochs (the DLIO workload emits one after
  // every epoch): rotate the learned access set and start warming.
  if (tier_ != nullptr) tier_->epoch_mark();
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    if (!ranks_[r].at_barrier) continue;
    ranks_[r].at_barrier = false;
    const SimTime arrival = ranks_[r].barrier_arrival;
    const workload::Op barrier = workload::Op::barrier();
    engine_.schedule_after(SimTime::zero(), [this, r, barrier, arrival] {
      complete_op(static_cast<std::int32_t>(r), barrier, arrival, true);
    });
  }
}

}  // namespace pio::driver
