// PIOEval driver: execution-driven and trace-driven storage simulation.
//
// §IV.C.3: "the execution-driven simulation model is similar to trace-driven
// simulation except that the application under study and the simulation are
// interleaved, i.e., the workload produce and workload consume event streams
// are interleaved." The ExecutionDrivenSimulator pulls each rank's next
// operation only when its previous one completes inside the DES — no trace
// is ever materialized. Trace-driven simulation (§IV.C.2) is the same
// machinery fed by a workload reconstructed from a recorded trace (see
// pio::replay::workload_from_trace).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "cache/client_tier.hpp"
#include "common/types.hpp"
#include "pfs/pfs.hpp"
#include "sim/engine.hpp"
#include "trace/event.hpp"
#include "workload/op.hpp"

namespace pio::driver {

struct SimRunConfig {
  /// Layout used when the workload creates files (per-file override hooks
  /// can come from the DSL later).
  pfs::StripeLayout layout{};
  /// Abort if simulated time exceeds this (deadlock/bug guard).
  SimTime time_limit = SimTime::from_sec(86'400.0);
  /// Client-side cache tier (DESIGN.md §10). Disabled by default: every
  /// data op traverses the full simulated stack. When `cache.enabled`, reads
  /// and writes go through a ClientCacheTier in front of the PFS client
  /// path, fsync/close become write-back barriers, and each global barrier
  /// marks a DL epoch boundary for the epoch prefetcher.
  cache::CacheConfig cache{};
};

/// Aggregate result of one simulated run.
struct SimRunResult {
  SimTime makespan = SimTime::zero();      ///< first issue to last completion
  std::uint64_t ops = 0;
  std::uint64_t data_ops = 0;
  std::uint64_t meta_ops = 0;
  std::uint64_t failed_ops = 0;
  // Client-side resilience activity during this run (deltas of the model's
  // ResilienceStats; all zero on fault-free runs with the default policy).
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t giveups = 0;
  std::uint64_t failovers = 0;
  // Durability layer activity (zero unless durability tracking is enabled).
  std::uint64_t degraded_reads = 0;
  std::uint64_t data_lost_ops = 0;
  std::uint64_t rebuilds_completed = 0;
  Bytes rebuilt_bytes = Bytes::zero();
  // Cluster-membership activity (all zero when the cluster map is disabled).
  std::uint64_t stale_map_retries = 0;
  std::uint64_t map_refreshes = 0;
  std::uint64_t down_detections = 0;
  Bytes migration_marked_bytes = Bytes::zero();
  // Overload-control activity (all zero with the admission / budget /
  // breaker / deadline knobs at their off defaults; DESIGN.md §14).
  std::uint64_t overload_rejections = 0;     ///< attempts failed with kOverloaded
  std::uint64_t budget_denied = 0;           ///< retries denied by the token bucket
  std::uint64_t breaker_opens = 0;           ///< circuit-breaker open transitions
  std::uint64_t breaker_fast_fails = 0;      ///< chunks fast-failed client-side
  std::uint64_t deadline_giveups = 0;        ///< ops settled kDeadlineExceeded
  std::uint64_t server_overload_rejected = 0; ///< door bounces across MDS + OSTs
  std::uint64_t server_shed = 0;              ///< CoDel sheds across MDS + OSTs
  // Client cache tier activity (all zero when the cache is disabled).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_prefetch_issued = 0;
  std::uint64_t cache_prefetch_used = 0;
  std::uint64_t cache_prefetch_wasted = 0;
  std::uint64_t cache_writebacks = 0;
  std::uint64_t cache_writeback_failures = 0;
  std::uint64_t cache_absorbed_writes = 0;
  Bytes cache_hit_bytes = Bytes::zero();
  Bytes cache_miss_bytes = Bytes::zero();
  Bytes cache_writeback_bytes = Bytes::zero();
  Bytes bytes_read = Bytes::zero();
  Bytes bytes_written = Bytes::zero();
  SimTime read_time = SimTime::zero();     ///< summed per-op read latency
  SimTime write_time = SimTime::zero();
  SimTime meta_time = SimTime::zero();
  std::vector<SimTime> rank_finish;        ///< per-rank completion time

  [[nodiscard]] Bandwidth read_bandwidth() const {
    return observed_bandwidth(bytes_read, makespan);
  }
  [[nodiscard]] Bandwidth write_bandwidth() const {
    return observed_bandwidth(bytes_written, makespan);
  }
  [[nodiscard]] Bandwidth aggregate_bandwidth() const {
    return observed_bandwidth(bytes_read + bytes_written, makespan);
  }
  /// Page-granular cache hit rate in [0, 1]; 0 when the cache saw nothing.
  [[nodiscard]] double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(total);
  }
};

/// Runs a workload against a PFS model inside its DES engine.
///
/// Rank r of the workload is mapped to PFS client r % clients. Barriers
/// synchronize all workload ranks (SPMD semantics: every rank must execute
/// the same number of barriers, or the run aborts with a diagnostic).
class ExecutionDrivenSimulator {
 public:
  ExecutionDrivenSimulator(sim::Engine& engine, pfs::PfsModel& model,
                           SimRunConfig config = {});

  /// Simulate `workload` to completion. If `sink` is non-null, every
  /// simulated operation is emitted as a POSIX-layer TraceEvent with
  /// virtual timestamps — this is how the "measurement" phase of the
  /// closed loop observes the simulated testbed.
  SimRunResult run(const workload::Workload& workload, trace::Sink* sink = nullptr);

  /// External-drive mode, for composing many simulators into one facility
  /// run (eval::run_facility / sim::ShardedEngine): `begin` installs the
  /// workload and schedules every rank's first step on the engine but does
  /// not run it — the caller owns engine advancement. When the last rank
  /// finishes, the cache tier (if any) starts its quiescence flush and the
  /// `set_on_complete` hook fires from inside the completing event. Once the
  /// engine has fully drained, `collect` finalizes and returns the result
  /// (throwing the same stall diagnostic as `run` if ranks never finished).
  /// `run` itself is unaffected by this API — identical event sequence,
  /// identical digests.
  void begin(const workload::Workload& workload, trace::Sink* sink = nullptr);

  /// Hook invoked (at most once per begin) from the event in which the last
  /// rank finishes. External-drive mode only.
  void set_on_complete(std::function<void()> hook) { on_complete_ = std::move(hook); }

  /// True once every rank of the begun workload has finished.
  [[nodiscard]] bool completed() const { return active_ranks_ == 0 && !ranks_.empty(); }

  /// Finalize and return the result of a `begin`-driven run.
  SimRunResult collect();

  /// Subscribe to cache activity records of subsequent runs (no-op while
  /// the cache is disabled).
  void set_cache_observer(std::function<void(const cache::CacheRecord&)> observer) {
    cache_observer_ = std::move(observer);
  }

  /// The cache tier of the most recent run (nullptr when disabled).
  [[nodiscard]] const cache::ClientCacheTier* cache_tier() const { return tier_.get(); }

 private:
  struct RankState {
    std::unique_ptr<workload::RankStream> stream;
    bool done = false;
    bool at_barrier = false;
    SimTime barrier_arrival = SimTime::zero();
    SimTime finish = SimTime::zero();
  };

  /// Shared setup: reset state, build the cache tier, snapshot the model's
  /// stat baselines, schedule every rank's first step.
  void begin_impl(const workload::Workload& workload, trace::Sink* sink);
  /// Shared teardown: cache finalize + stats, makespan, model stat deltas.
  [[nodiscard]] SimRunResult collect_impl();

  void advance(std::int32_t rank);
  void issue(std::int32_t rank, workload::Op op);
  void complete_op(std::int32_t rank, const workload::Op& op, SimTime start, bool ok);
  void release_barrier();
  [[nodiscard]] pfs::ClientId client_of(std::int32_t rank) const;
  /// Layout for a path: cached from create/open, else the default.
  [[nodiscard]] const pfs::StripeLayout& layout_of(const std::string& path) const;

  sim::Engine& engine_;
  pfs::PfsModel& model_;
  SimRunConfig config_;
  trace::Sink* sink_ = nullptr;
  std::unique_ptr<cache::ClientCacheTier> tier_;
  std::function<void(const cache::CacheRecord&)> cache_observer_;
  std::vector<RankState> ranks_;
  std::map<std::string, pfs::StripeLayout> layouts_;
  std::uint64_t barrier_waiting_ = 0;
  std::uint64_t active_ranks_ = 0;
  SimRunResult result_;
  // External-drive (begin/collect) state. `run` keeps external_drive_ false
  // so its event sequence is untouched by the split.
  bool external_drive_ = false;
  std::function<void()> on_complete_;
  pfs::ResilienceStats res_before_{};
  pfs::PfsModel::ServerOverloadTotals srv_before_{};
  SimTime start_time_ = SimTime::zero();
};

}  // namespace pio::driver
