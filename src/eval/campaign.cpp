#include "eval/campaign.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/fnv.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "exec/pool.hpp"
#include "replay/trace_workload.hpp"
#include "trace/profiler.hpp"
#include "trace/tracer.hpp"

namespace pio::eval {

double CampaignIteration::mean_abs_pct_error() const {
  if (points.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& p : points) acc += p.abs_pct_error();
  return acc / static_cast<double>(points.size());
}

bool CampaignResult::converged() const {
  if (iterations.size() < 2) return true;
  return iterations.back().mean_abs_pct_error() <= iterations.front().mean_abs_pct_error();
}

std::string CampaignResult::to_string() const {
  std::ostringstream out;
  out << "# evaluation campaign (Fig. 4 closed loop)\n";
  TextTable table{{"iteration", "calibration", "mean |error|"}};
  for (const auto& it : iterations) {
    table.add_row({std::to_string(it.index), format_double(it.calibration_in_use, 4),
                   format_percent(it.mean_abs_pct_error())});
  }
  out << table.to_string();
  out << "final calibration factor: " << format_double(final_calibration, 4) << "\n";
  std::uint64_t failed = 0, retries = 0, timeouts = 0, giveups = 0, failovers = 0;
  std::uint64_t degraded = 0, lost = 0, rebuilds = 0;
  std::uint64_t stale = 0, refreshes = 0, detections = 0;
  Bytes rebuilt = Bytes::zero();
  Bytes migrated = Bytes::zero();
  for (const auto& it : iterations) {
    for (const auto& p : it.points) {
      failed += p.failed_ops;
      retries += p.retries;
      timeouts += p.timeouts;
      giveups += p.giveups;
      failovers += p.failovers;
      degraded += p.degraded_reads;
      lost += p.data_lost_ops;
      rebuilds += p.rebuilds_completed;
      rebuilt += p.rebuilt_bytes;
      stale += p.stale_map_retries;
      refreshes += p.map_refreshes;
      detections += p.down_detections;
      migrated += p.migration_marked_bytes;
    }
  }
  if (failed + retries + timeouts + giveups + failovers > 0) {
    out << "resilience (measured runs): failed_ops=" << failed << " retries=" << retries
        << " timeouts=" << timeouts << " giveups=" << giveups << " failovers=" << failovers
        << "\n";
  }
  if (degraded + lost + rebuilds + rebuilt.count() > 0) {
    out << "durability (measured runs): degraded_reads=" << degraded
        << " data_lost_ops=" << lost << " rebuilds_completed=" << rebuilds
        << " rebuilt=" << format_bytes(rebuilt) << "\n";
  }
  if (stale + refreshes + detections + migrated.count() > 0) {
    out << "membership (measured runs): stale_map_retries=" << stale
        << " map_refreshes=" << refreshes << " down_detections=" << detections
        << " migration_marked=" << format_bytes(migrated) << "\n";
  }
  std::uint64_t orej = 0, odenied = 0, oopens = 0, ofast = 0, odeadline = 0;
  std::uint64_t osrv_rej = 0, osrv_shed = 0;
  for (const auto& it : iterations) {
    for (const auto& p : it.points) {
      orej += p.overload_rejections;
      odenied += p.budget_denied;
      oopens += p.breaker_opens;
      ofast += p.breaker_fast_fails;
      odeadline += p.deadline_giveups;
      osrv_rej += p.server_overload_rejected;
      osrv_shed += p.server_shed;
    }
  }
  if (orej + odenied + oopens + ofast + odeadline + osrv_rej + osrv_shed > 0) {
    out << "overload (measured runs): rejected=" << orej << " budget_denied=" << odenied
        << " breaker_opens=" << oopens << " fast_fails=" << ofast
        << " deadline_giveups=" << odeadline << " server_rejected=" << osrv_rej
        << " server_shed=" << osrv_shed << "\n";
  }
  std::uint64_t chits = 0, cmisses = 0, cpf_issued = 0, cpf_used = 0, cpf_wasted = 0;
  std::uint64_t cwritebacks = 0, cabsorbed = 0;
  for (const auto& it : iterations) {
    for (const auto& p : it.points) {
      chits += p.cache_hits;
      cmisses += p.cache_misses;
      cpf_issued += p.cache_prefetch_issued;
      cpf_used += p.cache_prefetch_used;
      cpf_wasted += p.cache_prefetch_wasted;
      cwritebacks += p.cache_writebacks;
      cabsorbed += p.cache_absorbed_writes;
    }
  }
  if (chits + cmisses > 0) {
    out << "cache (measured runs): hits=" << chits << " misses=" << cmisses
        << " hit_rate=" << format_percent(static_cast<double>(chits) /
                                          static_cast<double>(chits + cmisses))
        << " prefetch=" << cpf_issued << "/" << cpf_used << "/" << cpf_wasted
        << " (issued/used/wasted) writebacks=" << cwritebacks
        << " absorbed_writes=" << cabsorbed << "\n";
  }
  return out.str();
}

namespace {

/// Seed-split phases (see pio::derive_seed): testbed measurement and
/// model simulation draw from disjoint streams for every (iteration,
/// workload) coordinate — `seed + iter` / `seed + 1000 + iter` arithmetic
/// collided at >= 1000 iterations.
enum SeedPhase : std::uint64_t { kMeasurePhase = 1, kSimulatePhase = 2 };

/// One execution-driven run on a fresh engine + PFS instance.
driver::SimRunResult run_on(const CampaignConfig& config, const pfs::PfsConfig& system,
                            const workload::Workload& workload, std::uint64_t seed,
                            trace::Sink* sink) {
  sim::Engine engine{seed};
  pfs::PfsModel model{engine, system};
  driver::SimRunConfig run_config;
  run_config.cache = config.cache;
  run_config.layout = config.layout;
  driver::ExecutionDrivenSimulator sim{engine, model, run_config};
  auto result = sim.run(workload, sink);
  // A leftover event here would mean the model leaked state into the next
  // measurement — exactly the kind of bug that corrupts replay fidelity.
  engine.assert_drained();
  // Invariant F2: every op abandoned by a retry timeout drained cleanly.
  model.assert_quiescent();
  return result;
}

}  // namespace

CampaignPoint evaluate_point(const CampaignConfig& config, const workload::Workload& workload,
                             double calibration, std::uint32_t iteration, std::uint64_t index,
                             trace::Profiler* profiler) {
  // Phase 1: measure on the testbed. The trace is the collected statistic;
  // the profiler only matters on the caller's final-iteration pass.
  trace::Tracer tracer;
  trace::MultiSink sinks;
  sinks.add(tracer);
  if (profiler != nullptr) sinks.add(*profiler);
  const auto measured = run_on(config, config.testbed, workload,
                               derive_seed(config.seed, kMeasurePhase, iteration, index), &sinks);

  // Phase 2: model — replay-based workload from the measured trace.
  replay::TraceReplayConfig replay_config;
  const auto replayable = replay::workload_from_trace(tracer.take(), replay_config);

  // Phase 3: simulate the replay on the model system.
  const auto simulated =
      run_on(config, config.model, *replayable,
             derive_seed(config.seed, kSimulatePhase, iteration, index), nullptr);

  CampaignPoint point;
  point.workload = workload.name();
  point.measured = measured.makespan;
  point.simulated_raw = simulated.makespan;
  point.failed_ops = measured.failed_ops;
  point.retries = measured.retries;
  point.timeouts = measured.timeouts;
  point.giveups = measured.giveups;
  point.failovers = measured.failovers;
  point.degraded_reads = measured.degraded_reads;
  point.data_lost_ops = measured.data_lost_ops;
  point.rebuilds_completed = measured.rebuilds_completed;
  point.rebuilt_bytes = measured.rebuilt_bytes;
  point.stale_map_retries = measured.stale_map_retries;
  point.map_refreshes = measured.map_refreshes;
  point.down_detections = measured.down_detections;
  point.migration_marked_bytes = measured.migration_marked_bytes;
  point.overload_rejections = measured.overload_rejections;
  point.budget_denied = measured.budget_denied;
  point.breaker_opens = measured.breaker_opens;
  point.breaker_fast_fails = measured.breaker_fast_fails;
  point.deadline_giveups = measured.deadline_giveups;
  point.server_overload_rejected = measured.server_overload_rejected;
  point.server_shed = measured.server_shed;
  point.cache_hits = measured.cache_hits;
  point.cache_misses = measured.cache_misses;
  point.cache_evictions = measured.cache_evictions;
  point.cache_prefetch_issued = measured.cache_prefetch_issued;
  point.cache_prefetch_used = measured.cache_prefetch_used;
  point.cache_prefetch_wasted = measured.cache_prefetch_wasted;
  point.cache_writebacks = measured.cache_writebacks;
  point.cache_absorbed_writes = measured.cache_absorbed_writes;
  point.predicted = SimTime::from_ns(
      static_cast<std::int64_t>(static_cast<double>(simulated.makespan.ns()) * calibration));
  return point;
}

std::uint64_t point_digest(const CampaignConfig& config, const CampaignPoint& point) {
  Fnv64 h;
  h.mix(config.seed);
  h.mix(point.workload);
  h.mix(static_cast<std::uint64_t>(point.measured.ns()));
  h.mix(static_cast<std::uint64_t>(point.simulated_raw.ns()));
  h.mix(static_cast<std::uint64_t>(point.predicted.ns()));
  h.mix(point.failed_ops);
  h.mix(point.retries);
  h.mix(point.timeouts);
  h.mix(point.giveups);
  h.mix(point.failovers);
  h.mix(point.degraded_reads);
  h.mix(point.data_lost_ops);
  h.mix(point.rebuilds_completed);
  h.mix(point.rebuilt_bytes.count());
  h.mix(point.stale_map_retries);
  h.mix(point.map_refreshes);
  h.mix(point.down_detections);
  h.mix(point.migration_marked_bytes.count());
  h.mix(point.overload_rejections);
  h.mix(point.budget_denied);
  h.mix(point.breaker_opens);
  h.mix(point.breaker_fast_fails);
  h.mix(point.deadline_giveups);
  h.mix(point.server_overload_rejected);
  h.mix(point.server_shed);
  h.mix(point.cache_hits);
  h.mix(point.cache_misses);
  h.mix(point.cache_evictions);
  h.mix(point.cache_prefetch_issued);
  h.mix(point.cache_prefetch_used);
  h.mix(point.cache_prefetch_wasted);
  h.mix(point.cache_writebacks);
  h.mix(point.cache_absorbed_writes);
  return h.digest();
}

CampaignResult Campaign::run(const std::vector<const workload::Workload*>& sweep) {
  if (sweep.empty()) throw std::invalid_argument("Campaign::run: empty sweep");
  CampaignResult result;
  double calibration = 1.0;

  /// Everything one sweep point produces; merged in submission order below.
  struct PointOutcome {
    CampaignPoint point;
    double ratio = 0.0;
    bool has_ratio = false;
    trace::Profile profile;  // populated on the final iteration only
  };

  exec::Pool pool{static_cast<int>(config_.threads)};
  trace::Profiler final_profiler;
  for (std::uint32_t iter = 0; iter < config_.iterations; ++iter) {
    CampaignIteration iteration;
    iteration.index = iter;
    iteration.calibration_in_use = calibration;
    const bool final_iter = iter + 1 == config_.iterations;
    const double calibration_now = calibration;

    // Each workload's measure→replay→simulate chain is one independent task
    // on fresh engines with seeds derived from (seed, phase, iter, w), so
    // the sweep fans out across threads while the merged outcome stays
    // byte-identical at any thread count. The calibration feedback after
    // the merge is the per-iteration barrier.
    auto outcomes = pool.map_ordered(sweep.size(), [&, iter, final_iter,
                                                    calibration_now](std::size_t w) {
      PointOutcome out;
      trace::Profiler profiler;
      out.point = evaluate_point(config_, *sweep[w], calibration_now, iter, w,
                                 final_iter ? &profiler : nullptr);
      if (out.point.simulated_raw > SimTime::zero()) {
        out.ratio = out.point.measured.sec() / out.point.simulated_raw.sec();
        out.has_ratio = true;
      }
      if (final_iter) out.profile = profiler.snapshot();
      return out;
    });

    // Merge in submission order: float accumulation order and profile merge
    // order are fixed regardless of which thread finished first.
    double ratio_sum = 0.0;
    std::size_t ratio_n = 0;
    for (PointOutcome& out : outcomes) {
      if (out.has_ratio) {
        ratio_sum += out.ratio;
        ++ratio_n;
      }
      if (final_iter) final_profiler.absorb(out.profile);
      iteration.points.push_back(std::move(out.point));
    }
    result.iterations.push_back(std::move(iteration));

    // Feedback: move the calibration toward the observed mean ratio.
    if (ratio_n > 0) {
      const double observed = ratio_sum / static_cast<double>(ratio_n);
      calibration += config_.calibration_gain * (observed - calibration);
    }
  }
  result.final_calibration = calibration;
  result.profile = final_profiler.snapshot();
  return result;
}

}  // namespace pio::eval
