// PIOEval eval: the iterative evaluation loop of Fig. 4.
//
// "Traditionally, the process of understanding I/O behavior and performance
// for given applications or storage systems is performed iteratively and
// empirically in a closed loop fashion. The I/O evaluation cycle consists
// of three main phases: (1) Measurements and Statistics Collection, (2)
// Modeling and Prediction, and (3) Simulation" — with dashed feedback
// arrows between them.
//
// The Campaign operationalizes one full loop:
//   measure   — run every workload of the sweep on the *testbed* system
//               (a reference PFS configuration standing in for the real
//               machine), recording traces and profiles;
//   model     — convert each trace into a replayable workload (replay-based
//               modeling, §IV.B.3) and maintain a calibration factor for
//               the simulator;
//   simulate  — replay on the *model* system (a possibly mis-calibrated
//               PFS configuration) and predict the testbed makespan;
//   feedback  — compare prediction vs measurement, update the calibration,
//               and iterate. Prediction error must shrink across
//               iterations (experiment Fig. 4).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "driver/sim_driver.hpp"
#include "pfs/pfs.hpp"
#include "trace/profiler.hpp"
#include "workload/op.hpp"

namespace pio::eval {

struct CampaignConfig {
  /// The reference system ("the machine we can measure").
  pfs::PfsConfig testbed{};
  /// The simulation model of it — typically coarser or mis-calibrated;
  /// the loop's job is to drive its predictions toward the measurements.
  pfs::PfsConfig model{};
  std::uint32_t iterations = 4;
  std::uint64_t seed = 1;
  /// Calibration learning rate in (0, 1]: 1 jumps straight to the observed
  /// ratio, smaller values smooth over noisy sweeps.
  double calibration_gain = 0.7;
  /// Client cache tier, applied to testbed and model runs alike — a
  /// first-class sweep axis (policy, capacity, prefetcher, scope).
  cache::CacheConfig cache{};
  /// Stripe layout for files the workloads create (the driver's create
  /// layout wins over the MDS default) — lets durability campaigns run
  /// replicated without touching each workload.
  pfs::StripeLayout layout{};
  /// Worker threads for the per-iteration sweep fan-out (each workload's
  /// measure→replay→simulate chain is one independent task on its own
  /// engines and derived seeds). 0 resolves via exec::resolve_threads
  /// (PIO_THREADS, else serial). The CampaignResult is byte-identical at
  /// any thread count; the calibration feedback is the iteration barrier.
  std::uint32_t threads = 0;
};

/// One sweep point in one iteration.
struct CampaignPoint {
  std::string workload;
  SimTime measured = SimTime::zero();
  SimTime simulated_raw = SimTime::zero();   ///< model output before calibration
  SimTime predicted = SimTime::zero();       ///< calibrated prediction
  // Fault/resilience activity on the measurement (testbed) run. All zero on
  // fault-free campaigns.
  std::uint64_t failed_ops = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t giveups = 0;
  std::uint64_t failovers = 0;
  // Durability-layer activity (zero unless durability tracking is enabled).
  std::uint64_t degraded_reads = 0;
  std::uint64_t data_lost_ops = 0;
  std::uint64_t rebuilds_completed = 0;
  Bytes rebuilt_bytes = Bytes::zero();
  // Cluster-membership activity (zero when the cluster map is disabled).
  std::uint64_t stale_map_retries = 0;
  std::uint64_t map_refreshes = 0;
  std::uint64_t down_detections = 0;
  Bytes migration_marked_bytes = Bytes::zero();
  // Overload-control activity on the measurement run (zero with the
  // admission / budget / breaker / deadline knobs off; DESIGN.md §14).
  std::uint64_t overload_rejections = 0;
  std::uint64_t budget_denied = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_fast_fails = 0;
  std::uint64_t deadline_giveups = 0;
  std::uint64_t server_overload_rejected = 0;
  std::uint64_t server_shed = 0;
  // Client cache activity on the measurement run (zero with the cache off).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_prefetch_issued = 0;
  std::uint64_t cache_prefetch_used = 0;
  std::uint64_t cache_prefetch_wasted = 0;
  std::uint64_t cache_writebacks = 0;
  std::uint64_t cache_absorbed_writes = 0;
  [[nodiscard]] double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(total);
  }
  [[nodiscard]] double abs_pct_error() const {
    if (measured <= SimTime::zero()) return 0.0;
    return std::abs(predicted.sec() - measured.sec()) / measured.sec();
  }
};

struct CampaignIteration {
  std::uint32_t index = 0;
  double calibration_in_use = 1.0;
  std::vector<CampaignPoint> points;
  [[nodiscard]] double mean_abs_pct_error() const;
};

struct CampaignResult {
  std::vector<CampaignIteration> iterations;
  double final_calibration = 1.0;
  /// Darshan-like profile of the final measurement pass.
  trace::Profile profile;
  [[nodiscard]] std::string to_string() const;
  /// True when the error sequence is non-increasing from first to last.
  [[nodiscard]] bool converged() const;
};

/// Evaluate one sweep point: measure `workload` on the testbed, derive a
/// replay workload from the trace, simulate the replay on the model, and
/// fold every counter into a CampaignPoint whose `predicted` applies the
/// given calibration. This is the body of one Campaign::run task, exposed
/// so the campaign service (DESIGN.md §15) can compute points one at a
/// time with byte-identical results: seeds derive from
/// `derive_seed(config.seed, phase, iteration, index)` exactly as inside
/// `Campaign::run`. When `profiler` is non-null it observes the
/// measurement pass (the final-iteration profile path).
[[nodiscard]] CampaignPoint evaluate_point(const CampaignConfig& config,
                                           const workload::Workload& workload,
                                           double calibration, std::uint32_t iteration,
                                           std::uint64_t index,
                                           trace::Profiler* profiler = nullptr);

/// The per-point determinism digest: an FNV-1a fold of the campaign seed
/// and every field a computed CampaignPoint carries, in the canonical
/// order the whole-campaign hash uses (tests/test_exec.cpp folds one of
/// these per point). Two equal digests mean byte-identical points — this
/// is the service result cache's byte-identity oracle, and its value is
/// pinned by golden tests, so treat the field order as frozen: new
/// CampaignPoint fields append, never reorder.
[[nodiscard]] std::uint64_t point_digest(const CampaignConfig& config,
                                         const CampaignPoint& point);

class Campaign {
 public:
  explicit Campaign(CampaignConfig config) : config_(std::move(config)) {}

  /// Run the full closed loop over a sweep of workloads. The workloads are
  /// borrowed and must be re-streamable (every Workload in this library is).
  CampaignResult run(const std::vector<const workload::Workload*>& sweep);

 private:
  CampaignConfig config_;
};

}  // namespace pio::eval
