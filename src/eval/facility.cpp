#include "eval/facility.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "common/fnv.hpp"
#include "common/rng.hpp"
#include "common/seed_streams.hpp"
#include "exec/pool.hpp"
#include "sim/shard.hpp"

namespace pio::eval {

namespace {

/// Seed-derivation phase for facility domain engines. Phases 1–2 belong to
/// the campaign loop (campaign.cpp SeedPhase); this claims the next value so
/// facility domains never share engine seeds with campaign runs.
constexpr std::uint64_t kFacilityDomainPhase = 3;

void mix_result(Fnv64& fnv, const driver::SimRunResult& r) {
  fnv.mix(static_cast<std::uint64_t>(r.makespan.ns()));
  fnv.mix(r.ops);
  fnv.mix(r.data_ops);
  fnv.mix(r.meta_ops);
  fnv.mix(r.failed_ops);
  fnv.mix(r.retries);
  fnv.mix(r.timeouts);
  fnv.mix(r.giveups);
  fnv.mix(r.failovers);
  fnv.mix(r.degraded_reads);
  fnv.mix(r.data_lost_ops);
  fnv.mix(r.rebuilds_completed);
  fnv.mix(static_cast<std::uint64_t>(r.rebuilt_bytes.count()));
  fnv.mix(r.stale_map_retries);
  fnv.mix(r.map_refreshes);
  fnv.mix(r.down_detections);
  fnv.mix(static_cast<std::uint64_t>(r.migration_marked_bytes.count()));
  fnv.mix(r.overload_rejections);
  fnv.mix(r.budget_denied);
  fnv.mix(r.breaker_opens);
  fnv.mix(r.breaker_fast_fails);
  fnv.mix(r.deadline_giveups);
  fnv.mix(r.server_overload_rejected);
  fnv.mix(r.server_shed);
  fnv.mix(r.cache_hits);
  fnv.mix(r.cache_misses);
  fnv.mix(r.cache_evictions);
  fnv.mix(r.cache_prefetch_issued);
  fnv.mix(r.cache_prefetch_used);
  fnv.mix(r.cache_prefetch_wasted);
  fnv.mix(r.cache_writebacks);
  fnv.mix(r.cache_writeback_failures);
  fnv.mix(r.cache_absorbed_writes);
  fnv.mix(static_cast<std::uint64_t>(r.cache_hit_bytes.count()));
  fnv.mix(static_cast<std::uint64_t>(r.cache_miss_bytes.count()));
  fnv.mix(static_cast<std::uint64_t>(r.cache_writeback_bytes.count()));
  fnv.mix(static_cast<std::uint64_t>(r.bytes_read.count()));
  fnv.mix(static_cast<std::uint64_t>(r.bytes_written.count()));
  fnv.mix(static_cast<std::uint64_t>(r.read_time.ns()));
  fnv.mix(static_cast<std::uint64_t>(r.write_time.ns()));
  fnv.mix(static_cast<std::uint64_t>(r.meta_time.ns()));
  fnv.mix(r.rank_finish.size());
  for (const SimTime t : r.rank_finish) fnv.mix(static_cast<std::uint64_t>(t.ns()));
}

}  // namespace

std::uint64_t FacilityResult::digest() const {
  Fnv64 fnv;
  fnv.mix(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    fnv.mix(i);
    fnv.mix(static_cast<std::uint64_t>(cells[i].started.ns()));
    fnv.mix(static_cast<std::uint64_t>(cells[i].completed.ns()));
    mix_result(fnv, cells[i].result);
  }
  fnv.mix(completion_order.size());
  for (const std::uint32_t c : completion_order) fnv.mix(c);
  fnv.mix(static_cast<std::uint64_t>(makespan.ns()));
  fnv.mix(windows);
  fnv.mix(events);
  fnv.mix(messages);
  return fnv.digest();
}

FacilityResult run_facility(const FacilityConfig& config,
                            const std::vector<FacilityCell>& cells) {
  if (cells.empty()) throw std::invalid_argument("run_facility: no cells");
  for (const FacilityCell& cell : cells) {
    if (cell.workload == nullptr) {
      throw std::invalid_argument("run_facility: cell without a workload");
    }
  }
  const auto n_cells = static_cast<std::uint32_t>(cells.size());
  const std::uint32_t coordinator = n_cells;  // domain index past the cells

  std::vector<std::uint64_t> domain_seeds;
  domain_seeds.reserve(n_cells + 1);
  for (std::uint32_t d = 0; d <= n_cells; ++d) {
    domain_seeds.push_back(derive_seed(config.seed, kFacilityDomainPhase, 0, d));
  }
  sim::ShardedConfig shard_config;
  shard_config.shards = config.shards;
  shard_config.lookahead = config.lookahead;
  shard_config.time_limit = config.time_limit;
  shard_config.queue = config.queue;
  shard_config.payload_arenas = config.payload_arenas;
  sim::ShardedEngine se{std::move(domain_seeds), shard_config};

  // Build each cell against its own domain engine. Models are heap-held:
  // PfsModel and the simulator pin their engine by reference.
  std::vector<std::unique_ptr<pfs::PfsModel>> models;
  std::vector<std::unique_ptr<driver::ExecutionDrivenSimulator>> sims;
  models.reserve(n_cells);
  sims.reserve(n_cells);
  FacilityResult out;
  out.cells.resize(n_cells);
  for (std::uint32_t i = 0; i < n_cells; ++i) {
    pfs::PfsConfig system = cells[i].system;
    system.domain_tag = i;
    models.push_back(std::make_unique<pfs::PfsModel>(se.domain(i), system));
    sims.push_back(std::make_unique<driver::ExecutionDrivenSimulator>(
        se.domain(i), *models[i], cells[i].run));
    // Completion notice rides the inter-cell fabric back to the coordinator,
    // which stamps the facility-observed completion time and order.
    sims[i]->set_on_complete([&se, &out, coordinator, i, la = config.lookahead] {
      se.send(i, coordinator, la, [&se, &out, coordinator, i] {
        out.cells[i].completed = se.domain(coordinator).now();
        out.completion_order.push_back(i);
      });
    });
  }

  // Dispatch: the coordinator launches every cell's campaign across the
  // fabric, jittered per cell from a registry stream substream so adding a
  // cell never moves another cell's arrival.
  Rng arrivals{config.seed, seeds::kFacilityArrivalStream};
  for (std::uint32_t i = 0; i < n_cells; ++i) {
    const std::uint64_t spread_ns =
        static_cast<std::uint64_t>(config.arrival_spread.ns()) + 1;
    const auto jitter = SimTime::from_ns(
        static_cast<std::int64_t>(arrivals.substream(i).next_below(spread_ns)));
    se.send(coordinator, i, config.lookahead + jitter, [&se, &sims, &cells, &out, i] {
      out.cells[i].started = se.domain(i).now();
      sims[i]->begin(*cells[i].workload, nullptr);
    });
  }

  exec::Pool pool{config.threads};
  se.run(pool);

  for (std::uint32_t i = 0; i < n_cells; ++i) {
    out.cells[i].result = sims[i]->collect();  // throws on a stalled cell
    models[i]->assert_quiescent();
    if (out.cells[i].completed > out.makespan) out.makespan = out.cells[i].completed;
  }
  se.assert_drained();
  out.windows = se.windows();
  out.events = se.events_executed();
  out.messages = se.messages_delivered();
  return out;
}

}  // namespace pio::eval
