// PIOEval eval: facility-scale composition — many cells, one parallel run.
//
// The campaign layer (campaign.hpp) parallelises *across* independent
// simulation runs; this layer parallelises *within* one: a facility is a set
// of simulation cells — each a full PFS model plus an execution-driven
// workload on its own engine — coupled through a coordinator domain over a
// simulated inter-cell fabric, all advancing in lockstep under
// sim::ShardedEngine (DESIGN.md §16). That is the shape of ROADMAP item 1
// (multi-tenant facility, paper §V) on the parallel core of ROADMAP item 2:
// what-if questions like "what does tenant B's burst do to tenant A's
// checkpoint?" become one deterministic run instead of a hand-stitched
// sequence of independent ones.
//
// The determinism contract carries over whole: FacilityResult::digest() is
// byte-identical at every shard count (1/2/4/8 proven by test_parsim) and
// for both queue kinds, with randomness confined to the per-cell arrival
// jitter drawn from seeds::kFacilityArrivalStream substreams.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "driver/sim_driver.hpp"
#include "pfs/pfs.hpp"
#include "sim/calendar_queue.hpp"
#include "workload/op.hpp"

namespace pio::eval {

/// One tenant cell: a PFS system plus the workload run against it. The
/// workload is borrowed and must outlive `run_facility`.
struct FacilityCell {
  pfs::PfsConfig system{};
  driver::SimRunConfig run{};
  const workload::Workload* workload = nullptr;
};

struct FacilityConfig {
  std::uint64_t seed = 1;
  /// Logical engine shards (clamped to the domain count). 1 is the serial
  /// baseline — same protocol, same digest.
  std::uint32_t shards = 1;
  /// exec::Pool worker threads; 0 resolves via PIO_THREADS (else serial).
  int threads = 0;
  /// Inter-cell fabric latency: the conservative lookahead. Cells interact
  /// no faster than this, so it bounds how far domains run unsynchronised.
  SimTime lookahead = SimTime::from_us(100.0);
  /// Cell campaign arrivals are jittered uniformly over [0, spread] —
  /// facilities do not start every tenant on the same nanosecond.
  SimTime arrival_spread = SimTime::from_ms(1.0);
  /// Simulated-time abort guard for the whole facility run.
  SimTime time_limit = SimTime::from_sec(86'400.0);
  /// Scheduler queue for every domain engine (perf knob, digest-neutral).
  sim::QueueKind queue = sim::QueueKind::kQuadHeap;
  /// Per-domain event-payload bump arenas recycled at window barriers.
  bool payload_arenas = true;
};

/// Per-cell outcome, timestamped on the facility clock.
struct FacilityCellOutcome {
  driver::SimRunResult result;
  SimTime started = SimTime::zero();    ///< cell campaign begin (cell clock)
  SimTime completed = SimTime::zero();  ///< coordinator observed completion
};

struct FacilityResult {
  std::vector<FacilityCellOutcome> cells;
  /// Cell indices in the order the coordinator observed their completions.
  std::vector<std::uint32_t> completion_order;
  SimTime makespan = SimTime::zero();  ///< last coordinator-observed completion
  std::uint64_t windows = 0;           ///< safe windows (shard-count-invariant)
  std::uint64_t events = 0;            ///< events executed across all domains
  std::uint64_t messages = 0;          ///< cross-domain messages delivered
  /// FNV-1a fold over every field above in canonical order — the sharded
  /// determinism oracle (field order frozen: append, never reorder).
  [[nodiscard]] std::uint64_t digest() const;
};

/// Run `cells` to completion as one facility. Throws on a stalled cell
/// (mismatched barriers or time limit), and asserts every domain drained.
[[nodiscard]] FacilityResult run_facility(const FacilityConfig& config,
                                          const std::vector<FacilityCell>& cells);

}  // namespace pio::eval
