#include "exec/pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

namespace pio::exec {

namespace {

thread_local bool tl_in_task = false;

/// RAII task-context marker: makes nested submission detectable (and
/// rejected) identically in serial and parallel execution.
class TaskScope {
 public:
  TaskScope() { tl_in_task = true; }
  ~TaskScope() { tl_in_task = false; }
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;
};

}  // namespace

int resolve_threads(int requested) {
  long value = requested;
  if (value <= 0) {
    if (const char* env = std::getenv("PIO_THREADS"); env != nullptr && *env != '\0') {
      if (std::string(env) == "auto") {
        value = static_cast<long>(std::thread::hardware_concurrency());
      } else {
        char* end = nullptr;
        value = std::strtol(env, &end, 10);
        if (end == nullptr || *end != '\0') value = 0;  // garbage: fall back to serial
      }
    }
  }
  if (value <= 0) value = 1;
  return static_cast<int>(std::min<long>(value, 256));
}

/// One fan-out. Shared ownership between the submitting thread and every
/// worker that touches it: a worker waking up late (after the job already
/// completed) still holds a live object when it observes there is nothing
/// left to claim.
struct Job {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors;
  std::size_t completed = 0;  // guarded by Pool::Impl::mutex
};

struct Pool::Impl {
  std::mutex mutex;
  std::condition_variable wake;       // workers: new job or stop
  std::condition_variable finished;   // submitter: job fully drained
  std::shared_ptr<Job> job;           // current job; epoch bumps on publish
  std::uint64_t epoch = 0;
  bool stop = false;
  std::vector<std::thread> workers;  // piolint: allow(P1) — pool internals

  static void run_one(Job& job, std::size_t i) {
    TaskScope scope;
    try {
      (*job.body)(i);
    } catch (...) {
      job.errors[i] = std::current_exception();
    }
  }

  /// Claim and run tasks until the job is exhausted; account completions.
  void drain(const std::shared_ptr<Job>& job_ref) {
    std::size_t done = 0;
    for (;;) {
      const std::size_t i = job_ref->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job_ref->n) break;
      run_one(*job_ref, i);
      ++done;
    }
    if (done > 0) {
      std::lock_guard<std::mutex> lock(mutex);
      job_ref->completed += done;
      if (job_ref->completed == job_ref->n) finished.notify_all();
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      wake.wait(lock, [&] { return stop || epoch != seen; });
      if (stop) return;
      seen = epoch;
      // `job` may already be null: if the submitter (plus other workers)
      // drained everything and for_all reset it before this worker won the
      // mutex, the epoch still looks new but there is nothing to claim.
      const std::shared_ptr<Job> current = job;
      lock.unlock();
      if (current) drain(current);
      lock.lock();
    }
  }
};

Pool::Pool(int threads) : impl_(new Impl), threads_(resolve_threads(threads)) {
  impl_->workers.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 1; w < threads_; ++w) {
    // piolint: allow(P1) — the pool is the sanctioned owner of raw threads.
    impl_->workers.emplace_back(std::thread([this] { impl_->worker_loop(); }));
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->wake.notify_all();
  // piolint: allow(P1) — joining the pool's own workers.
  for (std::thread& worker : impl_->workers) worker.join();
  delete impl_;
}

bool Pool::in_task() { return tl_in_task; }

void Pool::for_all(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (in_task()) {
    throw std::logic_error(
        "exec::Pool: nested submission from a pool task (tasks must be independent "
        "leaf units of work)");
  }
  if (n == 0) return;

  const auto job = std::make_shared<Job>();
  job->body = &body;
  job->n = n;
  job->errors.resize(n);

  if (impl_->workers.empty() || n == 1) {
    // Serial path: same wrapper (task scope, per-index error capture), so
    // semantics cannot depend on the thread count.
    for (std::size_t i = 0; i < n; ++i) Impl::run_one(*job, i);
    job->completed = n;
  } else {
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      impl_->job = job;
      ++impl_->epoch;
    }
    // Targeted wake: a job with fewer tasks than workers needs at most n - 1
    // helpers (the submitter drains too). Waking the surplus workers would
    // only make them contend for the mutex, find nothing to claim, and go
    // back to sleep — measurable on the sharded engine's per-window
    // barriers, where n is the shard count and windows are short.
    const std::size_t helpers = std::min(n - 1, impl_->workers.size());
    if (helpers == impl_->workers.size()) {
      impl_->wake.notify_all();
    } else {
      for (std::size_t w = 0; w < helpers; ++w) impl_->wake.notify_one();
    }
    impl_->drain(job);  // the submitting thread is worker 0
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->finished.wait(lock, [&] { return job->completed == job->n; });
    impl_->job.reset();
  }

  // Deterministic propagation: every task ran; the lowest submission index
  // wins regardless of which thread hit it first.
  for (std::exception_ptr& error : job->errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace pio::exec
