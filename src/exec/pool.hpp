// PIOEval exec: deterministic fan-out of independent simulation runs.
//
// §IV.C's case for simulation only holds if campaigns over large parameter
// sweeps are cheap — the CODES/ROSS line of work the paper cites gets there
// by running many model instances concurrently. This pool is PIOEval's
// version of that: it fans *whole simulation runs* (each task constructs and
// owns its own `sim::Engine`, PFS model, and seeds) out across threads,
// while every `sim::Engine` itself stays single-threaded and sequential.
//
// Determinism contract (DESIGN.md §11):
//   - Tasks must be independent: no shared mutable state, all randomness
//     from seeds derived via `pio::derive_seed` before submission.
//   - Results are merged in submission order (`map_ordered`), so the caller
//     observes byte-identical output at any thread count.
//   - Exceptions are captured per task; after every task has run, the one
//     with the lowest submission index is rethrown — which exception the
//     caller sees does not depend on scheduling.
//   - Nested submission from inside a pool task throws std::logic_error at
//     any thread count (including 1), so a task that would deadlock an
//     8-thread pool fails identically in a serial run.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

namespace pio::exec {

/// Resolve a thread-count knob. Precedence: `requested` when > 0, then the
/// PIO_THREADS environment variable ("auto" = hardware concurrency), then 1
/// (serial). The result is clamped to [1, 256].
[[nodiscard]] int resolve_threads(int requested = 0);

/// Fixed-size worker pool. Construction spawns `threads - 1` workers (the
/// submitting thread participates in every job); a 1-thread pool spawns
/// nothing and runs tasks inline with identical semantics.
class Pool {
 public:
  /// `threads` <= 0 resolves via `resolve_threads` (PIO_THREADS, else 1).
  explicit Pool(int threads = 0);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  [[nodiscard]] int threads() const { return threads_; }

  /// True while the calling thread is executing a pool task (of any pool).
  [[nodiscard]] static bool in_task();

  /// Run `body(i)` for every i in [0, n) across the pool and block until
  /// all have finished. Execution order is unspecified; error semantics and
  /// completion are not. Rethrows the lowest-index captured exception after
  /// every task has run. Throws std::logic_error on nested submission.
  void for_all(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Run `fn(i)` for every i in [0, n) and return the results *in
  /// submission order* — the deterministic merge primitive campaigns build
  /// on. The result type must be default-constructible and movable.
  template <typename F>
  [[nodiscard]] auto map_ordered(std::size_t n, F&& fn)
      -> std::vector<std::invoke_result_t<F&, std::size_t>> {
    using R = std::invoke_result_t<F&, std::size_t>;
    static_assert(!std::is_void_v<R>, "use for_all for void tasks");
    std::vector<R> results(n);
    for_all(n, [&results, &fn](std::size_t i) { results[i] = fn(i); });
    return results;
  }

 private:
  struct Impl;
  Impl* impl_;  // pimpl: keeps <thread>/<mutex> machinery out of the header
  int threads_;
};

}  // namespace pio::exec
