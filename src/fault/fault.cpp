#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/check.hpp"

namespace pio::fault {

const char* to_string(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kOst: return "ost";
    case ComponentKind::kMds: return "mds";
    case ComponentKind::kComputeFabric: return "compute-fabric";
    case ComponentKind::kStorageFabric: return "storage-fabric";
    case ComponentKind::kBurstBuffer: return "burst-buffer";
  }
  return "?";
}

std::string to_string(const ComponentId& id) {
  return std::string(to_string(id.kind)) + "[" + std::to_string(id.index) + "]";
}

namespace {

FaultEvent make_event(ComponentId component, FaultKind kind, SimTime start, SimTime end,
                      double factor) {
  FaultEvent e;
  e.component = component;
  e.kind = kind;
  e.start = start;
  e.end = end;
  e.factor = factor;
  return e;
}

}  // namespace

FaultPlan& FaultPlan::ost_down(std::uint32_t ost, SimTime start, SimTime end) {
  events.push_back(make_event({ComponentKind::kOst, ost}, FaultKind::kDown, start, end, 1.0));
  return *this;
}

FaultPlan& FaultPlan::ost_straggler(std::uint32_t ost, SimTime start, SimTime end,
                                    double factor) {
  events.push_back(
      make_event({ComponentKind::kOst, ost}, FaultKind::kSlowdown, start, end, factor));
  return *this;
}

FaultPlan& FaultPlan::mds_down(SimTime start, SimTime end) {
  events.push_back(make_event({ComponentKind::kMds, 0}, FaultKind::kDown, start, end, 1.0));
  return *this;
}

FaultPlan& FaultPlan::mds_slowdown(SimTime start, SimTime end, double factor) {
  events.push_back(
      make_event({ComponentKind::kMds, 0}, FaultKind::kSlowdown, start, end, factor));
  return *this;
}

FaultPlan& FaultPlan::fabric_brownout(ComponentKind fabric, SimTime start, SimTime end,
                                      double factor) {
  if (fabric != ComponentKind::kComputeFabric && fabric != ComponentKind::kStorageFabric) {
    throw std::invalid_argument("FaultPlan::fabric_brownout: not a fabric component");
  }
  events.push_back(make_event({fabric, 0}, FaultKind::kSlowdown, start, end, factor));
  return *this;
}

FaultPlan& FaultPlan::bb_stall(std::uint32_t buffer, SimTime start, SimTime end) {
  events.push_back(
      make_event({ComponentKind::kBurstBuffer, buffer}, FaultKind::kDown, start, end, 1.0));
  return *this;
}

Timeline::Timeline(std::vector<FaultEvent> events) {
  for (const auto& e : events) {
    if (e.end <= e.start) {
      throw std::invalid_argument("fault::Timeline: event interval must have end > start (" +
                                  to_string(e.component) + ")");
    }
    if (e.kind == FaultKind::kSlowdown && e.factor <= 0.0) {
      throw std::invalid_argument("fault::Timeline: slowdown factor must be > 0 (" +
                                  to_string(e.component) + ")");
    }
    auto& component = components_[e.component.key()];
    if (e.kind == FaultKind::kDown) {
      component.down.push_back(Interval{e.start, e.end});
    } else {
      component.slow.push_back(e);
    }
    ++event_count_;
  }
  for (auto& [key, component] : components_) {
    // Merge overlapping/adjacent down intervals into a disjoint sorted set so
    // down()/down_until() are a single binary search.
    auto& down = component.down;
    std::sort(down.begin(), down.end(),
              [](const Interval& a, const Interval& b) { return a.start < b.start; });
    std::vector<Interval> merged;
    for (const auto& iv : down) {
      if (!merged.empty() && iv.start <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, iv.end);
      } else {
        merged.push_back(iv);
      }
    }
    down = std::move(merged);
    std::sort(component.slow.begin(), component.slow.end(),
              [](const FaultEvent& a, const FaultEvent& b) { return a.start < b.start; });
  }
}

const Timeline::Component* Timeline::find(ComponentId id) const {
  const auto it = components_.find(id.key());
  return it == components_.end() ? nullptr : &it->second;
}

bool Timeline::down(ComponentId id, SimTime t) const {
  const Component* component = find(id);
  if (component == nullptr || component->down.empty()) return false;
  // First interval starting after t; the candidate is its predecessor.
  auto it = std::upper_bound(component->down.begin(), component->down.end(), t,
                             [](SimTime v, const Interval& iv) { return v < iv.start; });
  if (it == component->down.begin()) return false;
  --it;
  return t < it->end;
}

SimTime Timeline::down_until(ComponentId id, SimTime t) const {
  const Component* component = find(id);
  if (component == nullptr) {
    throw std::logic_error("fault::Timeline::down_until: component not down: " + to_string(id));
  }
  auto it = std::upper_bound(component->down.begin(), component->down.end(), t,
                             [](SimTime v, const Interval& iv) { return v < iv.start; });
  if (it == component->down.begin() || t >= std::prev(it)->end) {
    throw std::logic_error("fault::Timeline::down_until: component not down: " + to_string(id));
  }
  return std::prev(it)->end;
}

SimTime Timeline::down_since(ComponentId id, SimTime t) const {
  const Component* component = find(id);
  if (component == nullptr) {
    throw std::logic_error("fault::Timeline::down_since: component not down: " + to_string(id));
  }
  auto it = std::upper_bound(component->down.begin(), component->down.end(), t,
                             [](SimTime v, const Interval& iv) { return v < iv.start; });
  if (it == component->down.begin() || t >= std::prev(it)->end) {
    throw std::logic_error("fault::Timeline::down_since: component not down: " + to_string(id));
  }
  return std::prev(it)->start;
}

std::vector<std::pair<SimTime, SimTime>> Timeline::down_intervals(ComponentId id) const {
  const Component* component = find(id);
  std::vector<std::pair<SimTime, SimTime>> out;
  if (component == nullptr) return out;
  out.reserve(component->down.size());
  for (const auto& iv : component->down) out.emplace_back(iv.start, iv.end);
  return out;
}

double Timeline::slowdown(ComponentId id, SimTime t) const {
  const Component* component = find(id);
  if (component == nullptr) return 1.0;
  double factor = 1.0;
  for (const auto& e : component->slow) {
    if (e.start > t) break;  // sorted by start: nothing later can be active
    if (t < e.end) factor *= e.factor;
  }
  return factor;
}

SimTime Timeline::scaled(ComponentId id, SimTime t, SimTime service) const {
  const double factor = slowdown(id, t);
  if (factor == 1.0) return service;
  return SimTime::from_sec_ceil(service.sec() * factor);
}

void Timeline::check_handler_allowed(ComponentId id, SimTime now) const {
  if constexpr (sim::check::kEnabled) {
    // Only pay for the detail string on the failure path.
    if (down(id, now)) {
      sim::check::handler_outside_down_interval(true, to_string(id).c_str());
    }
  } else {
    (void)id;
    (void)now;
  }
}

}  // namespace pio::fault
