// PIOEval fault: deterministic fault injection for the PFS/net/sim stack.
//
// Real campaigns are shaped by slow servers, dead OSTs, and degraded
// fabrics — the anomalous traces the paper's evaluation loop (Fig. 4) exists
// to analyze. This module scripts that weather: a `FaultPlan` is a list of
// component-scoped events (down intervals and service-time slowdowns) pinned
// to *simulated* time, and a `Timeline` answers point-in-time queries for the
// models ("is OST 3 down now?", "how slow is the MDS now?"). Everything is
// materialized before the run from the campaign seed, so two same-seed runs
// see byte-identical weather (piolint rule D1 bans wall-clock seeding).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/seed_streams.hpp"
#include "common/types.hpp"

namespace pio::fault {

/// Engine Rng stream id reserved for materializing stochastic fault plans;
/// claimed in the seed-stream registry (common/seed_streams.hpp, rule S1).
inline constexpr std::uint64_t kFaultRngStream = seeds::kFaultPlanStream;

enum class ComponentKind : std::uint8_t {
  kOst,
  kMds,
  kComputeFabric,
  kStorageFabric,
  kBurstBuffer,
};

[[nodiscard]] const char* to_string(ComponentKind kind);

/// A fault-addressable piece of the modelled system. `index` is the OST /
/// burst-buffer position; singleton components (MDS, fabrics) use index 0.
struct ComponentId {
  ComponentKind kind = ComponentKind::kOst;
  std::uint32_t index = 0;

  [[nodiscard]] std::uint64_t key() const {
    return (static_cast<std::uint64_t>(kind) << 32) | index;
  }
  friend bool operator==(const ComponentId&, const ComponentId&) = default;
};

[[nodiscard]] std::string to_string(const ComponentId& id);

enum class FaultKind : std::uint8_t {
  kDown,      ///< component rejects work during [start, end)
  kSlowdown,  ///< service times multiply by `factor` during [start, end)
};

/// One scripted event. Intervals are half-open [start, end) in sim time.
struct FaultEvent {
  ComponentId component{};
  FaultKind kind = FaultKind::kDown;
  SimTime start = SimTime::zero();
  SimTime end = SimTime::zero();
  double factor = 1.0;  ///< service-time multiplier (> 1 = slower), kSlowdown only
};

/// A scripted fault scenario. Build with the fluent helpers, merge with a
/// stochastic injector's events (fault/injector.hpp), hand to a Timeline.
struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }

  /// OST `ost` crashes at `start` and recovers at `end`.
  FaultPlan& ost_down(std::uint32_t ost, SimTime start, SimTime end);
  /// OST `ost` (its disk) serves `factor`x slower during the interval.
  FaultPlan& ost_straggler(std::uint32_t ost, SimTime start, SimTime end, double factor);
  /// The MDS is unreachable during the interval.
  FaultPlan& mds_down(SimTime start, SimTime end);
  /// Metadata service costs multiply by `factor` during the interval.
  FaultPlan& mds_slowdown(SimTime start, SimTime end, double factor);
  /// Fabric brownout: message volume effectively multiplies by `factor`.
  FaultPlan& fabric_brownout(ComponentKind fabric, SimTime start, SimTime end, double factor);
  /// Burst buffer `buffer` stalls (stops absorbing/serving) during the interval.
  FaultPlan& bb_stall(std::uint32_t buffer, SimTime start, SimTime end);
};

/// Immutable point-in-time query view over a set of fault events. Down
/// intervals are merged per component at construction so queries are a
/// binary search; slowdown factors of overlapping events compose by
/// multiplication.
class Timeline {
 public:
  /// Fault-free timeline (every query says "healthy").
  Timeline() = default;

  /// Validates events (end > start, factor > 0 for slowdowns) and indexes
  /// them per component. Throws std::invalid_argument on a malformed event.
  explicit Timeline(std::vector<FaultEvent> events);

  [[nodiscard]] bool empty() const { return components_.empty(); }
  [[nodiscard]] std::size_t event_count() const { return event_count_; }

  /// True iff `id` is inside a down interval at `t`.
  [[nodiscard]] bool down(ComponentId id, SimTime t) const;

  /// Recovery time: end of the merged down interval containing `t`.
  /// Precondition: down(id, t).
  [[nodiscard]] SimTime down_until(ComponentId id, SimTime t) const;

  /// Crash time: start of the merged down interval containing `t`.
  /// Precondition: down(id, t).
  [[nodiscard]] SimTime down_since(ComponentId id, SimTime t) const;

  /// All merged down intervals of `id` as (start, end) pairs, sorted by
  /// start. Empty when the component never goes down. Recovery-driven
  /// machinery (MDS failover replay, OST rebuild) schedules off these.
  [[nodiscard]] std::vector<std::pair<SimTime, SimTime>> down_intervals(ComponentId id) const;

  /// Product of all slowdown factors active on `id` at `t` (1.0 = healthy).
  [[nodiscard]] double slowdown(ComponentId id, SimTime t) const;

  /// `service` scaled by the slowdown active at `t`, rounded up so a
  /// degraded op never completes early.
  [[nodiscard]] SimTime scaled(ComponentId id, SimTime t, SimTime service) const;

  /// Fault-era invariant F1 (sim::check): completion handlers must never
  /// fire on a component inside its down interval — a handler that does
  /// means a model leaked work across a crash. No-op when checks are off.
  void check_handler_allowed(ComponentId id, SimTime now) const;

 private:
  struct Interval {
    SimTime start;
    SimTime end;
  };
  struct Component {
    std::vector<Interval> down;      ///< merged, disjoint, sorted by start
    std::vector<FaultEvent> slow;    ///< sorted by start
  };

  [[nodiscard]] const Component* find(ComponentId id) const;

  // Ordered map: iteration order (used nowhere yet) stays deterministic.
  std::map<std::uint64_t, Component> components_;
  std::size_t event_count_ = 0;
};

}  // namespace pio::fault
