#include "fault/injector.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace pio::fault {

namespace {

/// Substream keys: one per (fault class, component) so schedules are
/// independent of each other and of generation order.
enum class StreamClass : std::uint64_t {
  kOstCrash = 1,
  kOstStraggler = 2,
  kStorageBrownout = 3,
  kMdsSlowdown = 4,
};

[[nodiscard]] std::uint64_t stream_key(StreamClass cls, std::uint32_t index) {
  return (static_cast<std::uint64_t>(cls) << 32) | index;
}

/// Poisson arrivals with exponential durations over [0, horizon). The
/// interval is clipped at the horizon so no event outlives the schedule.
void poisson_intervals(Rng rng, double rate_hz, SimTime mean_duration, SimTime horizon,
                       const std::function<void(SimTime, SimTime)>& emit) {
  if (rate_hz <= 0.0 || horizon <= SimTime::zero()) return;
  double t = rng.exponential(1.0 / rate_hz);
  while (t < horizon.sec()) {
    const double duration = rng.exponential(mean_duration.sec());
    const SimTime start = SimTime::from_sec(t);
    const SimTime end = std::min(SimTime::from_sec_ceil(t + duration), horizon);
    if (end > start) emit(start, end);
    t += duration + rng.exponential(1.0 / rate_hz);
  }
}

}  // namespace

std::vector<FaultEvent> inject(const InjectorConfig& config, Rng rng) {
  if (config.ost_straggler_factor_lo < 1.0 ||
      config.ost_straggler_factor_hi < config.ost_straggler_factor_lo) {
    throw std::invalid_argument("fault::inject: straggler factor range must be [lo>=1, hi>=lo]");
  }
  std::vector<FaultEvent> events;
  FaultPlan plan;
  for (std::uint32_t ost = 0; ost < config.osts; ++ost) {
    poisson_intervals(rng.substream(stream_key(StreamClass::kOstCrash, ost)),
                      config.ost_crash_rate_hz, config.ost_outage_mean, config.horizon,
                      [&](SimTime start, SimTime end) { plan.ost_down(ost, start, end); });
    // The factor stream is forked from the arrival stream's key so factor
    // draws cannot shift the arrival process.
    Rng factors = rng.substream(stream_key(StreamClass::kOstStraggler, ost)).substream(1);
    poisson_intervals(rng.substream(stream_key(StreamClass::kOstStraggler, ost)),
                      config.ost_straggler_rate_hz, config.ost_straggler_mean, config.horizon,
                      [&](SimTime start, SimTime end) {
                        plan.ost_straggler(ost, start, end,
                                           factors.uniform(config.ost_straggler_factor_lo,
                                                           config.ost_straggler_factor_hi));
                      });
  }
  poisson_intervals(rng.substream(stream_key(StreamClass::kStorageBrownout, 0)),
                    config.storage_brownout_rate_hz, config.storage_brownout_mean,
                    config.horizon, [&](SimTime start, SimTime end) {
                      plan.fabric_brownout(ComponentKind::kStorageFabric, start, end,
                                           config.storage_brownout_factor);
                    });
  poisson_intervals(rng.substream(stream_key(StreamClass::kMdsSlowdown, 0)),
                    config.mds_slowdown_rate_hz, config.mds_slowdown_mean, config.horizon,
                    [&](SimTime start, SimTime end) {
                      plan.mds_slowdown(start, end, config.mds_slowdown_factor);
                    });
  events = std::move(plan.events);
  return events;
}

}  // namespace pio::fault
