// PIOEval fault: seeded-stochastic fault injector.
//
// Materializes Poisson-arrival fault events (OST crashes, disk stragglers,
// storage-fabric brownouts, MDS slowdowns) over a fixed sim-time horizon
// *before* the run, from a `pio::Rng` stream keyed off the campaign seed.
// Per-component substreams keep each component's weather independent of the
// others and of pool size, so adding an OST never perturbs the faults the
// existing ones see — the same stream-splitting discipline the disk jitter
// models use. Never seed this from wall time (piolint D1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/fault.hpp"

namespace pio::fault {

/// Rates are expected events per component per simulated second; durations
/// draw from exponentials with the given means. A rate of 0 disables that
/// fault class. `osts` is filled in by the PFS facade with the actual pool
/// size when the injector is attached to a PfsConfig.
struct InjectorConfig {
  SimTime horizon = SimTime::from_sec(60.0);  ///< events generated in [0, horizon)
  std::uint32_t osts = 0;

  double ost_crash_rate_hz = 0.0;
  SimTime ost_outage_mean = SimTime::from_sec(2.0);

  double ost_straggler_rate_hz = 0.0;
  SimTime ost_straggler_mean = SimTime::from_sec(5.0);
  double ost_straggler_factor_lo = 2.0;  ///< uniform factor range, >= 1
  double ost_straggler_factor_hi = 8.0;

  double storage_brownout_rate_hz = 0.0;
  SimTime storage_brownout_mean = SimTime::from_sec(3.0);
  double storage_brownout_factor = 4.0;

  double mds_slowdown_rate_hz = 0.0;
  SimTime mds_slowdown_mean = SimTime::from_sec(3.0);
  double mds_slowdown_factor = 6.0;
};

/// Materialize the stochastic schedule. Deterministic in (config, rng key);
/// events are emitted in a stable order (by component, then time).
[[nodiscard]] std::vector<FaultEvent> inject(const InjectorConfig& config, Rng rng);

}  // namespace pio::fault
