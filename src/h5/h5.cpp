#include "h5/h5.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace pio::h5 {

namespace {

constexpr const char* kMagicLine = "H5LITE1";

bool valid_name(const std::string& name) {
  return !name.empty() && name.front() == '/' &&
         name.find_first_of(" \t\n\r") == std::string::npos &&
         (name.size() == 1 || name.back() != '/');
}

std::string encode_value(const std::string& v) {
  std::string out;
  for (const char c : v) {
    if (c == '%' || c == ' ' || c == '\n' || c == '\r' || c == '\t') {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02X", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string decode_value(const std::string& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] == '%' && i + 2 < v.size()) {
      out += static_cast<char>(std::stoi(v.substr(i + 1, 2), nullptr, 16));
      i += 2;
    } else {
      out += v[i];
    }
  }
  return out;
}

std::string join_u64(const std::vector<std::uint64_t>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(values[i]);
  }
  return out.empty() ? "-" : out;
}

std::vector<std::uint64_t> split_u64(const std::string& text) {
  std::vector<std::uint64_t> out;
  if (text == "-") return out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto comma = text.find(',', pos);
    const std::string tok =
        comma == std::string::npos ? text.substr(pos) : text.substr(pos, comma - pos);
    out.push_back(std::stoull(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

std::uint64_t Dataspace::elements() const {
  std::uint64_t n = 1;
  for (const auto d : dims) n *= d;
  return dims.empty() ? 0 : n;
}

std::uint64_t Hyperslab::elements() const {
  if (count.empty()) return 0;
  std::uint64_t n = 1;
  for (const auto c : count) n *= c;
  return n;
}

std::vector<std::uint64_t> DatasetInfo::chunk_grid() const {
  std::vector<std::uint64_t> grid;
  if (!chunked()) return grid;
  grid.reserve(chunk_dims.size());
  for (std::size_t d = 0; d < chunk_dims.size(); ++d) {
    grid.push_back((space.dims[d] + chunk_dims[d] - 1) / chunk_dims[d]);
  }
  return grid;
}

std::uint64_t DatasetInfo::chunk_bytes() const {
  std::uint64_t n = elem_size;
  for (const auto c : chunk_dims) n *= c;
  return n;
}

// ------------------------------------------------------------------ Dataset

Result<std::vector<mio::Extent>> Dataset::extents_of(const Hyperslab& slab) const {
  const auto& dims = info_.space.dims;
  const std::size_t r = dims.size();
  if (slab.start.size() != r || slab.count.size() != r) {
    return Error{-20, "hyperslab rank mismatch for " + info_.name};
  }
  for (std::size_t d = 0; d < r; ++d) {
    if (slab.count[d] == 0 || slab.start[d] + slab.count[d] > dims[d]) {
      return Error{-21, "hyperslab out of bounds for " + info_.name};
    }
  }
  std::vector<mio::Extent> extents;
  const std::uint64_t elem = info_.elem_size;

  // Row-major odometer over all dimensions except the innermost.
  std::vector<std::uint64_t> idx = slab.start;
  const std::uint64_t inner_count = slab.count[r - 1];
  auto emit_extent = [&](std::uint64_t file_offset, std::uint64_t bytes) {
    if (!extents.empty() &&
        extents.back().offset + extents.back().length.count() == file_offset) {
      extents.back().length += Bytes{bytes};  // coalesce contiguous pieces
    } else {
      extents.push_back(mio::Extent{file_offset, Bytes{bytes}});
    }
  };

  for (;;) {
    if (!info_.chunked()) {
      // Contiguous layout: linear index of idx (with innermost at start).
      std::uint64_t linear = 0;
      for (std::size_t d = 0; d < r; ++d) linear = linear * dims[d] + idx[d];
      emit_extent(info_.data_offset + linear * elem, inner_count * elem);
    } else {
      // Chunked: split the innermost run at chunk boundaries.
      const auto grid = info_.chunk_grid();
      std::uint64_t inner = idx[r - 1];
      std::uint64_t remaining = inner_count;
      while (remaining > 0) {
        const std::uint64_t chunk_inner = inner / info_.chunk_dims[r - 1];
        const std::uint64_t within_inner = inner % info_.chunk_dims[r - 1];
        const std::uint64_t run =
            std::min(remaining, info_.chunk_dims[r - 1] - within_inner);
        // Chunk coordinates + linear chunk index.
        std::uint64_t chunk_linear = 0;
        std::uint64_t within_linear = 0;
        for (std::size_t d = 0; d < r; ++d) {
          const std::uint64_t coord = d + 1 == r ? chunk_inner : idx[d] / info_.chunk_dims[d];
          const std::uint64_t within =
              d + 1 == r ? within_inner : idx[d] % info_.chunk_dims[d];
          chunk_linear = chunk_linear * grid[d] + coord;
          within_linear = within_linear * info_.chunk_dims[d] + within;
        }
        emit_extent(info_.data_offset + chunk_linear * info_.chunk_bytes() +
                        within_linear * elem,
                    run * elem);
        inner += run;
        remaining -= run;
      }
    }
    // Odometer increment over dims [0, r-1).
    if (r == 1) break;
    std::size_t d = r - 2;
    for (;;) {
      if (++idx[d] < slab.start[d] + slab.count[d]) break;
      idx[d] = slab.start[d];
      if (d == 0) goto done;
      --d;
    }
  }
done:
  return extents;
}

Result<std::size_t> Dataset::write(const Hyperslab& slab, std::span<const std::byte> data,
                                   bool collective) {
  const SimTime start = file_->now();
  const std::uint64_t want = slab.elements() * info_.elem_size;
  if (data.size() != want) {
    return Error{-22, "dataset write: buffer size mismatch for " + info_.name};
  }
  auto extents = extents_of(slab);
  if (!extents.ok()) return extents.error();
  std::size_t written = 0;
  if (collective) {
    auto r = file_->mio_->write_at_all(extents.value(), data);
    if (!r.ok()) return r;
    written = r.value();
  } else {
    std::size_t pos = 0;
    for (const auto& e : extents.value()) {
      const auto len = static_cast<std::size_t>(e.length.count());
      auto r = file_->mio_->write_at(e.offset, data.subspan(pos, len));
      if (!r.ok()) return r;
      pos += len;
    }
    written = pos;
  }
  file_->emit(trace::OpKind::kWrite, info_.name, written, start, true);
  return written;
}

Result<std::size_t> Dataset::read(const Hyperslab& slab, std::span<std::byte> out,
                                  bool collective) {
  const SimTime start = file_->now();
  const std::uint64_t want = slab.elements() * info_.elem_size;
  if (out.size() != want) {
    return Error{-23, "dataset read: buffer size mismatch for " + info_.name};
  }
  auto extents = extents_of(slab);
  if (!extents.ok()) return extents.error();
  std::size_t read_bytes = 0;
  if (collective) {
    auto r = file_->mio_->read_at_all(extents.value(), out);
    if (!r.ok()) return r;
    read_bytes = r.value();
  } else {
    std::size_t pos = 0;
    for (const auto& e : extents.value()) {
      const auto len = static_cast<std::size_t>(e.length.count());
      auto r = file_->mio_->read_at(e.offset, out.subspan(pos, len));
      if (!r.ok()) return r;
      if (r.value() < len) std::memset(out.data() + pos + r.value(), 0, len - r.value());
      pos += len;
    }
    read_bytes = pos;
  }
  file_->emit(trace::OpKind::kRead, info_.name, read_bytes, start, true);
  return read_bytes;
}

// ------------------------------------------------------------------- H5File

H5File::H5File(par::Comm& comm, std::unique_ptr<mio::File> mio, trace::Sink* sink,
               const trace::Clock* clock)
    : comm_(comm), mio_(std::move(mio)), sink_(sink), clock_(clock) {}

H5File::~H5File() {
  // Collective close must be explicit; the destructor only closes the
  // underlying descriptor (mio::~File handles it).
}

SimTime H5File::now() const { return clock_ != nullptr ? clock_->now() : SimTime::zero(); }

void H5File::emit(trace::OpKind op, const std::string& path, std::uint64_t size, SimTime start,
                  bool ok) {
  if (sink_ == nullptr) return;
  trace::TraceEvent e;
  e.layer = trace::Layer::kHdf5;
  e.op = op;
  e.rank = comm_.rank();
  e.path = path;
  e.size = size;
  e.start = start;
  e.end = now();
  e.ok = ok;
  sink_->record(e);
}

Result<std::unique_ptr<H5File>> H5File::create_all(par::Comm& comm, vfs::Backend& backend,
                                                   const std::string& path,
                                                   const mio::Hints& hints, trace::Sink* sink,
                                                   const trace::Clock* clock) {
  auto mio_file = mio::File::open_all(comm, backend, path, /*create=*/true, hints, sink, clock);
  if (!mio_file.ok()) return mio_file.error();
  auto file = std::unique_ptr<H5File>(
      new H5File{comm, std::move(mio_file.value()), sink, clock});
  file->emit(trace::OpKind::kOpen, path, 0, file->now(), true);
  return file;
}

Result<std::unique_ptr<H5File>> H5File::open_all(par::Comm& comm, vfs::Backend& backend,
                                                 const std::string& path,
                                                 const mio::Hints& hints, trace::Sink* sink,
                                                 const trace::Clock* clock) {
  auto mio_file = mio::File::open_all(comm, backend, path, /*create=*/false, hints, sink, clock);
  if (!mio_file.ok()) return mio_file.error();
  auto file = std::unique_ptr<H5File>(
      new H5File{comm, std::move(mio_file.value()), sink, clock});
  // Every rank parses the header independently (read-only, no races).
  std::vector<std::byte> header(kHeaderSize);
  auto r = file->mio_->read_at(0, header);
  if (!r.ok()) return r.error();
  std::string text(reinterpret_cast<const char*>(header.data()),
                   std::min<std::size_t>(r.value(), kHeaderSize));
  const auto end = text.find('\0');
  if (end != std::string::npos) text.resize(end);
  auto parsed = file->parse_header(text);
  if (!parsed.ok()) return parsed.error();
  file->emit(trace::OpKind::kOpen, path, 0, file->now(), true);
  return file;
}

Result<bool> H5File::create_group(const std::string& name) {
  if (!valid_name(name)) return Error{-24, "invalid group name: " + name};
  if (std::find(groups_.begin(), groups_.end(), name) == groups_.end()) {
    groups_.push_back(name);
  }
  emit(trace::OpKind::kMkdir, name, 0, now(), true);
  return true;
}

Result<Dataset> H5File::create_dataset(const std::string& name, std::uint32_t elem_size,
                                       Dataspace space, std::vector<std::uint64_t> chunk_dims) {
  if (!valid_name(name)) return Error{-25, "invalid dataset name: " + name};
  if (datasets_.contains(name)) return Error{-26, "dataset exists: " + name};
  if (elem_size == 0 || space.dims.empty()) {
    return Error{-27, "dataset needs a positive element size and at least one dimension"};
  }
  for (const auto d : space.dims) {
    if (d == 0) return Error{-27, "zero-length dimension in " + name};
  }
  if (!chunk_dims.empty()) {
    if (chunk_dims.size() != space.dims.size()) {
      return Error{-28, "chunk rank mismatch for " + name};
    }
    for (std::size_t d = 0; d < chunk_dims.size(); ++d) {
      if (chunk_dims[d] == 0 || chunk_dims[d] > space.dims[d]) {
        return Error{-28, "bad chunk dimension for " + name};
      }
    }
  }
  DatasetInfo info;
  info.name = name;
  info.elem_size = elem_size;
  info.space = std::move(space);
  info.chunk_dims = std::move(chunk_dims);
  info.data_offset = alloc_cursor_;
  // Eager dense allocation: every rank derives the same cursor because
  // create_dataset is collective and deterministic.
  std::uint64_t bytes;
  if (info.chunked()) {
    std::uint64_t chunks = 1;
    for (const auto g : info.chunk_grid()) chunks *= g;
    bytes = chunks * info.chunk_bytes();
  } else {
    bytes = info.space.elements() * info.elem_size;
  }
  alloc_cursor_ += bytes;
  const auto [it, inserted] = datasets_.emplace(name, std::move(info));
  emit(trace::OpKind::kOpen, name, 0, now(), true);
  return Dataset{*this, it->second};
}

Result<Dataset> H5File::open_dataset(const std::string& name) {
  const auto it = datasets_.find(name);
  if (it == datasets_.end()) return Error{-29, "no such dataset: " + name};
  emit(trace::OpKind::kOpen, name, 0, now(), true);
  return Dataset{*this, it->second};
}

Result<bool> H5File::set_attribute(const std::string& owner, const std::string& key,
                                   const std::string& value) {
  if (owner != "/" && !datasets_.contains(owner) &&
      std::find(groups_.begin(), groups_.end(), owner) == groups_.end()) {
    return Error{-30, "attribute owner does not exist: " + owner};
  }
  if (key.empty() || key.find_first_of(" \t\n\r") != std::string::npos) {
    return Error{-31, "invalid attribute key: " + key};
  }
  attributes_[owner][key] = value;
  return true;
}

std::optional<std::string> H5File::attribute(const std::string& owner,
                                             const std::string& key) const {
  const auto o = attributes_.find(owner);
  if (o == attributes_.end()) return std::nullopt;
  const auto k = o->second.find(key);
  if (k == o->second.end()) return std::nullopt;
  return k->second;
}

std::vector<std::string> H5File::dataset_names() const {
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, info] : datasets_) names.push_back(name);
  return names;
}

std::vector<std::string> H5File::group_names() const { return groups_; }

std::string H5File::serialize_header() const {
  std::ostringstream out;
  out << kMagicLine << "\n";
  out << "alloc " << alloc_cursor_ << "\n";
  for (const auto& g : groups_) out << "group " << g << "\n";
  for (const auto& [name, d] : datasets_) {
    out << "dataset " << name << " elem " << d.elem_size << " dims " << join_u64(d.space.dims)
        << " chunks " << join_u64(d.chunk_dims) << " offset " << d.data_offset << "\n";
  }
  for (const auto& [owner, kv] : attributes_) {
    for (const auto& [key, value] : kv) {
      out << "attr " << owner << " " << key << " " << encode_value(value) << "\n";
    }
  }
  out << "end\n";
  return out.str();
}

Result<bool> H5File::parse_header(const std::string& text) {
  std::istringstream in{text};
  std::string line;
  if (!std::getline(in, line) || line != kMagicLine) {
    return Error{-32, "not an H5-lite file (bad magic)"};
  }
  while (std::getline(in, line)) {
    if (line == "end") return true;
    std::istringstream ls{line};
    std::string kind;
    ls >> kind;
    if (kind == "alloc") {
      ls >> alloc_cursor_;
    } else if (kind == "group") {
      std::string name;
      ls >> name;
      groups_.push_back(name);
    } else if (kind == "dataset") {
      DatasetInfo d;
      std::string tok;
      ls >> d.name >> tok >> d.elem_size >> tok;
      std::string dims_text;
      ls >> dims_text >> tok;
      std::string chunks_text;
      ls >> chunks_text >> tok >> d.data_offset;
      d.space.dims = split_u64(dims_text);
      d.chunk_dims = split_u64(chunks_text);
      datasets_.emplace(d.name, std::move(d));
    } else if (kind == "attr") {
      std::string owner;
      std::string key;
      std::string value;
      ls >> owner >> key >> value;
      attributes_[owner][key] = decode_value(value);
    } else {
      return Error{-33, "unknown header line: " + line};
    }
  }
  return Error{-34, "truncated header (no end marker)"};
}

vfs::FsStatus H5File::close_all() {
  if (closed_) return vfs::FsStatus::kInvalid;
  closed_ = true;
  comm_.barrier();
  if (comm_.rank() == 0) {
    std::string header = serialize_header();
    if (header.size() >= kHeaderSize) {
      throw std::runtime_error("H5File: metadata exceeds the fixed header region");
    }
    header.resize(kHeaderSize, '\0');
    (void)mio_->write_at(0, std::as_bytes(std::span{header.data(), header.size()}));
  }
  emit(trace::OpKind::kClose, mio_->path(), 0, now(), true);
  return mio_->close_all();
}

}  // namespace pio::h5
