// PIOEval HDF5-lite: the high-level data library of the Fig. 2 stack.
//
// "An application can use a high-level library such as HDF5 ... HDF5 is
// implemented on top of MPI-IO which, in turn, performs POSIX I/O calls
// against a parallel file system." This module provides exactly that shape:
// a hierarchical container (groups, n-dimensional datasets with contiguous
// or chunked layout, string attributes) whose hyperslab I/O decomposes into
// extents executed through pio::mio — so one application-level write is
// observable as one HDF5 event, a handful of MPI-IO events, and many POSIX
// events (experiment Fig. 2).
//
// Deliberate simplifications vs real HDF5 (documented in DESIGN.md): a
// fixed-size text header instead of a B-tree heap, eager dense chunk
// allocation (create is collective, so every rank derives the same layout
// without extra communication), and elements as opaque fixed-size records.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "mio/mio.hpp"
#include "par/comm.hpp"

namespace pio::h5 {

/// N-dimensional extent (row-major).
struct Dataspace {
  std::vector<std::uint64_t> dims;

  [[nodiscard]] std::uint64_t elements() const;
  [[nodiscard]] std::size_t rank() const { return dims.size(); }
};

/// A rectangular selection: `start[d] + count[d] <= dims[d]` for all d.
struct Hyperslab {
  std::vector<std::uint64_t> start;
  std::vector<std::uint64_t> count;

  [[nodiscard]] std::uint64_t elements() const;
};

/// Stored dataset metadata.
struct DatasetInfo {
  std::string name;          ///< absolute, e.g. "/fields/density"
  std::uint32_t elem_size = 8;
  Dataspace space;
  std::vector<std::uint64_t> chunk_dims;  ///< empty = contiguous layout
  std::uint64_t data_offset = 0;          ///< first byte of data in the file

  [[nodiscard]] bool chunked() const { return !chunk_dims.empty(); }
  /// Chunk grid dimensions (ceil-division); empty for contiguous.
  [[nodiscard]] std::vector<std::uint64_t> chunk_grid() const;
  [[nodiscard]] std::uint64_t chunk_bytes() const;
};

class H5File;

/// Handle on one dataset; valid while its H5File lives.
class Dataset {
 public:
  /// Write a hyperslab; `data` holds elements row-major, exactly
  /// slab.elements() * elem_size bytes. `collective` routes through
  /// mio::write_at_all (all ranks must call); independent ops go straight
  /// through mio::write_at.
  [[nodiscard]] Result<std::size_t> write(const Hyperslab& slab,
                                          std::span<const std::byte> data, bool collective);
  [[nodiscard]] Result<std::size_t> read(const Hyperslab& slab, std::span<std::byte> out,
                                         bool collective);

  /// File extents a hyperslab maps to (exposed for tests and analysis).
  [[nodiscard]] Result<std::vector<mio::Extent>> extents_of(const Hyperslab& slab) const;

  [[nodiscard]] const DatasetInfo& info() const { return info_; }

 private:
  friend class H5File;
  Dataset(H5File& file, DatasetInfo info) : file_(&file), info_(std::move(info)) {}

  H5File* file_;
  DatasetInfo info_;
};

/// A hierarchical file: groups + datasets + attributes over an mio::File.
class H5File {
 public:
  /// Fixed metadata header size; dataset data starts after it.
  static constexpr std::uint64_t kHeaderSize = 256 * 1024;

  /// Collective create (truncates) / open (parses the header).
  [[nodiscard]] static Result<std::unique_ptr<H5File>> create_all(par::Comm& comm, vfs::Backend& backend,
                                                    const std::string& path,
                                                    const mio::Hints& hints = {},
                                                    trace::Sink* sink = nullptr,
                                                    const trace::Clock* clock = nullptr);
  [[nodiscard]] static Result<std::unique_ptr<H5File>> open_all(par::Comm& comm, vfs::Backend& backend,
                                                  const std::string& path,
                                                  const mio::Hints& hints = {},
                                                  trace::Sink* sink = nullptr,
                                                  const trace::Clock* clock = nullptr);

  H5File(const H5File&) = delete;
  H5File& operator=(const H5File&) = delete;
  ~H5File();

  /// Collective: every rank applies the same deterministic metadata update.
  [[nodiscard]] Result<bool> create_group(const std::string& name);
  [[nodiscard]] Result<Dataset> create_dataset(const std::string& name, std::uint32_t elem_size,
                                               Dataspace space,
                                               std::vector<std::uint64_t> chunk_dims = {});
  [[nodiscard]] Result<Dataset> open_dataset(const std::string& name);

  /// Attributes: string key/value pairs attached to a path ("/": the file).
  [[nodiscard]] Result<bool> set_attribute(const std::string& owner, const std::string& key,
                             const std::string& value);
  [[nodiscard]] std::optional<std::string> attribute(const std::string& owner,
                                                     const std::string& key) const;

  [[nodiscard]] std::vector<std::string> dataset_names() const;
  [[nodiscard]] std::vector<std::string> group_names() const;

  /// Collective: rank 0 serializes the header, then the mio file closes.
  vfs::FsStatus close_all();

  [[nodiscard]] mio::File& mio_file() { return *mio_; }
  [[nodiscard]] par::Comm& comm() { return comm_; }

 private:
  H5File(par::Comm& comm, std::unique_ptr<mio::File> mio, trace::Sink* sink,
         const trace::Clock* clock);

  friend class Dataset;
  void emit(trace::OpKind op, const std::string& path, std::uint64_t size, SimTime start,
            bool ok);
  [[nodiscard]] SimTime now() const;
  [[nodiscard]] std::string serialize_header() const;
  [[nodiscard]] Result<bool> parse_header(const std::string& text);

  par::Comm& comm_;
  std::unique_ptr<mio::File> mio_;
  trace::Sink* sink_;
  const trace::Clock* clock_;
  std::uint64_t alloc_cursor_ = kHeaderSize;
  std::map<std::string, DatasetInfo> datasets_;
  std::vector<std::string> groups_;
  std::map<std::string, std::map<std::string, std::string>> attributes_;
  bool closed_ = false;
};

}  // namespace pio::h5
