#include "mio/mio.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>

#include "common/interval_set.hpp"

namespace pio::mio {

namespace {

/// Trivially copyable bounds pair for collective exchange.
struct Bounds {
  std::uint64_t lo;
  std::uint64_t hi;
};

/// Wire format for a piece list: u64 count, then per piece u64 offset +
/// u64 length, then the payloads back-to-back.
struct PieceList {
  std::vector<Extent> extents;
  std::vector<std::byte> payload;

  [[nodiscard]] par::Buffer serialize() const {
    par::Buffer out;
    const std::uint64_t n = extents.size();
    out.resize(sizeof(std::uint64_t) * (1 + 2 * n) + payload.size());
    std::size_t pos = 0;
    auto put_u64 = [&](std::uint64_t v) {
      std::memcpy(out.data() + pos, &v, sizeof v);
      pos += sizeof v;
    };
    put_u64(n);
    for (const auto& e : extents) {
      put_u64(e.offset);
      put_u64(e.length.count());
    }
    if (!payload.empty()) std::memcpy(out.data() + pos, payload.data(), payload.size());
    return out;
  }

  static PieceList deserialize(const par::Buffer& buf) {
    PieceList list;
    std::size_t pos = 0;
    auto get_u64 = [&]() {
      std::uint64_t v = 0;
      if (pos + sizeof v > buf.size()) throw std::runtime_error("PieceList: truncated buffer");
      std::memcpy(&v, buf.data() + pos, sizeof v);
      pos += sizeof v;
      return v;
    };
    const std::uint64_t n = get_u64();
    std::uint64_t total = 0;
    list.extents.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      Extent e;
      e.offset = get_u64();
      e.length = Bytes{get_u64()};
      total += e.length.count();
      list.extents.push_back(e);
    }
    if (pos == buf.size()) {
      // Metadata-only list (a read request carries no payload).
      return list;
    }
    if (pos + total != buf.size()) throw std::runtime_error("PieceList: payload size mismatch");
    list.payload.assign(buf.begin() + static_cast<std::ptrdiff_t>(pos), buf.end());
    return list;
  }
};

}  // namespace

Bytes total_length(std::span<const Extent> extents) {
  Bytes total = Bytes::zero();
  for (const auto& e : extents) total += e.length;
  return total;
}

Result<std::unique_ptr<File>> File::open_all(par::Comm& comm, vfs::Backend& backend,
                                             const std::string& path, bool create,
                                             const Hints& hints, trace::Sink* sink,
                                             const trace::Clock* clock) {
  // Rank 0 creates; everyone opens after the existence barrier.
  if (comm.rank() == 0 && create) {
    auto fd = backend.open(path, {vfs::OpenMode::kReadWrite, true, true});
    if (!fd.ok()) {
      comm.barrier();
      return fd.error();
    }
    backend.close(fd.value());
  }
  comm.barrier();
  auto fd = backend.open(path, {vfs::OpenMode::kReadWrite, false, false});
  if (!fd.ok()) return fd.error();
  auto file = std::unique_ptr<File>(
      new File{comm, backend, path, fd.value(), hints, sink, clock});
  return file;
}

File::File(par::Comm& comm, vfs::Backend& backend, std::string path, vfs::Fd fd, Hints hints,
           trace::Sink* sink, const trace::Clock* clock)
    : comm_(comm),
      backend_(backend),
      path_(std::move(path)),
      fd_(fd),
      hints_(hints),
      sink_(sink),
      clock_(clock) {}

File::~File() {
  if (fd_ >= 0) backend_.close(fd_);
}

SimTime File::now() const { return clock_ != nullptr ? clock_->now() : SimTime::zero(); }

void File::emit(trace::OpKind op, std::uint64_t offset, std::uint64_t size, SimTime start,
                bool ok) {
  if (sink_ == nullptr) return;
  trace::TraceEvent e;
  e.layer = trace::Layer::kMpiIo;
  e.op = op;
  e.rank = comm_.rank();
  e.path = path_;
  e.offset = offset;
  e.size = size;
  e.start = start;
  e.end = now();
  e.ok = ok;
  sink_->record(e);
}

Result<std::size_t> File::read_at(std::uint64_t offset, std::span<std::byte> out) {
  const SimTime start = now();
  auto r = backend_.pread(fd_, out, offset);
  if (r.ok()) {
    ++counters_.reads;
    counters_.bytes_read += Bytes{r.value()};
  }
  emit(trace::OpKind::kRead, offset, r.ok() ? r.value() : 0, start, r.ok());
  return r;
}

Result<std::size_t> File::write_at(std::uint64_t offset, std::span<const std::byte> data) {
  const SimTime start = now();
  auto r = backend_.pwrite(fd_, data, offset);
  if (r.ok()) {
    ++counters_.writes;
    counters_.bytes_written += Bytes{r.value()};
  }
  emit(trace::OpKind::kWrite, offset, r.ok() ? r.value() : 0, start, r.ok());
  return r;
}

Result<std::size_t> File::read_strided(std::span<const Extent> extents,
                                       std::span<std::byte> out) {
  const SimTime start = now();
  const Bytes want = total_length(extents);
  if (out.size() != want.count()) {
    return Error{-10, "read_strided: output buffer size mismatch"};
  }
  if (extents.empty()) return std::size_t{0};
  for (std::size_t i = 1; i < extents.size(); ++i) {
    if (extents[i].offset < extents[i - 1].offset + extents[i - 1].length.count()) {
      return Error{-11, "read_strided: extents must be sorted and disjoint"};
    }
  }
  const std::uint64_t lo = extents.front().offset;
  const std::uint64_t hi = extents.back().offset + extents.back().length.count();
  const std::uint64_t span = hi - lo;
  const double hole_fraction =
      span == 0 ? 0.0 : 1.0 - want.as_double() / static_cast<double>(span);
  std::size_t produced = 0;
  if (hints_.ds_max_hole_fraction > 0.0 && hole_fraction <= hints_.ds_max_hole_fraction &&
      span <= hints_.cb_buffer_size.count()) {
    // Data sieving: one big read, extract pieces.
    std::vector<std::byte> gulp(span);
    auto r = backend_.pread(fd_, gulp, lo);
    if (!r.ok()) return r;
    ++counters_.reads;
    counters_.bytes_read += Bytes{r.value()};
    for (const auto& e : extents) {
      const std::size_t within = static_cast<std::size_t>(e.offset - lo);
      const auto len = static_cast<std::size_t>(e.length.count());
      const std::size_t have = r.value() > within ? std::min(len, r.value() - within) : 0;
      if (have > 0) std::memcpy(out.data() + produced, gulp.data() + within, have);
      if (have < len) std::memset(out.data() + produced + have, 0, len - have);
      produced += len;
    }
  } else {
    for (const auto& e : extents) {
      const auto len = static_cast<std::size_t>(e.length.count());
      auto r = backend_.pread(fd_, out.subspan(produced, len), e.offset);
      if (!r.ok()) return r;
      ++counters_.reads;
      counters_.bytes_read += Bytes{r.value()};
      if (r.value() < len) std::memset(out.data() + produced + r.value(), 0, len - r.value());
      produced += len;
    }
  }
  emit(trace::OpKind::kRead, lo, produced, start, true);
  return produced;
}

std::vector<File::Domain> File::split_domains(std::uint64_t lo, std::uint64_t hi,
                                              std::uint32_t aggregators) const {
  std::vector<Domain> domains;
  const std::uint64_t span = hi - lo;
  const std::uint64_t per = (span + aggregators - 1) / aggregators;
  for (std::uint32_t a = 0; a < aggregators; ++a) {
    const std::uint64_t dlo = lo + per * a;
    const std::uint64_t dhi = std::min(hi, dlo + per);
    domains.push_back(Domain{std::min(dlo, hi), dhi});
  }
  return domains;
}

Result<std::size_t> File::write_at_all(std::span<const Extent> extents,
                                       std::span<const std::byte> data) {
  const SimTime start = now();
  const Bytes mine = total_length(extents);
  if (data.size() != mine.count()) {
    return Error{-12, "write_at_all: payload size mismatch"};
  }
  const int size = comm_.size();
  const std::uint32_t aggregators =
      std::min<std::uint32_t>(hints_.cb_nodes, static_cast<std::uint32_t>(size));
  if (aggregators == 0) {
    // Collective buffering disabled: independent writes.
    std::size_t pos = 0;
    for (const auto& e : extents) {
      const auto len = static_cast<std::size_t>(e.length.count());
      auto r = write_at(e.offset, data.subspan(pos, len));
      if (!r.ok()) return r;
      pos += len;
    }
    comm_.barrier();
    return pos;
  }

  // Phase 0: global extent bounds (gather + bcast of [lo, hi)).
  std::uint64_t local_lo = UINT64_MAX;
  std::uint64_t local_hi = 0;
  for (const auto& e : extents) {
    local_lo = std::min(local_lo, e.offset);
    local_hi = std::max(local_hi, e.offset + e.length.count());
  }
  const auto bounds = comm_.gather(0, par::encode(Bounds{local_lo, local_hi}));
  Bounds global{UINT64_MAX, 0};
  if (comm_.rank() == 0) {
    for (const auto& b : bounds) {
      const auto each = par::decode<Bounds>(b);
      global.lo = std::min(global.lo, each.lo);
      global.hi = std::max(global.hi, each.hi);
    }
  }
  global = par::decode<Bounds>(comm_.bcast(0, par::encode(global)));
  if (global.lo >= global.hi) {
    // Nobody wrote anything.
    comm_.barrier();
    emit(trace::OpKind::kWrite, 0, 0, start, true);
    return std::size_t{0};
  }
  const auto domains = split_domains(global.lo, global.hi, aggregators);

  // Phase 1: route pieces to aggregators.
  std::vector<par::Buffer> outgoing(static_cast<std::size_t>(size));
  {
    std::vector<PieceList> lists(aggregators);
    std::size_t pos = 0;
    for (const auto& e : extents) {
      const auto len = static_cast<std::size_t>(e.length.count());
      // An extent may straddle domain boundaries: split it.
      std::uint64_t cur = e.offset;
      std::size_t consumed = 0;
      while (consumed < len) {
        std::uint32_t owner = aggregators - 1;
        for (std::uint32_t a = 0; a < aggregators; ++a) {
          if (cur >= domains[a].lo && cur < domains[a].hi) {
            owner = a;
            break;
          }
        }
        const std::uint64_t run =
            std::min<std::uint64_t>(len - consumed, domains[owner].hi - cur);
        auto& list = lists[owner];
        list.extents.push_back(Extent{cur, Bytes{run}});
        const auto* src = data.data() + pos + consumed;
        list.payload.insert(list.payload.end(), src, src + run);
        cur += run;
        consumed += static_cast<std::size_t>(run);
      }
      pos += len;
    }
    for (std::uint32_t a = 0; a < aggregators; ++a) {
      outgoing[a] = lists[a].serialize();
    }
    // Non-aggregator destinations get a valid empty list.
    for (std::size_t r = aggregators; r < outgoing.size(); ++r) {
      outgoing[r] = PieceList{}.serialize();
    }
  }
  const auto incoming = comm_.alltoall(std::move(outgoing));

  // Phase 2: aggregators assemble and issue large contiguous writes.
  if (static_cast<std::uint32_t>(comm_.rank()) < aggregators) {
    // Later ranks win on overlap (processed in rank order).
    std::map<std::uint64_t, std::vector<std::byte>> assembly;  // run start -> bytes
    auto deposit = [&](std::uint64_t offset, std::span<const std::byte> bytes) {
      // Coalesce with an existing adjacent/overlapping run.
      auto it = assembly.upper_bound(offset);
      if (it != assembly.begin()) {
        auto prev = std::prev(it);
        const std::uint64_t prev_end = prev->first + prev->second.size();
        if (prev_end >= offset) {
          // Extend/overwrite inside the previous run.
          const std::size_t overlap_at = static_cast<std::size_t>(offset - prev->first);
          if (prev->second.size() < overlap_at + bytes.size()) {
            prev->second.resize(overlap_at + bytes.size());
          }
          std::memcpy(prev->second.data() + overlap_at, bytes.data(), bytes.size());
          // The grown run may now swallow following runs.
          auto next = std::next(prev);
          while (next != assembly.end() &&
                 next->first <= prev->first + prev->second.size()) {
            const std::uint64_t next_end = next->first + next->second.size();
            const std::uint64_t cur_end = prev->first + prev->second.size();
            if (next_end > cur_end) {
              const std::size_t keep = static_cast<std::size_t>(next_end - cur_end);
              const std::size_t from = next->second.size() - keep;
              prev->second.insert(prev->second.end(), next->second.begin() +
                                  static_cast<std::ptrdiff_t>(from), next->second.end());
            }
            next = assembly.erase(next);
          }
          return;
        }
      }
      assembly.emplace(offset, std::vector<std::byte>(bytes.begin(), bytes.end()));
      // New run may touch the following one.
      auto inserted = assembly.find(offset);
      auto next = std::next(inserted);
      while (next != assembly.end() &&
             next->first <= inserted->first + inserted->second.size()) {
        const std::uint64_t next_end = next->first + next->second.size();
        const std::uint64_t cur_end = inserted->first + inserted->second.size();
        if (next_end > cur_end) {
          const std::size_t keep = static_cast<std::size_t>(next_end - cur_end);
          const std::size_t from = next->second.size() - keep;
          inserted->second.insert(inserted->second.end(), next->second.begin() +
                                  static_cast<std::ptrdiff_t>(from), next->second.end());
        }
        next = assembly.erase(next);
      }
    };
    for (const auto& buf : incoming) {
      const PieceList list = PieceList::deserialize(buf);
      std::size_t pos = 0;
      for (const auto& e : list.extents) {
        const auto len = static_cast<std::size_t>(e.length.count());
        deposit(e.offset, std::span{list.payload.data() + pos, len});
        pos += len;
      }
    }
    // Issue one POSIX write per contiguous run, chunked at cb_buffer_size.
    for (const auto& [offset, bytes] : assembly) {
      std::size_t written = 0;
      while (written < bytes.size()) {
        const std::size_t chunk =
            std::min<std::size_t>(bytes.size() - written,
                                  static_cast<std::size_t>(hints_.cb_buffer_size.count()));
        auto r = backend_.pwrite(fd_, std::span{bytes.data() + written, chunk},
                                 offset + written);
        if (!r.ok()) {
          comm_.barrier();
          return r;
        }
        ++counters_.writes;
        counters_.bytes_written += Bytes{r.value()};
        written += chunk;
      }
    }
  }
  comm_.barrier();  // collective completion
  emit(trace::OpKind::kWrite, local_lo == UINT64_MAX ? 0 : local_lo, mine.count(), start, true);
  return static_cast<std::size_t>(mine.count());
}

Result<std::size_t> File::read_at_all(std::span<const Extent> extents,
                                      std::span<std::byte> out) {
  const SimTime start = now();
  const Bytes mine = total_length(extents);
  if (out.size() != mine.count()) {
    return Error{-13, "read_at_all: output buffer size mismatch"};
  }
  const int size = comm_.size();
  const std::uint32_t aggregators =
      std::min<std::uint32_t>(hints_.cb_nodes, static_cast<std::uint32_t>(size));
  if (aggregators == 0) {
    std::size_t pos = 0;
    for (const auto& e : extents) {
      const auto len = static_cast<std::size_t>(e.length.count());
      auto r = read_at(e.offset, out.subspan(pos, len));
      if (!r.ok()) return r;
      pos += len;
    }
    comm_.barrier();
    return pos;
  }

  // Phase 0: bounds.
  std::uint64_t local_lo = UINT64_MAX;
  std::uint64_t local_hi = 0;
  for (const auto& e : extents) {
    local_lo = std::min(local_lo, e.offset);
    local_hi = std::max(local_hi, e.offset + e.length.count());
  }
  const auto bounds = comm_.gather(0, par::encode(Bounds{local_lo, local_hi}));
  Bounds global{UINT64_MAX, 0};
  if (comm_.rank() == 0) {
    for (const auto& b : bounds) {
      const auto each = par::decode<Bounds>(b);
      global.lo = std::min(global.lo, each.lo);
      global.hi = std::max(global.hi, each.hi);
    }
  }
  global = par::decode<Bounds>(comm_.bcast(0, par::encode(global)));
  if (global.lo >= global.hi) {
    comm_.barrier();
    emit(trace::OpKind::kRead, 0, 0, start, true);
    return std::size_t{0};
  }
  const auto domains = split_domains(global.lo, global.hi, aggregators);

  // Phase 1: send requests (piece lists without payload) to aggregators.
  std::vector<par::Buffer> requests(static_cast<std::size_t>(size));
  {
    std::vector<PieceList> lists(aggregators);
    for (const auto& e : extents) {
      std::uint64_t cur = e.offset;
      std::uint64_t remaining = e.length.count();
      while (remaining > 0) {
        std::uint32_t owner = aggregators - 1;
        for (std::uint32_t a = 0; a < aggregators; ++a) {
          if (cur >= domains[a].lo && cur < domains[a].hi) {
            owner = a;
            break;
          }
        }
        const std::uint64_t run = std::min(remaining, domains[owner].hi - cur);
        lists[owner].extents.push_back(Extent{cur, Bytes{run}});
        cur += run;
        remaining -= run;
      }
    }
    for (std::uint32_t a = 0; a < aggregators; ++a) requests[a] = lists[a].serialize();
    for (std::size_t r = aggregators; r < requests.size(); ++r) {
      requests[r] = PieceList{}.serialize();
    }
  }
  const auto incoming_requests = comm_.alltoall(std::move(requests));

  // Phase 2: aggregators read their domain (coalesced) and answer.
  std::vector<par::Buffer> replies(static_cast<std::size_t>(size));
  for (auto& r : replies) r = PieceList{}.serialize();
  if (static_cast<std::uint32_t>(comm_.rank()) < aggregators) {
    // Union of requested ranges in this domain.
    IntervalSet wanted;
    std::vector<PieceList> parsed;
    parsed.reserve(incoming_requests.size());
    for (const auto& buf : incoming_requests) {
      parsed.push_back(PieceList::deserialize(buf));
      for (const auto& e : parsed.back().extents) {
        wanted.insert(e.offset, e.offset + e.length.count());
      }
    }
    // One big read per covered run (chunked at cb_buffer_size).
    std::map<std::uint64_t, std::vector<std::byte>> cache;
    for (const auto& run : wanted.to_vector()) {
      std::vector<std::byte> bytes(run.hi - run.lo);
      std::size_t got = 0;
      while (got < bytes.size()) {
        const std::size_t chunk =
            std::min<std::size_t>(bytes.size() - got,
                                  static_cast<std::size_t>(hints_.cb_buffer_size.count()));
        auto r = backend_.pread(fd_, std::span{bytes.data() + got, chunk}, run.lo + got);
        if (!r.ok()) {
          comm_.barrier();
          return r;
        }
        ++counters_.reads;
        counters_.bytes_read += Bytes{r.value()};
        if (r.value() < chunk) {
          std::memset(bytes.data() + got + r.value(), 0, chunk - r.value());
        }
        got += chunk;
      }
      cache.emplace(run.lo, std::move(bytes));
    }
    auto fetch = [&](std::uint64_t offset, std::span<std::byte> into) {
      const auto it = std::prev(cache.upper_bound(offset));
      const std::size_t within = static_cast<std::size_t>(offset - it->first);
      std::memcpy(into.data(), it->second.data() + within, into.size());
    };
    for (int requester = 0; requester < size; ++requester) {
      const auto& req = parsed[static_cast<std::size_t>(requester)];
      PieceList reply;
      reply.extents = req.extents;
      reply.payload.resize(total_length(req.extents).count());
      std::size_t pos = 0;
      for (const auto& e : req.extents) {
        const auto len = static_cast<std::size_t>(e.length.count());
        fetch(e.offset, std::span{reply.payload.data() + pos, len});
        pos += len;
      }
      replies[static_cast<std::size_t>(requester)] = reply.serialize();
    }
  }
  const auto incoming_data = comm_.alltoall(std::move(replies));

  // Phase 3: assemble my pieces in extent order.
  std::map<std::uint64_t, std::pair<const par::Buffer*, std::size_t>> piece_index;
  std::vector<PieceList> data_lists;
  data_lists.reserve(incoming_data.size());
  for (const auto& buf : incoming_data) data_lists.push_back(PieceList::deserialize(buf));
  // Build offset -> (list, payload pos) lookup.
  std::map<std::uint64_t, std::pair<std::size_t, std::size_t>> lookup;  // offset -> (list, pos)
  for (std::size_t l = 0; l < data_lists.size(); ++l) {
    std::size_t pos = 0;
    for (const auto& e : data_lists[l].extents) {
      lookup[e.offset] = {l, pos};
      pos += static_cast<std::size_t>(e.length.count());
    }
  }
  std::size_t out_pos = 0;
  for (const auto& e : extents) {
    std::uint64_t cur = e.offset;
    std::uint64_t remaining = e.length.count();
    while (remaining > 0) {
      const auto it = lookup.find(cur);
      if (it == lookup.end()) {
        comm_.barrier();
        return Error{-14, "read_at_all: missing piece at offset " + std::to_string(cur)};
      }
      // The piece at `cur` covers min(remaining, its length) bytes.
      const auto [l, pos] = it->second;
      // Find the piece length from the list.
      std::uint64_t piece_len = 0;
      {
        std::size_t scan_pos = 0;
        for (const auto& pe : data_lists[l].extents) {
          if (pe.offset == cur && scan_pos == pos) {
            piece_len = pe.length.count();
            break;
          }
          scan_pos += static_cast<std::size_t>(pe.length.count());
        }
      }
      const std::uint64_t run = std::min(remaining, piece_len);
      std::memcpy(out.data() + out_pos, data_lists[l].payload.data() + pos,
                  static_cast<std::size_t>(run));
      out_pos += static_cast<std::size_t>(run);
      cur += run;
      remaining -= run;
    }
  }
  comm_.barrier();
  emit(trace::OpKind::kRead, local_lo == UINT64_MAX ? 0 : local_lo, mine.count(), start, true);
  return static_cast<std::size_t>(mine.count());
}

vfs::FsStatus File::close_all() {
  comm_.barrier();
  if (comm_.rank() == 0) backend_.fsync(fd_);
  const SimTime start = now();
  const auto status = backend_.close(fd_);
  fd_ = -1;
  emit(trace::OpKind::kClose, 0, 0, start, status == vfs::FsStatus::kOk);
  comm_.barrier();
  return status;
}

}  // namespace pio::mio
