// PIOEval MPI-IO-lite: the I/O middleware layer of the Fig. 2 stack.
//
// Implements the two optimizations that define ROMIO-class middleware and
// whose effect on the POSIX-level access pattern experiment C8 reproduces:
//
//  - Two-phase collective buffering: ranks exchange their (many, small,
//    strided) extents; a subset of ranks ("aggregators") each own a
//    contiguous file domain, assemble incoming pieces, and issue few large
//    contiguous POSIX operations.
//  - Data sieving: a strided independent read whose holes are small is
//    served by one large contiguous read plus in-memory extraction.
//
// Every user-facing call emits a Layer::kMpiIo trace event; the POSIX calls
// underneath are whatever the supplied Backend emits (wrap it in a
// TracingBackend for multi-level traces).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "par/comm.hpp"
#include "trace/event.hpp"
#include "vfs/backend.hpp"

namespace pio::mio {

/// ROMIO-style hints.
struct Hints {
  /// Number of aggregator ranks for collective buffering (clamped to comm
  /// size). 0 disables collective buffering: write_at_all degrades to
  /// independent writes.
  std::uint32_t cb_nodes = 2;
  /// Max bytes an aggregator assembles per collective round.
  Bytes cb_buffer_size = Bytes::from_mib(16);
  /// Data sieving: maximum hole fraction for which a strided read is
  /// served by one big read (0 disables sieving).
  double ds_max_hole_fraction = 0.5;
};

/// One piece of a strided request in file coordinates.
struct Extent {
  std::uint64_t offset = 0;
  Bytes length = Bytes::zero();
};

/// A rank's handle on a (possibly shared) file. All collective methods must
/// be called by every rank of the communicator, in the same order.
class File {
 public:
  /// Collective open/create. Rank 0 creates the file (when `create`);
  /// everyone else opens after a barrier.
  [[nodiscard]] static Result<std::unique_ptr<File>> open_all(par::Comm& comm, vfs::Backend& backend,
                                                const std::string& path, bool create,
                                                const Hints& hints = {},
                                                trace::Sink* sink = nullptr,
                                                const trace::Clock* clock = nullptr);

  ~File();
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  // -- independent I/O -----------------------------------------------------

  [[nodiscard]] Result<std::size_t> read_at(std::uint64_t offset, std::span<std::byte> out);
  [[nodiscard]] Result<std::size_t> write_at(std::uint64_t offset,
                                             std::span<const std::byte> data);

  /// Strided independent read with optional data sieving. `extents` must be
  /// sorted by offset and non-overlapping; `out` receives the pieces
  /// back-to-back and must be exactly as large as their sum.
  [[nodiscard]] Result<std::size_t> read_strided(std::span<const Extent> extents,
                                                 std::span<std::byte> out);

  // -- collective I/O ------------------------------------------------------

  /// Two-phase collective write: this rank contributes `extents` with their
  /// payloads packed back-to-back in `data`. Returns bytes this rank
  /// contributed. Collective: every rank must call (possibly with no
  /// extents).
  [[nodiscard]] Result<std::size_t> write_at_all(std::span<const Extent> extents,
                                                 std::span<const std::byte> data);

  /// Two-phase collective read: mirror image of write_at_all.
  [[nodiscard]] Result<std::size_t> read_at_all(std::span<const Extent> extents,
                                                std::span<std::byte> out);

  /// Collective close (fsync on rank 0, then everyone closes).
  vfs::FsStatus close_all();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const Hints& hints() const { return hints_; }

  /// Independent POSIX ops this file issued through its backend — the
  /// counters C8 compares across modes.
  struct PosixCounters {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    Bytes bytes_read = Bytes::zero();
    Bytes bytes_written = Bytes::zero();
  };
  [[nodiscard]] const PosixCounters& posix_counters() const { return counters_; }

 private:
  File(par::Comm& comm, vfs::Backend& backend, std::string path, vfs::Fd fd, Hints hints,
       trace::Sink* sink, const trace::Clock* clock);

  void emit(trace::OpKind op, std::uint64_t offset, std::uint64_t size, SimTime start, bool ok);
  [[nodiscard]] SimTime now() const;

  /// Aggregator domain split for a global byte range.
  struct Domain {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;  // exclusive
  };
  [[nodiscard]] std::vector<Domain> split_domains(std::uint64_t lo, std::uint64_t hi,
                                                  std::uint32_t aggregators) const;

  par::Comm& comm_;
  vfs::Backend& backend_;
  std::string path_;
  vfs::Fd fd_;
  Hints hints_;
  trace::Sink* sink_;
  const trace::Clock* clock_;
  PosixCounters counters_;
};

/// Total bytes across extents.
[[nodiscard]] Bytes total_length(std::span<const Extent> extents);

}  // namespace pio::mio
