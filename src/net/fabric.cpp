#include "net/fabric.hpp"

#include <cmath>
#include <stdexcept>

namespace pio::net {

Fabric::Fabric(sim::Engine& engine, const FabricConfig& config, std::uint32_t endpoints)
    : engine_(engine), config_(config) {
  if (endpoints == 0) throw std::invalid_argument("Fabric: zero endpoints");
  if (config.core_links <= 0.0) throw std::invalid_argument("Fabric: core_links must be > 0");
  inject_.reserve(endpoints);
  eject_.reserve(endpoints);
  for (std::uint32_t e = 0; e < endpoints; ++e) {
    inject_.push_back(std::make_unique<sim::FairShareChannel>(
        engine_, config.endpoint_bandwidth, config.endpoint_latency,
        config.name + ".inject." + std::to_string(e)));
    eject_.push_back(std::make_unique<sim::FairShareChannel>(
        engine_, config.endpoint_bandwidth, config.endpoint_latency,
        config.name + ".eject." + std::to_string(e)));
  }
  core_ = std::make_unique<sim::FairShareChannel>(
      engine_, config.endpoint_bandwidth * config.core_links, config.core_latency,
      config.name + ".core");
}

void Fabric::send(EndpointId src, EndpointId dst, Bytes size,
                  std::function<void()> on_delivered) {
  if (src >= inject_.size() || dst >= eject_.size()) {
    throw std::out_of_range("Fabric::send: endpoint out of range");
  }
  ++stats_.messages;
  stats_.bytes += size;
  // During a brownout the message occupies factor× its real size on every
  // stage (stats above still record the true payload). The factor is latched
  // at send time so one message sees one consistent weather report.
  Bytes wire = size;
  if (timeline_ != nullptr) {
    const double factor = timeline_->slowdown(fault_id_, engine_.now());
    if (factor != 1.0) {
      ++stats_.degraded_messages;
      wire = Bytes{static_cast<std::uint64_t>(std::ceil(size.as_double() * factor))};
    }
  }
  // Store-and-forward through the three stages. Each stage is itself a
  // fair-shared fluid channel, so concurrent senders contend realistically.
  inject_[src]->transfer(wire, [this, dst, wire, done = std::move(on_delivered)]() mutable {
    core_->transfer(wire, [this, dst, wire, done = std::move(done)]() mutable {
      eject_[dst]->transfer(wire, std::move(done));
    });
  });
}

SimTime Fabric::base_latency() const {
  return config_.endpoint_latency * 2 + config_.core_latency;
}

}  // namespace pio::net
