// PIOEval network substrate: a CODES-lite fabric model.
//
// Fig. 1 of the paper has two fabrics: a fast compute interconnect
// (InfiniBand-class) between clients and I/O nodes, and a slower storage
// fabric (10GbE-class) between I/O nodes and the storage cluster. Both are
// instances of this three-stage fluid model: per-endpoint injection link →
// shared (possibly oversubscribed) core → per-endpoint ejection link. The
// model reproduces the first-order phenomena the evaluation tools must see:
// endpoint serialization, core saturation, and latency floors for small ops.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "fault/fault.hpp"
#include "sim/engine.hpp"
#include "sim/resources.hpp"

namespace pio::net {

using EndpointId = std::uint32_t;

/// Static description of one fabric.
struct FabricConfig {
  Bandwidth endpoint_bandwidth = Bandwidth::from_gib_per_sec(10.0);  ///< NIC rate
  SimTime endpoint_latency = SimTime::from_us(1.0);                  ///< per-hop
  /// Core capacity as a multiple of one endpoint link. A fully provisioned
  /// fat-tree has core_oversubscription == number of endpoints; smaller
  /// values model tapered/oversubscribed networks.
  double core_links = 8.0;
  SimTime core_latency = SimTime::from_us(1.0);
  std::string name = "fabric";
};

/// Per-fabric aggregate counters (one of the "client-side hardware
/// statistics" sources in §IV.A.2).
struct FabricStats {
  std::uint64_t messages = 0;
  Bytes bytes = Bytes::zero();
  std::uint64_t degraded_messages = 0;  ///< sent during a brownout interval
};

/// Three-stage fluid fabric between `endpoints` numbered [0, n).
class Fabric {
 public:
  Fabric(sim::Engine& engine, const FabricConfig& config, std::uint32_t endpoints);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Deliver `size` bytes from `src` to `dst`; `on_delivered` fires when the
  /// last byte leaves the destination's ejection link. Zero-size messages
  /// model latency-only RPCs.
  void send(EndpointId src, EndpointId dst, Bytes size, std::function<void()> on_delivered);

  [[nodiscard]] std::uint32_t endpoints() const { return static_cast<std::uint32_t>(inject_.size()); }
  [[nodiscard]] const FabricStats& stats() const { return stats_; }
  [[nodiscard]] const FabricConfig& config() const { return config_; }

  /// One-way zero-load latency (three hops); used by models for cost floors.
  [[nodiscard]] SimTime base_latency() const;

  /// Attach the fault timeline (owned by the caller; must outlive the
  /// fabric's use) and this fabric's identity on it. During a brownout
  /// (slowdown factor m > 1) messages occupy m× their size on every stage,
  /// modelling the lost effective bandwidth of a degraded link set.
  void set_fault_timeline(const fault::Timeline* timeline, fault::ComponentId id) {
    timeline_ = timeline;
    fault_id_ = id;
  }

 private:
  sim::Engine& engine_;
  FabricConfig config_;
  std::vector<std::unique_ptr<sim::FairShareChannel>> inject_;
  std::vector<std::unique_ptr<sim::FairShareChannel>> eject_;
  std::unique_ptr<sim::FairShareChannel> core_;
  FabricStats stats_;
  const fault::Timeline* timeline_ = nullptr;
  fault::ComponentId fault_id_{fault::ComponentKind::kComputeFabric, 0};
};

}  // namespace pio::net
