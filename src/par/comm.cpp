#include "par/comm.hpp"

#include <algorithm>
#include <exception>
#include <thread>

namespace pio::par {

int Comm::size() const { return runtime_.size(); }

void Comm::send(Rank dst, Tag tag, Buffer data) {
  if (tag < 0) throw std::invalid_argument("Comm::send: user tags must be >= 0");
  runtime_.post(dst, rank_, tag, std::move(data));
}

Buffer Comm::recv(Rank src, Tag tag) {
  if (tag < 0) throw std::invalid_argument("Comm::recv: user tags must be >= 0");
  return runtime_.take(rank_, src, tag);
}

void Comm::barrier() {
  // Dissemination barrier: log2(n) rounds of pairwise token exchange.
  const int n = size();
  for (int round = 1; round < n; round <<= 1) {
    const Rank peer_to = static_cast<Rank>((rank_ + round) % n);
    const Rank peer_from = static_cast<Rank>((rank_ - round % n + n) % n);
    runtime_.post(peer_to, rank_, detail::kBarrierTag, Buffer{});
    (void)runtime_.take(rank_, peer_from, detail::kBarrierTag);
  }
}

Buffer Comm::bcast(Rank root, Buffer data) {
  // Binomial tree rooted at `root` (ranks renumbered relative to root).
  const int n = size();
  const int vrank = (rank_ - root + n) % n;
  int mask = 1;
  while (mask < n) mask <<= 1;
  // Receive from parent (unless root).
  if (vrank != 0) {
    // Parent: clear the lowest set bit of vrank.
    const int parent_v = vrank & (vrank - 1);
    const Rank parent = static_cast<Rank>((parent_v + root) % n);
    data = runtime_.take(rank_, parent, detail::kBcastTag);
  }
  // Send to children: vrank | bit for bits above the lowest set bit.
  const int lowest = vrank == 0 ? mask : (vrank & -vrank);
  for (int bit = lowest >> 1; bit >= 1; bit >>= 1) {
    const int child_v = vrank | bit;
    if (child_v < n && child_v != vrank) {
      const Rank child = static_cast<Rank>((child_v + root) % n);
      runtime_.post(child, rank_, detail::kBcastTag, data);
    }
  }
  return data;
}

double Comm::reduce(Rank root, double value, ReduceOp op) {
  // Linear gather at root; n is small in this runtime (tests use <= 64).
  const int n = size();
  if (rank_ != root) {
    runtime_.post(root, rank_, detail::kReduceTag, encode(value));
    return 0.0;
  }
  double acc = value;
  for (Rank r = 0; r < n; ++r) {
    if (r == root) continue;
    const double v = decode<double>(runtime_.take(rank_, r, detail::kReduceTag));
    switch (op) {
      case ReduceOp::kSum: acc += v; break;
      case ReduceOp::kMin: acc = std::min(acc, v); break;
      case ReduceOp::kMax: acc = std::max(acc, v); break;
    }
  }
  return acc;
}

double Comm::allreduce(double value, ReduceOp op) {
  const double reduced = reduce(0, value, op);
  const Buffer out = bcast(0, rank_ == 0 ? encode(reduced) : Buffer{});
  return decode<double>(out);
}

std::vector<Buffer> Comm::gather(Rank root, Buffer data) {
  const int n = size();
  if (rank_ != root) {
    runtime_.post(root, rank_, detail::kGatherTag, std::move(data));
    return {};
  }
  std::vector<Buffer> all(static_cast<std::size_t>(n));
  all[static_cast<std::size_t>(root)] = std::move(data);
  for (Rank r = 0; r < n; ++r) {
    if (r == root) continue;
    all[static_cast<std::size_t>(r)] = runtime_.take(rank_, r, detail::kGatherTag);
  }
  return all;
}

Buffer Comm::scatter(Rank root, std::vector<Buffer> data) {
  const int n = size();
  if (rank_ == root) {
    if (data.size() != static_cast<std::size_t>(n)) {
      throw std::invalid_argument("Comm::scatter: root must provide size() buffers");
    }
    for (Rank r = 0; r < n; ++r) {
      if (r == root) continue;
      runtime_.post(r, rank_, detail::kScatterTag, std::move(data[static_cast<std::size_t>(r)]));
    }
    return std::move(data[static_cast<std::size_t>(root)]);
  }
  return runtime_.take(rank_, root, detail::kScatterTag);
}

std::vector<Buffer> Comm::alltoall(std::vector<Buffer> out) {
  const int n = size();
  if (out.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("Comm::alltoall: must provide size() buffers");
  }
  std::vector<Buffer> in(static_cast<std::size_t>(n));
  in[static_cast<std::size_t>(rank_)] = std::move(out[static_cast<std::size_t>(rank_)]);
  // Post everything first (sends never block), then collect.
  for (Rank r = 0; r < n; ++r) {
    if (r == rank_) continue;
    runtime_.post(r, rank_, detail::kAlltoallTag, std::move(out[static_cast<std::size_t>(r)]));
  }
  for (Rank r = 0; r < n; ++r) {
    if (r == rank_) continue;
    in[static_cast<std::size_t>(r)] = runtime_.take(rank_, r, detail::kAlltoallTag);
  }
  return in;
}

Runtime::Runtime(int size) : size_(size) {
  if (size <= 0) throw std::invalid_argument("Runtime: size must be positive");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) mailboxes_.push_back(std::make_unique<Mailbox>());
}

void Runtime::run(const std::function<void(Comm&)>& body) {
  if (!body) throw std::invalid_argument("Runtime::run: empty body");
  // The collectives runtime models ranks as threads; each rank is a peer,
  // not a work item, so exec::Pool does not apply. piolint: allow(P1)
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  threads.reserve(static_cast<std::size_t>(size_));
  for (Rank r = 0; r < size_; ++r) {
    threads.emplace_back([this, r, &body, &errors] {
      Comm comm{*this, r};
      try {
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Any rank failure aborts the whole job so peers blocked in recv
        // don't deadlock (MPI-abort semantics).
        abort_job();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Clear mailboxes between runs so a failed run cannot poison the next.
  for (auto& mb : mailboxes_) {
    const std::scoped_lock lock(mb->mutex);
    mb->slots.clear();
  }
  aborted_.store(false);
  for (const auto& err : errors) {
    // Report the first *root-cause* failure, not a secondary JobAborted.
    if (!err) continue;
    try {
      std::rethrow_exception(err);
    } catch (const JobAborted&) {
      continue;
    } catch (...) {
      throw;
    }
  }
}

void Runtime::post(Rank dst, Rank src, Tag tag, Buffer data) {
  if (dst < 0 || dst >= size_) throw std::out_of_range("Runtime::post: bad destination");
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    const std::scoped_lock lock(mb.mutex);
    mb.slots[{src, tag}].push_back(std::move(data));
  }
  mb.cv.notify_all();
}

void Runtime::abort_job() {
  aborted_.store(true);
  for (auto& mb : mailboxes_) {
    const std::scoped_lock lock(mb->mutex);
    mb->cv.notify_all();
  }
}

Buffer Runtime::take(Rank dst, Rank src, Tag tag) {
  if (src < 0 || src >= size_) throw std::out_of_range("Runtime::take: bad source");
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock lock(mb.mutex);
  const auto key = std::make_pair(src, tag);
  mb.cv.wait(lock, [&] {
    if (aborted_.load()) return true;
    const auto it = mb.slots.find(key);
    return it != mb.slots.end() && !it->second.empty();
  });
  if (aborted_.load()) {
    // Drain-then-abort is unnecessary: the job result is already a failure.
    throw JobAborted{};
  }
  const auto it = mb.slots.find(key);
  Buffer data = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) mb.slots.erase(it);
  return data;
}

}  // namespace pio::par
