// PIOEval parallel substrate: a minimal MPI-shaped runtime.
//
// Ranks are std::threads sharing a mailbox array; the API is the subset of
// MPI the measurement-path benchmarks need: matched point-to-point
// send/recv, barrier, and the collectives (bcast/reduce/allreduce/gather/
// scatter/alltoall). All parallelism is message passing — ranks share no
// mutable state (Core Guidelines CP.2/CP.3: avoid data races, minimize
// explicit sharing).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

namespace pio::par {

using Rank = int;
using Tag = int;

/// Raw message payload.
using Buffer = std::vector<std::byte>;

/// Encode a trivially copyable value into a Buffer.
template <typename T>
  requires std::is_trivially_copyable_v<T>
Buffer encode(const T& value) {
  Buffer buf(sizeof(T));
  std::memcpy(buf.data(), &value, sizeof(T));
  return buf;
}

/// Encode a contiguous range of trivially copyable values.
template <typename T>
  requires std::is_trivially_copyable_v<T>
Buffer encode_range(std::span<const T> values) {
  Buffer buf(values.size_bytes());
  if (!values.empty()) std::memcpy(buf.data(), values.data(), values.size_bytes());
  return buf;
}

/// Decode a trivially copyable value; throws on size mismatch.
template <typename T>
  requires std::is_trivially_copyable_v<T>
T decode(const Buffer& buf) {
  if (buf.size() != sizeof(T)) throw std::invalid_argument("par::decode: size mismatch");
  T value;
  std::memcpy(&value, buf.data(), sizeof(T));
  return value;
}

/// Decode a whole buffer as a vector<T>; throws if not a multiple of T.
template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<T> decode_range(const Buffer& buf) {
  if (buf.size() % sizeof(T) != 0) throw std::invalid_argument("par::decode_range: size mismatch");
  std::vector<T> values(buf.size() / sizeof(T));
  if (!values.empty()) std::memcpy(values.data(), buf.data(), buf.size());
  return values;
}

/// Binary reduction over doubles.
enum class ReduceOp : std::uint8_t { kSum, kMin, kMax };

class Runtime;

/// Per-rank communicator handle. Each rank thread owns exactly one Comm;
/// Comm methods may be called only from that thread.
class Comm {
 public:
  [[nodiscard]] Rank rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// Blocking matched send/recv. Sends never block (unbounded mailboxes);
  /// recv blocks until a message with the exact (src, tag) arrives.
  void send(Rank dst, Tag tag, Buffer data);
  [[nodiscard]] Buffer recv(Rank src, Tag tag);

  /// Typed conveniences.
  template <typename T>
  void send_value(Rank dst, Tag tag, const T& value) {
    send(dst, tag, encode(value));
  }
  template <typename T>
  [[nodiscard]] T recv_value(Rank src, Tag tag) {
    return decode<T>(recv(src, tag));
  }

  /// Collectives (all ranks must call, in the same order).
  void barrier();
  [[nodiscard]] Buffer bcast(Rank root, Buffer data);
  [[nodiscard]] double reduce(Rank root, double value, ReduceOp op);
  [[nodiscard]] double allreduce(double value, ReduceOp op);
  /// Root receives size() buffers in rank order; others get {}.
  [[nodiscard]] std::vector<Buffer> gather(Rank root, Buffer data);
  /// Root provides size() buffers; each rank gets its slot.
  [[nodiscard]] Buffer scatter(Rank root, std::vector<Buffer> data);
  /// Pairwise exchange: `out[i]` goes to rank i; returns what each rank sent
  /// to this one, in rank order.
  [[nodiscard]] std::vector<Buffer> alltoall(std::vector<Buffer> out);

 private:
  friend class Runtime;
  Comm(Runtime& runtime, Rank rank) : runtime_(runtime), rank_(rank) {}

  Runtime& runtime_;
  Rank rank_;
};

/// Owns the rank threads and mailboxes. `run` is synchronous: it spawns
/// size() threads, executes `body` on each with its Comm, and joins. Any
/// exception escaping a rank is rethrown on the caller's thread (first rank
/// order wins).
class Runtime {
 public:
  explicit Runtime(int size);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  void run(const std::function<void(Comm&)>& body);

  [[nodiscard]] int size() const { return size_; }

 private:
  friend class Comm;

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    // (src, tag) -> FIFO of payloads. Exact matching keeps semantics simple
    // and deterministic.
    std::map<std::pair<Rank, Tag>, std::deque<Buffer>> slots;
  };

  void post(Rank dst, Rank src, Tag tag, Buffer data);
  [[nodiscard]] Buffer take(Rank dst, Rank src, Tag tag);
  /// Wake every blocked receiver; their takes throw JobAborted. Called when
  /// any rank exits by exception so the whole job terminates (like an MPI
  /// abort) instead of deadlocking.
  void abort_job();

  int size_;
  std::atomic<bool> aborted_{false};
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

/// Thrown out of blocking operations when another rank failed.
class JobAborted : public std::runtime_error {
 public:
  JobAborted() : std::runtime_error("par: job aborted because another rank failed") {}
};

/// Internal tags used by the collectives; user tags must be >= 0.
namespace detail {
inline constexpr Tag kBarrierTag = -1;
inline constexpr Tag kBcastTag = -2;
inline constexpr Tag kReduceTag = -3;
inline constexpr Tag kGatherTag = -4;
inline constexpr Tag kScatterTag = -5;
inline constexpr Tag kAlltoallTag = -6;
}  // namespace detail

}  // namespace pio::par
