#include "pfs/burst_buffer.hpp"

#include <algorithm>
#include <stdexcept>

namespace pio::pfs {

BurstBuffer::BurstBuffer(sim::Engine& engine, const BurstBufferConfig& config,
                         BackingWrite backing_write, std::string name)
    : engine_(engine),
      config_(config),
      backing_write_(std::move(backing_write)),
      name_(std::move(name)),
      device_(config.device),
      ssd_queue_(engine, name_ + ".ssd") {
  if (!backing_write_) throw std::invalid_argument("BurstBuffer: null backing_write");
  if (config.capacity == Bytes::zero()) throw std::invalid_argument("BurstBuffer: zero capacity");
}

bool BurstBuffer::can_absorb(Bytes size) const {
  return occupancy_ + size <= config_.capacity;
}

void BurstBuffer::write(std::uint64_t file, std::uint64_t offset, Bytes size,
                        std::function<void()> on_absorbed) {
  if (!can_absorb(size)) throw std::logic_error("BurstBuffer::write: over capacity");
  occupancy_ += size;
  stats_.absorbed += size;
  stats_.peak_occupancy = std::max(stats_.peak_occupancy, occupancy_.count());
  resident_[file].insert(offset, offset + size.count());
  const SimTime service = device_.service_time(DiskRequest{offset, size, /*is_write=*/true});
  ssd_queue_.submit(service, [this, file, offset, size, done = std::move(on_absorbed)]() mutable {
    drain_queue_.push_back(StagedExtent{file, offset, size});
    schedule_drain();
    if (done) done();
  });
}

bool BurstBuffer::resident(std::uint64_t file, std::uint64_t offset, Bytes size) const {
  const auto it = resident_.find(file);
  return it != resident_.end() && it->second.contains(offset, offset + size.count());
}

void BurstBuffer::read(std::uint64_t file, std::uint64_t offset, Bytes size,
                       std::function<void()> on_done) {
  if (!resident(file, offset, size)) throw std::logic_error("BurstBuffer::read: not resident");
  stats_.read_hits += size;
  const SimTime service = device_.service_time(DiskRequest{offset, size, /*is_write=*/false});
  ssd_queue_.submit(service, std::move(on_done));
}

void BurstBuffer::schedule_drain() {
  if (drain_active_ || drain_queue_.empty()) return;
  drain_active_ = true;
  engine_.schedule_after(config_.drain_delay, [this] { drain_next(); });
}

void BurstBuffer::drain_next() {
  if (drain_queue_.empty()) {
    drain_active_ = false;
    return;
  }
  const StagedExtent extent = drain_queue_.front();
  drain_queue_.pop_front();
  // Pace the drain at the configured bandwidth, then hand the extent to the
  // backing store (which adds its own fabric/OST costs).
  const SimTime pace = config_.drain_bandwidth.transfer_time(extent.size);
  engine_.schedule_after(pace, [this, extent] {
    backing_write_(extent.file, extent.offset, extent.size, [this, extent] {
      stats_.drained += extent.size;
      occupancy_ -= extent.size;
      // Once the backing store has it, the staged copy is dropped; later
      // reads of the range go to the PFS.
      const auto it = resident_.find(extent.file);
      if (it != resident_.end()) {
        it->second.erase(extent.offset, extent.offset + extent.size.count());
        if (it->second.empty()) resident_.erase(it);
      }
      drain_next();
    });
  });
}

}  // namespace pio::pfs
