// PIOEval storage substrate: burst-buffer tier.
//
// Fig. 1: "I/O nodes ... potentially integrate a tier of solid-state devices
// to absorb the burst of random or high volume operations, so that transfers
// to/from the staging area from/to the traditional parallel file system can
// be done more efficiently." This model absorbs writes at SSD speed into a
// bounded staging area and drains them asynchronously at a configured drain
// bandwidth; reads are served from the buffer while resident. Experiment C9
// sweeps placement (node-local vs shared) by instantiating one buffer per
// I/O node vs one shared buffer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/interval_set.hpp"
#include "common/types.hpp"
#include "pfs/disk.hpp"
#include "sim/engine.hpp"
#include "sim/resources.hpp"

namespace pio::pfs {

struct BurstBufferConfig {
  Bytes capacity = Bytes::from_gib(16);
  SsdConfig device{};
  /// Sustained bandwidth at which staged data drains to the backing PFS.
  Bandwidth drain_bandwidth = Bandwidth::from_mib_per_sec(500.0);
  /// Delay before a freshly staged extent becomes eligible to drain; larger
  /// values model lazy write-back.
  SimTime drain_delay = SimTime::from_ms(10.0);
};

struct BurstBufferStats {
  Bytes absorbed = Bytes::zero();     ///< writes accepted into the buffer
  Bytes bypassed = Bytes::zero();     ///< writes that fell through (full)
  Bytes drained = Bytes::zero();      ///< bytes flushed to the backing store
  Bytes read_hits = Bytes::zero();
  Bytes read_misses = Bytes::zero();
  std::uint64_t peak_occupancy = 0;   ///< bytes
};

/// Write-back staging tier in front of a backing store.
class BurstBuffer {
 public:
  /// `backing_write(file, offset, size, on_done)` performs the drain I/O on
  /// the backing store (supplied by the PFS facade, so the drain path shares
  /// the storage fabric and OST queues with foreground traffic).
  using BackingWrite =
      std::function<void(std::uint64_t file, std::uint64_t offset, Bytes size,
                         std::function<void()> on_done)>;

  BurstBuffer(sim::Engine& engine, const BurstBufferConfig& config, BackingWrite backing_write,
              std::string name = "bb");

  BurstBuffer(const BurstBuffer&) = delete;
  BurstBuffer& operator=(const BurstBuffer&) = delete;

  /// True iff a write of `size` fits in the remaining staging space.
  [[nodiscard]] bool can_absorb(Bytes size) const;

  /// Record a bypassed write in the stats (caller chose write-through).
  void note_bypass(Bytes size) { stats_.bypassed += size; }

  /// Absorb a write; `on_absorbed` fires when the SSD has it (write-back
  /// semantics — the drain to the backing store continues asynchronously).
  /// Precondition: can_absorb(size).
  void write(std::uint64_t file, std::uint64_t offset, Bytes size,
             std::function<void()> on_absorbed);

  /// True iff [offset, offset+size) of `file` is fully staged.
  [[nodiscard]] bool resident(std::uint64_t file, std::uint64_t offset, Bytes size) const;

  /// Record a read miss in the stats (caller went to the backing store).
  void note_miss(Bytes size) { stats_.read_misses += size; }

  /// Serve a read from the staged copy. Precondition: resident(...).
  void read(std::uint64_t file, std::uint64_t offset, Bytes size,
            std::function<void()> on_done);

  /// Bytes currently staged (absorbed but not yet drained).
  [[nodiscard]] Bytes occupancy() const { return occupancy_; }
  [[nodiscard]] const BurstBufferStats& stats() const { return stats_; }
  /// True when no drain is pending or in flight.
  [[nodiscard]] bool quiescent() const { return !drain_active_ && drain_queue_.empty(); }

 private:
  struct StagedExtent {
    std::uint64_t file;
    std::uint64_t offset;
    Bytes size;
  };

  void schedule_drain();
  void drain_next();

  sim::Engine& engine_;
  BurstBufferConfig config_;
  BackingWrite backing_write_;
  std::string name_;
  SsdModel device_;
  sim::FifoServer ssd_queue_;
  Bytes occupancy_ = Bytes::zero();
  std::unordered_map<std::uint64_t, IntervalSet> resident_;  // file -> ranges
  std::deque<StagedExtent> drain_queue_;
  bool drain_active_ = false;
  BurstBufferStats stats_;
};

}  // namespace pio::pfs
