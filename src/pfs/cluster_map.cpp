#include "pfs/cluster_map.hpp"

#include <algorithm>

namespace pio::pfs {

const char* to_string(OstState state) {
  switch (state) {
    case OstState::kUp: return "up";
    case OstState::kDraining: return "draining";
    case OstState::kDown: return "down";
    case OstState::kDecommissioned: return "decommissioned";
  }
  return "?";
}

const char* to_string(PlacementMode mode) {
  switch (mode) {
    case PlacementMode::kRoundRobin: return "round-robin";
    case PlacementMode::kRendezvousHash: return "rendezvous-hash";
  }
  return "?";
}

const char* to_string(MembershipChange change) {
  switch (change) {
    case MembershipChange::kJoin: return "join";
    case MembershipChange::kDrain: return "drain";
    case MembershipChange::kDecommission: return "decommission";
  }
  return "?";
}

std::vector<OstIndex> ClusterMap::placeable_osts() const {
  std::vector<OstIndex> pool;
  pool.reserve(states_.size());
  for (std::uint32_t i = 0; i < states_.size(); ++i) {
    if (states_[i] == OstState::kUp) pool.push_back(i);
  }
  return pool;
}

std::uint64_t file_placement_key(std::string_view path) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (const char c : path) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

namespace {

// SplitMix64 finalizer: the avalanche stage only, applied to a combined key.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::uint64_t placement_hash(std::uint64_t file_key, std::uint64_t stripe_index, OstIndex ost) {
  std::uint64_t x = file_key + 0x9E3779B97F4A7C15ULL;
  x = mix64(x ^ stripe_index);
  x = mix64(x ^ ost);
  return x;
}

std::vector<OstIndex> placement_targets(const ClusterMap& map, PlacementMode mode,
                                        const StripeLayout& layout, std::uint64_t file_key,
                                        std::uint64_t stripe_index, std::uint32_t replicas) {
  const std::vector<OstIndex> pool = map.placeable_osts();
  if (pool.empty()) return {};
  const std::size_t want = std::min<std::size_t>(std::max<std::uint32_t>(1, replicas),
                                                 pool.size());
  std::vector<OstIndex> targets;
  targets.reserve(want);
  if (mode == PlacementMode::kRoundRobin) {
    // Lane indexing into the *current* pool: removing or adding any pool
    // member renumbers almost every stripe — the full-reshuffle baseline
    // that rendezvous hashing exists to beat.
    const std::uint64_t lane = stripe_index % layout.stripe_count;
    const std::size_t base = (layout.first_ost + lane) % pool.size();
    for (std::size_t r = 0; r < want; ++r) {
      targets.push_back(pool[(base + r) % pool.size()]);
    }
    return targets;
  }
  // Rendezvous (HRW): every pool member scores the stripe; the top-`want`
  // scores win. An OST leaving moves only the stripes it was winning; an
  // OST joining moves only the stripes it now wins — minimal migration.
  std::vector<std::pair<std::uint64_t, OstIndex>> scored;
  scored.reserve(pool.size());
  for (const OstIndex ost : pool) {
    scored.emplace_back(placement_hash(file_key, stripe_index, ost), ost);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;  // higher score wins
    return a.second < b.second;                        // stable tie-break
  });
  for (std::size_t r = 0; r < want; ++r) targets.push_back(scored[r].second);
  return targets;
}

}  // namespace pio::pfs
