// PIOEval storage substrate: epoch-versioned cluster membership.
//
// Modeled on Ceph's OSDMap discipline: the cluster's view of which OSTs
// exist and in what state is an *epoch-versioned map*, published by the
// metadata server's monitor whenever membership changes. Clients cache a
// possibly-stale epoch; an OST addressed through a map whose placement for
// that stripe has since moved rejects the request with IoError::kStaleMap
// and the client must refresh-and-retry (PfsModel wires this through the
// existing RetryPolicy). Failure detection is *not* omniscient: OSTs emit
// seeded-jittered heartbeats to the monitor as real DES traffic, and an OST
// is only marked down after `heartbeat_grace` consecutive missed intervals —
// so detection latency (and the client failures inside it) is a measurable,
// sweepable quantity rather than zero (DESIGN.md §13).
//
// Placement is a pure function of (map, layout, file key, stripe index), in
// two modes: round-robin over the placeable pool (any membership change
// reshuffles almost everything — the baseline), and rendezvous/HRW hashing
// (an epoch change migrates only the stripes whose winning OSTs changed).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/seed_streams.hpp"
#include "common/types.hpp"
#include "pfs/stripe.hpp"

namespace pio::pfs {

/// Engine Rng stream ids for heartbeat jitter and drain/migration pacing;
/// claimed in the seed-stream registry (common/seed_streams.hpp, rule S1).
inline constexpr std::uint64_t kHeartbeatRngStream = seeds::kHeartbeatJitterStream;
inline constexpr std::uint64_t kDrainRngStream = seeds::kDrainPaceStream;

/// One OST's state in a ClusterMap epoch.
enum class OstState : std::uint8_t {
  kUp,              ///< serving reads and writes; in the placement pool
  kDraining,        ///< serving reads while its data migrates off; no new writes
  kDown,            ///< detected dead (heartbeat grace expired); serving nothing
  kDecommissioned,  ///< administratively removed (or not yet joined)
};

[[nodiscard]] const char* to_string(OstState state);

/// How stripe replicas are assigned to the placeable OST pool.
enum class PlacementMode : std::uint8_t {
  kRoundRobin,       ///< lane index into the sorted pool; pool change reshuffles
  kRendezvousHash,   ///< highest-random-weight; pool change migrates minimally
};

[[nodiscard]] const char* to_string(PlacementMode mode);

/// A scripted administrative membership change (operator action). Crashes
/// and recoveries are NOT scripted here — they come from the fault timeline
/// and are *detected* via heartbeats.
enum class MembershipChange : std::uint8_t { kJoin, kDrain, kDecommission };

[[nodiscard]] const char* to_string(MembershipChange change);

struct MembershipEvent {
  SimTime at = SimTime::zero();
  MembershipChange change = MembershipChange::kJoin;
  OstIndex ost = 0;
};

/// Cluster-membership knobs for PfsModel (see DESIGN.md §13). Off by
/// default: every PR2–PR6 semantics (omniscient timeline routing, static
/// round-robin striping) is preserved exactly when `enabled` is false.
struct ClusterMapConfig {
  bool enabled = false;
  PlacementMode placement = PlacementMode::kRoundRobin;
  /// Nominal heartbeat period per OST; each beat is jittered by
  /// +/- heartbeat_jitter_fraction on the kHeartbeatRngStream substream.
  SimTime heartbeat_interval = SimTime::from_ms(5.0);
  double heartbeat_jitter_fraction = 0.1;
  /// Missed intervals before the monitor declares an OST down. Values >= 2
  /// are recommended: with grace 1 a single jittered-late beat can flap.
  std::uint32_t heartbeat_grace = 3;
  /// Heartbeats are emitted in [0, horizon] only, like
  /// fault::InjectorConfig::horizon — this bounds the event population so
  /// runs drain. Membership events must fall within the horizon. Detection
  /// is horizon-bound too: the monitor arms a grace deadline only when the
  /// full window fits before the horizon, so the end of the heartbeat
  /// stream never reads as a mass crash.
  SimTime horizon = SimTime::from_sec(30.0);
  /// OSTs that start outside the cluster (state kDecommissioned) — spare
  /// capacity that a scripted kJoin event can add live.
  std::vector<OstIndex> initial_absent;
  /// Scripted operator actions, applied at their timestamps.
  std::vector<MembershipEvent> membership;

  ClusterMapConfig& join(OstIndex ost, SimTime at) {
    membership.push_back({at, MembershipChange::kJoin, ost});
    return *this;
  }
  ClusterMapConfig& drain(OstIndex ost, SimTime at) {
    membership.push_back({at, MembershipChange::kDrain, ost});
    return *this;
  }
  ClusterMapConfig& decommission(OstIndex ost, SimTime at) {
    membership.push_back({at, MembershipChange::kDecommission, ost});
    return *this;
  }

  /// The detection window: an OST silent this long is declared down.
  [[nodiscard]] SimTime grace_period() const {
    return heartbeat_interval * static_cast<std::int64_t>(heartbeat_grace);
  }
};

/// One published epoch: a version number plus every OST's state. Epochs only
/// grow; the monitor keeps the full history so clients holding any past
/// epoch can be reasoned about (read fallback consults older placements).
class ClusterMap {
 public:
  ClusterMap() = default;
  ClusterMap(std::uint64_t epoch, std::vector<OstState> states)
      : epoch_(epoch), states_(std::move(states)) {}

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint32_t size() const { return static_cast<std::uint32_t>(states_.size()); }
  [[nodiscard]] OstState state(OstIndex ost) const { return states_.at(ost); }
  /// Can serve reads for data it holds (kUp or kDraining).
  [[nodiscard]] bool serving(OstIndex ost) const {
    return states_.at(ost) == OstState::kUp || states_.at(ost) == OstState::kDraining;
  }
  /// In the write-placement pool (kUp only: drains take no new data).
  [[nodiscard]] bool placeable(OstIndex ost) const { return states_.at(ost) == OstState::kUp; }
  /// Placeable OSTs in ascending index order (the placement pool).
  [[nodiscard]] std::vector<OstIndex> placeable_osts() const;

  void set_state(OstIndex ost, OstState state) { states_.at(ost) = state; }
  void bump_epoch() { ++epoch_; }

 private:
  std::uint64_t epoch_ = 1;
  std::vector<OstState> states_;
};

/// Stable per-file placement key (FNV-1a of the path): part of the HRW hash
/// input so two files with identical layouts still spread independently.
[[nodiscard]] std::uint64_t file_placement_key(std::string_view path);

/// The HRW weight of `ost` for stripe `stripe_index` of the file keyed
/// `file_key`. Pure and fixed forever: campaign digests depend on it.
[[nodiscard]] std::uint64_t placement_hash(std::uint64_t file_key, std::uint64_t stripe_index,
                                           OstIndex ost);

/// Replica targets for one stripe under `map`, primary first, pairwise
/// distinct. Returns fewer than `replicas` entries when the placeable pool
/// is smaller, and an empty vector when no OST is placeable.
[[nodiscard]] std::vector<OstIndex> placement_targets(const ClusterMap& map, PlacementMode mode,
                                                      const StripeLayout& layout,
                                                      std::uint64_t file_key,
                                                      std::uint64_t stripe_index,
                                                      std::uint32_t replicas);

}  // namespace pio::pfs
