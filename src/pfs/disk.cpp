#include "pfs/disk.hpp"

#include <algorithm>
#include <cmath>

namespace pio::pfs {

HddModel::HddModel(const HddConfig& config, Rng rng) : config_(config), rng_(rng) {}

SimTime HddModel::service_time(const DiskRequest& req) {
  SimTime positioning = SimTime::zero();
  const std::uint64_t distance =
      req.offset >= head_position_ ? req.offset - head_position_ : head_position_ - req.offset;
  if (distance > config_.sequential_window.count()) {
    // Positioning cost scales mildly with distance (short seeks cheaper).
    const double distance_factor =
        0.5 + 0.5 * std::min(1.0, static_cast<double>(distance) / (64.0 * 1024.0 * 1024.0));
    const double jitter = 1.0 + config_.jitter_fraction * (2.0 * rng_.uniform() - 1.0);
    const double pos_ns = (static_cast<double>(config_.avg_seek.ns()) * distance_factor +
                           static_cast<double>(config_.rotational_latency.ns())) *
                          jitter;
    positioning = SimTime::from_ns(static_cast<std::int64_t>(pos_ns));
    ++seeks_;
  } else {
    ++sequential_hits_;
  }
  head_position_ = req.offset + req.size.count();
  return positioning + config_.stream_bandwidth.transfer_time(req.size);
}

SsdModel::SsdModel(const SsdConfig& config) : config_(config) {}

SimTime SsdModel::service_time(const DiskRequest& req) {
  if (req.is_write) {
    return config_.write_latency + config_.write_bandwidth.transfer_time(req.size);
  }
  return config_.read_latency + config_.read_bandwidth.transfer_time(req.size);
}

std::unique_ptr<DiskModel> make_hdd(const HddConfig& config, Rng rng) {
  return std::make_unique<HddModel>(config, rng);
}

std::unique_ptr<DiskModel> make_ssd(const SsdConfig& config) {
  return std::make_unique<SsdModel>(config);
}

}  // namespace pio::pfs
