// PIOEval storage substrate: device service-time models.
//
// The contrast between these two models carries several of the paper's
// claims: a seek-dominated HDD makes random small reads (deep-learning
// minibatch input, §V.B) catastrophically slower than streaming writes,
// while an SSD (burst-buffer tier, Fig. 1) has a flat latency profile.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace pio::pfs {

/// One I/O request as seen by a device.
struct DiskRequest {
  std::uint64_t offset = 0;  ///< device byte address
  Bytes size = Bytes::zero();
  bool is_write = false;
};

/// Device model: stateful (sequentiality depends on head position), returns
/// the full service time for a request and advances internal state.
class DiskModel {
 public:
  virtual ~DiskModel() = default;

  /// Service time for `req`, assuming the device is dedicated to it (the
  /// OST's queue serializes requests).
  virtual SimTime service_time(const DiskRequest& req) = 0;

  /// Model name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Rotational disk: seek + rotational latency on discontiguous access, then
/// streaming transfer. Small jitter keeps queueing realistic without
/// breaking determinism (jitter draws from a dedicated Rng substream).
struct HddConfig {
  SimTime avg_seek = SimTime::from_ms(4.0);
  SimTime rotational_latency = SimTime::from_ms(2.0);
  Bandwidth stream_bandwidth = Bandwidth::from_mib_per_sec(180.0);
  /// Accesses within this distance of the previous end are "sequential"
  /// (track buffer / readahead) and skip the positioning cost.
  Bytes sequential_window = Bytes::from_mib(1);
  double jitter_fraction = 0.05;  ///< +/- uniform jitter on positioning
};

class HddModel final : public DiskModel {
 public:
  HddModel(const HddConfig& config, Rng rng);

  SimTime service_time(const DiskRequest& req) override;
  [[nodiscard]] std::string name() const override { return "hdd"; }

  [[nodiscard]] std::uint64_t seeks() const { return seeks_; }
  [[nodiscard]] std::uint64_t sequential_hits() const { return sequential_hits_; }

 private:
  HddConfig config_;
  Rng rng_;
  std::uint64_t head_position_ = 0;  ///< byte address after last request
  std::uint64_t seeks_ = 0;
  std::uint64_t sequential_hits_ = 0;
};

/// Flash device: per-op latency (asymmetric read/write) + transfer.
struct SsdConfig {
  SimTime read_latency = SimTime::from_us(80.0);
  SimTime write_latency = SimTime::from_us(30.0);
  Bandwidth read_bandwidth = Bandwidth::from_gib_per_sec(3.0);
  Bandwidth write_bandwidth = Bandwidth::from_gib_per_sec(2.0);
};

class SsdModel final : public DiskModel {
 public:
  explicit SsdModel(const SsdConfig& config);

  SimTime service_time(const DiskRequest& req) override;
  [[nodiscard]] std::string name() const override { return "ssd"; }

 private:
  SsdConfig config_;
};

/// Factory helpers.
std::unique_ptr<DiskModel> make_hdd(const HddConfig& config, Rng rng);
std::unique_ptr<DiskModel> make_ssd(const SsdConfig& config);

}  // namespace pio::pfs
