#include "pfs/durability.hpp"

#include <algorithm>

namespace pio::pfs {

// ------------------------------------------------------------------ TokenMap

void TokenMap::assign(std::uint64_t lo, std::uint64_t hi, WriteToken token) {
  if (lo >= hi) return;
  // Trim or split any runs overlapping [lo, hi), then insert the new run.
  auto it = map_.lower_bound(lo);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.hi > lo) {
      const Run old = prev->second;
      prev->second.hi = lo;  // keep the left remainder
      if (old.hi > hi) map_.emplace(hi, Run{old.hi, old.token});  // right remainder
    }
  }
  while (it != map_.end() && it->first < hi) {
    const auto next = std::next(it);
    if (it->second.hi > hi) {
      map_.emplace(hi, Run{it->second.hi, it->second.token});
    }
    map_.erase(it);
    it = next;
  }
  // Coalesce with equal-token neighbours so long sequential writes stay O(1).
  std::uint64_t new_lo = lo;
  std::uint64_t new_hi = hi;
  auto at = map_.lower_bound(lo);
  if (at != map_.begin()) {
    auto prev = std::prev(at);
    if (prev->second.hi == lo && prev->second.token == token) {
      new_lo = prev->first;
      map_.erase(prev);
    }
  }
  auto right = map_.find(hi);
  if (right != map_.end() && right->second.token == token) {
    new_hi = right->second.hi;
    map_.erase(right);
  }
  map_.emplace(new_lo, Run{new_hi, token});
}

std::vector<TokenMap::Segment> TokenMap::segments(std::uint64_t lo, std::uint64_t hi) const {
  std::vector<Segment> out;
  if (lo >= hi) return out;
  auto it = map_.lower_bound(lo);
  if (it != map_.begin() && std::prev(it)->second.hi > lo) --it;
  for (; it != map_.end() && it->first < hi; ++it) {
    const std::uint64_t seg_lo = std::max(lo, it->first);
    const std::uint64_t seg_hi = std::min(hi, it->second.hi);
    if (seg_lo < seg_hi) out.push_back(Segment{seg_lo, seg_hi, it->second.token});
  }
  return out;
}

bool TokenMap::holds(std::uint64_t lo, std::uint64_t hi, WriteToken token) const {
  if (lo >= hi) return true;
  std::uint64_t cursor = lo;
  for (const auto& seg : segments(lo, hi)) {
    if (seg.lo != cursor || seg.token != token) return false;
    cursor = seg.hi;
  }
  return cursor == hi;
}

// ----------------------------------------------------------- DurabilityLedger

void DurabilityLedger::apply(std::uint64_t file, std::uint32_t ost, std::uint64_t lo,
                             std::uint64_t hi, WriteToken token) {
  stores_[file][ost].assign(lo, hi, token);
  const auto ost_it = dirty_.find(ost);
  if (ost_it != dirty_.end()) {
    const auto file_it = ost_it->second.find(file);
    if (file_it != ost_it->second.end()) file_it->second.erase(lo, hi);
  }
}

void DurabilityLedger::ack(std::uint64_t file, std::uint64_t lo, std::uint64_t hi,
                           WriteToken token) {
  acked_[file].assign(lo, hi, token);
}

void DurabilityLedger::mark_missed(std::uint32_t ost, std::uint64_t file, std::uint64_t lo,
                                   std::uint64_t hi) {
  dirty_[ost][file].insert(lo, hi);
}

bool DurabilityLedger::read_ok(std::uint64_t file, std::uint32_t ost, std::uint64_t lo,
                               std::uint64_t hi) const {
  const auto acked_it = acked_.find(file);
  if (acked_it == acked_.end()) return true;  // nothing acknowledged yet
  const TokenMap* store = nullptr;
  if (const auto file_it = stores_.find(file); file_it != stores_.end()) {
    if (const auto ost_it = file_it->second.find(ost); ost_it != file_it->second.end()) {
      store = &ost_it->second;
    }
  }
  for (const auto& expected : acked_it->second.segments(lo, hi)) {
    if (store == nullptr || !store->holds(expected.lo, expected.hi, expected.token)) {
      return false;
    }
  }
  return true;
}

void DurabilityLedger::copy(std::uint64_t file, std::uint32_t src, std::uint32_t dst,
                            std::uint64_t lo, std::uint64_t hi) {
  const auto file_it = stores_.find(file);
  if (file_it == stores_.end()) return;
  const auto src_it = file_it->second.find(src);
  if (src_it == file_it->second.end()) return;
  // Materialize first: assigning into the same file's map while iterating a
  // sibling TokenMap is safe, but src == dst self-copy would not be.
  const auto held = src_it->second.segments(lo, hi);
  auto& dst_store = file_it->second[dst];
  for (const auto& seg : held) dst_store.assign(seg.lo, seg.hi, seg.token);
  const auto ost_it = dirty_.find(dst);
  if (ost_it != dirty_.end()) {
    const auto dirty_it = ost_it->second.find(file);
    if (dirty_it != ost_it->second.end()) dirty_it->second.erase(lo, hi);
  }
}

std::vector<DirtyRange> DurabilityLedger::dirty_snapshot(std::uint32_t ost) const {
  std::vector<DirtyRange> out;
  const auto ost_it = dirty_.find(ost);
  if (ost_it == dirty_.end()) return out;
  for (const auto& [file, set] : ost_it->second) {
    for (const auto& iv : set.to_vector()) out.push_back(DirtyRange{file, iv.lo, iv.hi});
  }
  return out;
}

Bytes DurabilityLedger::dirty_bytes(std::uint32_t ost) const {
  std::uint64_t total = 0;
  const auto ost_it = dirty_.find(ost);
  if (ost_it == dirty_.end()) return Bytes::zero();
  for (const auto& [file, set] : ost_it->second) total += set.total_bytes();
  return Bytes{total};
}

std::vector<std::uint64_t> DurabilityLedger::acked_files() const {
  std::vector<std::uint64_t> out;
  out.reserve(acked_.size());
  for (const auto& [file, map] : acked_) {
    if (!map.empty()) out.push_back(file);
  }
  return out;
}

std::vector<TokenMap::Segment> DurabilityLedger::acked_segments(std::uint64_t file) const {
  const auto it = acked_.find(file);
  if (it == acked_.end()) return {};
  return it->second.segments(0, UINT64_MAX);
}

}  // namespace pio::pfs
