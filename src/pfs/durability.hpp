// PIOEval storage substrate: write durability bookkeeping.
//
// The durability layer turns fault injection from "errors happen" into "the
// system degrades, recovers, and provably loses nothing". It models payload
// identity (not payload bytes): every acknowledged write op carries a
// monotonically increasing WriteToken, and the ledger records which token
// each replica OST actually holds for each file byte range. That is enough
// to answer the questions the recovery machinery needs —
//   * does this replica have the current data for this range? (reads,
//     rebuild source selection)
//   * which ranges did a crashed OST miss while it was down? (rebuild work)
//   * is every acknowledged byte still held by at least one replica?
//     (invariant F3, PfsModel::assert_quiescent)
// — while staying cheap enough to run inside campaign sweeps. All state is
// in ordered maps so iteration is deterministic (piolint D2).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/interval_set.hpp"
#include "common/seed_streams.hpp"
#include "common/types.hpp"

namespace pio::pfs {

/// Engine Rng stream id reserved for rebuild pacing jitter; claimed in the
/// seed-stream registry (common/seed_streams.hpp, rule S1).
inline constexpr std::uint64_t kRebuildRngStream = seeds::kRebuildPaceStream;

/// Identity of one acknowledged write. 0 is reserved for "hole / never
/// written"; tokens only grow, so a larger token is always the newer data.
using WriteToken = std::uint64_t;

/// Durability/recovery knobs for PfsModel (see DESIGN.md §9).
struct DurabilityConfig {
  /// Master switch: enables write-token content tracking, replica fan-out
  /// for layouts with replicas > 1, degraded reads, online rebuild, and
  /// invariant F3. Off (the default) preserves the PR2 fault semantics
  /// exactly; layouts with replicas > 1 are rejected while off.
  bool track_contents = false;
  /// Throughput cap for background resync copies (per recovering OST).
  Bandwidth rebuild_bandwidth = Bandwidth::from_mib_per_sec(256.0);
  /// Resync copy granularity: missed ranges are re-copied in pieces of at
  /// most this size, each paced against rebuild_bandwidth.
  Bytes rebuild_chunk = Bytes::from_mib(1);
  /// Uniform +/- fraction applied to each piece's pacing delay; draws from
  /// the kRebuildRngStream engine substream (piolint D1).
  double rebuild_jitter_fraction = 0.1;
};

/// An ordered byte-range -> WriteToken map over one address space (one
/// file's contents as held by one OST, or as acknowledged to clients).
/// Later assignments overwrite overlapped older ones, mirroring overwrites
/// of file ranges; adjacent equal-token runs are coalesced.
class TokenMap {
 public:
  struct Segment {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;  ///< half-open [lo, hi)
    WriteToken token = 0;
  };

  /// Record that [lo, hi) now holds `token`.
  void assign(std::uint64_t lo, std::uint64_t hi, WriteToken token);

  /// The recorded segments overlapping [lo, hi), clipped to it, in order.
  /// Unrecorded gaps (holes) are not returned.
  [[nodiscard]] std::vector<Segment> segments(std::uint64_t lo, std::uint64_t hi) const;

  /// True iff [lo, hi) is fully covered by segments holding exactly `token`.
  [[nodiscard]] bool holds(std::uint64_t lo, std::uint64_t hi, WriteToken token) const;

  [[nodiscard]] bool empty() const { return map_.empty(); }

 private:
  struct Run {
    std::uint64_t hi = 0;
    WriteToken token = 0;
  };
  std::map<std::uint64_t, Run> map_;  // lo -> {hi, token}
};

/// Per-(OST, file) set of byte ranges a replica missed while down, owed to
/// it by the rebuild planner.
struct DirtyRange {
  std::uint64_t file = 0;  ///< PfsModel file token
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

/// The model-wide durability ledger. Address space is *file offsets*: the
/// same file range lives at different object offsets on different replicas,
/// so file-offset keys are the only collision-free common coordinate.
class DurabilityLedger {
 public:
  /// Token for the next write op. Never returns 0.
  [[nodiscard]] WriteToken next_token() { return next_++; }

  /// Replica `ost` durably stored [lo, hi) of `file` as `token` (a chunk
  /// write completed on its device). Clears any matching dirty debt.
  void apply(std::uint64_t file, std::uint32_t ost, std::uint64_t lo, std::uint64_t hi,
             WriteToken token);

  /// The client was acknowledged: [lo, hi) of `file` is now expected to
  /// read back as `token`.
  void ack(std::uint64_t file, std::uint64_t lo, std::uint64_t hi, WriteToken token);

  /// Replica `ost` was down at dispatch and missed [lo, hi) of `file`; the
  /// rebuild planner owes it a re-copy.
  void mark_missed(std::uint32_t ost, std::uint64_t file, std::uint64_t lo, std::uint64_t hi);

  /// True iff `ost` holds current (acknowledged) data for every
  /// acknowledged byte of [lo, hi) of `file`. Unacknowledged bytes (holes)
  /// never disqualify a replica: there is nothing to be stale against.
  [[nodiscard]] bool read_ok(std::uint64_t file, std::uint32_t ost, std::uint64_t lo,
                             std::uint64_t hi) const;

  /// Resync: copy `src`'s stored tokens for [lo, hi) of `file` onto `dst`
  /// and clear `dst`'s dirty debt for the range.
  void copy(std::uint64_t file, std::uint32_t src, std::uint32_t dst, std::uint64_t lo,
            std::uint64_t hi);

  /// Snapshot of everything `ost` is owed, in (file, lo) order.
  [[nodiscard]] std::vector<DirtyRange> dirty_snapshot(std::uint32_t ost) const;

  [[nodiscard]] Bytes dirty_bytes(std::uint32_t ost) const;

  /// File tokens with at least one acknowledged byte, ascending.
  [[nodiscard]] std::vector<std::uint64_t> acked_files() const;

  /// All acknowledged segments of `file`, in offset order.
  [[nodiscard]] std::vector<TokenMap::Segment> acked_segments(std::uint64_t file) const;

 private:
  WriteToken next_ = 1;
  std::map<std::uint64_t, TokenMap> acked_;                          // file -> expected
  std::map<std::uint64_t, std::map<std::uint32_t, TokenMap>> stores_;  // file -> ost -> held
  std::map<std::uint32_t, std::map<std::uint64_t, IntervalSet>> dirty_;  // ost -> file -> owed
};

}  // namespace pio::pfs
