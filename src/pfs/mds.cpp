#include "pfs/mds.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/check.hpp"

namespace pio::pfs {

const char* to_string(MetaOp op) {
  switch (op) {
    case MetaOp::kCreate: return "create";
    case MetaOp::kOpen: return "open";
    case MetaOp::kStat: return "stat";
    case MetaOp::kUnlink: return "unlink";
    case MetaOp::kMkdir: return "mkdir";
    case MetaOp::kReaddir: return "readdir";
    case MetaOp::kClose: return "close";
    case MetaOp::kRename: return "rename";
  }
  return "?";
}

MetadataServer::MetadataServer(sim::Engine& engine, const MdsConfig& config)
    : engine_(engine), config_(config), threads_(engine, config.service_threads, "mds") {
  // Root directory always exists.
  Inode root;
  root.is_dir = true;
  namespace_.emplace("/", root);
}

SimTime MetadataServer::standby_ready(SimTime now) const {
  const SimTime crashed = timeline_->down_since(component_id(), now);
  const auto cached = standby_ready_.find(crashed.ns());
  if (cached != standby_ready_.end()) return cached->second;
  // Crash detection plus journal replay; a primary that recovers faster
  // than the standby can replay bounds the stall either way.
  SimTime ready = crashed + config_.failover_detection +
                  config_.replay_per_entry * static_cast<std::int64_t>(journal_entries_);
  ready = std::min(ready, timeline_->down_until(component_id(), now));
  standby_ready_.emplace(crashed.ns(), ready);
  return ready;
}

bool MetadataServer::standby_active(SimTime t) const {
  return config_.standby_failover && timeline_ != nullptr &&
         timeline_->down(component_id(), t) && t >= standby_ready(t);
}

void MetadataServer::respond_error(MetaOp op, const std::string& path, SimTime enqueued,
                                   MetaStatus status, std::function<void(MetaResult)> done) {
  engine_.schedule_after(SimTime::zero(),
                         [this, op, path, enqueued, status, done = std::move(done)]() mutable {
                           ++stats_.ops_total;
                           ++stats_.ops_by_type[op];
                           ++stats_.errors;
                           if (observer_) {
                             observer_(MdsOpRecord{op, enqueued, engine_.now(), status, path});
                           }
                           MetaResult result;
                           result.status = status;
                           if (done) done(std::move(result));
                         });
}

void MetadataServer::request(MetaOp op, const std::string& path,
                             std::function<void(MetaResult)> on_done,
                             std::optional<StripeLayout> layout) {
  if (path.empty() || path.front() != '/') {
    throw std::invalid_argument("MetadataServer::request: path must be absolute");
  }
  const SimTime enqueued = engine_.now();
  ++stats_.requests;

  // A request that arrives while the MDS is down either bounces at the door
  // (no standby: no thread consumed, no namespace mutation) or stalls until
  // the standby has detected the crash and replayed the journal.
  if (timeline_ != nullptr && timeline_->down(component_id(), enqueued)) {
    if (config_.standby_failover) {
      const SimTime ready = standby_ready(enqueued);
      stats_.standby_takeovers = standby_ready_.size();
      if (enqueued >= ready) {
        // Standby already serving: proceed as a normal request.
        enqueue(op, path, layout, enqueued, std::move(on_done));
        return;
      }
      ++stats_.failover_stalls;
      engine_.schedule_at(ready, [this, op, path, layout, enqueued,
                                  done = std::move(on_done)]() mutable {
        enqueue(op, path, layout, enqueued, std::move(done));
      });
      return;
    }
    respond_error(op, path, enqueued, MetaStatus::kUnavailable, std::move(on_done));
    return;
  }

  // Admission control (DESIGN.md §14): a metadata storm deep enough to back
  // up the thread pool past the bound is bounced at the door instead of
  // queueing without limit. The data path's retry machinery does not apply
  // here — a bounced meta op surfaces as a failed op, like kUnavailable.
  if (admission_.policy == AdmissionPolicy::kRejectAtDoor &&
      threads_.waiters() >= admission_.max_queue_depth) {
    ++stats_.overload_rejected;
    respond_error(op, path, enqueued, MetaStatus::kOverloaded, std::move(on_done));
    return;
  }

  enqueue(op, path, layout, enqueued, std::move(on_done));
}

void MetadataServer::enqueue(MetaOp op, const std::string& path,
                             const std::optional<StripeLayout>& layout, SimTime enqueued,
                             std::function<void(MetaResult)> done) {
  threads_.acquire(1, [this, op, path, layout, enqueued, done = std::move(done)]() mutable {
    // CoDel-style shed at grant: a request that waited past the sojourn
    // target is dropped before consuming service — its issuer has long
    // since concluded the MDS is overloaded. The sojourn histogram records
    // the queueing delay of served and shed requests alike.
    const SimTime waited = engine_.now() - enqueued;
    stats_.sojourn_us.add(static_cast<std::uint64_t>(waited.ns() / 1000));
    if (admission_.policy == AdmissionPolicy::kCodelShed && waited > admission_.shed_target) {
      threads_.release(1);
      ++stats_.shed_ops;
      respond_error(op, path, enqueued, MetaStatus::kOverloaded, std::move(done));
      return;
    }
    // A slowdown (e.g. lock-contention storm) in effect at service start
    // stretches this op's cost by the active factor.
    SimTime cost = cost_of(op, path);
    if (timeline_ != nullptr) cost = timeline_->scaled(component_id(), engine_.now(), cost);
    engine_.schedule_after(cost, [this, op, path, layout, enqueued, cost,
                                  done = std::move(done)]() mutable {
      const SimTime now = engine_.now();
      if (timeline_ != nullptr && timeline_->down(component_id(), now) &&
          !standby_active(now)) {
        if (config_.standby_failover) {
          // Primary died mid-service. The client's RPC is replayed by the
          // standby once its journal replay finishes: a stall, not an error.
          const SimTime ready = standby_ready(now);
          stats_.standby_takeovers = standby_ready_.size();
          ++stats_.failover_stalls;
          engine_.schedule_at(ready, [this, op, path, layout, enqueued, cost,
                                      done = std::move(done)]() mutable {
            complete(op, path, layout, enqueued, cost, std::move(done));
          });
          return;
        }
        // A crash that hit mid-service loses the op: its failure (and the
        // service thread it held) surfaces at recovery, never inside the
        // down interval (invariant F1), and the mutation is NOT applied.
        const SimTime recovery = timeline_->down_until(component_id(), now);
        engine_.schedule_at(recovery,
                            [this, op, path, enqueued, cost, done = std::move(done)]() mutable {
                              timeline_->check_handler_allowed(component_id(), engine_.now());
                              ++stats_.ops_total;
                              ++stats_.ops_by_type[op];
                              stats_.busy_time += cost;
                              ++stats_.errors;
                              if (observer_) {
                                observer_(MdsOpRecord{op, enqueued, engine_.now(),
                                                      MetaStatus::kUnavailable, path});
                              }
                              threads_.release(1);
                              MetaResult result;
                              result.status = MetaStatus::kUnavailable;
                              if (done) done(std::move(result));
                            });
        return;
      }
      complete(op, path, layout, enqueued, cost, std::move(done));
    });
  });
}

void MetadataServer::complete(MetaOp op, const std::string& path,
                              const std::optional<StripeLayout>& layout, SimTime enqueued,
                              SimTime cost, std::function<void(MetaResult)> done) {
  const SimTime now = engine_.now();
  // F1 is judged per *service*: a handler inside a down interval is fine
  // when the standby has taken over and is the one serving.
  if (timeline_ != nullptr && !standby_active(now)) {
    timeline_->check_handler_allowed(component_id(), now);
  }
  MetaResult result = apply(op, path, layout);
  ++stats_.ops_total;
  ++stats_.ops_by_type[op];
  stats_.busy_time += cost;
  if (!result.ok()) ++stats_.errors;
  if (observer_) {
    observer_(MdsOpRecord{op, enqueued, now, result.status, path});
  }
  threads_.release(1);
  if (done) done(std::move(result));
}

Inode* MetadataServer::find_inode(const std::string& path) {
  const auto it = namespace_.find(path);
  return it == namespace_.end() ? nullptr : &it->second;
}

const Inode* MetadataServer::find_inode(const std::string& path) const {
  const auto it = namespace_.find(path);
  return it == namespace_.end() ? nullptr : &it->second;
}

void MetadataServer::grow_file(const std::string& path, Bytes new_size, SimTime mtime) {
  if (Inode* inode = find_inode(path); inode != nullptr && !inode->is_dir) {
    inode->size = std::max(inode->size, new_size);
    inode->mtime = mtime;
  }
}

SimTime MetadataServer::cost_of(MetaOp op, const std::string& path) const {
  switch (op) {
    case MetaOp::kCreate: return config_.create_cost;
    case MetaOp::kOpen: return config_.open_cost;
    case MetaOp::kStat: return config_.stat_cost;
    case MetaOp::kUnlink: return config_.unlink_cost;
    case MetaOp::kMkdir: return config_.mkdir_cost;
    case MetaOp::kClose: return config_.close_cost;
    case MetaOp::kRename: return config_.rename_cost;
    case MetaOp::kReaddir: {
      // Per-entry cost is charged for the directory's current child count.
      std::uint64_t children = 0;
      const std::string prefix = path == "/" ? "/" : path + "/";
      for (auto it = namespace_.lower_bound(prefix);
           it != namespace_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
        ++children;
      }
      return config_.readdir_base_cost +
             config_.readdir_per_entry_cost * static_cast<std::int64_t>(children);
    }
  }
  return SimTime::zero();
}

std::string MetadataServer::parent_of(const std::string& path) {
  const auto pos = path.find_last_of('/');
  if (pos == 0) return "/";
  return path.substr(0, pos);
}

MetaResult MetadataServer::apply(MetaOp op, const std::string& path,
                                 const std::optional<StripeLayout>& layout) {
  MetaResult result;
  switch (op) {
    case MetaOp::kCreate: {
      if (namespace_.contains(path)) {
        result.status = MetaStatus::kExists;
        break;
      }
      const Inode* parent = find_inode(parent_of(path));
      if (parent == nullptr || !parent->is_dir) {
        result.status = MetaStatus::kNotFound;
        break;
      }
      Inode inode;
      inode.is_dir = false;
      inode.layout = layout.value_or(config_.default_layout);
      inode.ctime = inode.mtime = engine_.now();
      namespace_.emplace(path, inode);
      result.inode = inode;
      break;
    }
    case MetaOp::kOpen:
    case MetaOp::kStat: {
      const Inode* inode = find_inode(path);
      if (inode == nullptr) {
        result.status = MetaStatus::kNotFound;
        break;
      }
      result.inode = *inode;
      break;
    }
    case MetaOp::kUnlink: {
      const auto it = namespace_.find(path);
      if (it == namespace_.end()) {
        result.status = MetaStatus::kNotFound;
        break;
      }
      if (it->second.is_dir) {
        // Directories must be empty.
        const std::string prefix = path + "/";
        const auto child = namespace_.lower_bound(prefix);
        if (child != namespace_.end() &&
            child->first.compare(0, prefix.size(), prefix) == 0) {
          result.status = MetaStatus::kNotEmpty;
          break;
        }
      }
      namespace_.erase(it);
      break;
    }
    case MetaOp::kMkdir: {
      if (namespace_.contains(path)) {
        result.status = MetaStatus::kExists;
        break;
      }
      const Inode* parent = find_inode(parent_of(path));
      if (parent == nullptr || !parent->is_dir) {
        result.status = MetaStatus::kNotFound;
        break;
      }
      Inode inode;
      inode.is_dir = true;
      inode.ctime = inode.mtime = engine_.now();
      namespace_.emplace(path, inode);
      result.inode = inode;
      break;
    }
    case MetaOp::kReaddir: {
      const Inode* dir = find_inode(path);
      if (dir == nullptr) {
        result.status = MetaStatus::kNotFound;
        break;
      }
      if (!dir->is_dir) {
        result.status = MetaStatus::kNotDir;
        break;
      }
      const std::string prefix = path == "/" ? "/" : path + "/";
      for (auto it = namespace_.lower_bound(prefix);
           it != namespace_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
        // Direct children only: no further '/' after the prefix.
        const std::string rest = it->first.substr(prefix.size());
        if (!rest.empty() && rest.find('/') == std::string::npos) {
          result.entries.push_back(it->first);
        }
      }
      break;
    }
    case MetaOp::kClose:
      // Close only charges time; the namespace is untouched.
      break;
    case MetaOp::kRename:
      // Rename is modelled as a cost-only op in this release (the bench
      // suite does not exercise cross-directory moves).
      if (!namespace_.contains(path)) result.status = MetaStatus::kNotFound;
      break;
  }
  // Successful namespace mutations append to the journal the standby
  // replays on failover (reads and misses leave it untouched).
  if (result.ok() && (op == MetaOp::kCreate || op == MetaOp::kUnlink ||
                      op == MetaOp::kMkdir || op == MetaOp::kRename)) {
    ++journal_entries_;
  }
  return result;
}

}  // namespace pio::pfs
