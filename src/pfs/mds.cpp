#include "pfs/mds.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/check.hpp"

namespace pio::pfs {

const char* to_string(MetaOp op) {
  switch (op) {
    case MetaOp::kCreate: return "create";
    case MetaOp::kOpen: return "open";
    case MetaOp::kStat: return "stat";
    case MetaOp::kUnlink: return "unlink";
    case MetaOp::kMkdir: return "mkdir";
    case MetaOp::kReaddir: return "readdir";
    case MetaOp::kClose: return "close";
    case MetaOp::kRename: return "rename";
  }
  return "?";
}

MetadataServer::MetadataServer(sim::Engine& engine, const MdsConfig& config)
    : engine_(engine), config_(config), threads_(engine, config.service_threads, "mds") {
  // Root directory always exists.
  Inode root;
  root.is_dir = true;
  namespace_.emplace("/", root);
}

void MetadataServer::request(MetaOp op, const std::string& path,
                             std::function<void(MetaResult)> on_done,
                             std::optional<StripeLayout> layout) {
  if (path.empty() || path.front() != '/') {
    throw std::invalid_argument("MetadataServer::request: path must be absolute");
  }
  const SimTime enqueued = engine_.now();

  // A request that arrives while the MDS is down bounces at the door: no
  // thread is consumed and no namespace mutation occurs.
  if (timeline_ != nullptr && timeline_->down(component_id(), enqueued)) {
    engine_.schedule_after(SimTime::zero(),
                           [this, op, path, enqueued, done = std::move(on_done)]() mutable {
                             ++stats_.ops_total;
                             ++stats_.ops_by_type[op];
                             ++stats_.errors;
                             if (observer_) {
                               observer_(MdsOpRecord{op, enqueued, engine_.now(),
                                                     MetaStatus::kUnavailable, path});
                             }
                             MetaResult result;
                             result.status = MetaStatus::kUnavailable;
                             if (done) done(std::move(result));
                           });
    return;
  }

  threads_.acquire(1, [this, op, path, layout, enqueued, done = std::move(on_done)]() mutable {
    // A slowdown (e.g. lock-contention storm) in effect at service start
    // stretches this op's cost by the active factor.
    SimTime cost = cost_of(op, path);
    if (timeline_ != nullptr) cost = timeline_->scaled(component_id(), engine_.now(), cost);
    engine_.schedule_after(cost, [this, op, path, layout, enqueued, cost,
                                  done = std::move(done)]() mutable {
      // A crash that hit mid-service loses the op: its failure (and the
      // service thread it held) surfaces at recovery, never inside the down
      // interval (invariant F1), and the namespace mutation is NOT applied.
      if (timeline_ != nullptr && timeline_->down(component_id(), engine_.now())) {
        const SimTime recovery = timeline_->down_until(component_id(), engine_.now());
        engine_.schedule_at(recovery,
                            [this, op, path, enqueued, cost, done = std::move(done)]() mutable {
                              timeline_->check_handler_allowed(component_id(), engine_.now());
                              ++stats_.ops_total;
                              ++stats_.ops_by_type[op];
                              stats_.busy_time += cost;
                              ++stats_.errors;
                              if (observer_) {
                                observer_(MdsOpRecord{op, enqueued, engine_.now(),
                                                      MetaStatus::kUnavailable, path});
                              }
                              threads_.release(1);
                              MetaResult result;
                              result.status = MetaStatus::kUnavailable;
                              if (done) done(std::move(result));
                            });
        return;
      }
      if (timeline_ != nullptr) timeline_->check_handler_allowed(component_id(), engine_.now());
      MetaResult result = apply(op, path, layout);
      ++stats_.ops_total;
      ++stats_.ops_by_type[op];
      stats_.busy_time += cost;
      if (!result.ok()) ++stats_.errors;
      if (observer_) {
        observer_(MdsOpRecord{op, enqueued, engine_.now(), result.status, path});
      }
      threads_.release(1);
      if (done) done(std::move(result));
    });
  });
}

Inode* MetadataServer::find_inode(const std::string& path) {
  const auto it = namespace_.find(path);
  return it == namespace_.end() ? nullptr : &it->second;
}

const Inode* MetadataServer::find_inode(const std::string& path) const {
  const auto it = namespace_.find(path);
  return it == namespace_.end() ? nullptr : &it->second;
}

void MetadataServer::grow_file(const std::string& path, Bytes new_size, SimTime mtime) {
  if (Inode* inode = find_inode(path); inode != nullptr && !inode->is_dir) {
    inode->size = std::max(inode->size, new_size);
    inode->mtime = mtime;
  }
}

SimTime MetadataServer::cost_of(MetaOp op, const std::string& path) const {
  switch (op) {
    case MetaOp::kCreate: return config_.create_cost;
    case MetaOp::kOpen: return config_.open_cost;
    case MetaOp::kStat: return config_.stat_cost;
    case MetaOp::kUnlink: return config_.unlink_cost;
    case MetaOp::kMkdir: return config_.mkdir_cost;
    case MetaOp::kClose: return config_.close_cost;
    case MetaOp::kRename: return config_.rename_cost;
    case MetaOp::kReaddir: {
      // Per-entry cost is charged for the directory's current child count.
      std::uint64_t children = 0;
      const std::string prefix = path == "/" ? "/" : path + "/";
      for (auto it = namespace_.lower_bound(prefix);
           it != namespace_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
        ++children;
      }
      return config_.readdir_base_cost +
             config_.readdir_per_entry_cost * static_cast<std::int64_t>(children);
    }
  }
  return SimTime::zero();
}

std::string MetadataServer::parent_of(const std::string& path) {
  const auto pos = path.find_last_of('/');
  if (pos == 0) return "/";
  return path.substr(0, pos);
}

MetaResult MetadataServer::apply(MetaOp op, const std::string& path,
                                 const std::optional<StripeLayout>& layout) {
  MetaResult result;
  switch (op) {
    case MetaOp::kCreate: {
      if (namespace_.contains(path)) {
        result.status = MetaStatus::kExists;
        break;
      }
      const Inode* parent = find_inode(parent_of(path));
      if (parent == nullptr || !parent->is_dir) {
        result.status = MetaStatus::kNotFound;
        break;
      }
      Inode inode;
      inode.is_dir = false;
      inode.layout = layout.value_or(config_.default_layout);
      inode.ctime = inode.mtime = engine_.now();
      namespace_.emplace(path, inode);
      result.inode = inode;
      break;
    }
    case MetaOp::kOpen:
    case MetaOp::kStat: {
      const Inode* inode = find_inode(path);
      if (inode == nullptr) {
        result.status = MetaStatus::kNotFound;
        break;
      }
      result.inode = *inode;
      break;
    }
    case MetaOp::kUnlink: {
      const auto it = namespace_.find(path);
      if (it == namespace_.end()) {
        result.status = MetaStatus::kNotFound;
        break;
      }
      if (it->second.is_dir) {
        // Directories must be empty.
        const std::string prefix = path + "/";
        const auto child = namespace_.lower_bound(prefix);
        if (child != namespace_.end() &&
            child->first.compare(0, prefix.size(), prefix) == 0) {
          result.status = MetaStatus::kNotEmpty;
          break;
        }
      }
      namespace_.erase(it);
      break;
    }
    case MetaOp::kMkdir: {
      if (namespace_.contains(path)) {
        result.status = MetaStatus::kExists;
        break;
      }
      const Inode* parent = find_inode(parent_of(path));
      if (parent == nullptr || !parent->is_dir) {
        result.status = MetaStatus::kNotFound;
        break;
      }
      Inode inode;
      inode.is_dir = true;
      inode.ctime = inode.mtime = engine_.now();
      namespace_.emplace(path, inode);
      result.inode = inode;
      break;
    }
    case MetaOp::kReaddir: {
      const Inode* dir = find_inode(path);
      if (dir == nullptr) {
        result.status = MetaStatus::kNotFound;
        break;
      }
      if (!dir->is_dir) {
        result.status = MetaStatus::kNotDir;
        break;
      }
      const std::string prefix = path == "/" ? "/" : path + "/";
      for (auto it = namespace_.lower_bound(prefix);
           it != namespace_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
        // Direct children only: no further '/' after the prefix.
        const std::string rest = it->first.substr(prefix.size());
        if (!rest.empty() && rest.find('/') == std::string::npos) {
          result.entries.push_back(it->first);
        }
      }
      break;
    }
    case MetaOp::kClose:
      // Close only charges time; the namespace is untouched.
      break;
    case MetaOp::kRename:
      // Rename is modelled as a cost-only op in this release (the bench
      // suite does not exercise cross-directory moves).
      if (!namespace_.contains(path)) result.status = MetaStatus::kNotFound;
      break;
  }
  return result;
}

}  // namespace pio::pfs
