// PIOEval storage substrate: metadata server (MDS).
//
// The paper repeatedly flags metadata as a first-class bottleneck (mdtest in
// §IV.A.1; "metadata-intensive, small-transaction" workflows in §V.C). The
// MDS model owns the simulated namespace and charges a per-operation cost
// from a bounded thread pool, so metadata storms queue and saturate exactly
// like they do on a production MDS.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/types.hpp"
#include "fault/fault.hpp"
#include "pfs/resilience.hpp"
#include "pfs/stripe.hpp"
#include "sim/engine.hpp"
#include "sim/resources.hpp"

namespace pio::pfs {

enum class MetaOp : std::uint8_t {
  kCreate,
  kOpen,
  kStat,
  kUnlink,
  kMkdir,
  kReaddir,
  kClose,
  kRename,
};

[[nodiscard]] const char* to_string(MetaOp op);

enum class MetaStatus : std::uint8_t {
  kOk,
  kNotFound,
  kExists,
  kNotDir,
  kNotEmpty,
  kUnavailable,  ///< MDS down (fault timeline); no namespace mutation applied
  kOverloaded,   ///< rejected or shed by admission control (DESIGN.md §14);
                 ///< no namespace mutation applied
};

/// Inode as stored by the MDS.
struct Inode {
  bool is_dir = false;
  Bytes size = Bytes::zero();
  StripeLayout layout{};
  SimTime ctime = SimTime::zero();
  SimTime mtime = SimTime::zero();
};

/// Result delivered to the client callback.
struct MetaResult {
  MetaStatus status = MetaStatus::kOk;
  std::optional<Inode> inode;              ///< for Open/Stat/Create
  std::vector<std::string> entries;        ///< for Readdir
  [[nodiscard]] bool ok() const { return status == MetaStatus::kOk; }
};

/// Per-op service costs. Readdir additionally pays per returned entry.
struct MdsConfig {
  SimTime create_cost = SimTime::from_us(250.0);
  SimTime open_cost = SimTime::from_us(60.0);
  SimTime stat_cost = SimTime::from_us(40.0);
  SimTime unlink_cost = SimTime::from_us(200.0);
  SimTime mkdir_cost = SimTime::from_us(220.0);
  SimTime readdir_base_cost = SimTime::from_us(80.0);
  SimTime readdir_per_entry_cost = SimTime::from_us(2.0);
  SimTime close_cost = SimTime::from_us(20.0);
  SimTime rename_cost = SimTime::from_us(260.0);
  std::uint64_t service_threads = 4;
  StripeLayout default_layout{};
  /// Standby failover: namespace mutations append to a journal; on a
  /// scripted MDS crash a standby detects the failure and replays the
  /// journal, after which it serves requests *inside* the down interval.
  /// kMdsDown/kUnavailable becomes a bounded stall instead of an outage.
  bool standby_failover = false;
  /// Time for the standby to notice the primary died (heartbeat loss).
  SimTime failover_detection = SimTime::from_ms(5.0);
  /// Journal replay cost per recorded mutation; the takeover stall grows
  /// with namespace churn, exactly like a real MDT replay.
  SimTime replay_per_entry = SimTime::from_us(20.0);
};

/// Completion record (server-side monitoring unit, like OstOpRecord).
struct MdsOpRecord {
  MetaOp op = MetaOp::kStat;
  SimTime enqueued = SimTime::zero();
  SimTime completed = SimTime::zero();
  MetaStatus status = MetaStatus::kOk;
  std::string path;
};

/// Aggregate MDS counters.
struct MdsStats {
  std::uint64_t ops_total = 0;
  std::map<MetaOp, std::uint64_t> ops_by_type;
  std::uint64_t errors = 0;
  SimTime busy_time = SimTime::zero();
  std::uint64_t failover_stalls = 0;     ///< requests that waited for standby takeover
  std::uint64_t standby_takeovers = 0;   ///< down intervals absorbed by the standby
  // Admission accounting (F5a): requests == ops_total at quiescence — every
  // request resolves exactly once (served, error, bounced, or shed).
  std::uint64_t requests = 0;            ///< requests entering request()
  std::uint64_t overload_rejected = 0;   ///< bounced at the door (queue bound)
  std::uint64_t shed_ops = 0;            ///< dropped at grant (sojourn > target)
  /// Queueing delay (µs) of requests at thread grant, served and shed alike.
  Log2Histogram sojourn_us;
};

class MetadataServer {
 public:
  MetadataServer(sim::Engine& engine, const MdsConfig& config);

  MetadataServer(const MetadataServer&) = delete;
  MetadataServer& operator=(const MetadataServer&) = delete;

  /// Issue a metadata op. The namespace mutation and the callback both occur
  /// at service completion. `layout` is honoured only for kCreate.
  void request(MetaOp op, const std::string& path, std::function<void(MetaResult)> on_done,
               std::optional<StripeLayout> layout = std::nullopt);

  /// Synchronous (zero-cost) inode access for internal bookkeeping, e.g.
  /// size updates on write completion (clients cache sizes in real systems).
  [[nodiscard]] Inode* find_inode(const std::string& path);
  [[nodiscard]] const Inode* find_inode(const std::string& path) const;
  void grow_file(const std::string& path, Bytes new_size, SimTime mtime);

  void set_op_observer(std::function<void(const MdsOpRecord&)> observer) {
    observer_ = std::move(observer);
  }

  /// Attach the fault timeline (owned by the PFS facade; must outlive the
  /// MDS's use). Requests during a down interval fail with kUnavailable;
  /// slowdown intervals scale per-op service costs.
  void set_fault_timeline(const fault::Timeline* timeline) { timeline_ = timeline; }

  /// Configure the admission policy (default: unbounded, the legacy
  /// behaviour). Bounded modes respond MetaStatus::kOverloaded.
  void set_admission(const AdmissionConfig& admission) { admission_ = admission; }

  [[nodiscard]] static fault::ComponentId component_id() {
    return {fault::ComponentKind::kMds, 0};
  }

  [[nodiscard]] const MdsStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t namespace_size() const { return namespace_.size(); }
  [[nodiscard]] std::uint64_t queued_requests() const { return threads_.waiters(); }
  [[nodiscard]] const MdsConfig& config() const { return config_; }
  /// Mutations journaled so far (drives the standby's replay cost).
  [[nodiscard]] std::uint64_t journal_entries() const { return journal_entries_; }

  /// With standby_failover: the time the standby is ready to serve for the
  /// down interval containing `now` — crash + detection + journal replay,
  /// clamped to the primary's recovery (a fast primary can beat a long
  /// replay). Precondition: timeline says the MDS is down at `now`.
  [[nodiscard]] SimTime standby_ready(SimTime now) const;

 private:
  [[nodiscard]] SimTime cost_of(MetaOp op, const std::string& path) const;
  [[nodiscard]] MetaResult apply(MetaOp op, const std::string& path,
                                 const std::optional<StripeLayout>& layout);
  [[nodiscard]] static std::string parent_of(const std::string& path);
  /// True iff the MDS is inside a down interval at `t` but the standby has
  /// finished its takeover and is serving (F1 is judged per-service, so a
  /// successful handler in this state is legitimate).
  [[nodiscard]] bool standby_active(SimTime t) const;
  void enqueue(MetaOp op, const std::string& path, const std::optional<StripeLayout>& layout,
               SimTime enqueued, std::function<void(MetaResult)> done);
  /// Terminal non-served response (door bounce / shed): account, observe,
  /// and deliver `status` on the next delta.
  void respond_error(MetaOp op, const std::string& path, SimTime enqueued, MetaStatus status,
                     std::function<void(MetaResult)> done);
  /// Apply + account + release the service thread + deliver the result.
  void complete(MetaOp op, const std::string& path, const std::optional<StripeLayout>& layout,
                SimTime enqueued, SimTime cost, std::function<void(MetaResult)> done);

  sim::Engine& engine_;
  MdsConfig config_;
  AdmissionConfig admission_{};
  sim::TokenPool threads_;
  // Sorted map so Readdir can range-scan children of a directory prefix.
  std::map<std::string, Inode> namespace_;
  MdsStats stats_;
  const fault::Timeline* timeline_ = nullptr;
  std::function<void(const MdsOpRecord&)> observer_;
  std::uint64_t journal_entries_ = 0;
  // Takeover time per down-interval start. Lazily filled: the journal
  // cannot grow between the crash and the first query inside the interval
  // (no mutation completes while the primary is down and the standby is
  // not yet up), so the first-query snapshot of journal_entries_ is exact.
  mutable std::map<std::int64_t, SimTime> standby_ready_;
};

}  // namespace pio::pfs
