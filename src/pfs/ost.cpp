#include "pfs/ost.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace pio::pfs {

const char* to_string(OstOutcome outcome) {
  switch (outcome) {
    case OstOutcome::kOk: return "ok";
    case OstOutcome::kRejectedDown: return "rejected-down";
    case OstOutcome::kRejectedOverload: return "rejected-overload";
    case OstOutcome::kShed: return "shed";
    case OstOutcome::kInterrupted: return "interrupted";
  }
  return "?";
}

OstServer::OstServer(sim::Engine& engine, std::uint32_t index, std::unique_ptr<DiskModel> disk)
    : engine_(engine),
      index_(index),
      disk_(std::move(disk)),
      queue_(engine, "ost" + std::to_string(index)) {
  if (!disk_) throw std::invalid_argument("OstServer: null disk model");
}

void OstServer::set_admission(const AdmissionConfig& admission) {
  admission_ = admission;
  queue_.set_shed_target(admission.policy == AdmissionPolicy::kCodelShed
                             ? admission.shed_target
                             : SimTime::zero());
}

SimTime OstServer::reject_retry_after() const {
  // Estimate the drain time for the depth in excess of the bound from the
  // queue's observed mean service time; before any completion the floor
  // stands in. The hint is advisory pacing, not a reservation.
  const sim::ServerStats& qs = queue_.stats();
  const std::uint64_t depth = queue_.queue_depth();
  const std::uint64_t excess =
      depth >= admission_.max_queue_depth ? depth - admission_.max_queue_depth + 1 : 1;
  SimTime hint = admission_.retry_after_floor;
  if (qs.jobs_completed > 0) {
    const SimTime mean_service = qs.busy_time / static_cast<std::int64_t>(qs.jobs_completed);
    hint = std::max(hint, mean_service * static_cast<std::int64_t>(excess));
  }
  return hint;
}

void OstServer::finish(OstOpRecord record, OstCompletion completion,
                       std::function<void(OstCompletion)> done) {
  record.completed = engine_.now();
  record.ok = completion.ok();
  record.outcome = completion.outcome;
  // Invariant F1 applies to *successful* completions only: a rejection is the
  // "connection refused" notice and legitimately fires while the OST is down.
  if (completion.ok() && timeline_) {
    timeline_->check_handler_allowed(component_id(), engine_.now());
  }
  if (completion.ok()) ++stats_.completed_ops;
  if (observer_) observer_(record);
  if (done) done(completion);
}

void OstServer::submit(std::uint64_t object_offset, Bytes size, bool is_write,
                       std::function<void(OstCompletion)> on_done) {
  const SimTime now = engine_.now();
  ++stats_.submitted_ops;
  OstOpRecord record;
  record.ost = index_;
  record.enqueued = now;
  record.offset = object_offset;
  record.size = size;
  record.is_write = is_write;
  record.queue_depth_at_enqueue = queue_.queue_depth();

  // A request that arrives while the OST is down bounces at the door: no
  // device work, no byte accounting, an immediate (next-delta) failure.
  if (timeline_ && timeline_->down(component_id(), now)) {
    ++stats_.rejected_ops;
    engine_.schedule_after(SimTime::zero(), [this, record, done = std::move(on_done)]() mutable {
      finish(record, OstCompletion{OstOutcome::kRejectedDown, SimTime::zero()},
             std::move(done));
    });
    return;
  }

  // Admission control (DESIGN.md §14): reject-at-door bounces the request
  // before any device or queue state is touched, with a retry-after hint so
  // well-behaved clients pace their retries to the drain rate.
  if (admission_.policy == AdmissionPolicy::kRejectAtDoor &&
      queue_.queue_depth() >= admission_.max_queue_depth) {
    ++stats_.overload_rejected_ops;
    const SimTime retry_after = reject_retry_after();
    engine_.schedule_after(SimTime::zero(),
                           [this, record, retry_after, done = std::move(on_done)]() mutable {
                             finish(record,
                                    OstCompletion{OstOutcome::kRejectedOverload, retry_after},
                                    std::move(done));
                           });
    return;
  }

  // The device model is consulted at enqueue time in queue order, which is
  // also service order for a FIFO queue, so head-position state stays
  // consistent with the order requests actually hit the platter. Straggler
  // slowdowns scale the device estimate by the factor in effect now.
  // (A later shed skips the service but keeps this estimate's head motion —
  // an accepted approximation: sheds are rare relative to served ops.)
  SimTime service = disk_->service_time(DiskRequest{object_offset, size, is_write});
  if (timeline_) service = timeline_->scaled(component_id(), now, service);
  if (is_write) {
    ++stats_.write_ops;
    stats_.bytes_written += size;
  } else {
    ++stats_.read_ops;
    stats_.bytes_read += size;
  }
  auto serve = [this, record, done = std::move(on_done)](bool shed) mutable {
    if (shed) {
      ++stats_.shed_ops;
      finish(record,
             OstCompletion{OstOutcome::kShed, std::max(admission_.retry_after_floor,
                                                       admission_.shed_target)},
             std::move(done));
      return;
    }
    // If a crash hit while this op was queued or in service, the op is lost:
    // its failure surfaces at recovery, never inside the down interval (F1).
    if (timeline_ && timeline_->down(component_id(), engine_.now())) {
      ++stats_.interrupted_ops;
      const SimTime recovery = timeline_->down_until(component_id(), engine_.now());
      engine_.schedule_at(recovery, [this, record, done = std::move(done)]() mutable {
        finish(record, OstCompletion{OstOutcome::kInterrupted, SimTime::zero()},
               std::move(done));
      });
      return;
    }
    finish(record, OstCompletion{OstOutcome::kOk, SimTime::zero()}, std::move(done));
  };
  if (admission_.policy == AdmissionPolicy::kCodelShed) {
    auto shared = std::make_shared<decltype(serve)>(std::move(serve));
    queue_.submit(service, [shared]() mutable { (*shared)(false); },
                  [shared]() mutable { (*shared)(true); });
  } else {
    queue_.submit(service, [serve = std::move(serve)]() mutable { serve(false); });
  }
}

}  // namespace pio::pfs
