#include "pfs/ost.hpp"

namespace pio::pfs {

OstServer::OstServer(sim::Engine& engine, std::uint32_t index, std::unique_ptr<DiskModel> disk)
    : engine_(engine),
      index_(index),
      disk_(std::move(disk)),
      queue_(engine, "ost" + std::to_string(index)) {
  if (!disk_) throw std::invalid_argument("OstServer: null disk model");
}

void OstServer::submit(std::uint64_t object_offset, Bytes size, bool is_write,
                       std::function<void()> on_done) {
  // The device model is consulted at enqueue time in queue order, which is
  // also service order for a FIFO queue, so head-position state stays
  // consistent with the order requests actually hit the platter.
  const SimTime service = disk_->service_time(DiskRequest{object_offset, size, is_write});
  OstOpRecord record;
  record.ost = index_;
  record.enqueued = engine_.now();
  record.offset = object_offset;
  record.size = size;
  record.is_write = is_write;
  record.queue_depth_at_enqueue = queue_.queue_depth();
  if (is_write) {
    ++stats_.write_ops;
    stats_.bytes_written += size;
  } else {
    ++stats_.read_ops;
    stats_.bytes_read += size;
  }
  queue_.submit(service, [this, record, done = std::move(on_done)]() mutable {
    record.completed = engine_.now();
    if (observer_) observer_(record);
    if (done) done();
  });
}

}  // namespace pio::pfs
