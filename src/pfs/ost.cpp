#include "pfs/ost.hpp"

#include "sim/check.hpp"

namespace pio::pfs {

OstServer::OstServer(sim::Engine& engine, std::uint32_t index, std::unique_ptr<DiskModel> disk)
    : engine_(engine),
      index_(index),
      disk_(std::move(disk)),
      queue_(engine, "ost" + std::to_string(index)) {
  if (!disk_) throw std::invalid_argument("OstServer: null disk model");
}

void OstServer::finish(OstOpRecord record, bool ok, std::function<void(bool)> done) {
  record.completed = engine_.now();
  record.ok = ok;
  // Invariant F1 applies to *successful* completions only: a rejection is the
  // "connection refused" notice and legitimately fires while the OST is down.
  if (ok && timeline_) {
    timeline_->check_handler_allowed(component_id(), engine_.now());
  }
  if (observer_) observer_(record);
  if (done) done(ok);
}

void OstServer::submit(std::uint64_t object_offset, Bytes size, bool is_write,
                       std::function<void(bool ok)> on_done) {
  const SimTime now = engine_.now();
  OstOpRecord record;
  record.ost = index_;
  record.enqueued = now;
  record.offset = object_offset;
  record.size = size;
  record.is_write = is_write;
  record.queue_depth_at_enqueue = queue_.queue_depth();

  // A request that arrives while the OST is down bounces at the door: no
  // device work, no byte accounting, an immediate (next-delta) failure.
  if (timeline_ && timeline_->down(component_id(), now)) {
    ++stats_.rejected_ops;
    engine_.schedule_after(SimTime::zero(), [this, record, done = std::move(on_done)]() mutable {
      finish(record, false, std::move(done));
    });
    return;
  }

  // The device model is consulted at enqueue time in queue order, which is
  // also service order for a FIFO queue, so head-position state stays
  // consistent with the order requests actually hit the platter. Straggler
  // slowdowns scale the device estimate by the factor in effect now.
  SimTime service = disk_->service_time(DiskRequest{object_offset, size, is_write});
  if (timeline_) service = timeline_->scaled(component_id(), now, service);
  if (is_write) {
    ++stats_.write_ops;
    stats_.bytes_written += size;
  } else {
    ++stats_.read_ops;
    stats_.bytes_read += size;
  }
  queue_.submit(service, [this, record, done = std::move(on_done)]() mutable {
    // If a crash hit while this op was queued or in service, the op is lost:
    // its failure surfaces at recovery, never inside the down interval (F1).
    if (timeline_ && timeline_->down(component_id(), engine_.now())) {
      ++stats_.interrupted_ops;
      const SimTime recovery = timeline_->down_until(component_id(), engine_.now());
      engine_.schedule_at(recovery, [this, record, done = std::move(done)]() mutable {
        finish(record, false, std::move(done));
      });
      return;
    }
    finish(record, true, std::move(done));
  });
}

}  // namespace pio::pfs
