// PIOEval storage substrate: object storage target (OST) server.
//
// An OST is a FIFO service queue in front of one device model. Per-op
// completion records feed the server-side monitoring path of §IV.A.2
// ("server-side statistics ... load on the servers and storage devices").
// With a fault timeline attached, the OST honors down intervals (requests
// arriving while down are rejected; in-service ops interrupted by a crash
// fail at recovery) and straggler slowdown multipliers on service times.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/types.hpp"
#include "fault/fault.hpp"
#include "pfs/disk.hpp"
#include "pfs/resilience.hpp"
#include "sim/engine.hpp"
#include "sim/resources.hpp"

namespace pio::pfs {

/// How one OST operation resolved. Every submit() resolves exactly one way
/// (invariant F5a audits the accounting at quiescence).
enum class OstOutcome : std::uint8_t {
  kOk,
  kRejectedDown,      ///< arrived during a down interval
  kRejectedOverload,  ///< bounced at the door by admission control
  kShed,              ///< dropped at dequeue (queueing delay > sojourn target)
  kInterrupted,       ///< in queue/service when a crash hit
};

[[nodiscard]] const char* to_string(OstOutcome outcome);

/// Completion delivered to the submitter.
struct OstCompletion {
  OstOutcome outcome = OstOutcome::kOk;
  /// Server-suggested earliest useful retry time (admission rejections and
  /// sheds only; zero otherwise).
  SimTime retry_after = SimTime::zero();

  [[nodiscard]] bool ok() const { return outcome == OstOutcome::kOk; }
  /// True for the admission-control outcomes (door rejection or shed).
  [[nodiscard]] bool overloaded() const {
    return outcome == OstOutcome::kRejectedOverload || outcome == OstOutcome::kShed;
  }
};

/// Completion record for one OST operation (server-side monitoring unit).
struct OstOpRecord {
  std::uint32_t ost = 0;
  SimTime enqueued = SimTime::zero();
  SimTime completed = SimTime::zero();
  std::uint64_t offset = 0;
  Bytes size = Bytes::zero();
  bool is_write = false;
  std::uint64_t queue_depth_at_enqueue = 0;
  bool ok = true;  ///< false: rejected, shed, or interrupted by a crash
  OstOutcome outcome = OstOutcome::kOk;
};

/// Aggregate OST counters.
struct OstStats {
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
  Bytes bytes_read = Bytes::zero();
  Bytes bytes_written = Bytes::zero();
  std::uint64_t rejected_ops = 0;     ///< arrived during a down interval
  std::uint64_t interrupted_ops = 0;  ///< in service when a crash hit
  // Admission accounting (F5a): submitted == completed + rejected +
  // overload_rejected + shed + interrupted at quiescence.
  std::uint64_t submitted_ops = 0;          ///< every submit() call
  std::uint64_t completed_ops = 0;          ///< ok device completions
  std::uint64_t overload_rejected_ops = 0;  ///< bounced at the door
  std::uint64_t shed_ops = 0;               ///< dropped at dequeue
};

class OstServer {
 public:
  /// `index` is the OST's position in the pool (used in records).
  OstServer(sim::Engine& engine, std::uint32_t index, std::unique_ptr<DiskModel> disk);

  OstServer(const OstServer&) = delete;
  OstServer& operator=(const OstServer&) = delete;

  /// Enqueue a device op; `on_done` fires when the device completes it or
  /// the fault timeline / admission control rejects, sheds or interrupts it.
  void submit(std::uint64_t object_offset, Bytes size, bool is_write,
              std::function<void(OstCompletion)> on_done);

  /// Configure the admission policy (default: unbounded, the legacy
  /// behaviour). kCodelShed arms the queue's sojourn target.
  void set_admission(const AdmissionConfig& admission);

  /// Attach the fault timeline (owned by the PFS facade; must outlive the
  /// OST's use). Null detaches — fair-weather behaviour.
  void set_fault_timeline(const fault::Timeline* timeline) { timeline_ = timeline; }

  /// Subscribe to per-op completion records (server-side monitor hook).
  void set_op_observer(std::function<void(const OstOpRecord&)> observer) {
    observer_ = std::move(observer);
  }

  [[nodiscard]] const OstStats& stats() const { return stats_; }
  [[nodiscard]] const sim::ServerStats& queue_stats() const { return queue_.stats(); }
  [[nodiscard]] std::uint64_t queue_depth() const { return queue_.queue_depth(); }
  [[nodiscard]] std::uint32_t index() const { return index_; }
  [[nodiscard]] const DiskModel& disk() const { return *disk_; }
  [[nodiscard]] fault::ComponentId component_id() const {
    return {fault::ComponentKind::kOst, index_};
  }

 private:
  void finish(OstOpRecord record, OstCompletion completion,
              std::function<void(OstCompletion)> done);
  /// Retry-after hint for a door rejection: roughly the time for the queue
  /// to drain back under the bound, floored by the configured minimum.
  [[nodiscard]] SimTime reject_retry_after() const;

  sim::Engine& engine_;
  std::uint32_t index_;
  std::unique_ptr<DiskModel> disk_;
  sim::FifoServer queue_;
  OstStats stats_;
  AdmissionConfig admission_{};
  const fault::Timeline* timeline_ = nullptr;
  std::function<void(const OstOpRecord&)> observer_;
};

}  // namespace pio::pfs
