#include "pfs/pfs.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>

namespace pio::pfs {

namespace {

std::unique_ptr<DiskModel> make_disk(const PfsConfig& config, sim::Engine& engine,
                                     std::uint32_t index) {
  if (config.disk_kind == DiskKind::kHdd) {
    // Each disk gets its own jitter stream so device behaviour is
    // independent of OST count and submission interleaving.
    return make_hdd(config.hdd, engine.rng_stream(0xD15C0000ULL + index));
  }
  return make_ssd(config.ssd);
}

}  // namespace

/// One logical io() op across its (possibly many) attempts.
struct PfsModel::IoOpState {
  ClientId client = 0;
  std::string path;
  StripeLayout layout{};
  std::uint64_t offset = 0;
  Bytes size = Bytes::zero();
  bool is_write = false;
  SimTime issued = SimTime::zero();
  std::uint32_t attempt = 0;  ///< attempts started so far
  std::uint64_t file = 0;     ///< durability file token (0 = untracked)
  WriteToken token = 0;       ///< payload identity for tracked writes
  std::uint64_t key = 0;      ///< placement key (cluster map mode)
  std::uint64_t map_epoch = 1;  ///< client's cached epoch for this attempt
  // Overload control (DESIGN.md §14); all inert at their defaults.
  SimTime deadline = SimTime::zero();        ///< absolute end-to-end deadline (0 = none)
  SimTime attempt_started = SimTime::zero(); ///< current attempt's start (RTT sample)
  SimTime retry_after = SimTime::zero();     ///< server pacing hint from the last attempt
  std::function<void(IoResult)> done;
};

/// Settle latch shared between an attempt's completion path and its timeout
/// event: whichever fires first wins; the loser becomes a no-op (completion)
/// or is cancelled (timeout).
struct PfsModel::AttemptState {
  bool settled = false;
  sim::EventId timeout_event = 0;
};

/// Fan-out latch for one backend_io call: completes when the last shipment
/// responds; the call succeeds only if every shipment did. kDataLost
/// dominates the reported error (retries cannot resurrect lost data).
struct PfsModel::BackendFanout {
  std::size_t remaining = 0;
  bool all_ok = true;
  IoError error = IoError::kNone;
  SimTime retry_after = SimTime::zero();  ///< largest server pacing hint seen
  std::function<void(bool, IoError, SimTime)> done;

  void fail(IoError e) {
    all_ok = false;
    if (error == IoError::kDataLost) return;
    // A stale-map bounce must stay visible through other chunk failures:
    // the refresh-and-retry path is the only one that can make progress.
    if (error == IoError::kStaleMap && e != IoError::kDataLost) return;
    error = e;
  }
  void hint(SimTime t) {
    if (t > retry_after) retry_after = t;
  }
  void finish_one(bool ok, IoError e) {
    if (!ok) fail(e);
    if (--remaining == 0 && done) {
      done(all_ok, all_ok ? IoError::kNone : error, retry_after);
    }
  }
};

/// One chunk-to-OST shipment of a backend_io call. file_lo/file_hi are the
/// chunk's range in *file offsets* — the durability ledger's coordinates.
struct PfsModel::Shipment {
  OstIndex target = 0;
  std::uint64_t object_offset = 0;
  Bytes length = Bytes::zero();
  std::uint64_t file_lo = 0;
  std::uint64_t file_hi = 0;
  /// Stale-map bounce: the OST rejects the addressing epoch with kStaleMap
  /// (header out, error header back) without touching the device.
  bool stale = false;
};

/// One recovering OST's resync pass over the ranges it missed while down.
struct PfsModel::RebuildState {
  bool active = false;
  bool migration = false;  ///< epoch-change migration pass (drain-stream paced)
  std::vector<DirtyRange> queue;  ///< pieces in (file, offset) order
  std::size_t next = 0;           ///< queue index of the next piece
  Bytes total = Bytes::zero();
  Bytes done = Bytes::zero();
  SimTime started = SimTime::zero();
};

PfsModel::PfsModel(sim::Engine& engine, const PfsConfig& config)
    : engine_(engine),
      config_(config),
      retry_rng_(engine.rng_stream(kRetryRngStream)),
      rebuild_rng_(engine.rng_stream(kRebuildRngStream)),
      breaker_rng_(engine.rng_stream(kBreakerRngStream)),
      latency_(config.retry),
      budget_(config.retry.budget_ratio, config.retry.budget_cap),
      heartbeat_rng_(engine.rng_stream(kHeartbeatRngStream)),
      drain_rng_(engine.rng_stream(kDrainRngStream)) {
  if (config.clients == 0 || config.io_nodes == 0 || config.osts == 0) {
    throw std::invalid_argument("PfsModel: clients, io_nodes, osts must all be > 0");
  }
  if (config.cluster.enabled) {
    if (config.bb_placement != BbPlacement::kNone) {
      throw std::invalid_argument(
          "PfsModel: the cluster map is incompatible with burst buffers in this "
          "release (the staging tier would bypass the stale-map protocol)");
    }
    if (config.cluster.heartbeat_interval <= SimTime::zero()) {
      throw std::invalid_argument("PfsModel: cluster.heartbeat_interval must be > 0");
    }
    if (config.cluster.heartbeat_grace == 0) {
      throw std::invalid_argument("PfsModel: cluster.heartbeat_grace must be >= 1");
    }
    for (const OstIndex absent : config.cluster.initial_absent) {
      if (absent >= config.osts) {
        throw std::invalid_argument("PfsModel: cluster.initial_absent names a bad OST");
      }
    }
    for (const MembershipEvent& ev : config.cluster.membership) {
      if (ev.ost >= config.osts) {
        throw std::invalid_argument("PfsModel: cluster.membership names a bad OST");
      }
      if (ev.at > config.cluster.horizon) {
        throw std::invalid_argument(
            "PfsModel: cluster.membership event past the heartbeat horizon (the "
            "monitor would never observe its consequences)");
      }
    }
  }
  if (!config.durability.track_contents && config.mds.default_layout.replicas > 1) {
    throw std::invalid_argument(
        "PfsModel: replicated layouts require durability.track_contents");
  }
  if (config.durability.track_contents && config.bb_placement != BbPlacement::kNone) {
    throw std::invalid_argument(
        "PfsModel: durability tracking is incompatible with burst buffers (a "
        "write-back tier that drops dirty blocks on a failed drain cannot honour F3)");
  }
  // Materialize the run's fault weather up front: scripted events verbatim,
  // plus the stochastic injector's schedule drawn from the engine seed.
  std::vector<fault::FaultEvent> fault_events = config.faults.events;
  if (config.fault_injector.has_value()) {
    fault::InjectorConfig injector = *config.fault_injector;
    injector.osts = config.osts;
    auto injected = fault::inject(injector, engine.rng_stream(fault::kFaultRngStream));
    fault_events.insert(fault_events.end(), injected.begin(), injected.end());
  }
  timeline_ = fault::Timeline{std::move(fault_events)};

  compute_fabric_ = std::make_unique<net::Fabric>(engine, config.compute_fabric,
                                                  config.clients + config.io_nodes);
  storage_fabric_ = std::make_unique<net::Fabric>(engine, config.storage_fabric,
                                                  config.io_nodes + config.osts + 1);
  mds_ = std::make_unique<MetadataServer>(engine, config.mds);
  osts_.reserve(config.osts);
  for (std::uint32_t i = 0; i < config.osts; ++i) {
    osts_.push_back(std::make_unique<OstServer>(engine, i, make_disk(config, engine, i)));
  }
  if (config.admission.enabled()) {
    mds_->set_admission(config.admission);
    for (auto& ost : osts_) ost->set_admission(config.admission);
  }
  if (config.retry.breaker) {
    breakers_.reserve(config.osts);
    for (std::uint32_t i = 0; i < config.osts; ++i) {
      breakers_.emplace_back(config.retry.breaker_threshold, config.retry.breaker_open_base,
                             config.retry.breaker_open_jitter);
    }
  }
  if (!timeline_.empty()) {
    // Attach the weather only when there is any: the fair-weather hot path
    // stays free of per-op timeline queries.
    compute_fabric_->set_fault_timeline(&timeline_,
                                        {fault::ComponentKind::kComputeFabric, 0});
    storage_fabric_->set_fault_timeline(&timeline_,
                                        {fault::ComponentKind::kStorageFabric, 0});
    mds_->set_fault_timeline(&timeline_);
    for (auto& ost : osts_) ost->set_fault_timeline(&timeline_);
  }
  if (tracking() && !timeline_.empty() && !config.cluster.enabled) {
    // Online rebuild: every scripted/injected OST recovery wakes the resync
    // planner, which re-copies whatever that OST missed while down. This
    // trigger is omniscient (it reads the timeline) and is therefore
    // replaced by heartbeat detection + migration planning in cluster mode.
    for (std::uint32_t i = 0; i < config.osts; ++i) {
      const auto intervals = timeline_.down_intervals({fault::ComponentKind::kOst, i});
      for (const auto& [start, end] : intervals) {
        engine_.schedule_at(end, [this, i] { start_rebuild(i); });
      }
    }
  }
  if (config.cluster.enabled) {
    std::vector<OstState> states(config.osts, OstState::kUp);
    for (const OstIndex absent : config.cluster.initial_absent) {
      states[absent] = OstState::kDecommissioned;
    }
    map_ = ClusterMap{1, std::move(states)};
    map_history_.push_back(map_);
    client_epoch_.assign(config.clients, 1);
    hb_deadline_.assign(config.osts, 0);
    hb_ticking_.assign(config.osts, 0);
    hb_rng_.reserve(config.osts);
    for (std::uint32_t i = 0; i < config.osts; ++i) {
      hb_rng_.push_back(heartbeat_rng_.substream(i));
    }
    for (std::uint32_t i = 0; i < config.osts; ++i) {
      if (map_.state(i) == OstState::kDecommissioned) continue;
      arm_heartbeat(i);
      // Arm the initial grace deadline too: an OST dead from t=0 must still
      // be detected, not silently trusted forever. (Unless the grace window
      // itself outlives the heartbeat horizon — detection is horizon-bound.)
      if (config.cluster.grace_period() <= config.cluster.horizon) {
        hb_deadline_[i] = engine_.schedule_after(config.cluster.grace_period(),
                                                 [this, i] { heartbeat_deadline(i); });
      }
    }
    for (const MembershipEvent& ev : config.cluster.membership) {
      engine_.schedule_at(ev.at, [this, ev] { apply_membership(ev); });
    }
  }
  const std::uint32_t buffer_count = config.bb_placement == BbPlacement::kNone ? 0
                                     : config.bb_placement == BbPlacement::kShared
                                         ? 1
                                         : config.io_nodes;
  for (std::uint32_t b = 0; b < buffer_count; ++b) {
    // Drains re-enter the normal backend path from the owning I/O node, so
    // they contend with foreground traffic on the storage fabric. A drain
    // whose backend write fails (OST crash) completes anyway: the staged
    // data is dropped, mirroring a write-back cache losing dirty blocks.
    const std::uint32_t drain_ion = config.bb_placement == BbPlacement::kShared ? 0 : b;
    buffers_.push_back(std::make_unique<BurstBuffer>(
        engine, config.bb,
        [this, drain_ion](std::uint64_t file, std::uint64_t offset, Bytes size,
                          std::function<void()> on_done) {
          const auto it = token_info_.find(file);
          if (it == token_info_.end()) throw std::logic_error("BB drain: unknown file token");
          // Drains are untracked (file = 0): burst buffers and durability
          // tracking are mutually exclusive by construction. (So are burst
          // buffers and the cluster map, hence key/epoch are inert here.)
          backend_io(drain_ion, 0, it->second.layout, offset, size, /*is_write=*/true, 0,
                     /*key=*/0, /*epoch=*/1,
                     [done = std::move(on_done)](bool /*ok*/, IoError /*error*/,
                                                 SimTime /*retry_after*/) mutable {
                       if (done) done();
                     });
        },
        "bb" + std::to_string(b)));
  }
}

PfsModel::~PfsModel() = default;

net::EndpointId PfsModel::ion_of(ClientId client) const {
  return client % config_.io_nodes;
}

net::EndpointId PfsModel::compute_ep_of_ion(std::uint32_t ion) const {
  return config_.clients + ion;
}

net::EndpointId PfsModel::storage_ep_of_ost(OstIndex ost) const {
  return config_.io_nodes + ost;
}

net::EndpointId PfsModel::storage_ep_of_mds() const {
  return config_.io_nodes + config_.osts;
}

BurstBuffer* PfsModel::buffer_for_ion(std::uint32_t ion) {
  if (buffers_.empty()) return nullptr;
  if (config_.bb_placement == BbPlacement::kShared) return buffers_[0].get();
  return buffers_.at(ion).get();
}

fault::ComponentId PfsModel::bb_id_for_ion(std::uint32_t ion) const {
  const std::uint32_t index = config_.bb_placement == BbPlacement::kShared ? 0 : ion;
  return {fault::ComponentKind::kBurstBuffer, index};
}

std::uint64_t PfsModel::file_token(const std::string& path) {
  const auto it = file_tokens_.find(path);
  if (it != file_tokens_.end()) return it->second;
  const std::uint64_t token = next_file_token_++;
  file_tokens_.emplace(path, token);
  return token;
}

void PfsModel::meta(ClientId client, MetaOp op, const std::string& path,
                    std::function<void(MetaResult)> on_done,
                    std::optional<StripeLayout> layout) {
  if (client >= config_.clients) throw std::out_of_range("PfsModel::meta: bad client");
  const std::uint32_t ion = ion_of(client);
  // Request header: client -> ION (compute fabric) -> MDS (storage fabric).
  // An MDS down interval surfaces as MetaStatus::kUnavailable from the
  // server itself; the response header still travels back normally.
  compute_fabric_->send(client, compute_ep_of_ion(ion), kHeader, [this, client, ion, op, path,
                                                                  layout,
                                                                  done = std::move(on_done)]() mutable {
    storage_fabric_->send(ion, storage_ep_of_mds(), kHeader, [this, client, ion, op, path, layout,
                                                              done = std::move(done)]() mutable {
      mds_->request(
          op, path,
          [this, client, ion, done = std::move(done)](MetaResult result) mutable {
            // Response header back down the same path.
            storage_fabric_->send(storage_ep_of_mds(), ion, kHeader,
                                  [this, client, ion, result = std::move(result),
                                   done = std::move(done)]() mutable {
                                    compute_fabric_->send(
                                        compute_ep_of_ion(ion), client, kHeader,
                                        [result = std::move(result),
                                         done = std::move(done)]() mutable {
                                          if (done) done(std::move(result));
                                        });
                                  });
          },
          layout);
    });
  });
}

OstIndex PfsModel::route_chunk(OstIndex home, SimTime now) {
  if (!config_.retry.failover || timeline_.empty()) return home;
  const fault::ComponentId home_id{fault::ComponentKind::kOst, home};
  if (!timeline_.down(home_id, now)) return home;
  for (std::uint32_t k = 1; k < config_.osts; ++k) {
    const OstIndex candidate = (home + k) % config_.osts;
    if (!timeline_.down({fault::ComponentKind::kOst, candidate}, now)) {
      ++res_stats_.failovers;
      emit_resilience(ResilienceEventKind::kFailover, 0, IoError::kOstDown);
      return candidate;
    }
  }
  return home;  // whole pool down: let the op fail at its home OST
}

bool PfsModel::ost_down(OstIndex ost, SimTime t) const {
  if (timeline_.empty()) return false;
  return timeline_.down({fault::ComponentKind::kOst, ost}, t);
}

// -- cluster membership ------------------------------------------------------

SimTime PfsModel::next_heartbeat_delay(OstIndex ost) {
  const ClusterMapConfig& cm = config_.cluster;
  double sec = cm.heartbeat_interval.sec();
  if (cm.heartbeat_jitter_fraction > 0.0) {
    sec *= 1.0 + hb_rng_[ost].uniform(-cm.heartbeat_jitter_fraction,
                                      cm.heartbeat_jitter_fraction);
  }
  return std::max(SimTime::from_us(1.0), SimTime::from_sec_ceil(sec));
}

void PfsModel::arm_heartbeat(OstIndex ost) {
  if (hb_ticking_[ost] != 0) return;
  hb_ticking_[ost] = 1;
  engine_.schedule_after(next_heartbeat_delay(ost), [this, ost] { heartbeat_tick(ost); });
}

void PfsModel::heartbeat_tick(OstIndex ost) {
  // The loop ends for good on decommission or past the horizon (bounded
  // weather window, like the fault injector's): nothing left to re-arm it.
  if (map_.state(ost) == OstState::kDecommissioned || engine_.now() > config_.cluster.horizon) {
    hb_ticking_[ost] = 0;
    return;
  }
  // Detection is NOT omniscient, but emission must be honest: a truly-dead
  // OST cannot send. The timeline is ground truth *at the sender only*.
  if (!ost_down(ost, engine_.now())) {
    storage_fabric_->send(storage_ep_of_ost(ost), storage_ep_of_mds(), kHeader,
                          [this, ost] { monitor_heard(ost); });
  }
  engine_.schedule_after(next_heartbeat_delay(ost), [this, ost] { heartbeat_tick(ost); });
}

void PfsModel::monitor_heard(OstIndex ost) {
  if (map_.state(ost) == OstState::kDecommissioned) return;  // parting shot, ignored
  if (hb_deadline_[ost] != 0) engine_.cancel(hb_deadline_[ost]);
  hb_deadline_[ost] = 0;
  // Re-arm only while the full grace window fits inside the horizon:
  // heartbeats stop at the horizon (bounded weather window), so a deadline
  // armed past it would mass-declare the silent-but-healthy cluster down.
  if (engine_.now() + config_.cluster.grace_period() <= config_.cluster.horizon) {
    hb_deadline_[ost] = engine_.schedule_after(config_.cluster.grace_period(),
                                               [this, ost] { heartbeat_deadline(ost); });
  }
  if (map_.state(ost) == OstState::kDown) {
    ++res_stats_.up_detections;
    map_.set_state(ost, OstState::kUp);
    emit_resilience(ResilienceEventKind::kDetectedUp, 0, IoError::kNone, ost);
    publish_epoch();
  }
}

void PfsModel::heartbeat_deadline(OstIndex ost) {
  hb_deadline_[ost] = 0;
  const OstState state = map_.state(ost);
  if (state != OstState::kUp && state != OstState::kDraining) return;
  ++res_stats_.down_detections;
  map_.set_state(ost, OstState::kDown);
  emit_resilience(ResilienceEventKind::kDetectedDown, 0, IoError::kOstDown, ost);
  publish_epoch();
}

void PfsModel::publish_epoch() {
  map_.bump_epoch();
  map_history_.push_back(map_);
  if (tracking()) plan_migration();
}

void PfsModel::apply_membership(const MembershipEvent& ev) {
  const OstIndex ost = ev.ost;
  switch (ev.change) {
    case MembershipChange::kJoin: {
      const OstState state = map_.state(ost);
      if (state == OstState::kUp || state == OstState::kDraining) return;  // already in
      map_.set_state(ost, OstState::kUp);
      if (engine_.now() <= config_.cluster.horizon) {
        arm_heartbeat(ost);
        // Same horizon discipline as monitor_heard: no grace window that
        // would outlive the heartbeat horizon.
        if (hb_deadline_[ost] == 0 &&
            engine_.now() + config_.cluster.grace_period() <= config_.cluster.horizon) {
          hb_deadline_[ost] = engine_.schedule_after(config_.cluster.grace_period(),
                                                     [this, ost] { heartbeat_deadline(ost); });
        }
      }
      break;
    }
    case MembershipChange::kDrain:
      if (map_.state(ost) != OstState::kUp) return;
      map_.set_state(ost, OstState::kDraining);
      break;
    case MembershipChange::kDecommission:
      if (map_.state(ost) == OstState::kDecommissioned) return;
      map_.set_state(ost, OstState::kDecommissioned);
      if (hb_deadline_[ost] != 0) {
        engine_.cancel(hb_deadline_[ost]);
        hb_deadline_[ost] = 0;
      }
      break;
  }
  publish_epoch();
}

void PfsModel::plan_migration() {
  if (!tracking()) return;
  const PlacementMode mode = config_.cluster.placement;
  std::vector<OstIndex> wake;
  for (const std::uint64_t file : ledger_.acked_files()) {
    const auto info = token_info_.find(file);
    if (info == token_info_.end()) continue;
    const StripeLayout& layout = info->second.layout;
    const std::uint32_t replicas = std::max<std::uint32_t>(1, layout.replicas);
    const std::uint64_t ss = layout.stripe_size.count();
    for (const auto& seg : ledger_.acked_segments(file)) {
      const auto chunks = decompose(layout, config_.osts, seg.lo, Bytes{seg.hi - seg.lo});
      for (const auto& chunk : chunks) {
        const std::uint64_t lo = chunk.file_offset;
        const std::uint64_t hi = lo + chunk.length.count();
        const auto targets =
            placement_targets(map_, mode, layout, info->second.key, lo / ss, replicas);
        for (const OstIndex target : targets) {
          if (ledger_.read_ok(file, target, lo, hi)) continue;
          ledger_.mark_missed(target, file, lo, hi);
          res_stats_.migration_marked_bytes = res_stats_.migration_marked_bytes + Bytes{hi - lo};
          wake.push_back(target);
        }
      }
    }
  }
  std::sort(wake.begin(), wake.end());
  wake.erase(std::unique(wake.begin(), wake.end()), wake.end());
  for (const OstIndex target : wake) {
    // A target the monitor believes dead cannot resync now; its debt stays
    // in the ledger and the next epoch that sees it serving re-plans.
    if (!map_.serving(target)) continue;
    start_rebuild(target, /*migration=*/true);
  }
}

void PfsModel::refresh_map(ClientId client, std::function<void()> done) {
  ++res_stats_.map_refreshes;
  const std::uint32_t ion = ion_of(client);
  // Header round trip: client -> ION (compute) -> MDS monitor (storage) and
  // back. The epoch is snapshotted when the reply *arrives*, so a refresh
  // can itself race another publication — exactly like a real monitor.
  compute_fabric_->send(client, compute_ep_of_ion(ion), kHeader, [this, client, ion,
                                                                 done = std::move(done)]() mutable {
    storage_fabric_->send(ion, storage_ep_of_mds(), kHeader, [this, client, ion,
                                                              done = std::move(done)]() mutable {
      storage_fabric_->send(storage_ep_of_mds(), ion, kHeader, [this, client, ion,
                                                                done = std::move(done)]() mutable {
        compute_fabric_->send(compute_ep_of_ion(ion), client, kHeader,
                              [this, client, done = std::move(done)]() mutable {
                                client_epoch_[client] = map_.epoch();
                                if (done) done();
                              });
      });
    });
  });
}

std::vector<OstIndex> PfsModel::read_candidates(std::uint64_t key, const StripeLayout& layout,
                                                std::uint64_t stripe_index,
                                                std::uint64_t from_epoch) const {
  const std::uint32_t replicas = tracking() ? std::max<std::uint32_t>(1, layout.replicas) : 1;
  const PlacementMode mode = config_.cluster.placement;
  std::vector<OstIndex> out;
  for (std::uint64_t e = std::min<std::uint64_t>(from_epoch, map_history_.size()); e >= 1; --e) {
    for (const OstIndex t :
         placement_targets(map_history_[e - 1], mode, layout, key, stripe_index, replicas)) {
      if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
    }
  }
  return out;
}

void PfsModel::backend_io(std::uint32_t ion, std::uint64_t file, const StripeLayout& layout,
                          std::uint64_t offset, Bytes size, bool is_write, WriteToken wtoken,
                          std::uint64_t key, std::uint64_t epoch,
                          std::function<void(bool ok, IoError error, SimTime retry_after)> on_done) {
  const auto chunks = decompose(layout, config_.osts, offset, size);
  const bool tracked = tracking() && file != 0;
  const std::uint32_t replicas = tracked ? layout.replicas : 1;
  const SimTime dispatched = engine_.now();

  auto fan = std::make_shared<BackendFanout>();
  fan->done = std::move(on_done);

  // Plan every shipment first so the fan-out count is fixed before any
  // completion can fire.
  std::vector<Shipment> ships;
  ships.reserve(chunks.size() * replicas);
  for (const auto& chunk : chunks) {
    const std::uint64_t flo = chunk.file_offset;
    const std::uint64_t fhi = chunk.file_offset + chunk.length.count();
    if (cluster_enabled()) {
      // Cluster-map placement: targets come from the client's cached epoch,
      // never from the fault timeline — clients only know what the monitor
      // has published. decompose() is reused for stripe tiling only; the
      // per-OST object offset is the file offset itself (collision-free and
      // placement-independent, so migrated chunks keep their address).
      const std::uint64_t stripe = flo / layout.stripe_size.count();
      const ClusterMap& cached = map_at(epoch);
      const PlacementMode mode = config_.cluster.placement;
      auto targets = placement_targets(cached, mode, layout, key, stripe, replicas);
      if (epoch != map_.epoch() &&
          placement_targets(map_, mode, layout, key, stripe, replicas) != targets) {
        // The authoritative placement moved since the client's map: the
        // addressed OST rejects the epoch instead of serving (Ceph's
        // stale-OSDMap discipline). Bounce the whole chunk.
        const OstIndex bounce = !targets.empty() ? targets.front() : chunk.ost;
        ships.push_back(Shipment{bounce, flo, chunk.length, flo, fhi, /*stale=*/true});
        continue;
      }
      if (targets.empty()) {
        fan->fail(IoError::kOstDown);  // no placeable OST in the cached map
        continue;
      }
      if (is_write) {
        // Fan out to every placement target the cached map lists. A target
        // that is really dead but not yet detected rejects at the door and
        // fails the op — the measurable detection window. (No omniscient
        // mark_missed here: migration planning at the next epoch settles
        // the debts detection reveals.)
        for (const OstIndex target : targets) {
          ships.push_back(Shipment{target, flo, chunk.length, flo, fhi});
        }
        continue;
      }
      // Read: walk the fallback chain (this epoch's placement, then older
      // epochs') and serve from the first candidate the client believes
      // serving that holds the acknowledged data.
      constexpr OstIndex kNoOst = UINT32_MAX;
      OstIndex serve = kNoOst;
      OstIndex first_serving = kNoOst;
      for (const OstIndex candidate : read_candidates(key, layout, stripe, epoch)) {
        if (!cached.serving(candidate)) continue;
        if (first_serving == kNoOst) first_serving = candidate;
        if (!tracked || ledger_.read_ok(file, candidate, flo, fhi)) {
          serve = candidate;
          break;
        }
      }
      if (serve != kNoOst) {
        if (tracked && serve != targets.front()) {
          ++res_stats_.degraded_reads;
          emit_resilience(ResilienceEventKind::kDegradedRead, 0, IoError::kNone, serve,
                          chunk.length);
        }
        ships.push_back(Shipment{serve, flo, chunk.length, flo, fhi});
      } else if (first_serving != kNoOst) {
        // Somebody serving, nobody holding: the read completes and the
        // content check reports kDataLost.
        ships.push_back(Shipment{first_serving, flo, chunk.length, flo, fhi});
      } else {
        // Nobody the client believes serving: address the primary and let
        // reality answer (a door rejection is retryable).
        ships.push_back(Shipment{targets.front(), flo, chunk.length, flo, fhi});
      }
      continue;
    }
    if (replicas <= 1) {
      // Unreplicated (or untracked) path: degraded-mode striping may route
      // around OSTs known down at dispatch — which ships acknowledged data
      // outside the read set, the classic R=1 durability hole that F3 and
      // kDataLost make visible under tracking.
      const OstIndex target = route_chunk(chunk.ost, dispatched);
      ships.push_back(Shipment{target, chunk.object_offset, chunk.length, flo, fhi});
      continue;
    }
    if (is_write) {
      // Fan out to every live replica; a down replica misses the write and
      // accrues rebuild debt. The chunk is durable while >= 1 replica lives.
      std::size_t live = 0;
      for (std::uint32_t r = 0; r < replicas; ++r) {
        const OstIndex target = replica_ost(chunk.ost, r, config_.osts);
        if (ost_down(target, dispatched)) {
          ledger_.mark_missed(target, file, flo, fhi);
        } else {
          ships.push_back(Shipment{target, chunk.object_offset, chunk.length, flo, fhi});
          ++live;
        }
      }
      if (live == 0) fan->fail(IoError::kOstDown);  // whole replica set down
      continue;
    }
    // Replicated read: serve from the first replica that is up AND holds
    // the acknowledged data; primary preferred, fallback = degraded read.
    constexpr OstIndex kNone = UINT32_MAX;
    OstIndex serve = kNone;
    OstIndex first_up = kNone;
    std::uint32_t serve_r = 0;
    for (std::uint32_t r = 0; r < replicas; ++r) {
      const OstIndex candidate = replica_ost(chunk.ost, r, config_.osts);
      if (ost_down(candidate, dispatched)) continue;
      if (first_up == kNone) first_up = candidate;
      if (ledger_.read_ok(file, candidate, flo, fhi)) {
        serve = candidate;
        serve_r = r;
        break;
      }
    }
    if (serve != kNone) {
      if (serve_r != 0) {
        ++res_stats_.degraded_reads;
        emit_resilience(ResilienceEventKind::kDegradedRead, 0, IoError::kNone, serve,
                        chunk.length);
      }
      ships.push_back(Shipment{serve, chunk.object_offset, chunk.length, flo, fhi});
    } else if (first_up != kNone) {
      // Some replica is up but none holds current data: the device read
      // completes, the content check at completion reports kDataLost.
      ships.push_back(Shipment{first_up, chunk.object_offset, chunk.length, flo, fhi});
    } else {
      // Whole replica set down: let the primary reject it (retryable).
      ships.push_back(Shipment{chunk.ost, chunk.object_offset, chunk.length, flo, fhi});
    }
  }

  if (ships.empty()) {
    engine_.schedule_after(SimTime::zero(), [fan]() mutable {
      if (fan->done) {
        fan->done(fan->all_ok, fan->all_ok ? IoError::kNone : fan->error, fan->retry_after);
      }
    });
    return;
  }
  fan->remaining = ships.size();

  for (const auto& ship : ships) {
    const net::EndpointId ost_ep = storage_ep_of_ost(ship.target);
    if (ship.stale) {
      // Epoch check happens at the door, before any device work: request
      // header out, kStaleMap error header straight back. (No breaker gate:
      // a stale bounce is protocol, not server health.)
      storage_fabric_->send(ion, ost_ep, kHeader, [this, ion, ost_ep, fan]() mutable {
        storage_fabric_->send(ost_ep, ion, kHeader, [fan]() mutable {
          fan->finish_one(false, IoError::kStaleMap);
        });
      });
      continue;
    }
    // Circuit breaker gate: chunks addressed to a server whose breaker is
    // open fast-fail on the client without touching the fabric or the OST.
    if (config_.retry.breaker) {
      const CircuitBreaker::Gate gate = breakers_[ship.target].admit(engine_.now());
      if (!gate.allowed) {
        ++res_stats_.breaker_fast_fails;
        engine_.schedule_after(SimTime::zero(), [fan]() mutable {
          fan->finish_one(false, IoError::kCircuitOpen);
        });
        continue;
      }
      if (gate.probe) {
        ++res_stats_.breaker_probes;
        emit_resilience(ResilienceEventKind::kBreakerProbe, 0, IoError::kNone, ship.target);
      }
    }
    if (is_write) {
      // Ship data to the OST, write it, then a small ack (or error) returns.
      storage_fabric_->send(ion, ost_ep, ship.length, [this, ship, ion, ost_ep, fan, file,
                                                       tracked, wtoken]() mutable {
        osts_[ship.target]->submit(
            ship.object_offset, ship.length, true,
            [this, ship, ion, ost_ep, fan, file, tracked, wtoken](OstCompletion c) mutable {
              breaker_note(ship.target, c.ok());
              fan->hint(c.retry_after);
              if (c.ok() && tracked) {
                ledger_.apply(file, ship.target, ship.file_lo, ship.file_hi, wtoken);
              }
              const IoError fail_error =
                  c.overloaded() ? IoError::kOverloaded : IoError::kOstDown;
              storage_fabric_->send(ost_ep, ion, kHeader,
                                    [fan, ok = c.ok(), fail_error]() mutable {
                                      fan->finish_one(ok, ok ? IoError::kNone : fail_error);
                                    });
            });
      });
    } else {
      // Small request travels to the OST; data (or a short error) returns.
      storage_fabric_->send(ion, ost_ep, kHeader, [this, ship, ion, ost_ep, fan, file,
                                                   tracked]() mutable {
        osts_[ship.target]->submit(
            ship.object_offset, ship.length, false,
            [this, ship, ion, ost_ep, fan, file, tracked](OstCompletion c) mutable {
              breaker_note(ship.target, c.ok());
              fan->hint(c.retry_after);
              const bool ok = c.ok();
              // Re-check content at completion: a resync finishing between
              // dispatch and completion legitimately saves the read.
              const bool content_ok =
                  !ok || !tracked ||
                  ledger_.read_ok(file, ship.target, ship.file_lo, ship.file_hi);
              const Bytes payload = ok ? ship.length : kHeader;
              const IoError fail_error =
                  c.overloaded() ? IoError::kOverloaded : IoError::kOstDown;
              storage_fabric_->send(ost_ep, ion, payload,
                                    [fan, ok, content_ok, fail_error]() mutable {
                                      if (!ok) {
                                        fan->finish_one(false, fail_error);
                                      } else if (!content_ok) {
                                        fan->finish_one(false, IoError::kDataLost);
                                      } else {
                                        fan->finish_one(true, IoError::kNone);
                                      }
                                    });
            });
      });
    }
  }
}

void PfsModel::emit_resilience(ResilienceEventKind kind, std::uint32_t attempt, IoError error,
                               std::uint32_t ost, Bytes bytes) {
  if (res_observer_) {
    res_observer_(ResilienceRecord{kind, engine_.now(), attempt, error, ost, bytes});
  }
}

void PfsModel::breaker_note(OstIndex ost, bool ok) {
  if (!config_.retry.breaker) return;
  CircuitBreaker& breaker = breakers_[ost];
  if (ok) {
    if (breaker.record_success()) {
      ++res_stats_.breaker_closes;
      emit_resilience(ResilienceEventKind::kBreakerClose, 0, IoError::kNone, ost);
    }
    return;
  }
  if (breaker.record_failure(engine_.now(), breaker_rng_)) {
    ++res_stats_.breaker_opens;
    emit_resilience(ResilienceEventKind::kBreakerOpen, 0, IoError::kNone, ost);
  }
}

void PfsModel::settle(const std::shared_ptr<IoOpState>& op, bool ok, IoError error) {
  IoResult result;
  result.ok = ok;
  result.error = ok ? IoError::kNone : error;
  result.attempts = op->attempt;
  result.issued = op->issued;
  result.completed = engine_.now();
  result.size = op->size;
  if (ok && op->is_write) {
    mds_->grow_file(op->path, Bytes{op->offset} + op->size, engine_.now());
    if (op->token != 0) {
      // The ack IS the durability promise: from here on F3 holds the model
      // to keeping this payload readable from at least one replica.
      ledger_.ack(op->file, op->offset, op->offset + op->size.count(), op->token);
    }
  }
  if (!ok) {
    ++res_stats_.failed_ops;
    if (error == IoError::kDataLost) ++res_stats_.data_lost_ops;
  }
  if (op->done) op->done(result);
}

void PfsModel::attempt_finished(const std::shared_ptr<IoOpState>& op, bool ok, IoError error) {
  const RetryPolicy& retry = config_.retry;
  if (ok) {
    if (retry.adaptive_timeout) {
      latency_.observe(engine_.now() - op->attempt_started);
    }
    if (retry.retry_budget) {
      budget_.deposit();
      ++res_stats_.budget_deposits;
    }
    settle(op, true, IoError::kNone);
    return;
  }
  if (error == IoError::kOverloaded) ++res_stats_.overload_rejections;
  if (error == IoError::kDataLost) {
    // Lost data cannot be retried back into existence: settle immediately.
    settle(op, false, error);
    return;
  }
  // End-to-end deadline: once the op's budget is spent, retrying is work
  // nobody is waiting for — settle now whatever the per-attempt error was.
  if (op->deadline > SimTime::zero() && engine_.now() >= op->deadline) {
    ++res_stats_.deadline_giveups;
    emit_resilience(ResilienceEventKind::kDeadlineGiveUp, op->attempt, error);
    settle(op, false, IoError::kDeadlineExceeded);
    return;
  }
  if (error == IoError::kStaleMap) {
    // A stale map is not weather — backing off would just retry through the
    // same outdated epoch. Refresh the client's map (a real round trip to
    // the monitor) and retry immediately once the new epoch lands.
    if (op->attempt < retry.max_attempts) {
      ++res_stats_.stale_map_retries;
      emit_resilience(ResilienceEventKind::kStaleMapRetry, op->attempt, error);
      refresh_map(op->client, [this, op] { start_attempt(op); });
      return;
    }
    if (retry.retries_enabled()) {
      ++res_stats_.giveups;
      emit_resilience(ResilienceEventKind::kGiveUp, op->attempt, error);
    }
    settle(op, false, error);
    return;
  }
  if (op->attempt < retry.max_attempts) {
    // Pace to the server's retry-after hint when it exceeds the backoff
    // (the jitter draw happens regardless, keeping the stream aligned).
    SimTime delay = backoff_delay(retry, op->attempt, retry_rng_);
    if (op->retry_after > delay) delay = op->retry_after;
    // A retry that cannot even start before the deadline gives up now.
    if (op->deadline > SimTime::zero() && engine_.now() + delay >= op->deadline) {
      ++res_stats_.deadline_giveups;
      emit_resilience(ResilienceEventKind::kDeadlineGiveUp, op->attempt, error);
      settle(op, false, IoError::kDeadlineExceeded);
      return;
    }
    // Token-bucket retry budget: a denied retry settles with the original
    // error — under overload this is what caps retry amplification (F5b).
    if (retry.retry_budget) {
      if (!budget_.try_spend()) {
        ++res_stats_.budget_denied;
        emit_resilience(ResilienceEventKind::kBudgetExhausted, op->attempt, error);
        settle(op, false, error);
        return;
      }
      ++res_stats_.budget_spent;
    }
    ++res_stats_.retries;
    emit_resilience(ResilienceEventKind::kRetry, op->attempt, error);
    engine_.schedule_after(delay, [this, op] { start_attempt(op); });
    return;
  }
  if (retry.retries_enabled()) {
    ++res_stats_.giveups;
    emit_resilience(ResilienceEventKind::kGiveUp, op->attempt, error);
  }
  settle(op, false, error);
}

void PfsModel::start_attempt(const std::shared_ptr<IoOpState>& op) {
  // A retry can land here past the deadline without crossing the backoff
  // path's check (stale-map refresh round trips take real time).
  if (op->deadline > SimTime::zero() && op->attempt > 0 && engine_.now() >= op->deadline) {
    ++res_stats_.deadline_giveups;
    emit_resilience(ResilienceEventKind::kDeadlineGiveUp, op->attempt,
                    IoError::kDeadlineExceeded);
    settle(op, false, IoError::kDeadlineExceeded);
    return;
  }
  ++op->attempt;
  ++res_stats_.attempts;
  op->attempt_started = engine_.now();
  op->retry_after = SimTime::zero();
  // Each attempt addresses through the epoch the client holds *now* — a
  // refresh between attempts is what makes stale-map retries converge.
  if (cluster_enabled()) op->map_epoch = client_epoch_[op->client];
  auto attempt = std::make_shared<AttemptState>();
  // Per-attempt timeout: the adaptive estimator's RTO when enabled, else the
  // fixed op_timeout; either way capped to what remains of the deadline.
  SimTime timeout =
      config_.retry.adaptive_timeout ? latency_.timeout() : config_.retry.op_timeout;
  if (op->deadline > SimTime::zero()) {
    const SimTime remaining = op->deadline - engine_.now();
    if (timeout <= SimTime::zero() || timeout > remaining) timeout = remaining;
  }
  if (timeout > SimTime::zero()) {
    attempt->timeout_event =
        engine_.schedule_after(timeout, [this, op, attempt] {
          if (attempt->settled) return;
          // Abandon the attempt: whatever it still has in flight will drain
          // through the model as counted orphans (invariant F2).
          attempt->settled = true;
          ++res_stats_.timeouts;
          ++abandoned_in_flight_;
          emit_resilience(ResilienceEventKind::kTimeout, op->attempt, IoError::kTimeout);
          attempt_finished(op, false, IoError::kTimeout);
        });
  }
  run_attempt(op, attempt);
}

void PfsModel::run_attempt(const std::shared_ptr<IoOpState>& op,
                           const std::shared_ptr<AttemptState>& attempt) {
  const std::uint32_t ion = ion_of(op->client);

  // Exactly-once completion funnel for this attempt. A completion arriving
  // after the timeout settled the attempt is an orphan draining out.
  auto complete = [this, op, attempt](bool ok, IoError error) {
    if (attempt->settled) {
      sim::check::that(abandoned_in_flight_ > 0, "fault.abandoned-op-leak",
                       "orphan completion without a matching abandonment");
      --abandoned_in_flight_;
      return;
    }
    attempt->settled = true;
    if (attempt->timeout_event != 0) engine_.cancel(attempt->timeout_event);
    attempt_finished(op, ok, error);
  };

  if (op->is_write) {
    // Data travels client -> ION over the compute fabric.
    compute_fabric_->send(op->client, compute_ep_of_ion(ion), op->size,
                          [this, op, ion, complete]() mutable {
      auto backend_done = [this, op, ion, complete](bool ok, IoError error,
                                                    SimTime retry_after) mutable {
        op->retry_after = retry_after;  // server pacing hint for the retry path
        // Ack (or error) header back to the client.
        compute_fabric_->send(compute_ep_of_ion(ion), op->client, kHeader,
                              [complete, ok, error]() mutable {
                                complete(ok, ok ? IoError::kNone : error);
                              });
      };
      BurstBuffer* bb = buffer_for_ion(ion);
      const bool bb_stalled =
          bb != nullptr && timeline_.down(bb_id_for_ion(ion), engine_.now());
      if (bb != nullptr && !bb_stalled && bb->can_absorb(op->size)) {
        const std::uint64_t token = file_token(op->path);
        bb->write(token, op->offset, op->size, [backend_done]() mutable {
          backend_done(true, IoError::kNone, SimTime::zero());
        });
        return;  // absorbed; drain happens in the background
      }
      // No buffer (or full, or stalled): write through to the OSTs.
      if (bb != nullptr) bb->note_bypass(op->size);
      backend_io(ion, op->file, op->layout, op->offset, op->size, true, op->token,
                 op->key, op->map_epoch, std::move(backend_done));
    });
  } else {
    // Small read request to the ION; data returns over the compute fabric.
    compute_fabric_->send(op->client, compute_ep_of_ion(ion), kHeader,
                          [this, op, ion, complete]() mutable {
      auto backend_done = [this, op, ion, complete](bool ok, IoError error,
                                                    SimTime retry_after) mutable {
        op->retry_after = retry_after;  // server pacing hint for the retry path
        const Bytes payload = ok ? op->size : kHeader;  // errors return small
        compute_fabric_->send(compute_ep_of_ion(ion), op->client, payload,
                              [complete, ok, error]() mutable {
                                complete(ok, ok ? IoError::kNone : error);
                              });
      };
      BurstBuffer* bb = buffer_for_ion(ion);
      const bool bb_stalled =
          bb != nullptr && timeline_.down(bb_id_for_ion(ion), engine_.now());
      const std::uint64_t token = file_token(op->path);
      if (bb != nullptr && !bb_stalled && bb->resident(token, op->offset, op->size)) {
        bb->read(token, op->offset, op->size, [backend_done]() mutable {
          backend_done(true, IoError::kNone, SimTime::zero());
        });
        return;  // served from the staging tier
      }
      if (bb != nullptr) bb->note_miss(op->size);
      backend_io(ion, op->file, op->layout, op->offset, op->size, false, 0,
                 op->key, op->map_epoch, std::move(backend_done));
    });
  }
}

void PfsModel::io(ClientId client, const std::string& path, const StripeLayout& layout,
                  std::uint64_t offset, Bytes size, bool is_write,
                  std::function<void(IoResult)> on_done) {
  if (client >= config_.clients) throw std::out_of_range("PfsModel::io: bad client");
  if (!tracking() && layout.replicas > 1) {
    throw std::invalid_argument(
        "PfsModel::io: replicated layouts require durability.track_contents");
  }
  const SimTime issued = engine_.now();

  // Data ops against a path that was never created (or names a directory)
  // fail fast with a distinct error: there is no layout to ship chunks with.
  // No retries — the namespace will not change by waiting.
  const Inode* inode = mds_->find_inode(path);
  if (inode == nullptr || inode->is_dir) {
    engine_.schedule_after(SimTime::zero(),
                           [this, issued, size, done = std::move(on_done)]() mutable {
                             ++res_stats_.failed_ops;
                             if (done) {
                               done(IoResult{false, IoError::kNoEntry, 1, issued,
                                             engine_.now(), size});
                             }
                           });
    return;
  }

  const std::uint64_t token = file_token(path);
  token_info_[token] = FileInfo{path, layout, file_placement_key(path)};

  auto op = std::make_shared<IoOpState>();
  op->client = client;
  op->path = path;
  op->layout = layout;
  op->offset = offset;
  op->size = size;
  op->is_write = is_write;
  op->issued = issued;
  op->key = file_placement_key(path);
  if (config_.retry.op_deadline > SimTime::zero()) {
    op->deadline = issued + config_.retry.op_deadline;
  }
  if (tracking()) {
    op->file = token;
    // One token per logical op: every attempt and chunk of this write
    // carries the same payload identity.
    if (is_write) op->token = ledger_.next_token();
  }
  op->done = std::move(on_done);
  start_attempt(op);
}

void PfsModel::start_rebuild(OstIndex ost, bool migration) {
  if (!tracking()) return;
  auto& slot = rebuild_[ost];
  if (slot == nullptr) slot = std::make_unique<RebuildState>();
  RebuildState& rb = *slot;
  if (rb.active) return;
  rb.migration = migration;
  rb.queue.clear();
  rb.next = 0;
  rb.total = Bytes::zero();
  rb.done = Bytes::zero();
  // Split the owed ranges at chunk boundaries (each piece has one home OST
  // and one object offset) and at the resync copy granularity.
  const std::uint64_t piece_max =
      std::max<std::uint64_t>(1, config_.durability.rebuild_chunk.count());
  for (const auto& range : ledger_.dirty_snapshot(ost)) {
    const auto info = token_info_.find(range.file);
    if (info == token_info_.end()) continue;
    const auto chunks =
        decompose(info->second.layout, config_.osts, range.lo, Bytes{range.hi - range.lo});
    for (const auto& chunk : chunks) {
      const std::uint64_t chunk_hi = chunk.file_offset + chunk.length.count();
      for (std::uint64_t lo = chunk.file_offset; lo < chunk_hi;) {
        const std::uint64_t hi = std::min(chunk_hi, lo + piece_max);
        rb.queue.push_back(DirtyRange{range.file, lo, hi});
        rb.total = rb.total + Bytes{hi - lo};
        lo = hi;
      }
    }
  }
  if (rb.queue.empty()) return;  // recovered owing nothing: no rebuild
  rb.active = true;
  rb.started = engine_.now();
  ++res_stats_.rebuilds_started;
  emit_resilience(ResilienceEventKind::kRebuildStart, 0, IoError::kNone, ost, rb.total);
  run_rebuild_piece(ost);
}

void PfsModel::run_rebuild_piece(OstIndex ost) {
  RebuildState& rb = *rebuild_.at(ost);
  if (!rb.active) return;
  if (rb.next >= rb.queue.size()) {
    finish_rebuild(ost);
    return;
  }
  const DirtyRange piece = rb.queue[rb.next++];
  const SimTime t0 = engine_.now();
  // A piece with no usable source right now stays owed (still dirty in the
  // ledger); a later recovery of this OST retries it.
  const auto skip = [this, ost] {
    engine_.schedule_after(SimTime::zero(), [this, ost] { run_rebuild_piece(ost); });
  };
  const auto info = token_info_.find(piece.file);
  if (info == token_info_.end()) {
    skip();
    return;
  }
  const StripeLayout& layout = info->second.layout;
  const auto chunks =
      decompose(layout, config_.osts, piece.lo, Bytes{piece.hi - piece.lo});
  if (chunks.size() != 1) {  // defensive: pieces never cross chunk boundaries
    skip();
    return;
  }
  const StripeChunk chunk = chunks.front();
  const std::uint32_t replicas = std::max<std::uint32_t>(1, layout.replicas);
  constexpr OstIndex kNoOst = UINT32_MAX;
  OstIndex src = kNoOst;
  if (cluster_enabled()) {
    // Source selection sees only detected state (the monitor's map), never
    // the timeline: a believed-serving-but-dead source rejects the read at
    // the door and the piece stays owed for a later pass.
    const std::uint64_t stripe = piece.lo / layout.stripe_size.count();
    for (const OstIndex candidate :
         read_candidates(info->second.key, layout, stripe, map_.epoch())) {
      if (candidate == ost || !map_.serving(candidate)) continue;
      if (ledger_.read_ok(piece.file, candidate, piece.lo, piece.hi)) {
        src = candidate;
        break;
      }
    }
  } else {
    for (std::uint32_t r = 0; r < replicas; ++r) {
      const OstIndex candidate = replica_ost(chunk.ost, r, config_.osts);
      if (candidate == ost || ost_down(candidate, t0)) continue;
      if (ledger_.read_ok(piece.file, candidate, piece.lo, piece.hi)) {
        src = candidate;
        break;
      }
    }
  }
  if (src == kNoOst) {
    skip();
    return;
  }
  const Bytes len{piece.hi - piece.lo};
  // Resync is real DES traffic: a device read on the source replica, a hop
  // across the storage fabric, a device write on the rebuilding OST — so it
  // contends with foreground I/O exactly like production resync streams.
  // Cluster mode addresses objects by file offset (placement-independent);
  // legacy mode keeps the round-robin lane's object offset.
  const std::uint64_t obj = cluster_enabled() ? piece.lo : chunk.object_offset;
  osts_[src]->submit(obj, len, false, [this, ost, src, piece, obj, len,
                                       t0](OstCompletion read_c) mutable {
    if (!read_c.ok()) {
      engine_.schedule_after(SimTime::zero(), [this, ost] { run_rebuild_piece(ost); });
      return;
    }
    storage_fabric_->send(
        storage_ep_of_ost(src), storage_ep_of_ost(ost), len,
        [this, ost, src, piece, obj, len, t0]() mutable {
          osts_[ost]->submit(obj, len, true, [this, ost, src, piece, len,
                                              t0](OstCompletion write_c) mutable {
            RebuildState& state = *rebuild_.at(ost);
            if (!write_c.ok()) {
              // The rebuilding OST crashed again mid-resync: park the pass.
              // Its next recovery event restarts it from the (still-dirty)
              // ledger; a transient rejection with the OST up retries now.
              state.active = false;
              const bool mig = state.migration;
              if (!ost_down(ost, engine_.now())) {
                engine_.schedule_after(SimTime::zero(),
                                       [this, ost, mig] { start_rebuild(ost, mig); });
              }
              return;
            }
            ledger_.copy(piece.file, src, ost, piece.lo, piece.hi);
            state.done = state.done + len;
            res_stats_.rebuilt_bytes = res_stats_.rebuilt_bytes + len;
            // Pace the next piece against the rebuild bandwidth cap, with a
            // seeded jitter so parallel resyncs do not lockstep. Migration
            // passes draw from the drain stream, crash resyncs from the
            // rebuild stream — the two never perturb each other's draws.
            double pace_sec = config_.durability.rebuild_bandwidth.transfer_time(len).sec();
            const double jitter = config_.durability.rebuild_jitter_fraction;
            Rng& pace_rng = state.migration ? drain_rng_ : rebuild_rng_;
            if (jitter > 0.0) pace_sec *= 1.0 + pace_rng.uniform(-jitter, jitter);
            const SimTime next_at =
                std::max(engine_.now(), t0 + SimTime::from_sec_ceil(pace_sec));
            engine_.schedule_at(next_at, [this, ost] { run_rebuild_piece(ost); });
          });
        });
  });
}

void PfsModel::finish_rebuild(OstIndex ost) {
  RebuildState& rb = *rebuild_.at(ost);
  rb.active = false;
  ++res_stats_.rebuilds_completed;
  emit_resilience(ResilienceEventKind::kRebuildDone, 0, IoError::kNone, ost, rb.done);
}

PfsModel::DurabilityReport PfsModel::durability_report() const {
  DurabilityReport report;
  if (!tracking()) return report;
  for (const std::uint64_t file : ledger_.acked_files()) {
    const auto info = token_info_.find(file);
    if (info == token_info_.end()) continue;
    const StripeLayout& layout = info->second.layout;
    const std::uint32_t replicas = std::max<std::uint32_t>(1, layout.replicas);
    for (const auto& seg : ledger_.acked_segments(file)) {
      report.acked = report.acked + Bytes{seg.hi - seg.lo};
      // Audit per chunk against the chunk's read set: the replicas a read
      // would consult. Data that failover misdirected outside the read set
      // (the R=1 hole) is audited as lost — reads cannot reach it. In
      // cluster mode the read set is the placement-aware fallback chain
      // restricted to OSTs the monitor believes serving, so the audit is F4:
      // "readable through the read path after any membership sequence".
      const auto chunks = decompose(layout, config_.osts, seg.lo, Bytes{seg.hi - seg.lo});
      for (const auto& chunk : chunks) {
        const std::uint64_t chunk_lo = chunk.file_offset;
        const std::uint64_t chunk_hi = chunk.file_offset + chunk.length.count();
        bool held = false;
        if (cluster_enabled()) {
          const std::uint64_t stripe = chunk_lo / layout.stripe_size.count();
          for (const OstIndex candidate :
               read_candidates(info->second.key, layout, stripe, map_.epoch())) {
            if (map_.serving(candidate) &&
                ledger_.read_ok(file, candidate, chunk_lo, chunk_hi)) {
              held = true;
              break;
            }
          }
        } else {
          for (std::uint32_t r = 0; r < replicas && !held; ++r) {
            held = ledger_.read_ok(file, replica_ost(chunk.ost, r, config_.osts), chunk_lo,
                                   chunk_hi);
          }
        }
        if (!held) {
          report.lost = report.lost + Bytes{chunk_hi - chunk_lo};
          ++report.lost_ranges;
        }
      }
    }
  }
  return report;
}

PfsModel::RebuildStatus PfsModel::rebuild_status(OstIndex ost) const {
  RebuildStatus status;
  const auto it = rebuild_.find(ost);
  if (it == rebuild_.end() || it->second == nullptr) return status;
  const RebuildState& rb = *it->second;
  status.active = rb.active;
  status.total = rb.total;
  status.done = rb.done;
  status.started = rb.started;
  if (rb.active && rb.total.count() > rb.done.count()) {
    status.eta = config_.durability.rebuild_bandwidth.transfer_time(
        Bytes{rb.total.count() - rb.done.count()});
  }
  return status;
}

void PfsModel::assert_quiescent() const {
  sim::check::abandoned_ops_drained(abandoned_in_flight_);
  if (tracking()) {
    sim::check::acked_writes_durable(durability_report().lost.count());
  }
  // F5a: every submission resolved exactly one way. Audited unconditionally
  // — the identity must hold with admission control off too.
  for (const auto& ost : osts_) {
    const OstStats& s = ost->stats();
    sim::check::admission_accounting_exact(
        s.submitted_ops,
        s.completed_ops + s.rejected_ops + s.overload_rejected_ops + s.shed_ops +
            s.interrupted_ops,
        "ost");
  }
  const MdsStats& m = mds_->stats();
  sim::check::admission_accounting_exact(m.requests, m.ops_total, "mds");
  // F5b: with the token bucket on, retries spent can never exceed the
  // initial burst plus ratio * deposits — amplification is bounded.
  if (config_.retry.retry_budget) {
    sim::check::retry_amplification_bounded(
        res_stats_.budget_spent,
        config_.retry.budget_cap +
            config_.retry.budget_ratio * static_cast<double>(res_stats_.budget_deposits));
  }
}

PfsModel::ServerOverloadTotals PfsModel::server_overload_totals() const {
  ServerOverloadTotals totals;
  for (const auto& ost : osts_) {
    totals.rejected += ost->stats().overload_rejected_ops;
    totals.shed += ost->stats().shed_ops;
  }
  totals.rejected += mds_->stats().overload_rejected;
  totals.shed += mds_->stats().shed_ops;
  return totals;
}

bool PfsModel::buffers_quiescent() const {
  for (const auto& buffer : buffers_) {
    if (!buffer->quiescent()) return false;
  }
  return true;
}

void PfsModel::set_ost_observer(std::function<void(const OstOpRecord&)> observer) {
  // Each OST shares the same observer; the record carries the OST index.
  for (auto& ost : osts_) {
    ost->set_op_observer(observer);
  }
}

void PfsModel::set_mds_observer(std::function<void(const MdsOpRecord&)> observer) {
  mds_->set_op_observer(std::move(observer));
}

}  // namespace pio::pfs
