#include "pfs/pfs.hpp"

#include <memory>
#include <stdexcept>

namespace pio::pfs {

namespace {

std::unique_ptr<DiskModel> make_disk(const PfsConfig& config, sim::Engine& engine,
                                     std::uint32_t index) {
  if (config.disk_kind == DiskKind::kHdd) {
    // Each disk gets its own jitter stream so device behaviour is
    // independent of OST count and submission interleaving.
    return make_hdd(config.hdd, engine.rng_stream(0xD15C0000ULL + index));
  }
  return make_ssd(config.ssd);
}

}  // namespace

PfsModel::PfsModel(sim::Engine& engine, const PfsConfig& config)
    : engine_(engine), config_(config) {
  if (config.clients == 0 || config.io_nodes == 0 || config.osts == 0) {
    throw std::invalid_argument("PfsModel: clients, io_nodes, osts must all be > 0");
  }
  compute_fabric_ = std::make_unique<net::Fabric>(engine, config.compute_fabric,
                                                  config.clients + config.io_nodes);
  storage_fabric_ = std::make_unique<net::Fabric>(engine, config.storage_fabric,
                                                  config.io_nodes + config.osts + 1);
  mds_ = std::make_unique<MetadataServer>(engine, config.mds);
  osts_.reserve(config.osts);
  for (std::uint32_t i = 0; i < config.osts; ++i) {
    osts_.push_back(std::make_unique<OstServer>(engine, i, make_disk(config, engine, i)));
  }
  const std::uint32_t buffer_count = config.bb_placement == BbPlacement::kNone ? 0
                                     : config.bb_placement == BbPlacement::kShared
                                         ? 1
                                         : config.io_nodes;
  for (std::uint32_t b = 0; b < buffer_count; ++b) {
    // Drains re-enter the normal backend path from the owning I/O node, so
    // they contend with foreground traffic on the storage fabric.
    const std::uint32_t drain_ion = config.bb_placement == BbPlacement::kShared ? 0 : b;
    buffers_.push_back(std::make_unique<BurstBuffer>(
        engine, config.bb,
        [this, drain_ion](std::uint64_t file, std::uint64_t offset, Bytes size,
                          std::function<void()> on_done) {
          const auto it = token_info_.find(file);
          if (it == token_info_.end()) throw std::logic_error("BB drain: unknown file token");
          backend_io(drain_ion, it->second.second, offset, size, /*is_write=*/true,
                     std::move(on_done));
        },
        "bb" + std::to_string(b)));
  }
}

net::EndpointId PfsModel::ion_of(ClientId client) const {
  return client % config_.io_nodes;
}

net::EndpointId PfsModel::compute_ep_of_ion(std::uint32_t ion) const {
  return config_.clients + ion;
}

net::EndpointId PfsModel::storage_ep_of_ost(OstIndex ost) const {
  return config_.io_nodes + ost;
}

net::EndpointId PfsModel::storage_ep_of_mds() const {
  return config_.io_nodes + config_.osts;
}

BurstBuffer* PfsModel::buffer_for_ion(std::uint32_t ion) {
  if (buffers_.empty()) return nullptr;
  if (config_.bb_placement == BbPlacement::kShared) return buffers_[0].get();
  return buffers_.at(ion).get();
}

std::uint64_t PfsModel::file_token(const std::string& path) {
  const auto it = file_tokens_.find(path);
  if (it != file_tokens_.end()) return it->second;
  const std::uint64_t token = next_file_token_++;
  file_tokens_.emplace(path, token);
  return token;
}

void PfsModel::meta(ClientId client, MetaOp op, const std::string& path,
                    std::function<void(MetaResult)> on_done,
                    std::optional<StripeLayout> layout) {
  if (client >= config_.clients) throw std::out_of_range("PfsModel::meta: bad client");
  const std::uint32_t ion = ion_of(client);
  // Request header: client -> ION (compute fabric) -> MDS (storage fabric).
  compute_fabric_->send(client, compute_ep_of_ion(ion), kHeader, [this, client, ion, op, path,
                                                                  layout,
                                                                  done = std::move(on_done)]() mutable {
    storage_fabric_->send(ion, storage_ep_of_mds(), kHeader, [this, client, ion, op, path, layout,
                                                              done = std::move(done)]() mutable {
      mds_->request(
          op, path,
          [this, client, ion, done = std::move(done)](MetaResult result) mutable {
            // Response header back down the same path.
            storage_fabric_->send(storage_ep_of_mds(), ion, kHeader,
                                  [this, client, ion, result = std::move(result),
                                   done = std::move(done)]() mutable {
                                    compute_fabric_->send(
                                        compute_ep_of_ion(ion), client, kHeader,
                                        [result = std::move(result),
                                         done = std::move(done)]() mutable {
                                          if (done) done(std::move(result));
                                        });
                                  });
          },
          layout);
    });
  });
}

void PfsModel::backend_io(std::uint32_t ion, const StripeLayout& layout, std::uint64_t offset,
                          Bytes size, bool is_write, std::function<void()> on_done) {
  const auto chunks = decompose(layout, config_.osts, offset, size);
  if (chunks.empty()) {
    engine_.schedule_after(SimTime::zero(), std::move(on_done));
    return;
  }
  // Fan out all chunks; complete when the last response arrives.
  auto remaining = std::make_shared<std::size_t>(chunks.size());
  auto done = std::make_shared<std::function<void()>>(std::move(on_done));
  for (const auto& chunk : chunks) {
    const net::EndpointId ost_ep = storage_ep_of_ost(chunk.ost);
    auto finish_one = [remaining, done] {
      if (--*remaining == 0 && *done) (*done)();
    };
    if (is_write) {
      // Ship data to the OST, write it, then a small ack returns.
      storage_fabric_->send(ion, ost_ep, chunk.length, [this, chunk, ion, ost_ep,
                                                        finish_one]() mutable {
        osts_[chunk.ost]->submit(chunk.object_offset, chunk.length, true,
                                 [this, ion, ost_ep, finish_one]() mutable {
                                   storage_fabric_->send(ost_ep, ion, kHeader,
                                                         std::move(finish_one));
                                 });
      });
    } else {
      // Small request travels to the OST; data travels back.
      storage_fabric_->send(ion, ost_ep, kHeader, [this, chunk, ion, ost_ep,
                                                   finish_one]() mutable {
        osts_[chunk.ost]->submit(chunk.object_offset, chunk.length, false,
                                 [this, chunk, ion, ost_ep, finish_one]() mutable {
                                   storage_fabric_->send(ost_ep, ion, chunk.length,
                                                         std::move(finish_one));
                                 });
      });
    }
  }
}

void PfsModel::io(ClientId client, const std::string& path, const StripeLayout& layout,
                  std::uint64_t offset, Bytes size, bool is_write,
                  std::function<void(IoResult)> on_done) {
  if (client >= config_.clients) throw std::out_of_range("PfsModel::io: bad client");
  const SimTime issued = engine_.now();
  const std::uint32_t ion = ion_of(client);
  const std::uint64_t token = file_token(path);
  token_info_[token] = {path, layout};

  auto complete = [this, issued, size, path, offset, is_write,
                   done = std::move(on_done)]() mutable {
    if (is_write) {
      mds_->grow_file(path, Bytes{offset} + size, engine_.now());
    }
    if (done) done(IoResult{true, issued, engine_.now(), size});
  };

  if (is_write) {
    // Data travels client -> ION over the compute fabric.
    compute_fabric_->send(client, compute_ep_of_ion(ion), size,
                          [this, client, ion, token, layout, offset, size,
                           complete = std::move(complete)]() mutable {
      auto ack_client = [this, client, ion, complete = std::move(complete)]() mutable {
        compute_fabric_->send(compute_ep_of_ion(ion), client, kHeader, std::move(complete));
      };
      BurstBuffer* bb = buffer_for_ion(ion);
      if (bb != nullptr && bb->can_absorb(size)) {
        bb->write(token, offset, size, std::move(ack_client));
        return;  // absorbed; drain happens in the background
      }
      // No buffer (or full): write through to the OSTs.
      if (bb != nullptr) bb->note_bypass(size);
      backend_io(ion, layout, offset, size, true, std::move(ack_client));
    });
  } else {
    // Small read request to the ION; data returns over the compute fabric.
    compute_fabric_->send(client, compute_ep_of_ion(ion), kHeader,
                          [this, client, ion, token, layout, offset, size,
                           complete = std::move(complete)]() mutable {
      auto data_to_client = [this, client, ion, size,
                             complete = std::move(complete)]() mutable {
        compute_fabric_->send(compute_ep_of_ion(ion), client, size, std::move(complete));
      };
      BurstBuffer* bb = buffer_for_ion(ion);
      if (bb != nullptr && bb->resident(token, offset, size)) {
        bb->read(token, offset, size, std::move(data_to_client));
        return;  // served from the staging tier
      }
      if (bb != nullptr) bb->note_miss(size);
      backend_io(ion, layout, offset, size, false, std::move(data_to_client));
    });
  }
}

bool PfsModel::buffers_quiescent() const {
  for (const auto& buffer : buffers_) {
    if (!buffer->quiescent()) return false;
  }
  return true;
}

void PfsModel::set_ost_observer(std::function<void(const OstOpRecord&)> observer) {
  // Each OST shares the same observer; the record carries the OST index.
  for (auto& ost : osts_) {
    ost->set_op_observer(observer);
  }
}

void PfsModel::set_mds_observer(std::function<void(const MdsOpRecord&)> observer) {
  mds_->set_op_observer(std::move(observer));
}

}  // namespace pio::pfs
