#include "pfs/pfs.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

namespace pio::pfs {

namespace {

std::unique_ptr<DiskModel> make_disk(const PfsConfig& config, sim::Engine& engine,
                                     std::uint32_t index) {
  if (config.disk_kind == DiskKind::kHdd) {
    // Each disk gets its own jitter stream so device behaviour is
    // independent of OST count and submission interleaving.
    return make_hdd(config.hdd, engine.rng_stream(0xD15C0000ULL + index));
  }
  return make_ssd(config.ssd);
}

}  // namespace

/// One logical io() op across its (possibly many) attempts.
struct PfsModel::IoOpState {
  ClientId client = 0;
  std::string path;
  StripeLayout layout{};
  std::uint64_t offset = 0;
  Bytes size = Bytes::zero();
  bool is_write = false;
  SimTime issued = SimTime::zero();
  std::uint32_t attempt = 0;  ///< attempts started so far
  std::function<void(IoResult)> done;
};

/// Settle latch shared between an attempt's completion path and its timeout
/// event: whichever fires first wins; the loser becomes a no-op (completion)
/// or is cancelled (timeout).
struct PfsModel::AttemptState {
  bool settled = false;
  sim::EventId timeout_event = 0;
};

PfsModel::PfsModel(sim::Engine& engine, const PfsConfig& config)
    : engine_(engine), config_(config), retry_rng_(engine.rng_stream(kRetryRngStream)) {
  if (config.clients == 0 || config.io_nodes == 0 || config.osts == 0) {
    throw std::invalid_argument("PfsModel: clients, io_nodes, osts must all be > 0");
  }
  // Materialize the run's fault weather up front: scripted events verbatim,
  // plus the stochastic injector's schedule drawn from the engine seed.
  std::vector<fault::FaultEvent> fault_events = config.faults.events;
  if (config.fault_injector.has_value()) {
    fault::InjectorConfig injector = *config.fault_injector;
    injector.osts = config.osts;
    auto injected = fault::inject(injector, engine.rng_stream(fault::kFaultRngStream));
    fault_events.insert(fault_events.end(), injected.begin(), injected.end());
  }
  timeline_ = fault::Timeline{std::move(fault_events)};

  compute_fabric_ = std::make_unique<net::Fabric>(engine, config.compute_fabric,
                                                  config.clients + config.io_nodes);
  storage_fabric_ = std::make_unique<net::Fabric>(engine, config.storage_fabric,
                                                  config.io_nodes + config.osts + 1);
  mds_ = std::make_unique<MetadataServer>(engine, config.mds);
  osts_.reserve(config.osts);
  for (std::uint32_t i = 0; i < config.osts; ++i) {
    osts_.push_back(std::make_unique<OstServer>(engine, i, make_disk(config, engine, i)));
  }
  if (!timeline_.empty()) {
    // Attach the weather only when there is any: the fair-weather hot path
    // stays free of per-op timeline queries.
    compute_fabric_->set_fault_timeline(&timeline_,
                                        {fault::ComponentKind::kComputeFabric, 0});
    storage_fabric_->set_fault_timeline(&timeline_,
                                        {fault::ComponentKind::kStorageFabric, 0});
    mds_->set_fault_timeline(&timeline_);
    for (auto& ost : osts_) ost->set_fault_timeline(&timeline_);
  }
  const std::uint32_t buffer_count = config.bb_placement == BbPlacement::kNone ? 0
                                     : config.bb_placement == BbPlacement::kShared
                                         ? 1
                                         : config.io_nodes;
  for (std::uint32_t b = 0; b < buffer_count; ++b) {
    // Drains re-enter the normal backend path from the owning I/O node, so
    // they contend with foreground traffic on the storage fabric. A drain
    // whose backend write fails (OST crash) completes anyway: the staged
    // data is dropped, mirroring a write-back cache losing dirty blocks.
    const std::uint32_t drain_ion = config.bb_placement == BbPlacement::kShared ? 0 : b;
    buffers_.push_back(std::make_unique<BurstBuffer>(
        engine, config.bb,
        [this, drain_ion](std::uint64_t file, std::uint64_t offset, Bytes size,
                          std::function<void()> on_done) {
          const auto it = token_info_.find(file);
          if (it == token_info_.end()) throw std::logic_error("BB drain: unknown file token");
          backend_io(drain_ion, it->second.second, offset, size, /*is_write=*/true,
                     [done = std::move(on_done)](bool /*ok*/) mutable {
                       if (done) done();
                     });
        },
        "bb" + std::to_string(b)));
  }
}

net::EndpointId PfsModel::ion_of(ClientId client) const {
  return client % config_.io_nodes;
}

net::EndpointId PfsModel::compute_ep_of_ion(std::uint32_t ion) const {
  return config_.clients + ion;
}

net::EndpointId PfsModel::storage_ep_of_ost(OstIndex ost) const {
  return config_.io_nodes + ost;
}

net::EndpointId PfsModel::storage_ep_of_mds() const {
  return config_.io_nodes + config_.osts;
}

BurstBuffer* PfsModel::buffer_for_ion(std::uint32_t ion) {
  if (buffers_.empty()) return nullptr;
  if (config_.bb_placement == BbPlacement::kShared) return buffers_[0].get();
  return buffers_.at(ion).get();
}

fault::ComponentId PfsModel::bb_id_for_ion(std::uint32_t ion) const {
  const std::uint32_t index = config_.bb_placement == BbPlacement::kShared ? 0 : ion;
  return {fault::ComponentKind::kBurstBuffer, index};
}

std::uint64_t PfsModel::file_token(const std::string& path) {
  const auto it = file_tokens_.find(path);
  if (it != file_tokens_.end()) return it->second;
  const std::uint64_t token = next_file_token_++;
  file_tokens_.emplace(path, token);
  return token;
}

void PfsModel::meta(ClientId client, MetaOp op, const std::string& path,
                    std::function<void(MetaResult)> on_done,
                    std::optional<StripeLayout> layout) {
  if (client >= config_.clients) throw std::out_of_range("PfsModel::meta: bad client");
  const std::uint32_t ion = ion_of(client);
  // Request header: client -> ION (compute fabric) -> MDS (storage fabric).
  // An MDS down interval surfaces as MetaStatus::kUnavailable from the
  // server itself; the response header still travels back normally.
  compute_fabric_->send(client, compute_ep_of_ion(ion), kHeader, [this, client, ion, op, path,
                                                                  layout,
                                                                  done = std::move(on_done)]() mutable {
    storage_fabric_->send(ion, storage_ep_of_mds(), kHeader, [this, client, ion, op, path, layout,
                                                              done = std::move(done)]() mutable {
      mds_->request(
          op, path,
          [this, client, ion, done = std::move(done)](MetaResult result) mutable {
            // Response header back down the same path.
            storage_fabric_->send(storage_ep_of_mds(), ion, kHeader,
                                  [this, client, ion, result = std::move(result),
                                   done = std::move(done)]() mutable {
                                    compute_fabric_->send(
                                        compute_ep_of_ion(ion), client, kHeader,
                                        [result = std::move(result),
                                         done = std::move(done)]() mutable {
                                          if (done) done(std::move(result));
                                        });
                                  });
          },
          layout);
    });
  });
}

OstIndex PfsModel::route_chunk(OstIndex home, SimTime now) {
  if (!config_.retry.failover || timeline_.empty()) return home;
  const fault::ComponentId home_id{fault::ComponentKind::kOst, home};
  if (!timeline_.down(home_id, now)) return home;
  for (std::uint32_t k = 1; k < config_.osts; ++k) {
    const OstIndex candidate = (home + k) % config_.osts;
    if (!timeline_.down({fault::ComponentKind::kOst, candidate}, now)) {
      ++res_stats_.failovers;
      emit_resilience(ResilienceEventKind::kFailover, 0, IoError::kOstDown);
      return candidate;
    }
  }
  return home;  // whole pool down: let the op fail at its home OST
}

void PfsModel::backend_io(std::uint32_t ion, const StripeLayout& layout, std::uint64_t offset,
                          Bytes size, bool is_write, std::function<void(bool ok)> on_done) {
  const auto chunks = decompose(layout, config_.osts, offset, size);
  if (chunks.empty()) {
    engine_.schedule_after(SimTime::zero(), [done = std::move(on_done)]() mutable {
      if (done) done(true);
    });
    return;
  }
  // Fan out all chunks; complete when the last response arrives. The op
  // succeeds only if every chunk did.
  auto remaining = std::make_shared<std::size_t>(chunks.size());
  auto all_ok = std::make_shared<bool>(true);
  auto done = std::make_shared<std::function<void(bool)>>(std::move(on_done));
  const SimTime dispatched = engine_.now();
  for (const auto& chunk : chunks) {
    // Degraded-mode striping routes around OSTs known down at dispatch.
    const OstIndex target = route_chunk(chunk.ost, dispatched);
    const net::EndpointId ost_ep = storage_ep_of_ost(target);
    auto finish_one = [remaining, all_ok, done](bool ok) {
      if (!ok) *all_ok = false;
      if (--*remaining == 0 && *done) (*done)(*all_ok);
    };
    if (is_write) {
      // Ship data to the OST, write it, then a small ack (or error) returns.
      storage_fabric_->send(ion, ost_ep, chunk.length, [this, chunk, target, ion, ost_ep,
                                                        finish_one]() mutable {
        osts_[target]->submit(chunk.object_offset, chunk.length, true,
                              [this, ion, ost_ep, finish_one](bool ok) mutable {
                                storage_fabric_->send(ost_ep, ion, kHeader,
                                                      [finish_one, ok]() mutable {
                                                        finish_one(ok);
                                                      });
                              });
      });
    } else {
      // Small request travels to the OST; data (or a short error) returns.
      storage_fabric_->send(ion, ost_ep, kHeader, [this, chunk, target, ion, ost_ep,
                                                   finish_one]() mutable {
        osts_[target]->submit(chunk.object_offset, chunk.length, false,
                              [this, chunk, ion, ost_ep, finish_one](bool ok) mutable {
                                const Bytes payload = ok ? chunk.length : kHeader;
                                storage_fabric_->send(ost_ep, ion, payload,
                                                      [finish_one, ok]() mutable {
                                                        finish_one(ok);
                                                      });
                              });
      });
    }
  }
}

void PfsModel::emit_resilience(ResilienceEventKind kind, std::uint32_t attempt, IoError error) {
  if (res_observer_) res_observer_(ResilienceRecord{kind, engine_.now(), attempt, error});
}

void PfsModel::settle(const std::shared_ptr<IoOpState>& op, bool ok, IoError error) {
  IoResult result;
  result.ok = ok;
  result.error = ok ? IoError::kNone : error;
  result.attempts = op->attempt;
  result.issued = op->issued;
  result.completed = engine_.now();
  result.size = op->size;
  if (ok && op->is_write) {
    mds_->grow_file(op->path, Bytes{op->offset} + op->size, engine_.now());
  }
  if (!ok) ++res_stats_.failed_ops;
  if (op->done) op->done(result);
}

void PfsModel::attempt_finished(const std::shared_ptr<IoOpState>& op, bool ok, IoError error) {
  if (ok) {
    settle(op, true, IoError::kNone);
    return;
  }
  const RetryPolicy& retry = config_.retry;
  if (op->attempt < retry.max_attempts) {
    ++res_stats_.retries;
    emit_resilience(ResilienceEventKind::kRetry, op->attempt, error);
    const SimTime delay = backoff_delay(retry, op->attempt, retry_rng_);
    engine_.schedule_after(delay, [this, op] { start_attempt(op); });
    return;
  }
  if (retry.retries_enabled()) {
    ++res_stats_.giveups;
    emit_resilience(ResilienceEventKind::kGiveUp, op->attempt, error);
  }
  settle(op, false, error);
}

void PfsModel::start_attempt(const std::shared_ptr<IoOpState>& op) {
  ++op->attempt;
  ++res_stats_.attempts;
  auto attempt = std::make_shared<AttemptState>();
  if (config_.retry.op_timeout > SimTime::zero()) {
    attempt->timeout_event =
        engine_.schedule_after(config_.retry.op_timeout, [this, op, attempt] {
          if (attempt->settled) return;
          // Abandon the attempt: whatever it still has in flight will drain
          // through the model as counted orphans (invariant F2).
          attempt->settled = true;
          ++res_stats_.timeouts;
          ++abandoned_in_flight_;
          emit_resilience(ResilienceEventKind::kTimeout, op->attempt, IoError::kTimeout);
          attempt_finished(op, false, IoError::kTimeout);
        });
  }
  run_attempt(op, attempt);
}

void PfsModel::run_attempt(const std::shared_ptr<IoOpState>& op,
                           const std::shared_ptr<AttemptState>& attempt) {
  const std::uint32_t ion = ion_of(op->client);

  // Exactly-once completion funnel for this attempt. A completion arriving
  // after the timeout settled the attempt is an orphan draining out.
  auto complete = [this, op, attempt](bool ok, IoError error) {
    if (attempt->settled) {
      sim::check::that(abandoned_in_flight_ > 0, "fault.abandoned-op-leak",
                       "orphan completion without a matching abandonment");
      --abandoned_in_flight_;
      return;
    }
    attempt->settled = true;
    if (attempt->timeout_event != 0) engine_.cancel(attempt->timeout_event);
    attempt_finished(op, ok, error);
  };

  if (op->is_write) {
    // Data travels client -> ION over the compute fabric.
    compute_fabric_->send(op->client, compute_ep_of_ion(ion), op->size,
                          [this, op, ion, complete]() mutable {
      auto backend_done = [this, op, ion, complete](bool ok) mutable {
        // Ack (or error) header back to the client.
        compute_fabric_->send(compute_ep_of_ion(ion), op->client, kHeader,
                              [complete, ok]() mutable {
                                complete(ok, ok ? IoError::kNone : IoError::kOstDown);
                              });
      };
      BurstBuffer* bb = buffer_for_ion(ion);
      const bool bb_stalled =
          bb != nullptr && timeline_.down(bb_id_for_ion(ion), engine_.now());
      if (bb != nullptr && !bb_stalled && bb->can_absorb(op->size)) {
        const std::uint64_t token = file_token(op->path);
        bb->write(token, op->offset, op->size,
                  [backend_done]() mutable { backend_done(true); });
        return;  // absorbed; drain happens in the background
      }
      // No buffer (or full, or stalled): write through to the OSTs.
      if (bb != nullptr) bb->note_bypass(op->size);
      backend_io(ion, op->layout, op->offset, op->size, true, std::move(backend_done));
    });
  } else {
    // Small read request to the ION; data returns over the compute fabric.
    compute_fabric_->send(op->client, compute_ep_of_ion(ion), kHeader,
                          [this, op, ion, complete]() mutable {
      auto backend_done = [this, op, ion, complete](bool ok) mutable {
        const Bytes payload = ok ? op->size : kHeader;  // errors return small
        compute_fabric_->send(compute_ep_of_ion(ion), op->client, payload,
                              [complete, ok]() mutable {
                                complete(ok, ok ? IoError::kNone : IoError::kOstDown);
                              });
      };
      BurstBuffer* bb = buffer_for_ion(ion);
      const bool bb_stalled =
          bb != nullptr && timeline_.down(bb_id_for_ion(ion), engine_.now());
      const std::uint64_t token = file_token(op->path);
      if (bb != nullptr && !bb_stalled && bb->resident(token, op->offset, op->size)) {
        bb->read(token, op->offset, op->size,
                 [backend_done]() mutable { backend_done(true); });
        return;  // served from the staging tier
      }
      if (bb != nullptr) bb->note_miss(op->size);
      backend_io(ion, op->layout, op->offset, op->size, false, std::move(backend_done));
    });
  }
}

void PfsModel::io(ClientId client, const std::string& path, const StripeLayout& layout,
                  std::uint64_t offset, Bytes size, bool is_write,
                  std::function<void(IoResult)> on_done) {
  if (client >= config_.clients) throw std::out_of_range("PfsModel::io: bad client");
  const SimTime issued = engine_.now();

  // Data ops against a path that was never created (or names a directory)
  // fail fast with a distinct error: there is no layout to ship chunks with.
  // No retries — the namespace will not change by waiting.
  const Inode* inode = mds_->find_inode(path);
  if (inode == nullptr || inode->is_dir) {
    engine_.schedule_after(SimTime::zero(),
                           [this, issued, size, done = std::move(on_done)]() mutable {
                             ++res_stats_.failed_ops;
                             if (done) {
                               done(IoResult{false, IoError::kNoEntry, 1, issued,
                                             engine_.now(), size});
                             }
                           });
    return;
  }

  const std::uint64_t token = file_token(path);
  token_info_[token] = {path, layout};

  auto op = std::make_shared<IoOpState>();
  op->client = client;
  op->path = path;
  op->layout = layout;
  op->offset = offset;
  op->size = size;
  op->is_write = is_write;
  op->issued = issued;
  op->done = std::move(on_done);
  start_attempt(op);
}

bool PfsModel::buffers_quiescent() const {
  for (const auto& buffer : buffers_) {
    if (!buffer->quiescent()) return false;
  }
  return true;
}

void PfsModel::set_ost_observer(std::function<void(const OstOpRecord&)> observer) {
  // Each OST shares the same observer; the record carries the OST index.
  for (auto& ost : osts_) {
    ost->set_op_observer(observer);
  }
}

void PfsModel::set_mds_observer(std::function<void(const MdsOpRecord&)> observer) {
  mds_->set_op_observer(std::move(observer));
}

}  // namespace pio::pfs
