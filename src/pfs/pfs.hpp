// PIOEval storage substrate: the end-to-end parallel file system model.
//
// This facade assembles the Fig. 1 system: compute nodes (clients) on a fast
// compute fabric, I/O nodes (optionally with a burst-buffer SSD tier), a
// slower storage fabric, and a storage cluster of one metadata server plus N
// object storage targets with striped file layouts. Every client operation
// traverses the full path, so the delivered performance exhibits the
// contention, queueing, and tiering effects the paper's evaluation
// techniques are built to observe.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "net/fabric.hpp"
#include "pfs/burst_buffer.hpp"
#include "pfs/disk.hpp"
#include "pfs/mds.hpp"
#include "pfs/ost.hpp"
#include "pfs/stripe.hpp"
#include "sim/engine.hpp"

namespace pio::pfs {

using ClientId = std::uint32_t;

enum class DiskKind : std::uint8_t { kHdd, kSsd };

/// Burst-buffer deployment (experiment C9).
enum class BbPlacement : std::uint8_t {
  kNone,       ///< no burst buffer; clients write through to the PFS
  kPerIoNode,  ///< one buffer per I/O node (node-local style)
  kShared,     ///< a single buffer shared by all I/O nodes
};

struct PfsConfig {
  std::uint32_t clients = 8;
  std::uint32_t io_nodes = 2;
  std::uint32_t osts = 8;
  net::FabricConfig compute_fabric{
      .endpoint_bandwidth = Bandwidth::from_gib_per_sec(10.0),
      .endpoint_latency = SimTime::from_us(1.0),
      .core_links = 16.0,
      .core_latency = SimTime::from_us(1.0),
      .name = "compute",
  };
  net::FabricConfig storage_fabric{
      .endpoint_bandwidth = Bandwidth::from_gib_per_sec(1.25),  // ~10GbE
      .endpoint_latency = SimTime::from_us(10.0),
      .core_links = 8.0,
      .core_latency = SimTime::from_us(10.0),
      .name = "storage",
  };
  MdsConfig mds{};
  DiskKind disk_kind = DiskKind::kHdd;
  HddConfig hdd{};
  SsdConfig ssd{};
  BbPlacement bb_placement = BbPlacement::kNone;
  BurstBufferConfig bb{};
};

/// Result of a data-path operation.
struct IoResult {
  bool ok = false;
  SimTime issued = SimTime::zero();
  SimTime completed = SimTime::zero();
  Bytes size = Bytes::zero();
  [[nodiscard]] SimTime latency() const { return completed - issued; }
};

/// The assembled system model.
class PfsModel {
 public:
  PfsModel(sim::Engine& engine, const PfsConfig& config);

  PfsModel(const PfsModel&) = delete;
  PfsModel& operator=(const PfsModel&) = delete;

  // -- metadata path -------------------------------------------------------

  /// Issue a metadata op from `client`; traverses compute fabric -> I/O node
  /// -> storage fabric -> MDS and back.
  void meta(ClientId client, MetaOp op, const std::string& path,
            std::function<void(MetaResult)> on_done,
            std::optional<StripeLayout> layout = std::nullopt);

  // -- data path -----------------------------------------------------------

  /// Read or write `size` bytes at `offset` of `path` using `layout` (as
  /// returned by a create/open). The file must exist at the MDS.
  void io(ClientId client, const std::string& path, const StripeLayout& layout,
          std::uint64_t offset, Bytes size, bool is_write,
          std::function<void(IoResult)> on_done);

  // -- inspection ----------------------------------------------------------

  [[nodiscard]] MetadataServer& mds() { return *mds_; }
  [[nodiscard]] const MetadataServer& mds() const { return *mds_; }
  [[nodiscard]] OstServer& ost(std::uint32_t i) { return *osts_.at(i); }
  [[nodiscard]] std::uint32_t ost_count() const { return static_cast<std::uint32_t>(osts_.size()); }
  [[nodiscard]] net::Fabric& compute_fabric() { return *compute_fabric_; }
  [[nodiscard]] net::Fabric& storage_fabric() { return *storage_fabric_; }
  [[nodiscard]] const PfsConfig& config() const { return config_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  /// Burst buffers in deployment order (empty when placement is kNone).
  [[nodiscard]] const std::vector<std::unique_ptr<BurstBuffer>>& burst_buffers() const {
    return buffers_;
  }
  /// True when every burst buffer has fully drained.
  [[nodiscard]] bool buffers_quiescent() const;

  /// Subscribe to every OST + MDS op record (server-side monitoring).
  void set_ost_observer(std::function<void(const OstOpRecord&)> observer);
  void set_mds_observer(std::function<void(const MdsOpRecord&)> observer);

 private:
  // Endpoint numbering. Compute fabric: [0, clients) are clients,
  // [clients, clients+io_nodes) are I/O nodes. Storage fabric: [0, io_nodes)
  // are I/O nodes, [io_nodes, io_nodes+osts) are OSTs, last is the MDS.
  [[nodiscard]] net::EndpointId ion_of(ClientId client) const;
  [[nodiscard]] net::EndpointId compute_ep_of_ion(std::uint32_t ion) const;
  [[nodiscard]] net::EndpointId storage_ep_of_ost(OstIndex ost) const;
  [[nodiscard]] net::EndpointId storage_ep_of_mds() const;
  [[nodiscard]] BurstBuffer* buffer_for_ion(std::uint32_t ion);

  /// The stripe-and-ship path from an I/O node to the OSTs (used both by
  /// foreground I/O and burst-buffer drains).
  void backend_io(std::uint32_t ion, const StripeLayout& layout, std::uint64_t offset,
                  Bytes size, bool is_write, std::function<void()> on_done);

  /// Small fixed header size used for request/ack messages.
  static constexpr Bytes kHeader = Bytes{256};

  sim::Engine& engine_;
  PfsConfig config_;
  std::unique_ptr<net::Fabric> compute_fabric_;
  std::unique_ptr<net::Fabric> storage_fabric_;
  std::unique_ptr<MetadataServer> mds_;
  std::vector<std::unique_ptr<OstServer>> osts_;
  std::vector<std::unique_ptr<BurstBuffer>> buffers_;
  std::uint64_t next_file_token_ = 1;
  std::unordered_map<std::string, std::uint64_t> file_tokens_;  // path -> BB file id
  std::uint64_t file_token(const std::string& path);
  std::unordered_map<std::uint64_t, std::pair<std::string, StripeLayout>> token_info_;
};

}  // namespace pio::pfs
