// PIOEval storage substrate: the end-to-end parallel file system model.
//
// This facade assembles the Fig. 1 system: compute nodes (clients) on a fast
// compute fabric, I/O nodes (optionally with a burst-buffer SSD tier), a
// slower storage fabric, and a storage cluster of one metadata server plus N
// object storage targets with striped file layouts. Every client operation
// traverses the full path, so the delivered performance exhibits the
// contention, queueing, and tiering effects the paper's evaluation
// techniques are built to observe.
//
// With a fault plan/injector configured the facade also owns the run's
// fault::Timeline and the client-side resilience layer: failed attempts are
// retried with capped exponential backoff, stuck attempts time out and are
// abandoned (their in-flight events drain as counted orphans), and degraded-
// mode striping can route chunks around down OSTs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "net/fabric.hpp"
#include "pfs/burst_buffer.hpp"
#include "pfs/cluster_map.hpp"
#include "pfs/disk.hpp"
#include "pfs/durability.hpp"
#include "pfs/mds.hpp"
#include "pfs/ost.hpp"
#include "pfs/resilience.hpp"
#include "pfs/stripe.hpp"
#include "sim/check.hpp"
#include "sim/engine.hpp"

namespace pio::pfs {

using ClientId = std::uint32_t;

enum class DiskKind : std::uint8_t { kHdd, kSsd };

/// Burst-buffer deployment (experiment C9).
enum class BbPlacement : std::uint8_t {
  kNone,       ///< no burst buffer; clients write through to the PFS
  kPerIoNode,  ///< one buffer per I/O node (node-local style)
  kShared,     ///< a single buffer shared by all I/O nodes
};

struct PfsConfig {
  std::uint32_t clients = 8;
  std::uint32_t io_nodes = 2;
  std::uint32_t osts = 8;
  net::FabricConfig compute_fabric{
      .endpoint_bandwidth = Bandwidth::from_gib_per_sec(10.0),
      .endpoint_latency = SimTime::from_us(1.0),
      .core_links = 16.0,
      .core_latency = SimTime::from_us(1.0),
      .name = "compute",
  };
  net::FabricConfig storage_fabric{
      .endpoint_bandwidth = Bandwidth::from_gib_per_sec(1.25),  // ~10GbE
      .endpoint_latency = SimTime::from_us(10.0),
      .core_links = 8.0,
      .core_latency = SimTime::from_us(10.0),
      .name = "storage",
  };
  MdsConfig mds{};
  DiskKind disk_kind = DiskKind::kHdd;
  HddConfig hdd{};
  SsdConfig ssd{};
  BbPlacement bb_placement = BbPlacement::kNone;
  BurstBufferConfig bb{};
  /// Client-side retry/degraded-mode policy (default: fail-fast).
  RetryPolicy retry{};
  /// Server-side admission control, applied to the MDS and every OST
  /// (DESIGN.md §14). Off by default (kUnbounded): no door checks, no
  /// sheds, pre-overload queueing semantics preserved bit-for-bit.
  AdmissionConfig admission{};
  /// Durability layer: write-token content tracking, replica fan-out for
  /// layouts with replicas > 1, degraded reads, online OST rebuild, and
  /// invariant F3. Off by default (PR2 fault semantics preserved exactly).
  /// Incompatible with burst buffers in this release (a write-back tier
  /// that drops dirty blocks on a failed drain cannot honour F3).
  DurabilityConfig durability{};
  /// Epoch-versioned cluster membership: heartbeat failure detection, live
  /// OST join/drain/decommission, stale-map client protocol, and placement
  /// modes (DESIGN.md §13). Off by default (static omniscient semantics
  /// preserved exactly). Incompatible with burst buffers in this release
  /// (the staging tier would bypass the stale-map addressing protocol).
  ClusterMapConfig cluster{};
  /// Scripted fault events, applied verbatim.
  fault::FaultPlan faults{};
  /// Optional stochastic injector; its events (materialized from the engine
  /// seed at construction) merge with the scripted plan. `osts` is filled in
  /// from this config automatically.
  std::optional<fault::InjectorConfig> fault_injector;
  /// Facility-domain tag (DESIGN.md §16): the sharded-execution domain this
  /// model's handlers run on. A label only — every handler the model
  /// schedules stays on its own engine regardless (the engine's confinement
  /// guard enforces that in checked builds); the tag identifies the cell in
  /// facility digests and diagnostics. 0 for standalone single-engine runs.
  std::uint32_t domain_tag = 0;
};

/// Result of a data-path operation.
struct IoResult {
  bool ok = false;
  IoError error = IoError::kNone;  ///< why ok == false (kNone on success)
  std::uint32_t attempts = 1;      ///< attempts consumed (1 = first try)
  SimTime issued = SimTime::zero();
  SimTime completed = SimTime::zero();
  Bytes size = Bytes::zero();

  /// Client-observed latency. Well-defined for failed ops too: `completed`
  /// is the time the failure was *reported* to the client (>= issued), so
  /// this never underflows; sim::check guards the invariant.
  [[nodiscard]] SimTime latency() const {
    sim::check::that(completed >= issued, "pfs.ioresult-latency",
                     "completed precedes issued");
    return completed - issued;
  }
};

/// The assembled system model.
class PfsModel {
 public:
  PfsModel(sim::Engine& engine, const PfsConfig& config);
  ~PfsModel();  // out of line: RebuildState is incomplete here

  PfsModel(const PfsModel&) = delete;
  PfsModel& operator=(const PfsModel&) = delete;

  // -- metadata path -------------------------------------------------------

  /// Issue a metadata op from `client`; traverses compute fabric -> I/O node
  /// -> storage fabric -> MDS and back.
  void meta(ClientId client, MetaOp op, const std::string& path,
            std::function<void(MetaResult)> on_done,
            std::optional<StripeLayout> layout = std::nullopt);

  // -- data path -----------------------------------------------------------

  /// Read or write `size` bytes at `offset` of `path` using `layout` (as
  /// returned by a create/open). A path that was never created (or is a
  /// directory) fails immediately with IoError::kNoEntry. Under a fault
  /// timeline the op may fail with kOstDown/kMdsDown/kTimeout; the
  /// configured RetryPolicy governs retries, timeouts and failover.
  void io(ClientId client, const std::string& path, const StripeLayout& layout,
          std::uint64_t offset, Bytes size, bool is_write,
          std::function<void(IoResult)> on_done);

  // -- inspection ----------------------------------------------------------

  [[nodiscard]] MetadataServer& mds() { return *mds_; }
  [[nodiscard]] const MetadataServer& mds() const { return *mds_; }
  [[nodiscard]] OstServer& ost(std::uint32_t i) { return *osts_.at(i); }
  [[nodiscard]] std::uint32_t ost_count() const { return static_cast<std::uint32_t>(osts_.size()); }
  [[nodiscard]] net::Fabric& compute_fabric() { return *compute_fabric_; }
  [[nodiscard]] net::Fabric& storage_fabric() { return *storage_fabric_; }
  [[nodiscard]] const PfsConfig& config() const { return config_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  /// Burst buffers in deployment order (empty when placement is kNone).
  [[nodiscard]] const std::vector<std::unique_ptr<BurstBuffer>>& burst_buffers() const {
    return buffers_;
  }
  /// True when every burst buffer has fully drained.
  [[nodiscard]] bool buffers_quiescent() const;

  /// The run's fault weather (empty timeline when no faults configured).
  [[nodiscard]] const fault::Timeline& fault_timeline() const { return timeline_; }

  /// True when the epoch-versioned cluster membership layer is enabled.
  [[nodiscard]] bool cluster_enabled() const { return config_.cluster.enabled; }
  /// The monitor's current (authoritative) cluster map. Meaningful only
  /// when cluster_enabled().
  [[nodiscard]] const ClusterMap& cluster_map() const { return map_; }
  /// Every published epoch, oldest first (index epoch-1). Meaningful only
  /// when cluster_enabled().
  [[nodiscard]] const std::vector<ClusterMap>& cluster_map_history() const {
    return map_history_;
  }
  /// The map epoch `client` currently holds (1 when cluster is disabled).
  [[nodiscard]] std::uint64_t client_epoch(ClientId client) const {
    return cluster_enabled() ? client_epoch_.at(client) : 1;
  }

  /// Aggregate client-side resilience counters.
  [[nodiscard]] const ResilienceStats& resilience_stats() const { return res_stats_; }

  /// True when the durability layer (content tracking, replication,
  /// rebuild, F3) is enabled for this model.
  [[nodiscard]] bool tracking() const { return config_.durability.track_contents; }

  /// Direct (read-only) access to the durability ledger for tests/tools.
  [[nodiscard]] const DurabilityLedger& durability_ledger() const { return ledger_; }

  /// Durability audit: walks every acknowledged byte range and asks whether
  /// some replica in the range's read set still holds the acknowledged
  /// write token. `lost` > 0 means reads of those bytes cannot return the
  /// acknowledged data — the F3 deficit. All zero when tracking is off.
  struct DurabilityReport {
    Bytes acked = Bytes::zero();   ///< total acknowledged bytes audited
    Bytes lost = Bytes::zero();    ///< acked bytes held by no consulted replica
    std::uint64_t lost_ranges = 0; ///< distinct chunk ranges lost
  };
  [[nodiscard]] DurabilityReport durability_report() const;

  /// Online-rebuild progress for one OST (all zero / inactive when no
  /// resync is running).
  struct RebuildStatus {
    bool active = false;
    Bytes total = Bytes::zero();   ///< bytes owed when the resync began
    Bytes done = Bytes::zero();    ///< bytes re-copied so far
    SimTime started = SimTime::zero();
    SimTime eta = SimTime::zero(); ///< remaining / rebuild_bandwidth (uncontended)
  };
  [[nodiscard]] RebuildStatus rebuild_status(OstIndex ost) const;

  /// Campaign-end invariants (sim::check), call after
  /// Engine::assert_drained(). F2: every op abandoned by a retry timeout
  /// must have drained its orphan completions. F3 (durability tracking
  /// only): no acknowledged write may be lost. With the cluster map enabled
  /// the same audit is F4: every acknowledged byte must be readable through
  /// the *placement-aware* read path (current epoch's targets plus the
  /// older-epoch fallback chain, serving OSTs only) across any
  /// join/drain/crash/decommission sequence. F5a: admission accounting is
  /// exact on every server (submitted == completed + rejected + shed).
  /// F5b (retry budget only): retries spent never exceed the burst cap plus
  /// ratio * deposits — retry amplification is bounded by construction.
  void assert_quiescent() const;

  /// Server-side overload totals summed across the MDS and every OST.
  struct ServerOverloadTotals {
    std::uint64_t rejected = 0;  ///< bounced at the door (queue bound)
    std::uint64_t shed = 0;      ///< dropped at dequeue (sojourn target)
  };
  [[nodiscard]] ServerOverloadTotals server_overload_totals() const;

  /// Subscribe to every OST + MDS op record (server-side monitoring).
  void set_ost_observer(std::function<void(const OstOpRecord&)> observer);
  void set_mds_observer(std::function<void(const MdsOpRecord&)> observer);
  /// Subscribe to client-side resilience events (retries/timeouts/...).
  void set_resilience_observer(std::function<void(const ResilienceRecord&)> observer) {
    res_observer_ = std::move(observer);
  }

 private:
  // Endpoint numbering. Compute fabric: [0, clients) are clients,
  // [clients, clients+io_nodes) are I/O nodes. Storage fabric: [0, io_nodes)
  // are I/O nodes, [io_nodes, io_nodes+osts) are OSTs, last is the MDS.
  [[nodiscard]] net::EndpointId ion_of(ClientId client) const;
  [[nodiscard]] net::EndpointId compute_ep_of_ion(std::uint32_t ion) const;
  [[nodiscard]] net::EndpointId storage_ep_of_ost(OstIndex ost) const;
  [[nodiscard]] net::EndpointId storage_ep_of_mds() const;
  [[nodiscard]] BurstBuffer* buffer_for_ion(std::uint32_t ion);
  /// Fault identity of the burst buffer serving `ion` (index 0 when shared).
  [[nodiscard]] fault::ComponentId bb_id_for_ion(std::uint32_t ion) const;

  /// Degraded-mode striping: the OST a chunk should be shipped to. With
  /// failover enabled and the home OST down, scans forward (mod pool size)
  /// for the first healthy OST; falls back to the home OST if all are down.
  [[nodiscard]] OstIndex route_chunk(OstIndex home, SimTime now);

  /// The stripe-and-ship path from an I/O node to the OSTs (used both by
  /// foreground I/O and burst-buffer drains). `on_done(ok, error)` reports
  /// whether every chunk completed (a chunk rejected by a down OST reports
  /// false). With durability tracking on, `file`/`wtoken` identify the
  /// payload: writes fan out to every live replica of each chunk (down
  /// replicas accrue rebuild debt), reads are served by the first replica
  /// that is up *and* holds the acknowledged data (non-primary = degraded
  /// read), and a read that no consulted replica can serve correctly fails
  /// with kDataLost. `file` = 0 (burst-buffer drains) means untracked.
  /// With the cluster map enabled, `key` is the file's placement key and
  /// `epoch` the issuing client's cached map epoch: placement is computed
  /// from that (possibly stale) epoch's map, and a chunk whose authoritative
  /// placement has since moved is bounced with kStaleMap instead of served.
  /// `on_done` additionally carries the largest server retry-after hint seen
  /// across the fan-out (zero unless some shipment was rejected or shed by
  /// admission control) so the retry path can pace to the drain rate.
  void backend_io(std::uint32_t ion, std::uint64_t file, const StripeLayout& layout,
                  std::uint64_t offset, Bytes size, bool is_write, WriteToken wtoken,
                  std::uint64_t key, std::uint64_t epoch,
                  std::function<void(bool ok, IoError error, SimTime retry_after)> on_done);

  // One logical io() op across its (possibly many) attempts.
  struct IoOpState;
  // One attempt's shared settle latch (attempt completion vs. timeout race).
  struct AttemptState;
  // Fan-out latch for one backend_io call's shipments.
  struct BackendFanout;
  // One chunk-to-OST shipment of a backend_io call.
  struct Shipment;
  // One recovering OST's resync pass.
  struct RebuildState;

  void start_attempt(const std::shared_ptr<IoOpState>& op);
  void run_attempt(const std::shared_ptr<IoOpState>& op,
                   const std::shared_ptr<AttemptState>& attempt);
  void attempt_finished(const std::shared_ptr<IoOpState>& op, bool ok, IoError error);
  void settle(const std::shared_ptr<IoOpState>& op, bool ok, IoError error);
  void emit_resilience(ResilienceEventKind kind, std::uint32_t attempt, IoError error,
                       std::uint32_t ost = 0, Bytes bytes = Bytes::zero());
  /// Feed one shipment outcome to `ost`'s circuit breaker (no-op unless
  /// RetryPolicy::breaker); counts and emits open/close transitions.
  void breaker_note(OstIndex ost, bool ok);

  /// True iff OST `ost` is inside a down interval at `t`.
  [[nodiscard]] bool ost_down(OstIndex ost, SimTime t) const;
  /// Begin (or no-op) a resync pass for a just-recovered OST. `migration`
  /// marks an epoch-change migration pass (paced on the drain stream).
  void start_rebuild(OstIndex ost, bool migration = false);
  /// Copy the next owed piece, paced against the rebuild bandwidth cap.
  void run_rebuild_piece(OstIndex ost);
  void finish_rebuild(OstIndex ost);

  // -- cluster membership (all no-ops / unused when cluster is disabled) ---

  /// The map at `epoch` (1-based; epochs are published densely).
  [[nodiscard]] const ClusterMap& map_at(std::uint64_t epoch) const {
    return map_history_.at(epoch - 1);
  }
  /// Start the per-OST heartbeat loop if it is not already ticking.
  void arm_heartbeat(OstIndex ost);
  void heartbeat_tick(OstIndex ost);
  /// Monitor side: a heartbeat from `ost` arrived at the MDS endpoint.
  void monitor_heard(OstIndex ost);
  /// Monitor side: `ost` has been silent for a full grace period.
  void heartbeat_deadline(OstIndex ost);
  [[nodiscard]] SimTime next_heartbeat_delay(OstIndex ost);
  /// Bump the epoch, append to history, and (tracking only) plan migration.
  void publish_epoch();
  void apply_membership(const MembershipEvent& ev);
  /// Walk every acknowledged range; mark + schedule rebuild for each current
  /// placement target that lacks the data (drains, joins, and post-crash
  /// resync all reduce to this).
  void plan_migration();
  /// Model a client map-refresh round trip (client -> ION -> MDS and back);
  /// the client's cached epoch becomes current on completion.
  void refresh_map(ClientId client, std::function<void()> done);
  /// Read-path fallback chain for one stripe: placement targets of every
  /// epoch from `from_epoch` back to 1, deduplicated, newest first. Shared
  /// by foreground reads, rebuild source selection, and the F4 audit so the
  /// audit means exactly "readable through the read path".
  [[nodiscard]] std::vector<OstIndex> read_candidates(std::uint64_t key,
                                                      const StripeLayout& layout,
                                                      std::uint64_t stripe_index,
                                                      std::uint64_t from_epoch) const;

  /// Small fixed header size used for request/ack messages.
  static constexpr Bytes kHeader = Bytes{256};

  sim::Engine& engine_;
  PfsConfig config_;
  fault::Timeline timeline_;
  std::unique_ptr<net::Fabric> compute_fabric_;
  std::unique_ptr<net::Fabric> storage_fabric_;
  std::unique_ptr<MetadataServer> mds_;
  std::vector<std::unique_ptr<OstServer>> osts_;
  std::vector<std::unique_ptr<BurstBuffer>> buffers_;
  Rng retry_rng_;
  Rng rebuild_rng_;
  Rng breaker_rng_;
  // Client-side overload control (inert unless the RetryPolicy knobs are
  // on: no draws, no state changes, no extra events).
  LatencyEstimator latency_;
  RetryBudget budget_;
  std::vector<CircuitBreaker> breakers_;  ///< per-OST; empty unless retry.breaker
  ResilienceStats res_stats_;
  std::function<void(const ResilienceRecord&)> res_observer_;
  /// Ops abandoned by a timeout whose in-flight events have not yet drained.
  std::uint64_t abandoned_in_flight_ = 0;
  std::uint64_t next_file_token_ = 1;
  std::unordered_map<std::string, std::uint64_t> file_tokens_;  // path -> BB file id
  std::uint64_t file_token(const std::string& path);
  struct FileInfo {
    std::string path;
    StripeLayout layout{};
    std::uint64_t key = 0;  ///< placement key (file_placement_key(path))
  };
  std::unordered_map<std::uint64_t, FileInfo> token_info_;
  DurabilityLedger ledger_;
  std::map<OstIndex, std::unique_ptr<RebuildState>> rebuild_;
  // Cluster membership (populated only when config.cluster.enabled).
  ClusterMap map_;                       ///< the monitor's current map
  std::vector<ClusterMap> map_history_;  ///< every published epoch (index e-1)
  std::vector<std::uint64_t> client_epoch_;  ///< per-client cached epoch
  Rng heartbeat_rng_;
  Rng drain_rng_;
  std::vector<Rng> hb_rng_;              ///< per-OST jitter substreams
  std::vector<sim::EventId> hb_deadline_;  ///< armed grace-expiry event (0 = none)
  std::vector<std::uint8_t> hb_ticking_;   ///< heartbeat loop alive flags
};

}  // namespace pio::pfs
