#include "pfs/resilience.hpp"

#include <algorithm>
#include <cmath>

namespace pio::pfs {

const char* to_string(IoError error) {
  switch (error) {
    case IoError::kNone: return "none";
    case IoError::kNoEntry: return "no-entry";
    case IoError::kOstDown: return "ost-down";
    case IoError::kMdsDown: return "mds-down";
    case IoError::kTimeout: return "timeout";
    case IoError::kDataLost: return "data-lost";
    case IoError::kStaleMap: return "stale-map";
  }
  return "?";
}

const char* to_string(ResilienceEventKind kind) {
  switch (kind) {
    case ResilienceEventKind::kRetry: return "retry";
    case ResilienceEventKind::kTimeout: return "timeout";
    case ResilienceEventKind::kGiveUp: return "giveup";
    case ResilienceEventKind::kFailover: return "failover";
    case ResilienceEventKind::kDegradedRead: return "degraded-read";
    case ResilienceEventKind::kRebuildStart: return "rebuild-start";
    case ResilienceEventKind::kRebuildDone: return "rebuild-done";
    case ResilienceEventKind::kStaleMapRetry: return "stale-map-retry";
    case ResilienceEventKind::kDetectedDown: return "detected-down";
    case ResilienceEventKind::kDetectedUp: return "detected-up";
  }
  return "?";
}

SimTime backoff_delay(const RetryPolicy& policy, std::uint32_t attempt, Rng& rng) {
  if (attempt == 0) attempt = 1;
  const double exponent = static_cast<double>(attempt - 1);
  double delay_sec = policy.base_backoff.sec() * std::pow(policy.backoff_multiplier, exponent);
  delay_sec = std::min(delay_sec, policy.max_backoff.sec());
  if (policy.jitter_fraction > 0.0) {
    delay_sec *= 1.0 + rng.uniform(-policy.jitter_fraction, policy.jitter_fraction);
  }
  return std::max(SimTime::zero(), SimTime::from_sec_ceil(delay_sec));
}

}  // namespace pio::pfs
