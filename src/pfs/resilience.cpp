#include "pfs/resilience.hpp"

#include <algorithm>
#include <cmath>

namespace pio::pfs {

const char* to_string(IoError error) {
  switch (error) {
    case IoError::kNone: return "none";
    case IoError::kNoEntry: return "no-entry";
    case IoError::kOstDown: return "ost-down";
    case IoError::kMdsDown: return "mds-down";
    case IoError::kTimeout: return "timeout";
    case IoError::kDataLost: return "data-lost";
    case IoError::kStaleMap: return "stale-map";
    case IoError::kOverloaded: return "overloaded";
    case IoError::kCircuitOpen: return "circuit-open";
    case IoError::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "?";
}

const char* to_string(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kUnbounded: return "unbounded";
    case AdmissionPolicy::kRejectAtDoor: return "reject-at-door";
    case AdmissionPolicy::kCodelShed: return "codel-shed";
  }
  return "?";
}

const char* to_string(ResilienceEventKind kind) {
  switch (kind) {
    case ResilienceEventKind::kRetry: return "retry";
    case ResilienceEventKind::kTimeout: return "timeout";
    case ResilienceEventKind::kGiveUp: return "giveup";
    case ResilienceEventKind::kFailover: return "failover";
    case ResilienceEventKind::kDegradedRead: return "degraded-read";
    case ResilienceEventKind::kRebuildStart: return "rebuild-start";
    case ResilienceEventKind::kRebuildDone: return "rebuild-done";
    case ResilienceEventKind::kStaleMapRetry: return "stale-map-retry";
    case ResilienceEventKind::kDetectedDown: return "detected-down";
    case ResilienceEventKind::kDetectedUp: return "detected-up";
    case ResilienceEventKind::kBudgetExhausted: return "budget-exhausted";
    case ResilienceEventKind::kBreakerOpen: return "breaker-open";
    case ResilienceEventKind::kBreakerProbe: return "breaker-probe";
    case ResilienceEventKind::kBreakerClose: return "breaker-close";
    case ResilienceEventKind::kDeadlineGiveUp: return "deadline-giveup";
  }
  return "?";
}

SimTime backoff_delay(const RetryPolicy& policy, std::uint32_t attempt, Rng& rng) {
  if (attempt == 0) attempt = 1;
  // Grow the delay in the clamped domain: multiply stepwise and stop the
  // moment the cap is reached. The closed form base * multiplier^(attempt-1)
  // overflows to inf at large attempt counts (and 0 * inf is NaN for a zero
  // base) *before* the max_backoff clamp can apply.
  const double cap = policy.max_backoff.sec();
  double delay_sec = policy.base_backoff.sec();
  if (policy.backoff_multiplier > 1.0) {
    if (delay_sec > 0.0) {
      for (std::uint32_t i = 1; i < attempt && delay_sec < cap; ++i) {
        delay_sec *= policy.backoff_multiplier;
      }
    }
  } else if (policy.backoff_multiplier != 1.0) {
    // Decaying (or zero) multipliers cannot overflow; the closed form is
    // safe and avoids an attempt-count-long loop toward zero.
    delay_sec *= std::pow(policy.backoff_multiplier, static_cast<double>(attempt - 1));
  }
  delay_sec = std::min(delay_sec, cap);
  if (policy.jitter_fraction > 0.0) {
    delay_sec *= 1.0 + rng.uniform(-policy.jitter_fraction, policy.jitter_fraction);
  }
  return std::max(SimTime::zero(), SimTime::from_sec_ceil(delay_sec));
}

// ---------------------------------------------------------- LatencyEstimator

void LatencyEstimator::observe(SimTime sample) {
  const double s = std::max(0.0, sample.sec());
  if (!seeded_) {
    // First sample (RFC 6298 discipline): srtt = s, rttvar = s / 2.
    srtt_sec_ = s;
    rttvar_sec_ = s / 2.0;
    seeded_ = true;
    return;
  }
  rttvar_sec_ = (1.0 - beta_) * rttvar_sec_ + beta_ * std::abs(srtt_sec_ - s);
  srtt_sec_ = (1.0 - alpha_) * srtt_sec_ + alpha_ * s;
}

SimTime LatencyEstimator::timeout() const {
  if (!seeded_) return initial_;
  const double rto = srtt_sec_ + k_ * rttvar_sec_;
  return std::clamp(SimTime::from_sec_ceil(rto), min_, max_);
}

// ------------------------------------------------------------ CircuitBreaker

SimTime CircuitBreaker::open_window(Rng& rng) const {
  double sec = open_base_.sec();
  if (open_jitter_ > 0.0) {
    sec *= 1.0 + rng.uniform(-open_jitter_, open_jitter_);
  }
  return std::max(SimTime::from_us(1.0), SimTime::from_sec_ceil(sec));
}

CircuitBreaker::Gate CircuitBreaker::admit(SimTime now) {
  switch (state_) {
    case State::kClosed:
      return Gate{true, false};
    case State::kOpen:
      if (now < open_until_) return Gate{false, false};
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      return Gate{true, true};
    case State::kHalfOpen:
      // One probe at a time: everything else fast-fails until it resolves.
      if (probe_in_flight_) return Gate{false, false};
      probe_in_flight_ = true;
      return Gate{true, true};
  }
  return Gate{true, false};
}

bool CircuitBreaker::record_success() {
  if (state_ == State::kHalfOpen) {
    state_ = State::kClosed;
    probe_in_flight_ = false;
    consecutive_failures_ = 0;
    return true;
  }
  consecutive_failures_ = 0;
  return false;
}

bool CircuitBreaker::record_failure(SimTime now, Rng& rng) {
  if (state_ == State::kHalfOpen) {
    // The probe failed: straight back to open for a fresh jittered window.
    state_ = State::kOpen;
    probe_in_flight_ = false;
    open_until_ = now + open_window(rng);
    return true;
  }
  if (state_ == State::kOpen) return false;  // fast-fail accounting, not new info
  if (++consecutive_failures_ >= threshold_) {
    state_ = State::kOpen;
    open_until_ = now + open_window(rng);
    return true;
  }
  return false;
}

}  // namespace pio::pfs
