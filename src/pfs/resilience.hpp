// PIOEval storage substrate: client-side resilience for the data path.
//
// Real I/O middleware does not surface every server hiccup to the
// application: clients retry with capped exponential backoff, time out
// stuck requests, and (when the layout allows) route around dead OSTs.
// This header defines the policy knobs and counters; the mechanics live in
// PfsModel::io. All jitter draws from a seeded engine substream so fault
// campaigns replay byte-identically (piolint D1).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/seed_streams.hpp"
#include "common/types.hpp"

namespace pio::pfs {

/// Engine Rng stream id reserved for retry backoff jitter; claimed in the
/// seed-stream registry (common/seed_streams.hpp, rule S1).
inline constexpr std::uint64_t kRetryRngStream = seeds::kRetryJitterStream;

/// Why a data-path operation failed. kNone means success.
enum class IoError : std::uint8_t {
  kNone,
  kNoEntry,   ///< path never created at the MDS (or is a directory)
  kOstDown,   ///< a touched OST was down and no failover was possible
  kMdsDown,   ///< metadata service unreachable
  kTimeout,   ///< the op exceeded RetryPolicy::op_timeout on every attempt
  kDataLost,  ///< no replica holds the acknowledged data (durability breach)
  kStaleMap,  ///< addressed an OST through an outdated ClusterMap epoch;
              ///< refresh the map and retry (DESIGN.md §13)
};

[[nodiscard]] const char* to_string(IoError error);

/// Client-side retry/degraded-mode policy for PfsModel::io. The default is
/// fail-fast: one attempt, no timeout, no failover — faults surface as
/// IoResult{ok=false} so measurement tools see the raw weather.
struct RetryPolicy {
  std::uint32_t max_attempts = 1;  ///< total attempts; 1 = no retries
  SimTime base_backoff = SimTime::from_ms(1.0);
  double backoff_multiplier = 2.0;
  SimTime max_backoff = SimTime::from_ms(200.0);
  /// Uniform +/- fraction applied to each backoff (decorrelates retry storms
  /// across clients); draws from the kRetryRngStream engine substream.
  double jitter_fraction = 0.2;
  /// Per-attempt timeout; zero disables. A timed-out attempt is abandoned
  /// (its in-flight events drain as orphans) and retried or given up.
  SimTime op_timeout = SimTime::zero();
  /// Degraded-mode striping: reroute chunks addressed to a down OST to the
  /// next healthy one at dispatch time.
  bool failover = false;

  [[nodiscard]] bool retries_enabled() const { return max_attempts > 1; }
};

/// Deterministic capped exponential backoff with seeded jitter. `attempt` is
/// the 1-based index of the attempt that just failed (so the first retry
/// waits ~base_backoff). Always returns a non-negative time.
[[nodiscard]] SimTime backoff_delay(const RetryPolicy& policy, std::uint32_t attempt, Rng& rng);

/// Client-side resilience / durability event (observer unit, like
/// OstOpRecord). kDegradedRead and the rebuild pair distinguish *masked*
/// failures (a replica absorbed the fault) from real ones.
enum class ResilienceEventKind : std::uint8_t {
  kRetry,
  kTimeout,
  kGiveUp,
  kFailover,
  kDegradedRead,  ///< read served by a non-primary replica (primary down/stale)
  kRebuildStart,  ///< a recovered OST began resyncing missed chunks
  kRebuildDone,   ///< the resync drained (bytes = total re-copied)
  kStaleMapRetry, ///< a kStaleMap rejection triggered a map refresh + retry
  kDetectedDown,  ///< the monitor declared an OST down (heartbeat grace expired)
  kDetectedUp,    ///< the monitor saw a heartbeat from a down OST again
};

[[nodiscard]] const char* to_string(ResilienceEventKind kind);

struct ResilienceRecord {
  ResilienceEventKind kind = ResilienceEventKind::kRetry;
  SimTime at = SimTime::zero();
  std::uint32_t attempt = 0;  ///< attempt that triggered the event (0 = n/a)
  IoError error = IoError::kNone;
  std::uint32_t ost = 0;        ///< serving/rebuilding OST (degraded/rebuild events)
  Bytes bytes = Bytes::zero();  ///< bytes involved (degraded/rebuild events)
};

/// Aggregate client-side resilience + durability counters for one PfsModel.
struct ResilienceStats {
  std::uint64_t attempts = 0;    ///< data-path attempts started
  std::uint64_t retries = 0;     ///< attempts that were retried
  std::uint64_t timeouts = 0;    ///< attempts abandoned by op_timeout
  std::uint64_t giveups = 0;     ///< ops failed after exhausting retries
  std::uint64_t failovers = 0;   ///< chunks rerouted around a down OST
  std::uint64_t failed_ops = 0;  ///< io() completions with ok == false
  std::uint64_t degraded_reads = 0;     ///< chunk reads served by a fallback replica
  std::uint64_t data_lost_ops = 0;      ///< ops failed with kDataLost
  std::uint64_t rebuilds_started = 0;   ///< OST resync passes begun
  std::uint64_t rebuilds_completed = 0; ///< OST resync passes drained
  Bytes rebuilt_bytes = Bytes::zero();  ///< total bytes re-copied by resync
  // Cluster-membership counters (all zero when ClusterMapConfig::enabled is
  // false; see DESIGN.md §13).
  std::uint64_t stale_map_retries = 0;  ///< ops bounced by kStaleMap and retried
  std::uint64_t map_refreshes = 0;      ///< client map-refresh round trips
  std::uint64_t down_detections = 0;    ///< monitor down declarations (grace expiry)
  std::uint64_t up_detections = 0;      ///< monitor up re-declarations (beat resumed)
  /// Bytes scheduled for migration by epoch changes (re-marks of ranges
  /// still owed across consecutive epochs count each time).
  Bytes migration_marked_bytes = Bytes::zero();
};

}  // namespace pio::pfs
