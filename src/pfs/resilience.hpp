// PIOEval storage substrate: client-side resilience for the data path.
//
// Real I/O middleware does not surface every server hiccup to the
// application: clients retry with capped exponential backoff, time out
// stuck requests, and (when the layout allows) route around dead OSTs.
// This header defines the policy knobs and counters; the mechanics live in
// PfsModel::io. All jitter draws from a seeded engine substream so fault
// campaigns replay byte-identically (piolint D1).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/seed_streams.hpp"
#include "common/types.hpp"

namespace pio::pfs {

/// Engine Rng stream id reserved for retry backoff jitter; claimed in the
/// seed-stream registry (common/seed_streams.hpp, rule S1).
inline constexpr std::uint64_t kRetryRngStream = seeds::kRetryJitterStream;

/// Engine Rng stream id reserved for circuit-breaker open-window jitter;
/// claimed in the seed-stream registry (common/seed_streams.hpp, rule S1).
inline constexpr std::uint64_t kBreakerRngStream = seeds::kBreakerProbeStream;

/// Why a data-path operation failed. kNone means success.
enum class IoError : std::uint8_t {
  kNone,
  kNoEntry,   ///< path never created at the MDS (or is a directory)
  kOstDown,   ///< a touched OST was down and no failover was possible
  kMdsDown,   ///< metadata service unreachable
  kTimeout,   ///< the op exceeded RetryPolicy::op_timeout on every attempt
  kDataLost,  ///< no replica holds the acknowledged data (durability breach)
  kStaleMap,  ///< addressed an OST through an outdated ClusterMap epoch;
              ///< refresh the map and retry (DESIGN.md §13)
  kOverloaded,        ///< server admission control rejected or shed the op;
                      ///< carries a retry-after hint (DESIGN.md §14)
  kCircuitOpen,       ///< the client's per-server circuit breaker fast-failed
                      ///< the op without touching the server
  kDeadlineExceeded,  ///< the op's end-to-end deadline expired across attempts
};

[[nodiscard]] const char* to_string(IoError error);

/// Server-side admission policy for bounded queues (DESIGN.md §14).
enum class AdmissionPolicy : std::uint8_t {
  kUnbounded,     ///< legacy behaviour: the queue grows without limit
  kRejectAtDoor,  ///< bounce arrivals once the queue depth reaches the bound
  kCodelShed,     ///< admit at the door, drop at dequeue once the job's
                  ///< queueing delay exceeds the sojourn target (CoDel-style)
};

[[nodiscard]] const char* to_string(AdmissionPolicy policy);

/// Admission-control knobs shared by OstServer and MetadataServer. The
/// default policy is kUnbounded, which preserves pre-overload semantics
/// bit-for-bit (no door checks, no sheds, no extra draws).
struct AdmissionConfig {
  AdmissionPolicy policy = AdmissionPolicy::kUnbounded;
  /// kRejectAtDoor: arrivals finding this many ops queued are bounced with
  /// IoError::kOverloaded and a retry-after hint.
  std::uint64_t max_queue_depth = 64;
  /// kCodelShed: an op whose queueing delay exceeds this when it reaches the
  /// head of the queue is dropped without service.
  SimTime shed_target = SimTime::from_ms(5.0);
  /// Lower bound on the retry-after hint attached to rejections.
  SimTime retry_after_floor = SimTime::from_ms(1.0);

  [[nodiscard]] bool enabled() const { return policy != AdmissionPolicy::kUnbounded; }
};

/// Client-side retry/degraded-mode policy for PfsModel::io. The default is
/// fail-fast: one attempt, no timeout, no failover — faults surface as
/// IoResult{ok=false} so measurement tools see the raw weather.
struct RetryPolicy {
  std::uint32_t max_attempts = 1;  ///< total attempts; 1 = no retries
  SimTime base_backoff = SimTime::from_ms(1.0);
  double backoff_multiplier = 2.0;
  SimTime max_backoff = SimTime::from_ms(200.0);
  /// Uniform +/- fraction applied to each backoff (decorrelates retry storms
  /// across clients); draws from the kRetryRngStream engine substream.
  double jitter_fraction = 0.2;
  /// Per-attempt timeout; zero disables. A timed-out attempt is abandoned
  /// (its in-flight events drain as orphans) and retried or given up.
  SimTime op_timeout = SimTime::zero();
  /// Degraded-mode striping: reroute chunks addressed to a down OST to the
  /// next healthy one at dispatch time.
  bool failover = false;

  // -- overload-control knobs (all off by default; DESIGN.md §14) ----------

  /// Adaptive per-attempt timeouts from the EWMA+variance latency estimator
  /// (Jacobson/Karels): timeout = clamp(srtt + rto_k * rttvar). Replaces the
  /// fixed op_timeout while enabled; initial_timeout is used until the
  /// estimator has seen a successful attempt.
  bool adaptive_timeout = false;
  SimTime initial_timeout = SimTime::from_ms(10.0);
  SimTime min_timeout = SimTime::from_ms(1.0);
  SimTime max_timeout = SimTime::from_ms(500.0);
  double srtt_gain = 0.125;  ///< alpha: weight of a new sample in srtt
  double rttvar_gain = 0.25; ///< beta: weight of a new deviation in rttvar
  double rto_k = 4.0;        ///< timeout = srtt + rto_k * rttvar

  /// End-to-end deadline: the op's remaining budget shrinks across attempts
  /// instead of resetting — each attempt's timeout is capped to what is
  /// left, and a retry that cannot start before the deadline gives up with
  /// kDeadlineExceeded. Zero disables.
  SimTime op_deadline = SimTime::zero();

  /// Token-bucket retry budget: retries are capped to a fraction of
  /// successful traffic (each success deposits budget_ratio tokens, each
  /// retry spends one, burst bounded by budget_cap), killing retry
  /// amplification under overload. Stale-map retries are exempt — they are
  /// a metadata protocol step, not recovery traffic.
  bool retry_budget = false;
  double budget_ratio = 0.2;
  double budget_cap = 10.0;

  /// Per-server circuit breakers (closed/open/half-open): after
  /// breaker_threshold consecutive shipment failures a server's breaker
  /// opens and chunks addressed to it fast-fail with kCircuitOpen for a
  /// jittered open window, after which a single half-open probe decides
  /// between closing and re-opening. Jitter draws from kBreakerRngStream.
  bool breaker = false;
  std::uint32_t breaker_threshold = 5;
  SimTime breaker_open_base = SimTime::from_ms(50.0);
  double breaker_open_jitter = 0.2;

  [[nodiscard]] bool retries_enabled() const { return max_attempts > 1; }
};

/// Jacobson/Karels RTT estimator driving adaptive per-attempt timeouts:
/// srtt and rttvar are EWMAs of successful attempt latencies, and the
/// timeout is srtt + k * rttvar clamped to [min_timeout, max_timeout].
/// Until the first sample the configured initial_timeout applies.
class LatencyEstimator {
 public:
  LatencyEstimator() = default;
  explicit LatencyEstimator(const RetryPolicy& policy)
      : initial_(policy.initial_timeout),
        min_(policy.min_timeout),
        max_(policy.max_timeout),
        alpha_(policy.srtt_gain),
        beta_(policy.rttvar_gain),
        k_(policy.rto_k) {}

  void observe(SimTime sample);

  /// Current per-attempt timeout (clamped; initial_timeout when unseeded).
  [[nodiscard]] SimTime timeout() const;
  [[nodiscard]] bool seeded() const { return seeded_; }
  [[nodiscard]] SimTime srtt() const { return SimTime::from_sec_ceil(srtt_sec_); }
  [[nodiscard]] SimTime rttvar() const { return SimTime::from_sec_ceil(rttvar_sec_); }

 private:
  SimTime initial_ = SimTime::from_ms(10.0);
  SimTime min_ = SimTime::from_ms(1.0);
  SimTime max_ = SimTime::from_ms(500.0);
  double alpha_ = 0.125;
  double beta_ = 0.25;
  double k_ = 4.0;
  bool seeded_ = false;
  double srtt_sec_ = 0.0;
  double rttvar_sec_ = 0.0;
};

/// Token-bucket retry budget (Finagle/gRPC discipline): successes earn
/// fractional tokens, each retry spends a whole one, and the bucket is
/// capped — so sustained retry traffic can never exceed ratio * goodput
/// plus the initial burst. Counter bookkeeping lives with the caller.
class RetryBudget {
 public:
  RetryBudget() = default;
  RetryBudget(double ratio, double cap)
      : ratio_(ratio), cap_(cap), tokens_(cap) {}

  /// A logical op succeeded: earn ratio tokens (capped).
  void deposit() { tokens_ = tokens_ + ratio_ > cap_ ? cap_ : tokens_ + ratio_; }
  /// Try to pay for one retry; false = budget exhausted, do not retry.
  [[nodiscard]] bool try_spend() {
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }
  [[nodiscard]] double tokens() const { return tokens_; }

 private:
  double ratio_ = 0.2;
  double cap_ = 10.0;
  double tokens_ = 10.0;
};

/// Per-server circuit breaker: closed (counting consecutive failures) ->
/// open (fast-fail for a jittered window) -> half-open (one probe decides).
/// Transition bookkeeping is returned to the caller so counters and events
/// stay in PfsModel's ResilienceStats.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  CircuitBreaker() = default;
  CircuitBreaker(std::uint32_t threshold, SimTime open_base, double open_jitter)
      : threshold_(threshold), open_base_(open_base), open_jitter_(open_jitter) {}

  struct Gate {
    bool allowed = true;
    bool probe = false;  ///< this admission is the half-open probe
  };

  /// May a request be sent to this server at `now`? Transitions open ->
  /// half-open once the open window has elapsed (that admission is the
  /// single probe; further requests fast-fail until it resolves).
  [[nodiscard]] Gate admit(SimTime now);

  /// Record a shipment success. Returns true when the breaker closed
  /// (a half-open probe succeeded).
  bool record_success();

  /// Record a shipment failure. Returns true when the breaker (re)opened;
  /// the open window is open_base jittered via `rng` (kBreakerRngStream).
  bool record_failure(SimTime now, Rng& rng);

  [[nodiscard]] State state() const { return state_; }

 private:
  [[nodiscard]] SimTime open_window(Rng& rng) const;

  std::uint32_t threshold_ = 5;
  SimTime open_base_ = SimTime::from_ms(50.0);
  double open_jitter_ = 0.2;
  State state_ = State::kClosed;
  std::uint32_t consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  SimTime open_until_ = SimTime::zero();
};

/// Deterministic capped exponential backoff with seeded jitter. `attempt` is
/// the 1-based index of the attempt that just failed (so the first retry
/// waits ~base_backoff). Always returns a non-negative time.
[[nodiscard]] SimTime backoff_delay(const RetryPolicy& policy, std::uint32_t attempt, Rng& rng);

/// Client-side resilience / durability event (observer unit, like
/// OstOpRecord). kDegradedRead and the rebuild pair distinguish *masked*
/// failures (a replica absorbed the fault) from real ones.
enum class ResilienceEventKind : std::uint8_t {
  kRetry,
  kTimeout,
  kGiveUp,
  kFailover,
  kDegradedRead,  ///< read served by a non-primary replica (primary down/stale)
  kRebuildStart,  ///< a recovered OST began resyncing missed chunks
  kRebuildDone,   ///< the resync drained (bytes = total re-copied)
  kStaleMapRetry, ///< a kStaleMap rejection triggered a map refresh + retry
  kDetectedDown,  ///< the monitor declared an OST down (heartbeat grace expired)
  kDetectedUp,    ///< the monitor saw a heartbeat from a down OST again
  kBudgetExhausted, ///< a retry was denied by the token-bucket retry budget
  kBreakerOpen,     ///< a per-server circuit breaker opened (or re-opened)
  kBreakerProbe,    ///< a half-open breaker admitted its single probe
  kBreakerClose,    ///< a probe succeeded and the breaker closed
  kDeadlineGiveUp,  ///< the op's end-to-end deadline expired across attempts
};

[[nodiscard]] const char* to_string(ResilienceEventKind kind);

struct ResilienceRecord {
  ResilienceEventKind kind = ResilienceEventKind::kRetry;
  SimTime at = SimTime::zero();
  std::uint32_t attempt = 0;  ///< attempt that triggered the event (0 = n/a)
  IoError error = IoError::kNone;
  std::uint32_t ost = 0;        ///< serving/rebuilding OST (degraded/rebuild events)
  Bytes bytes = Bytes::zero();  ///< bytes involved (degraded/rebuild events)
};

/// Aggregate client-side resilience + durability counters for one PfsModel.
struct ResilienceStats {
  std::uint64_t attempts = 0;    ///< data-path attempts started
  std::uint64_t retries = 0;     ///< attempts that were retried
  std::uint64_t timeouts = 0;    ///< attempts abandoned by op_timeout
  std::uint64_t giveups = 0;     ///< ops failed after exhausting retries
  std::uint64_t failovers = 0;   ///< chunks rerouted around a down OST
  std::uint64_t failed_ops = 0;  ///< io() completions with ok == false
  std::uint64_t degraded_reads = 0;     ///< chunk reads served by a fallback replica
  std::uint64_t data_lost_ops = 0;      ///< ops failed with kDataLost
  std::uint64_t rebuilds_started = 0;   ///< OST resync passes begun
  std::uint64_t rebuilds_completed = 0; ///< OST resync passes drained
  Bytes rebuilt_bytes = Bytes::zero();  ///< total bytes re-copied by resync
  // Cluster-membership counters (all zero when ClusterMapConfig::enabled is
  // false; see DESIGN.md §13).
  std::uint64_t stale_map_retries = 0;  ///< ops bounced by kStaleMap and retried
  std::uint64_t map_refreshes = 0;      ///< client map-refresh round trips
  std::uint64_t down_detections = 0;    ///< monitor down declarations (grace expiry)
  std::uint64_t up_detections = 0;      ///< monitor up re-declarations (beat resumed)
  /// Bytes scheduled for migration by epoch changes (re-marks of ranges
  /// still owed across consecutive epochs count each time).
  Bytes migration_marked_bytes = Bytes::zero();
  // Overload-control counters (all zero unless the corresponding admission /
  // budget / breaker / deadline knobs are enabled; DESIGN.md §14).
  std::uint64_t overload_rejections = 0; ///< attempts that failed with kOverloaded
  std::uint64_t budget_deposits = 0;     ///< successful ops that earned budget
  std::uint64_t budget_spent = 0;        ///< retries paid for by the budget
  std::uint64_t budget_denied = 0;       ///< retries denied (bucket empty)
  std::uint64_t breaker_opens = 0;       ///< breaker open/re-open transitions
  std::uint64_t breaker_closes = 0;      ///< half-open probes that closed a breaker
  std::uint64_t breaker_probes = 0;      ///< half-open probes admitted
  std::uint64_t breaker_fast_fails = 0;  ///< chunks fast-failed by an open breaker
  std::uint64_t deadline_giveups = 0;    ///< ops settled with kDeadlineExceeded
};

}  // namespace pio::pfs
