#include "pfs/stripe.hpp"

#include <algorithm>
#include <stdexcept>

namespace pio::pfs {

namespace {

void validate(const StripeLayout& layout, std::uint32_t total_osts) {
  if (layout.stripe_size == Bytes::zero()) throw std::invalid_argument("stripe_size == 0");
  if (layout.stripe_count == 0) throw std::invalid_argument("stripe_count == 0");
  if (total_osts == 0) throw std::invalid_argument("total_osts == 0");
  if (layout.stripe_count > total_osts) {
    throw std::invalid_argument("stripe_count exceeds OST pool");
  }
  if (layout.replicas == 0) throw std::invalid_argument("replicas == 0");
  if (layout.replicas > total_osts) {
    throw std::invalid_argument("replicas exceeds OST pool");
  }
}

}  // namespace

std::vector<StripeChunk> decompose(const StripeLayout& layout, std::uint32_t total_osts,
                                   std::uint64_t offset, Bytes size) {
  validate(layout, total_osts);
  std::vector<StripeChunk> chunks;
  const std::uint64_t ss = layout.stripe_size.count();
  std::uint64_t cur = offset;
  std::uint64_t remaining = size.count();
  while (remaining > 0) {
    const std::uint64_t stripe_index = cur / ss;             // global stripe number
    const std::uint64_t within = cur % ss;                   // offset inside the stripe
    const std::uint64_t run = std::min(remaining, ss - within);
    const auto lane = static_cast<std::uint32_t>(stripe_index % layout.stripe_count);
    const OstIndex ost = (layout.first_ost + lane) % total_osts;
    // Object offset: each full cycle of stripe_count stripes adds one
    // stripe_size to every lane's object.
    const std::uint64_t cycle = stripe_index / layout.stripe_count;
    const std::uint64_t object_offset = cycle * ss + within;
    chunks.push_back(StripeChunk{ost, object_offset, Bytes{run}, cur});
    cur += run;
    remaining -= run;
  }
  return chunks;
}

OstIndex ost_for_offset(const StripeLayout& layout, std::uint32_t total_osts,
                        std::uint64_t offset) {
  validate(layout, total_osts);
  const std::uint64_t stripe_index = offset / layout.stripe_size.count();
  const auto lane = static_cast<std::uint32_t>(stripe_index % layout.stripe_count);
  return (layout.first_ost + lane) % total_osts;
}

}  // namespace pio::pfs
