// PIOEval storage substrate: Lustre-style striping arithmetic.
//
// A file's byte range is round-robined across `stripe_count` OSTs in units
// of `stripe_size`. The layout math here is pure and exhaustively
// property-tested: chunk decomposition must exactly tile the request.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace pio::pfs {

using OstIndex = std::uint32_t;

/// Striping parameters for one file.
struct StripeLayout {
  Bytes stripe_size = Bytes::from_mib(1);
  std::uint32_t stripe_count = 4;   ///< number of OSTs the file spans
  OstIndex first_ost = 0;           ///< rotation start (load spreading)
  /// Copies of every chunk, on distinct OSTs. 1 = classic unreplicated
  /// striping; R > 1 enables the durability layer's degraded reads and
  /// online rebuild (requires DurabilityConfig::track_contents).
  std::uint32_t replicas = 1;
};

/// One per-OST piece of a striped request.
struct StripeChunk {
  OstIndex ost = 0;                 ///< absolute OST index (after rotation)
  std::uint64_t object_offset = 0;  ///< byte offset within that OST's object
  Bytes length = Bytes::zero();
  std::uint64_t file_offset = 0;    ///< where this chunk starts in the file
};

/// Decompose a file-range request into per-OST chunks, in file order.
/// `total_osts` is the pool size used to wrap the rotation. The union of the
/// returned chunks exactly equals [offset, offset+size).
[[nodiscard]] std::vector<StripeChunk> decompose(const StripeLayout& layout,
                                                 std::uint32_t total_osts,
                                                 std::uint64_t offset, Bytes size);

/// The OST that holds file byte `offset` under `layout`.
[[nodiscard]] OstIndex ost_for_offset(const StripeLayout& layout, std::uint32_t total_osts,
                                      std::uint64_t offset);

/// Replica `r` (0-based; 0 = primary) of a chunk homed on `home`. Replicas
/// occupy consecutive OSTs mod the pool, so they are pairwise distinct for
/// any replica count <= total_osts.
[[nodiscard]] inline OstIndex replica_ost(OstIndex home, std::uint32_t r,
                                          std::uint32_t total_osts) {
  return (home + r) % total_osts;
}

}  // namespace pio::pfs
