#include "predict/evaluate.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace pio::predict {

SplitData train_test_split(const std::vector<std::vector<double>>& rows,
                           std::span<const double> targets, double test_fraction,
                           std::uint64_t seed) {
  if (rows.size() != targets.size()) {
    throw std::invalid_argument("train_test_split: size mismatch");
  }
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("train_test_split: fraction must be in (0, 1)");
  }
  std::vector<std::size_t> order(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) order[i] = i;
  Rng rng{seed, 0x5B117};
  rng.shuffle(order);
  const auto test_n = static_cast<std::size_t>(test_fraction * static_cast<double>(rows.size()));
  SplitData split;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const std::size_t i = order[k];
    if (k < test_n) {
      split.test_x.push_back(rows[i]);
      split.test_y.push_back(targets[i]);
    } else {
      split.train_x.push_back(rows[i]);
      split.train_y.push_back(targets[i]);
    }
  }
  return split;
}

std::vector<stats::ErrorMetrics> k_fold(const std::vector<std::vector<double>>& rows,
                                        std::span<const double> targets, std::size_t folds,
                                        std::uint64_t seed, const ModelRunner& runner) {
  if (folds < 2 || folds > rows.size()) throw std::invalid_argument("k_fold: bad fold count");
  std::vector<std::size_t> order(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) order[i] = i;
  Rng rng{seed, 0xF01D};
  rng.shuffle(order);
  std::vector<stats::ErrorMetrics> out;
  for (std::size_t f = 0; f < folds; ++f) {
    std::vector<std::vector<double>> train_x;
    std::vector<double> train_y;
    std::vector<std::vector<double>> test_x;
    std::vector<double> test_y;
    for (std::size_t k = 0; k < order.size(); ++k) {
      const std::size_t i = order[k];
      if (k % folds == f) {
        test_x.push_back(rows[i]);
        test_y.push_back(targets[i]);
      } else {
        train_x.push_back(rows[i]);
        train_y.push_back(targets[i]);
      }
    }
    const auto predictions = runner(train_x, train_y, test_x);
    out.push_back(stats::compute_errors(predictions, test_y));
  }
  return out;
}

stats::ErrorMetrics mean_metrics(std::span<const stats::ErrorMetrics> metrics) {
  stats::ErrorMetrics m;
  if (metrics.empty()) return m;
  for (const auto& each : metrics) {
    m.mae += each.mae;
    m.rmse += each.rmse;
    m.mape += each.mape;
  }
  const auto n = static_cast<double>(metrics.size());
  m.mae /= n;
  m.rmse /= n;
  m.mape /= n;
  return m;
}

std::vector<double> file_record_features(const trace::FileRecord& record) {
  return {
      std::log2(record.bytes_read.as_double() + 1.0),
      std::log2(record.bytes_written.as_double() + 1.0),
      static_cast<double>(record.reads),
      static_cast<double>(record.writes),
      static_cast<double>(record.metadata_ops),
      record.read_seq_fraction(),
      record.write_seq_fraction(),
      std::log2(static_cast<double>(record.max_offset) + 1.0),
  };
}

}  // namespace pio::predict
