// PIOEval predict: model evaluation utilities — deterministic train/test
// splits, k-fold cross-validation, and feature extraction from profiles.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "stats/regression.hpp"
#include "trace/profiler.hpp"

namespace pio::predict {

struct SplitData {
  std::vector<std::vector<double>> train_x;
  std::vector<double> train_y;
  std::vector<std::vector<double>> test_x;
  std::vector<double> test_y;
};

/// Deterministic shuffled split; `test_fraction` in (0, 1).
[[nodiscard]] SplitData train_test_split(const std::vector<std::vector<double>>& rows,
                                         std::span<const double> targets, double test_fraction,
                                         std::uint64_t seed);

/// A model adaptor: fit on (x, y), return predictions for test rows.
using ModelRunner = std::function<std::vector<double>(
    const std::vector<std::vector<double>>& train_x, std::span<const double> train_y,
    const std::vector<std::vector<double>>& test_x)>;

/// K-fold cross validation; returns the per-fold test metrics.
[[nodiscard]] std::vector<stats::ErrorMetrics> k_fold(
    const std::vector<std::vector<double>>& rows, std::span<const double> targets,
    std::size_t folds, std::uint64_t seed, const ModelRunner& runner);

/// Mean of per-fold metrics.
[[nodiscard]] stats::ErrorMetrics mean_metrics(std::span<const stats::ErrorMetrics> metrics);

/// Feature vector for one profiler file record, for models that predict
/// per-file I/O time from characterization counters:
/// [log2(bytes_read+1), log2(bytes_written+1), reads, writes, metadata_ops,
///  read_seq_fraction, write_seq_fraction, log2(max_offset+1)].
[[nodiscard]] std::vector<double> file_record_features(const trace::FileRecord& record);

}  // namespace pio::predict
