#include "predict/forest.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace pio::predict {

namespace {

struct Split {
  std::size_t feature = SIZE_MAX;
  double threshold = 0.0;
  double score = 0.0;  // variance reduction; <= 0 means no usable split
};

double mean_of(const std::vector<std::vector<double>>& rows, std::span<const double> y,
               const std::vector<std::size_t>& idx) {
  (void)rows;
  double m = 0.0;
  for (const auto i : idx) m += y[i];
  return idx.empty() ? 0.0 : m / static_cast<double>(idx.size());
}

double sse_of(std::span<const double> y, const std::vector<std::size_t>& idx, double m) {
  double acc = 0.0;
  for (const auto i : idx) acc += (y[i] - m) * (y[i] - m);
  return acc;
}

}  // namespace

double RandomForest::Tree::predict(std::span<const double> features) const {
  std::int32_t at = 0;
  for (;;) {
    const Node& node = nodes[static_cast<std::size_t>(at)];
    if (node.feature == SIZE_MAX) return node.value;
    at = features[node.feature] <= node.threshold ? node.left : node.right;
  }
}

RandomForest RandomForest::fit(const std::vector<std::vector<double>>& rows,
                               std::span<const double> targets, const ForestConfig& config) {
  if (rows.size() != targets.size() || rows.empty()) {
    throw std::invalid_argument("RandomForest::fit: bad data shape");
  }
  const std::size_t width = rows.front().size();
  for (const auto& row : rows) {
    if (row.size() != width) throw std::invalid_argument("RandomForest::fit: ragged rows");
  }
  const std::size_t mtry =
      config.features_per_split != 0
          ? std::min(config.features_per_split, width)
          : std::max<std::size_t>(1, static_cast<std::size_t>(
                                         std::ceil(std::sqrt(static_cast<double>(width)))));

  RandomForest forest;
  forest.input_width_ = width;
  const std::size_t n = rows.size();

  // Out-of-bag accumulators.
  std::vector<double> oob_sum(n, 0.0);
  std::vector<std::size_t> oob_count(n, 0);

  for (std::size_t t = 0; t < config.trees; ++t) {
    Rng rng{config.seed, 0xF0E57ULL + t};
    // Bootstrap sample.
    std::vector<std::size_t> sample(n);
    std::vector<bool> in_bag(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      sample[i] = static_cast<std::size_t>(rng.next_below(n));
      in_bag[sample[i]] = true;
    }
    Tree tree;

    // Iterative tree construction (explicit stack of node -> index set).
    struct Work {
      std::int32_t node;
      std::vector<std::size_t> idx;
      std::size_t depth;
    };
    tree.nodes.push_back(Node{});
    std::vector<Work> stack;
    stack.push_back(Work{0, sample, 0});
    while (!stack.empty()) {
      Work work = std::move(stack.back());
      stack.pop_back();
      Node& node = tree.nodes[static_cast<std::size_t>(work.node)];
      const double node_mean = mean_of(rows, targets, work.idx);
      node.value = node_mean;
      if (work.depth >= config.max_depth ||
          work.idx.size() < 2 * config.min_samples_leaf) {
        continue;  // leaf
      }
      const double node_sse = sse_of(targets, work.idx, node_mean);
      if (node_sse < 1e-12) continue;  // pure leaf

      // Candidate features for this split.
      std::vector<std::size_t> features(width);
      for (std::size_t j = 0; j < width; ++j) features[j] = j;
      rng.shuffle(features);
      features.resize(mtry);

      Split best;
      for (const auto feature : features) {
        // Sort indices by this feature and scan split points.
        std::vector<std::size_t> sorted = work.idx;
        std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
          return rows[a][feature] < rows[b][feature];
        });
        // Prefix sums for O(n) scan.
        double left_sum = 0.0;
        double left_sq = 0.0;
        double total_sum = 0.0;
        double total_sq = 0.0;
        for (const auto i : sorted) {
          total_sum += targets[i];
          total_sq += targets[i] * targets[i];
        }
        const auto m = sorted.size();
        for (std::size_t k = 0; k + 1 < m; ++k) {
          const double yk = targets[sorted[k]];
          left_sum += yk;
          left_sq += yk * yk;
          // No split between equal feature values.
          if (rows[sorted[k]][feature] == rows[sorted[k + 1]][feature]) continue;
          const std::size_t nl = k + 1;
          const std::size_t nr = m - nl;
          if (nl < config.min_samples_leaf || nr < config.min_samples_leaf) continue;
          const double right_sum = total_sum - left_sum;
          const double right_sq = total_sq - left_sq;
          const double sse_l = left_sq - left_sum * left_sum / static_cast<double>(nl);
          const double sse_r = right_sq - right_sum * right_sum / static_cast<double>(nr);
          const double gain = node_sse - (sse_l + sse_r);
          if (gain > best.score) {
            best.score = gain;
            best.feature = feature;
            best.threshold =
                (rows[sorted[k]][feature] + rows[sorted[k + 1]][feature]) / 2.0;
          }
        }
      }
      if (best.feature == SIZE_MAX) continue;  // no usable split: leaf

      std::vector<std::size_t> left_idx;
      std::vector<std::size_t> right_idx;
      for (const auto i : work.idx) {
        (rows[i][best.feature] <= best.threshold ? left_idx : right_idx).push_back(i);
      }
      const auto left_id = static_cast<std::int32_t>(tree.nodes.size());
      tree.nodes.push_back(Node{});
      const auto right_id = static_cast<std::int32_t>(tree.nodes.size());
      tree.nodes.push_back(Node{});
      // Re-take the reference: the vector may have reallocated.
      Node& parent = tree.nodes[static_cast<std::size_t>(work.node)];
      parent.feature = best.feature;
      parent.threshold = best.threshold;
      parent.left = left_id;
      parent.right = right_id;
      stack.push_back(Work{left_id, std::move(left_idx), work.depth + 1});
      stack.push_back(Work{right_id, std::move(right_idx), work.depth + 1});
    }

    // Out-of-bag predictions.
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_bag[i]) {
        oob_sum[i] += tree.predict(rows[i]);
        ++oob_count[i];
      }
    }
    forest.trees_.push_back(std::move(tree));
  }

  double oob_err = 0.0;
  std::size_t oob_n = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (oob_count[i] > 0) {
      const double pred = oob_sum[i] / static_cast<double>(oob_count[i]);
      oob_err += (pred - targets[i]) * (pred - targets[i]);
      ++oob_n;
    }
  }
  forest.oob_mse_ = oob_n == 0 ? 0.0 : oob_err / static_cast<double>(oob_n);
  return forest;
}

double RandomForest::predict(std::span<const double> features) const {
  if (features.size() != input_width_) {
    throw std::invalid_argument("RandomForest::predict: feature width mismatch");
  }
  double acc = 0.0;
  for (const auto& tree : trees_) acc += tree.predict(features);
  return trees_.empty() ? 0.0 : acc / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::predict_all(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(predict(row));
  return out;
}

}  // namespace pio::predict
