// PIOEval predict: random-forest regressor (§IV.B.2).
//
// Sun et al. [57] "use a random forest machine learning approach to build
// an empirical performance model, which is able to predict the execution
// and I/O time of the program for new input parameters" — without domain
// knowledge. CART regression trees (variance-reduction splits), bootstrap
// bagging, per-split feature subsampling; prediction is the forest mean.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace pio::predict {

struct ForestConfig {
  std::size_t trees = 50;
  std::size_t max_depth = 12;
  std::size_t min_samples_leaf = 2;
  /// Features considered per split; 0 = ceil(sqrt(width)).
  std::size_t features_per_split = 0;
  std::uint64_t seed = 23;
};

class RandomForest {
 public:
  static RandomForest fit(const std::vector<std::vector<double>>& rows,
                          std::span<const double> targets, const ForestConfig& config = {});

  [[nodiscard]] double predict(std::span<const double> features) const;
  [[nodiscard]] std::vector<double> predict_all(
      const std::vector<std::vector<double>>& rows) const;

  /// Mean-squared error on the out-of-bag samples (generalization proxy).
  [[nodiscard]] double oob_mse() const { return oob_mse_; }
  [[nodiscard]] std::size_t tree_count() const { return trees_.size(); }

 private:
  struct Node {
    // Leaf when feature == SIZE_MAX.
    std::size_t feature = SIZE_MAX;
    double threshold = 0.0;
    double value = 0.0;  // leaf prediction
    std::int32_t left = -1;
    std::int32_t right = -1;
  };
  struct Tree {
    std::vector<Node> nodes;
    [[nodiscard]] double predict(std::span<const double> features) const;
  };

  std::vector<Tree> trees_;
  std::size_t input_width_ = 0;
  double oob_mse_ = 0.0;
};

}  // namespace pio::predict
