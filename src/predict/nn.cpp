#include "predict/nn.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pio::predict {

namespace {

double tanh_deriv_from_value(double y) { return 1.0 - y * y; }

}  // namespace

NeuralNet NeuralNet::fit(const std::vector<std::vector<double>>& rows,
                         std::span<const double> targets, const NnConfig& config) {
  if (rows.size() != targets.size() || rows.empty()) {
    throw std::invalid_argument("NeuralNet::fit: bad data shape");
  }
  const std::size_t width = rows.front().size();
  if (width == 0) throw std::invalid_argument("NeuralNet::fit: zero-width features");
  for (const auto& row : rows) {
    if (row.size() != width) throw std::invalid_argument("NeuralNet::fit: ragged rows");
  }

  NeuralNet net;
  net.input_width_ = width;
  const std::size_t n = rows.size();

  // Standardize features and target.
  net.feature_mean_.assign(width, 0.0);
  net.feature_std_.assign(width, 0.0);
  for (const auto& row : rows) {
    for (std::size_t j = 0; j < width; ++j) net.feature_mean_[j] += row[j];
  }
  for (std::size_t j = 0; j < width; ++j) net.feature_mean_[j] /= static_cast<double>(n);
  for (const auto& row : rows) {
    for (std::size_t j = 0; j < width; ++j) {
      const double d = row[j] - net.feature_mean_[j];
      net.feature_std_[j] += d * d;
    }
  }
  for (std::size_t j = 0; j < width; ++j) {
    net.feature_std_[j] = std::sqrt(net.feature_std_[j] / static_cast<double>(n));
    if (net.feature_std_[j] < 1e-12) net.feature_std_[j] = 1.0;
  }
  net.target_mean_ = std::accumulate(targets.begin(), targets.end(), 0.0) /
                     static_cast<double>(n);
  double tvar = 0.0;
  for (const double t : targets) tvar += (t - net.target_mean_) * (t - net.target_mean_);
  net.target_std_ = std::sqrt(tvar / static_cast<double>(n));
  if (net.target_std_ < 1e-12) net.target_std_ = 1.0;

  std::vector<std::vector<double>> x(n, std::vector<double>(width));
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < width; ++j) {
      x[i][j] = (rows[i][j] - net.feature_mean_[j]) / net.feature_std_[j];
    }
    y[i] = (targets[i] - net.target_mean_) / net.target_std_;
  }

  // Build layers: width -> hidden... -> 1.
  Rng rng{config.seed, 0x99EU};
  std::vector<std::size_t> sizes{width};
  sizes.insert(sizes.end(), config.hidden_layers.begin(), config.hidden_layers.end());
  sizes.push_back(1);
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    Layer layer;
    layer.in = sizes[l];
    layer.out = sizes[l + 1];
    const double scale = std::sqrt(2.0 / static_cast<double>(layer.in + layer.out));
    layer.weights.resize(layer.in * layer.out);
    for (auto& w : layer.weights) w = rng.normal(0.0, scale);
    layer.biases.assign(layer.out, 0.0);
    net.layers_.push_back(std::move(layer));
  }

  // Adam state.
  struct Adam {
    std::vector<double> mw, vw, mb, vb;
  };
  std::vector<Adam> adam(net.layers_.size());
  for (std::size_t l = 0; l < net.layers_.size(); ++l) {
    adam[l].mw.assign(net.layers_[l].weights.size(), 0.0);
    adam[l].vw.assign(net.layers_[l].weights.size(), 0.0);
    adam[l].mb.assign(net.layers_[l].biases.size(), 0.0);
    adam[l].vb.assign(net.layers_[l].biases.size(), 0.0);
  }
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;
  std::uint64_t step = 0;

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  double prev_loss = std::numeric_limits<double>::max();
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    for (std::size_t start = 0; start < n; start += config.batch_size) {
      const std::size_t end = std::min(n, start + config.batch_size);
      // Accumulate gradients over the batch.
      std::vector<std::vector<double>> grad_w(net.layers_.size());
      std::vector<std::vector<double>> grad_b(net.layers_.size());
      for (std::size_t l = 0; l < net.layers_.size(); ++l) {
        grad_w[l].assign(net.layers_[l].weights.size(), 0.0);
        grad_b[l].assign(net.layers_[l].biases.size(), 0.0);
      }
      for (std::size_t k = start; k < end; ++k) {
        const std::size_t i = order[k];
        std::vector<std::vector<double>> acts;
        const double out = net.forward(x[i], &acts);
        const double err = out - y[i];
        epoch_loss += err * err;
        // Backprop. delta for the linear output layer:
        std::vector<double> delta{err};
        for (std::size_t l = net.layers_.size(); l-- > 0;) {
          const Layer& layer = net.layers_[l];
          const auto& input = acts[l];  // activations feeding layer l
          // Gradients.
          for (std::size_t o = 0; o < layer.out; ++o) {
            grad_b[l][o] += delta[o];
            for (std::size_t in = 0; in < layer.in; ++in) {
              grad_w[l][o * layer.in + in] += delta[o] * input[in];
            }
          }
          if (l == 0) break;
          // Propagate delta to the previous layer (through tanh).
          std::vector<double> prev(layer.in, 0.0);
          for (std::size_t in = 0; in < layer.in; ++in) {
            double acc = 0.0;
            for (std::size_t o = 0; o < layer.out; ++o) {
              acc += layer.weights[o * layer.in + in] * delta[o];
            }
            prev[in] = acc * tanh_deriv_from_value(input[in]);
          }
          delta = std::move(prev);
        }
      }
      // Adam update with batch-mean gradients.
      ++step;
      const double batch = static_cast<double>(end - start);
      const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(step));
      const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(step));
      for (std::size_t l = 0; l < net.layers_.size(); ++l) {
        auto update = [&](std::vector<double>& param, std::vector<double>& grad,
                          std::vector<double>& m, std::vector<double>& v) {
          for (std::size_t p = 0; p < param.size(); ++p) {
            const double g = grad[p] / batch;
            m[p] = kBeta1 * m[p] + (1.0 - kBeta1) * g;
            v[p] = kBeta2 * v[p] + (1.0 - kBeta2) * g * g;
            param[p] -= config.learning_rate * (m[p] / bc1) / (std::sqrt(v[p] / bc2) + kEps);
          }
        };
        update(net.layers_[l].weights, grad_w[l], adam[l].mw, adam[l].vw);
        update(net.layers_[l].biases, grad_b[l], adam[l].mb, adam[l].vb);
      }
    }
    epoch_loss /= static_cast<double>(n);
    net.training_loss_ = epoch_loss;
    if (config.min_improvement > 0.0 && prev_loss - epoch_loss < config.min_improvement) {
      break;
    }
    prev_loss = epoch_loss;
  }
  return net;
}

double NeuralNet::forward(std::span<const double> x,
                          std::vector<std::vector<double>>* activations) const {
  std::vector<double> current{x.begin(), x.end()};
  if (activations != nullptr) {
    activations->clear();
    activations->push_back(current);
  }
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> next(layer.out);
    const bool is_output = l + 1 == layers_.size();
    for (std::size_t o = 0; o < layer.out; ++o) {
      double acc = layer.biases[o];
      for (std::size_t in = 0; in < layer.in; ++in) {
        acc += layer.weights[o * layer.in + in] * current[in];
      }
      next[o] = is_output ? acc : std::tanh(acc);
    }
    current = std::move(next);
    if (activations != nullptr && !is_output) activations->push_back(current);
  }
  return current[0];
}

double NeuralNet::predict(std::span<const double> features) const {
  if (features.size() != input_width_) {
    throw std::invalid_argument("NeuralNet::predict: feature width mismatch");
  }
  std::vector<double> x(features.size());
  for (std::size_t j = 0; j < features.size(); ++j) {
    x[j] = (features[j] - feature_mean_[j]) / feature_std_[j];
  }
  const double standardized = forward(x, nullptr);
  return standardized * target_std_ + target_mean_;
}

std::vector<double> NeuralNet::predict_all(const std::vector<std::vector<double>>& rows) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(predict(row));
  return out;
}

}  // namespace pio::predict
