// PIOEval predict: feed-forward neural network regressor (§IV.B.2).
//
// Schmid & Kunkel [56] "use neural networks to analyze and predict file
// access times of a Lustre file system from the client's perspective, and
// show that the average prediction error can be significantly improved in
// comparison to linear models." Experiment C4 reproduces that ordering with
// this network against stats::LinearModel.
//
// Fully-connected MLP, tanh hidden activations, linear output, MSE loss,
// Adam optimizer, deterministic initialization from a seeded Rng. Inputs
// and the target are standardized internally so callers can feed raw
// features.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace pio::predict {

struct NnConfig {
  std::vector<std::size_t> hidden_layers{32, 16};
  std::size_t epochs = 200;
  std::size_t batch_size = 32;
  double learning_rate = 1e-3;
  std::uint64_t seed = 17;
  /// Early-stop when training MSE improves less than this between epochs
  /// (0 = never stop early).
  double min_improvement = 0.0;
};

class NeuralNet {
 public:
  /// Train on rows[i] (all same width) -> targets[i].
  static NeuralNet fit(const std::vector<std::vector<double>>& rows,
                       std::span<const double> targets, const NnConfig& config = {});

  [[nodiscard]] double predict(std::span<const double> features) const;
  [[nodiscard]] std::vector<double> predict_all(
      const std::vector<std::vector<double>>& rows) const;

  /// Final training MSE (standardized units), for convergence checks.
  [[nodiscard]] double training_loss() const { return training_loss_; }
  [[nodiscard]] std::size_t input_width() const { return input_width_; }

 private:
  struct Layer {
    std::size_t in = 0;
    std::size_t out = 0;
    std::vector<double> weights;  // out x in, row-major
    std::vector<double> biases;   // out
  };

  NeuralNet() = default;

  /// Forward pass on standardized input; returns standardized output and
  /// fills per-layer activations when `activations` is non-null.
  [[nodiscard]] double forward(std::span<const double> x,
                               std::vector<std::vector<double>>* activations) const;

  std::vector<Layer> layers_;
  std::size_t input_width_ = 0;
  // Standardization parameters.
  std::vector<double> feature_mean_;
  std::vector<double> feature_std_;
  double target_mean_ = 0.0;
  double target_std_ = 1.0;
  double training_loss_ = 0.0;
};

}  // namespace pio::predict
