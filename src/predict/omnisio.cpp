#include "predict/omnisio.hpp"

#include <stdexcept>

namespace pio::predict {

std::uint32_t NextOpPredictor::tokenize(const workload::Op& op) {
  replay::OpToken token;
  token.kind = op.kind;
  if (!op.path.empty()) {
    const auto [it, inserted] =
        path_ids_.emplace(op.path, static_cast<std::uint32_t>(paths_.size()));
    if (inserted) paths_.push_back(op.path);
    token.path_id = it->second;
  }
  token.size = op.size.count();
  token.think_ns = op.think_time.ns();
  if (op.kind == workload::OpKind::kRead || op.kind == workload::OpKind::kWrite) {
    const std::uint64_t cur = cursor_[token.path_id];
    token.offset_delta =
        static_cast<std::int64_t>(op.offset) - static_cast<std::int64_t>(cur);
    cursor_[token.path_id] = op.offset + op.size.count();
  }
  const auto [it, inserted] =
      token_ids_.emplace(token, static_cast<std::uint32_t>(tokens_.size()));
  if (inserted) tokens_.push_back(token);
  return it->second;
}

workload::Op NextOpPredictor::detokenize(std::uint32_t token_id) const {
  const replay::OpToken& token = tokens_.at(token_id);
  workload::Op op;
  op.kind = token.kind;
  if (token.kind != workload::OpKind::kCompute && token.kind != workload::OpKind::kBarrier &&
      token.path_id < paths_.size()) {
    op.path = paths_[token.path_id];
  }
  op.size = Bytes{token.size};
  op.think_time = SimTime::from_ns(token.think_ns);
  if (token.kind == workload::OpKind::kRead || token.kind == workload::OpKind::kWrite) {
    const auto it = cursor_.find(token.path_id);
    const std::uint64_t cur = it == cursor_.end() ? 0 : it->second;
    op.offset =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(cur) + token.offset_delta);
  }
  return op;
}

namespace {

std::optional<std::uint32_t> argmax_successor(
    const std::map<std::uint32_t, std::uint64_t>& successors) {
  if (successors.empty()) return std::nullopt;
  std::uint32_t best = 0;
  std::uint64_t best_count = 0;
  for (const auto& [successor, count] : successors) {
    if (count > best_count) {
      best = successor;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

std::optional<std::uint32_t> NextOpPredictor::best_successor() const {
  if (!last_token_.has_value()) return std::nullopt;
  if (prev_token_.has_value()) {
    const auto it = transitions2_.find({*prev_token_, *last_token_});
    if (it != transitions2_.end()) {
      if (auto best = argmax_successor(it->second)) return best;
    }
  }
  const auto it = transitions1_.find(*last_token_);
  if (it != transitions1_.end()) return argmax_successor(it->second);
  return std::nullopt;
}

std::optional<workload::Op> NextOpPredictor::predict_next() const {
  const auto token = best_successor();
  if (!token.has_value()) return std::nullopt;
  return detokenize(*token);
}

bool NextOpPredictor::observe(const workload::Op& op) {
  // Predict before updating state (fair online evaluation). Compare at the
  // token level: predicting "sequential 1 MiB write to f" is a hit even
  // though detokenize also resolves the absolute offset.
  const auto predicted_token = best_successor();
  const std::uint32_t actual = tokenize(op);
  bool hit = false;
  if (last_token_.has_value()) {
    ++predictions_;
    hit = predicted_token.has_value() && *predicted_token == actual;
    if (hit) ++hits_;
    ++transitions1_[*last_token_][actual];
    if (prev_token_.has_value()) {
      ++transitions2_[{*prev_token_, *last_token_}][actual];
    }
  }
  prev_token_ = last_token_;
  last_token_ = actual;
  ++observed_;
  return hit;
}

PredictionTrajectory evaluate_predictability(const workload::Workload& workload,
                                             std::int32_t rank, std::size_t window) {
  if (rank < 0 || rank >= workload.ranks()) {
    throw std::invalid_argument("evaluate_predictability: bad rank");
  }
  if (window == 0) throw std::invalid_argument("evaluate_predictability: zero window");
  NextOpPredictor predictor;
  PredictionTrajectory trajectory;
  auto stream = workload.stream(rank);
  std::size_t in_window = 0;
  std::size_t window_hits = 0;
  while (auto op = stream->next()) {
    const bool hit = predictor.observe(*op);
    if (predictor.observed_ops() == 1) continue;  // no prediction possible yet
    ++in_window;
    if (hit) ++window_hits;
    if (in_window == window) {
      trajectory.per_window_accuracy.push_back(static_cast<double>(window_hits) /
                                               static_cast<double>(in_window));
      in_window = 0;
      window_hits = 0;
    }
  }
  if (in_window > 0) {
    trajectory.per_window_accuracy.push_back(static_cast<double>(window_hits) /
                                             static_cast<double>(in_window));
  }
  trajectory.overall_accuracy = predictor.accuracy();
  trajectory.alphabet_size = predictor.alphabet_size();
  return trajectory;
}

}  // namespace pio::predict
