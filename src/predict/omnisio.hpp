// PIOEval predict: grammar/sequence-based I/O behaviour prediction
// (Omnisc'IO-style, Dorier et al. [55], §IV.B.2).
//
// "Using formal grammars to predict I/O behaviors in HPC": the observation
// is that an application's op stream is highly structured, so a model fit
// on its prefix can predict what comes next — when the next write will
// happen and how big it will be — enabling prefetching and scheduling.
//
// We implement the same capability over the toolkit's delta-tokenized op
// alphabet (see pio::replay::OpToken): a first-order Markov chain over
// observed tokens, trained online. Regular workloads (IOR, checkpoint,
// BT-IO) approach 100% next-op accuracy after one phase; shuffled DL reads
// stay near chance — reproducing the paper's point that emerging workloads
// defeat structure-based prediction.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "replay/compress.hpp"
#include "workload/op.hpp"

namespace pio::predict {

/// Online next-operation predictor over one rank's op stream.
class NextOpPredictor {
 public:
  /// Observe the next op of the stream; returns true if the op was
  /// predicted correctly BEFORE observing it (prediction-then-update).
  bool observe(const workload::Op& op);

  /// Current prediction for the next op, if the model has one (the most
  /// probable successor of the last observed token). nullopt before any
  /// observation or from never-seen states.
  [[nodiscard]] std::optional<workload::Op> predict_next() const;

  /// Fraction of observations (after the first) that were predicted
  /// correctly.
  [[nodiscard]] double accuracy() const {
    return predictions_ == 0 ? 0.0
                             : static_cast<double>(hits_) / static_cast<double>(predictions_);
  }
  [[nodiscard]] std::uint64_t observed_ops() const { return observed_; }
  [[nodiscard]] std::size_t alphabet_size() const { return tokens_.size(); }

 private:
  [[nodiscard]] std::uint32_t tokenize(const workload::Op& op);
  [[nodiscard]] workload::Op detokenize(std::uint32_t token) const;

  // Token bookkeeping (shared alphabet with the compressor's semantics).
  std::map<replay::OpToken, std::uint32_t> token_ids_;
  std::vector<replay::OpToken> tokens_;
  std::vector<std::string> paths_;
  std::map<std::string, std::uint32_t> path_ids_;
  std::map<std::uint32_t, std::uint64_t> cursor_;  // path id -> next offset

  // Variable-order context model: second-order transitions (the last two
  // tokens) with a first-order fallback for unseen contexts. Order-2 is
  // enough to disambiguate the "A A B" loop shapes that dominate HPC I/O
  // streams; real Omnisc'IO grows a full grammar.
  [[nodiscard]] std::optional<std::uint32_t> best_successor() const;

  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::map<std::uint32_t, std::uint64_t>>
      transitions2_;
  std::map<std::uint32_t, std::map<std::uint32_t, std::uint64_t>> transitions1_;
  std::optional<std::uint32_t> last_token_;
  std::optional<std::uint32_t> prev_token_;

  std::uint64_t observed_ = 0;
  std::uint64_t predictions_ = 0;
  std::uint64_t hits_ = 0;
};

/// Convenience: run the predictor over a whole rank stream and report the
/// accuracy trajectory (fraction correct in each consecutive `window`).
struct PredictionTrajectory {
  double overall_accuracy = 0.0;
  std::vector<double> per_window_accuracy;
  std::size_t alphabet_size = 0;
};

[[nodiscard]] PredictionTrajectory evaluate_predictability(const workload::Workload& workload,
                                                           std::int32_t rank,
                                                           std::size_t window = 256);

}  // namespace pio::predict
