#include "replay/compress.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace pio::replay {

namespace {

using workload::Op;
using workload::OpKind;

/// Pair hash for the Re-Pair frequency table.
struct PairHash {
  std::size_t operator()(const std::pair<std::uint32_t, std::uint32_t>& p) const {
    return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(p.first) << 32) | p.second);
  }
};

}  // namespace

Grammar::Grammar(std::uint32_t terminals,
                 std::vector<std::pair<std::uint32_t, std::uint32_t>> rules,
                 std::vector<std::uint32_t> sequence)
    : terminals_(terminals), rules_(std::move(rules)), sequence_(std::move(sequence)) {}

std::vector<std::uint32_t> Grammar::expand() const {
  std::vector<std::uint32_t> out;
  // Iterative expansion with an explicit stack (rules can nest deeply).
  std::vector<std::uint32_t> stack;
  for (auto it = sequence_.rbegin(); it != sequence_.rend(); ++it) stack.push_back(*it);
  while (!stack.empty()) {
    const std::uint32_t sym = stack.back();
    stack.pop_back();
    if (sym < terminals_) {
      out.push_back(sym);
    } else {
      const auto& [a, b] = rules_.at(sym - terminals_);
      stack.push_back(b);
      stack.push_back(a);
    }
  }
  return out;
}

Grammar Grammar::compress(std::vector<std::uint32_t> stream, std::uint32_t terminals) {
  // Straightforward Re-Pair: O(n) passes, each replacing the globally most
  // frequent pair. Fine for trace-scale inputs (the asymptotically optimal
  // version maintains priority queues; not needed here).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> rules;
  std::uint32_t next_symbol = terminals;
  for (;;) {
    if (stream.size() < 2) break;
    std::unordered_map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t, PairHash> freq;
    for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
      ++freq[{stream[i], stream[i + 1]}];
    }
    // Most frequent pair. The selection below is order-independent — the
    // (count, pair) comparison is a strict total order over all entries, so
    // the same `best` wins whatever order the hash table yields.
    std::pair<std::uint32_t, std::uint32_t> best{0, 0};
    std::uint32_t best_count = 1;
    for (const auto& [pair, count] : freq) {  // piolint: allow(D2)
      if (count > best_count ||
          (count == best_count && best_count > 1 && pair < best)) {
        best = pair;
        best_count = count;
      }
    }
    if (best_count < 2) break;
    // Replace non-overlapping occurrences left to right.
    std::vector<std::uint32_t> next;
    next.reserve(stream.size());
    for (std::size_t i = 0; i < stream.size();) {
      if (i + 1 < stream.size() && stream[i] == best.first && stream[i + 1] == best.second) {
        next.push_back(next_symbol);
        i += 2;
      } else {
        next.push_back(stream[i]);
        ++i;
      }
    }
    rules.push_back(best);
    ++next_symbol;
    stream = std::move(next);
  }
  return Grammar{terminals, std::move(rules), std::move(stream)};
}

CompressedWorkload CompressedWorkload::compress(const workload::Workload& workload) {
  CompressedWorkload out;
  out.name_ = workload.name();
  std::unordered_map<std::string, std::uint32_t> path_ids;
  std::map<OpToken, std::uint32_t> token_ids;

  auto path_id = [&](const std::string& path) {
    const auto [it, inserted] =
        path_ids.emplace(path, static_cast<std::uint32_t>(out.paths_.size()));
    if (inserted) out.paths_.push_back(path);
    return it->second;
  };

  for (std::int32_t r = 0; r < workload.ranks(); ++r) {
    auto stream = workload.stream(r);
    std::vector<std::uint32_t> symbols;
    // Per-file running cursor for delta tokenization.
    std::unordered_map<std::uint32_t, std::uint64_t> cursor;
    while (auto op = stream->next()) {
      ++out.original_ops_;
      OpToken token;
      token.kind = op->kind;
      token.path_id = op->path.empty() ? 0 : path_id(op->path);
      token.size = op->size.count();
      token.think_ns = op->think_time.ns();
      if (op->kind == OpKind::kRead || op->kind == OpKind::kWrite) {
        const std::uint64_t cur = cursor[token.path_id];
        token.offset_delta = static_cast<std::int64_t>(op->offset) -
                             static_cast<std::int64_t>(cur);
        cursor[token.path_id] = op->offset + op->size.count();
      }
      const auto [it, inserted] =
          token_ids.emplace(token, static_cast<std::uint32_t>(out.tokens_.size()));
      if (inserted) out.tokens_.push_back(token);
      symbols.push_back(it->second);
    }
    out.per_rank_.push_back(Grammar::compress(
        std::move(symbols),
        static_cast<std::uint32_t>(token_ids.size()) +
            static_cast<std::uint32_t>(workload.ranks())));
  }
  return out;
}

std::unique_ptr<workload::Workload> CompressedWorkload::decompress() const {
  std::vector<std::vector<Op>> per_rank;
  per_rank.reserve(per_rank_.size());
  for (const auto& grammar : per_rank_) {
    std::vector<Op> ops;
    std::unordered_map<std::uint32_t, std::uint64_t> cursor;
    for (const auto sym : grammar.expand()) {
      const OpToken& token = tokens_.at(sym);
      Op op;
      op.kind = token.kind;
      if (token.kind != OpKind::kCompute && token.kind != OpKind::kBarrier) {
        op.path = paths_.at(token.path_id);
      }
      op.size = Bytes{token.size};
      op.think_time = SimTime::from_ns(token.think_ns);
      if (token.kind == OpKind::kRead || token.kind == OpKind::kWrite) {
        const std::uint64_t cur = cursor[token.path_id];
        op.offset = static_cast<std::uint64_t>(static_cast<std::int64_t>(cur) +
                                               token.offset_delta);
        cursor[token.path_id] = op.offset + token.size;
      }
      ops.push_back(std::move(op));
    }
    per_rank.push_back(std::move(ops));
  }
  return std::make_unique<workload::VectorWorkload>(name_ + "-decompressed",
                                                    std::move(per_rank));
}

double CompressedWorkload::compression_ratio() const {
  const std::size_t stored = stored_symbols();
  return stored == 0 ? 1.0
                     : static_cast<double>(original_ops_) / static_cast<double>(stored);
}

std::size_t CompressedWorkload::stored_symbols() const {
  std::size_t stored = 0;
  for (const auto& grammar : per_rank_) stored += grammar.stored_symbols();
  return stored;
}

}  // namespace pio::replay
