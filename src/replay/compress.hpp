// PIOEval replay: grammar-based trace compression (experiment C5).
//
// Hao et al. [15] "perform a trace compressing algorithm based on a suffix
// tree to reduce the size of traces, and then generate the C code of the
// corresponding benchmark." We implement the same idea with a Re-Pair
// grammar compressor over *delta-tokenized* op streams:
//
//  1. Tokenization maps each op to an abstract symbol where the file offset
//     is replaced by its delta from the file's running cursor. Regular
//     patterns (sequential writes, fixed strides, loop bodies) then map to
//     *identical* symbols regardless of absolute position.
//  2. Re-Pair repeatedly replaces the most frequent adjacent symbol pair
//     with a fresh nonterminal until no pair repeats, yielding a grammar
//     whose expansion reproduces the token stream exactly.
//
// Decompression is exactly lossless: expand the grammar, then replay the
// cursor arithmetic. The compression ratio (input symbols / grammar size)
// is what bench C5 reports.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "workload/op.hpp"

namespace pio::replay {

/// Abstract op symbol: offset replaced by a cursor delta.
struct OpToken {
  workload::OpKind kind = workload::OpKind::kBarrier;
  std::uint32_t path_id = 0;
  std::int64_t offset_delta = 0;  ///< offset - cursor(path); data ops only
  std::uint64_t size = 0;
  std::int64_t think_ns = 0;

  friend auto operator<=>(const OpToken&, const OpToken&) = default;
};

/// A Re-Pair grammar over token ids. Terminal symbols are < terminals();
/// nonterminals expand to exactly two symbols.
class Grammar {
 public:
  Grammar(std::uint32_t terminals, std::vector<std::pair<std::uint32_t, std::uint32_t>> rules,
          std::vector<std::uint32_t> sequence);

  /// Expand back to the exact original terminal stream.
  [[nodiscard]] std::vector<std::uint32_t> expand() const;

  [[nodiscard]] std::uint32_t terminals() const { return terminals_; }
  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }
  [[nodiscard]] std::size_t sequence_length() const { return sequence_.size(); }
  /// Symbols needed to store the grammar (sequence + 2 per rule).
  [[nodiscard]] std::size_t stored_symbols() const {
    return sequence_.size() + 2 * rules_.size();
  }

  /// Build by Re-Pair compression of a terminal stream.
  static Grammar compress(std::vector<std::uint32_t> stream, std::uint32_t terminals);

 private:
  std::uint32_t terminals_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> rules_;  // nonterminal i = terminals_+i
  std::vector<std::uint32_t> sequence_;
};

/// A fully compressed multi-rank workload.
class CompressedWorkload {
 public:
  /// Compress every rank of a workload.
  static CompressedWorkload compress(const workload::Workload& workload);

  /// Reconstruct the exact original op streams.
  [[nodiscard]] std::unique_ptr<workload::Workload> decompress() const;

  /// Original symbols / stored symbols (>= 1; higher is better).
  [[nodiscard]] double compression_ratio() const;
  [[nodiscard]] std::size_t original_ops() const { return original_ops_; }
  [[nodiscard]] std::size_t stored_symbols() const;
  [[nodiscard]] std::size_t distinct_tokens() const { return tokens_.size(); }

 private:
  std::string name_;
  std::vector<std::string> paths_;          // path_id -> path
  std::vector<OpToken> tokens_;             // token id -> token
  std::vector<Grammar> per_rank_;
  std::size_t original_ops_ = 0;
};

}  // namespace pio::replay
