#include "replay/extrapolate.hpp"

#include <cctype>
#include <stdexcept>

namespace pio::replay {

namespace {

using workload::Op;
using workload::OpKind;

/// Split a path into literal fragments and the decimal substrings equal to
/// `rank`. Substrings that are decimal but != rank stay literal.
std::optional<std::vector<std::string>> rank_split(const std::string& path, std::int32_t rank) {
  std::vector<std::string> fragments{""};
  const std::string needle = std::to_string(rank);
  std::size_t i = 0;
  while (i < path.size()) {
    if (std::isdigit(static_cast<unsigned char>(path[i])) != 0) {
      // Longest decimal run starting here.
      std::size_t j = i;
      while (j < path.size() && std::isdigit(static_cast<unsigned char>(path[j])) != 0) ++j;
      const std::string digits = path.substr(i, j - i);
      if (digits == needle) {
        fragments.emplace_back();  // a rank slot between fragments
      } else {
        fragments.back() += digits;
      }
      i = j;
    } else {
      fragments.back() += path[i++];
    }
  }
  return fragments;
}

}  // namespace

std::string ExtrapolationModel::PathTemplate::instantiate(std::int32_t rank) const {
  std::string out = fragments.front();
  for (std::size_t s = 1; s < fragments.size(); ++s) {
    out += std::to_string(rank);
    out += fragments[s];
  }
  return out;
}

std::optional<ExtrapolationModel> ExtrapolationModel::fit(const workload::Workload& captured,
                                                          ExtrapolationError* error) {
  auto fail = [&](std::size_t position, std::string reason) -> std::optional<ExtrapolationModel> {
    if (error != nullptr) *error = ExtrapolationError{position, std::move(reason)};
    return std::nullopt;
  };
  if (captured.ranks() < 2) return fail(0, "need at least 2 captured ranks");
  const auto ops = workload::materialize(captured);
  for (std::size_t r = 1; r < ops.size(); ++r) {
    if (ops[r].size() != ops[0].size()) {
      return fail(0, "rank " + std::to_string(r) + " has a different op count");
    }
  }

  ExtrapolationModel model;
  model.captured_ranks_ = captured.ranks();
  model.name_ = captured.name();
  const std::size_t n = ops[0].size();
  for (std::size_t i = 0; i < n; ++i) {
    const Op& base = ops[0][i];
    OpPattern pattern;
    pattern.kind = base.kind;
    pattern.size = base.size.count();
    pattern.think_ns = base.think_time.ns();
    // Offsets: fit a + b*rank from ranks 0 and 1, verify against all.
    pattern.offset_base = static_cast<std::int64_t>(base.offset);
    pattern.offset_slope = static_cast<std::int64_t>(ops[1][i].offset) -
                           static_cast<std::int64_t>(base.offset);
    // Path template from rank 1 (rank 0's "0" substrings are ambiguous:
    // they match both the rank and any literal zero).
    const auto fragments = rank_split(ops[1][i].path, 1);
    pattern.path.fragments = *fragments;
    pattern.path.rank_slots = pattern.path.fragments.size() - 1;

    for (std::size_t r = 0; r < ops.size(); ++r) {
      const Op& op = ops[r][i];
      if (op.kind != pattern.kind) return fail(i, "op kind varies across ranks");
      if (op.size.count() != pattern.size) return fail(i, "op size varies non-affinely");
      if (op.think_time.ns() != pattern.think_ns) return fail(i, "think time varies");
      const std::int64_t expected_offset =
          pattern.offset_base + pattern.offset_slope * static_cast<std::int64_t>(r);
      if (static_cast<std::int64_t>(op.offset) != expected_offset) {
        return fail(i, "offset is not affine in rank");
      }
      if (op.path != pattern.path.instantiate(static_cast<std::int32_t>(r))) {
        return fail(i, "path does not follow the rank template: " + op.path);
      }
    }
    model.pattern_.push_back(std::move(pattern));
  }
  return model;
}

std::unique_ptr<workload::Workload> ExtrapolationModel::generate(std::int32_t ranks) const {
  if (ranks <= 0) throw std::invalid_argument("ExtrapolationModel::generate: bad rank count");
  std::vector<std::vector<Op>> per_rank(static_cast<std::size_t>(ranks));
  for (std::int32_t r = 0; r < ranks; ++r) {
    auto& ops = per_rank[static_cast<std::size_t>(r)];
    ops.reserve(pattern_.size());
    for (const auto& p : pattern_) {
      Op op;
      op.kind = p.kind;
      op.path = p.path.instantiate(r);
      const std::int64_t offset = p.offset_base + p.offset_slope * static_cast<std::int64_t>(r);
      if (offset < 0) throw std::logic_error("extrapolated offset is negative");
      op.offset = static_cast<std::uint64_t>(offset);
      op.size = Bytes{p.size};
      op.think_time = SimTime::from_ns(p.think_ns);
      ops.push_back(std::move(op));
    }
  }
  return std::make_unique<workload::VectorWorkload>(
      name_ + "-x" + std::to_string(ranks), std::move(per_rank));
}

}  // namespace pio::replay
