// PIOEval replay: trace extrapolation (experiment C6).
//
// Luo et al.'s ScalaIOExtrap [16, 17] "can be used to gather I/O traces on
// a small system, to analyze the traces and extrapolate them, and then
// finally enable I/O replay to verify the correctness of the projected
// extrapolation of the I/O behavior."
//
// The extrapolator detects rank-parametric structure in a small-scale
// workload: all ranks must execute the same op-kind sequence, and at every
// position each varying quantity must be an exact affine function of the
// rank —
//   paths:   decimal substrings that equal the rank (e.g. "f.3" on rank 3)
//   offsets: offset(r) = a + b*r
//   sizes / think times: rank-invariant
// When the pattern holds, a workload for any rank count can be generated.
// When it does not, extrapolation *reports* the first mismatching position
// instead of silently guessing — exactly the validation step the paper
// calls out as essential.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "workload/op.hpp"

namespace pio::replay {

struct ExtrapolationError {
  std::size_t position = 0;   ///< op index where the pattern broke
  std::string reason;
};

class ExtrapolationModel {
 public:
  /// Learn the rank-parametric pattern from a captured workload (>= 2
  /// ranks). Returns nullopt + error details when the workload is not
  /// rank-affine.
  static std::optional<ExtrapolationModel> fit(const workload::Workload& captured,
                                               ExtrapolationError* error = nullptr);

  /// Generate the projected workload at a new scale.
  [[nodiscard]] std::unique_ptr<workload::Workload> generate(std::int32_t ranks) const;

  [[nodiscard]] std::size_t ops_per_rank() const { return pattern_.size(); }
  [[nodiscard]] std::int32_t captured_ranks() const { return captured_ranks_; }

 private:
  /// One op position: everything constant except the affine parts.
  struct PathTemplate {
    // Literal fragments interleaved with rank substitutions:
    // fragments.size() == rank_slots + 1.
    std::vector<std::string> fragments;
    std::size_t rank_slots = 0;
    [[nodiscard]] std::string instantiate(std::int32_t rank) const;
  };
  struct OpPattern {
    workload::OpKind kind{};
    PathTemplate path;
    std::int64_t offset_base = 0;   ///< a in offset = a + b*rank
    std::int64_t offset_slope = 0;  ///< b
    std::uint64_t size = 0;
    std::int64_t think_ns = 0;
  };

  std::vector<OpPattern> pattern_;
  std::int32_t captured_ranks_ = 0;
  std::string name_;
};

}  // namespace pio::replay
