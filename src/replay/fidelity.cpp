#include "replay/fidelity.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/format.hpp"

namespace pio::replay {

namespace {

double ratio(double replay, double original) {
  if (original == 0.0) return replay == 0.0 ? 1.0 : 0.0;
  return replay / original;
}

}  // namespace

double FidelityReport::worst_deviation() const {
  double worst = 0.0;
  for (const double r : {op_count_ratio, bytes_read_ratio, bytes_written_ratio, makespan_ratio,
                         bandwidth_ratio}) {
    worst = std::max(worst, std::abs(r - 1.0));
  }
  return worst;
}

std::string FidelityReport::to_string() const {
  std::ostringstream out;
  out << "ops " << format_double(op_count_ratio) << "x, bytes r/w "
      << format_double(bytes_read_ratio) << "x/" << format_double(bytes_written_ratio)
      << "x, makespan " << format_double(makespan_ratio) << "x, bandwidth "
      << format_double(bandwidth_ratio) << "x (worst dev "
      << format_percent(worst_deviation()) << ")";
  return out.str();
}

FidelityReport compare_runs(const driver::SimRunResult& original,
                            const driver::SimRunResult& replayed) {
  FidelityReport report;
  report.op_count_ratio =
      ratio(static_cast<double>(replayed.ops), static_cast<double>(original.ops));
  report.bytes_read_ratio =
      ratio(replayed.bytes_read.as_double(), original.bytes_read.as_double());
  report.bytes_written_ratio =
      ratio(replayed.bytes_written.as_double(), original.bytes_written.as_double());
  report.makespan_ratio = ratio(replayed.makespan.sec(), original.makespan.sec());
  report.bandwidth_ratio = ratio(replayed.aggregate_bandwidth().bytes_per_sec(),
                                 original.aggregate_bandwidth().bytes_per_sec());
  return report;
}

}  // namespace pio::replay
