// PIOEval replay: replay-fidelity scoring.
//
// Record-and-replay is only useful if the replayed run actually reproduces
// the original behaviour; ScalaIOExtrap's final stage "enable[s] I/O replay
// to verify the correctness of the projected extrapolation". This report
// quantifies agreement between an original and a replayed run: op counts,
// byte volumes, makespan, and bandwidth ratios.
#pragma once

#include <string>

#include "driver/sim_driver.hpp"

namespace pio::replay {

struct FidelityReport {
  double op_count_ratio = 0.0;      ///< replay / original
  double bytes_read_ratio = 0.0;
  double bytes_written_ratio = 0.0;
  double makespan_ratio = 0.0;
  double bandwidth_ratio = 0.0;

  /// Max relative deviation from 1.0 across all ratios that have data.
  [[nodiscard]] double worst_deviation() const;
  /// True when every populated ratio is within `tolerance` of 1.0.
  [[nodiscard]] bool faithful(double tolerance = 0.1) const {
    return worst_deviation() <= tolerance;
  }
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] FidelityReport compare_runs(const driver::SimRunResult& original,
                                          const driver::SimRunResult& replayed);

}  // namespace pio::replay
