#include "replay/trace_workload.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace pio::replay {

namespace {

using workload::Op;
using workload::OpKind;

}  // namespace

std::unique_ptr<workload::Workload> workload_from_trace(const trace::Trace& trace,
                                                        const TraceReplayConfig& config) {
  // Keep only the chosen layer, in time order.
  trace::Trace layer_trace = trace.layer(config.layer);
  layer_trace.sort_by_time();

  // Which path is first opened by whom (global order): that open becomes a
  // create; every later open stays an open.
  std::set<std::string> created;

  // Dense rank numbering.
  const auto ranks = layer_trace.ranks();
  std::map<std::int32_t, std::size_t> rank_slot;
  for (std::size_t i = 0; i < ranks.size(); ++i) rank_slot[ranks[i]] = i;
  std::vector<std::vector<Op>> per_rank(std::max<std::size_t>(ranks.size(), 1));
  std::vector<SimTime> last_end(per_rank.size(), SimTime::zero());
  std::vector<bool> saw_op(per_rank.size(), false);

  for (const auto& e : layer_trace.events()) {
    const std::size_t slot = rank_slot.at(e.rank);
    auto& ops = per_rank[slot];
    if (config.preserve_think_time && saw_op[slot]) {
      const SimTime gap = e.start - last_end[slot];
      if (gap >= config.min_think_time) ops.push_back(Op::compute(gap));
    }
    saw_op[slot] = true;
    last_end[slot] = std::max(last_end[slot], e.end);
    switch (e.op) {
      case trace::OpKind::kOpen: {
        if (created.insert(e.path).second) {
          ops.push_back(Op::create(e.path));
        } else {
          ops.push_back(Op::open(e.path));
        }
        break;
      }
      case trace::OpKind::kClose: ops.push_back(Op::close(e.path)); break;
      case trace::OpKind::kRead: ops.push_back(Op::read(e.path, e.offset, Bytes{e.size})); break;
      case trace::OpKind::kWrite: {
        // A write to a never-opened path (e.g. from a filtered trace) still
        // needs the file to exist at replay time.
        if (created.insert(e.path).second) ops.push_back(Op::create(e.path));
        ops.push_back(Op::write(e.path, e.offset, Bytes{e.size}));
        break;
      }
      case trace::OpKind::kStat: ops.push_back(Op::stat(e.path)); break;
      case trace::OpKind::kMkdir: ops.push_back(Op::mkdir(e.path)); break;
      case trace::OpKind::kUnlink: ops.push_back(Op::unlink(e.path)); break;
      case trace::OpKind::kReaddir: ops.push_back(Op::readdir(e.path)); break;
      case trace::OpKind::kFsync: ops.push_back(Op::fsync(e.path)); break;
      case trace::OpKind::kSync: ops.push_back(Op::barrier()); break;
      case trace::OpKind::kOther: break;  // untranslatable
    }
  }
  return std::make_unique<workload::VectorWorkload>("replay", std::move(per_rank));
}

}  // namespace pio::replay
