// PIOEval replay: trace -> replayable workload (§IV.B.3).
//
// "Through the analysis of these traces, an I/O replication workload can be
// automatically generated, which is able to replay the I/O behavior of the
// original application." The conversion preserves per-rank op order, turns
// the first open of each path into a create (the replay target is an empty
// file system), and optionally re-inserts inter-op gaps as compute phases
// so replay preserves the original pacing ("think time").
#pragma once

#include <memory>

#include "common/types.hpp"
#include "trace/tracer.hpp"
#include "workload/op.hpp"

namespace pio::replay {

struct TraceReplayConfig {
  /// Re-insert gaps between consecutive ops of a rank as compute phases.
  bool preserve_think_time = true;
  /// Gaps shorter than this are dropped (scheduling noise, not think time).
  SimTime min_think_time = SimTime::from_us(10.0);
  /// Only replay events from this layer (multi-level traces would otherwise
  /// replay the same bytes several times).
  trace::Layer layer = trace::Layer::kPosix;
};

/// Convert a recorded trace into a materialized workload.
[[nodiscard]] std::unique_ptr<workload::Workload> workload_from_trace(
    const trace::Trace& trace, const TraceReplayConfig& config = {});

}  // namespace pio::replay
