#include "sim/arena.hpp"

namespace pio::sim {

namespace detail {

namespace {

/// Smallest size class whose payload area holds `bytes`, or kClasses if
/// `bytes` exceeds the largest class.
int class_for(std::size_t bytes) {
  for (int c = 0; c < OversizeSlab::kClasses; ++c) {
    if (bytes <= OversizeSlab::class_payload_bytes(c)) return c;
  }
  return OversizeSlab::kClasses;
}

PayloadHeader* header_of(void* payload) noexcept {
  return reinterpret_cast<PayloadHeader*>(static_cast<unsigned char*>(payload) -
                                          kPayloadHeaderBytes);
}

void* payload_of(PayloadHeader* header) noexcept {
  return reinterpret_cast<unsigned char*>(header) + kPayloadHeaderBytes;
}

/// Header + payload from the plain heap, tagged so release_payload frees it
/// with operator delete.
void* plain_heap_allocate(std::size_t bytes) {
  auto* raw = static_cast<unsigned char*>(::operator new(kPayloadHeaderBytes + bytes));
  auto* header = reinterpret_cast<PayloadHeader*>(raw);
  header->owner = nullptr;
  header->source = PayloadSource::kPlainHeap;
  header->size_class = 0;
  header->next_free = nullptr;
  return payload_of(header);
}

}  // namespace

OversizeSlab::~OversizeSlab() {
  for (PayloadHeader* list : free_lists_) {
    while (list != nullptr) {
      PayloadHeader* next = list->next_free;
      ::operator delete(static_cast<void*>(list));
      list = next;
    }
  }
}

void* OversizeSlab::allocate(std::size_t bytes) {
  const int size_class = class_for(bytes);
  if (size_class == kClasses) return plain_heap_allocate(bytes);
  if (PayloadHeader* header = free_lists_[size_class]; header != nullptr) {
    free_lists_[size_class] = header->next_free;
    header->next_free = nullptr;
    return payload_of(header);
  }
  auto* raw = static_cast<unsigned char*>(
      ::operator new(kPayloadHeaderBytes + class_payload_bytes(size_class)));
  auto* header = reinterpret_cast<PayloadHeader*>(raw);
  header->owner = this;
  header->source = PayloadSource::kSlabClass;
  header->size_class = static_cast<std::uint32_t>(size_class);
  header->next_free = nullptr;
  return payload_of(header);
}

void* PayloadAlloc::allocate(std::size_t bytes) {
  if (arena != nullptr) return arena->allocate(bytes);
  return slab->allocate(bytes);
}

void release_payload(void* payload) noexcept {
  PayloadHeader* header = header_of(payload);
  switch (header->source) {
    case PayloadSource::kSlabClass: {
      auto* slab = static_cast<OversizeSlab*>(header->owner);
      header->next_free = slab->free_lists_[header->size_class];
      slab->free_lists_[header->size_class] = header;
      break;
    }
    case PayloadSource::kPlainHeap:
      ::operator delete(static_cast<void*>(header));
      break;
    case PayloadSource::kArena: {
      auto* block = static_cast<PayloadArena::ArenaBlock*>(header->owner);
      block->arena->release_one(block);
      break;
    }
  }
}

}  // namespace detail

PayloadArena::PayloadArena(std::size_t block_bytes)
    : block_bytes_(block_bytes < detail::kPayloadHeaderBytes + alignof(std::max_align_t)
                       ? detail::kPayloadHeaderBytes + alignof(std::max_align_t)
                       : block_bytes) {}

PayloadArena::~PayloadArena() {
  // By contract every payload has been released (the owning engine destroys
  // queued tasks first). current_ and the free list cover all live blocks:
  // a retired block with live payloads would be a contract violation, and in
  // that case we leak it rather than free storage in use.
  if (current_ != nullptr && current_->live == 0) {
    ::operator delete(static_cast<void*>(current_));
  }
  ArenaBlock* block = free_;
  while (block != nullptr) {
    ArenaBlock* next = block->next_free;
    ::operator delete(static_cast<void*>(block));
    block = next;
  }
}

PayloadArena::ArenaBlock* PayloadArena::acquire_block() {
  if (ArenaBlock* block = free_; block != nullptr) {
    free_ = block->next_free;
    block->next_free = nullptr;
    block->retired = 0;
    block->offset = 0;
    ++blocks_recycled_;
    return block;
  }
  auto* raw =
      static_cast<unsigned char*>(::operator new(kBlockHeaderBytes + block_bytes_));
  auto* block = reinterpret_cast<ArenaBlock*>(raw);
  block->arena = this;
  block->next_free = nullptr;
  block->live = 0;
  block->retired = 0;
  block->offset = 0;
  ++blocks_;
  return block;
}

void* PayloadArena::allocate(std::size_t bytes) {
  const std::size_t need =
      detail::kPayloadHeaderBytes +
      (bytes + alignof(std::max_align_t) - 1) / alignof(std::max_align_t) *
          alignof(std::max_align_t);
  if (need > block_bytes_) {
    // A payload that cannot fit in any block bypasses the arena entirely
    // (plain-heap tagged, so it is not counted in live_payloads_).
    return detail::plain_heap_allocate(bytes);
  }
  if (current_ == nullptr || current_->offset + need > block_bytes_) {
    if (current_ != nullptr) {
      current_->retired = 1;
      if (current_->live == 0) {
        // Drained while still the bump target: recycle in place.
        current_->next_free = free_;
        free_ = current_;
      }
    }
    current_ = acquire_block();
  }
  auto* base = reinterpret_cast<unsigned char*>(current_) + kBlockHeaderBytes;
  auto* header = reinterpret_cast<detail::PayloadHeader*>(base + current_->offset);
  header->owner = current_;
  header->source = detail::PayloadSource::kArena;
  header->size_class = 0;
  header->next_free = nullptr;
  current_->offset += need;
  ++current_->live;
  ++live_payloads_;
  return reinterpret_cast<unsigned char*>(header) + detail::kPayloadHeaderBytes;
}

void PayloadArena::release_one(ArenaBlock* block) noexcept {
  --block->live;
  --live_payloads_;
  if (block->live == 0 && block->retired != 0 && block != current_) {
    block->next_free = free_;
    free_ = block;
  }
}

void PayloadArena::trim() noexcept {
  ArenaBlock* kept = nullptr;
  ArenaBlock* block = free_;
  while (block != nullptr) {
    ArenaBlock* next = block->next_free;
    if (kept == nullptr) {
      kept = block;
      kept->next_free = nullptr;
    } else {
      ::operator delete(static_cast<void*>(block));
      --blocks_;
    }
    block = next;
  }
  free_ = kept;
}

}  // namespace pio::sim
