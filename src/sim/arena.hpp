// PIOEval sim: event-payload allocation — recycling slab and bump arenas.
//
// Every event's callable lives in a per-slot `Task` beside the queue
// (48-byte small-buffer; the queue itself moves 24-byte POD keys, see
// engine.hpp). Callables that do not fit the buffer go behind a pointer,
// and this header owns everything about that oversized path:
//
//   - `PayloadHeader` — the one header format preceding every oversized
//     payload, whatever allocated it. `release_payload` dispatches on the
//     header's source tag, so a payload can be freed without knowing (or
//     keeping alive a reference to) its allocator of origin.
//   - `OversizeSlab` — per-engine size-class free lists (64 B … 8 KiB);
//     a model that repeatedly schedules the same fat closure pays one
//     allocation, not one per event. The default oversized allocator.
//   - `PayloadArena` — per-shard bump allocator for the sharded engine
//     (DESIGN.md §16): payloads are bump-allocated from fixed blocks,
//     blocks track live-payload counts, and a fully drained block recycles
//     whole — no per-payload free list at all. Safe-window barriers call
//     `trim()` to return surplus drained blocks. Strictly single-threaded:
//     one arena belongs to one logical engine shard.
//
// Both allocators guarantee std::max_align_t alignment and nothing more —
// over-aligned callables are rejected at compile time by `Task`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace pio::sim {

class PayloadArena;

namespace detail {

/// Where an oversized payload's storage came from (drives `release_payload`).
enum class PayloadSource : std::uint32_t {
  kSlabClass = 0,  ///< OversizeSlab size-class free list
  kPlainHeap = 1,  ///< plain new/delete (beyond every class / block size)
  kArena = 2,      ///< PayloadArena block (bump-allocated)
};

/// Header preceding every oversized payload at the next max_align_t
/// boundary. One format for every allocator, so release needs no context.
struct PayloadHeader {
  void* owner;               ///< kSlabClass: OversizeSlab*; kArena: ArenaBlock*
  PayloadSource source;
  std::uint32_t size_class;  ///< kSlabClass only
  PayloadHeader* next_free;  ///< kSlabClass free-list linkage
};

/// Header-to-payload offset: the next max_align_t boundary.
inline constexpr std::size_t kPayloadHeaderBytes =
    (sizeof(PayloadHeader) + alignof(std::max_align_t) - 1) / alignof(std::max_align_t) *
    alignof(std::max_align_t);

/// Return an oversized payload (from any slab, arena, or the plain heap) to
/// its allocator of origin. O(1), noexcept; defined in arena.cpp.
void release_payload(void* payload) noexcept;

/// Recycling allocator for event callables too large for the inline buffer
/// of a queue entry. Freed payloads go on per-size-class free lists (64 B …
/// 8 KiB, powers of two) owned by the engine. Payloads beyond the largest
/// class fall back to plain new/delete.
class OversizeSlab {
 public:
  OversizeSlab() = default;
  OversizeSlab(const OversizeSlab&) = delete;
  OversizeSlab& operator=(const OversizeSlab&) = delete;
  ~OversizeSlab();

  /// Storage for `bytes`, aligned for std::max_align_t.
  [[nodiscard]] void* allocate(std::size_t bytes);

  static constexpr int kClasses = 8;
  static constexpr std::size_t class_payload_bytes(int size_class) {
    return std::size_t{64} << size_class;
  }

 private:
  friend void release_payload(void* payload) noexcept;

  PayloadHeader* free_lists_[kClasses] = {};
};

/// The oversized-payload allocation policy of one engine: an arena when one
/// is attached, the engine's slab otherwise. Cheap to copy; not an owner.
struct PayloadAlloc {
  OversizeSlab* slab = nullptr;
  PayloadArena* arena = nullptr;

  [[nodiscard]] void* allocate(std::size_t bytes);
};

/// Move-only type-erased `void()` callable with inline small-buffer storage.
/// The dispatch table is a plain struct of function pointers (no virtual
/// call, no RTTI); relocation is noexcept so queue sifts never throw.
class Task {
 public:
  /// Inline capacity: sized so a captureful lambda with a handful of
  /// pointers/values — or a whole std::function — stays in the entry.
  static constexpr std::size_t kInlineBytes = 48;

  Task() noexcept = default;

  template <typename F, typename Fn = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<Fn, Task>>>
  Task(F&& fn, PayloadAlloc alloc) {
    emplace(std::forward<F>(fn), alloc);
  }

  /// Construct a callable directly into this task (the engine's hot path:
  /// no temporary Task, no relocate call). Resets any current callable
  /// first; if construction throws, the task is left empty.
  template <typename F, typename Fn = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<Fn, Task>>>
  void emplace(F&& fn, PayloadAlloc alloc) {
    static_assert(std::is_invocable_r_v<void, Fn&>, "Task requires a void() callable");
    reset();
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      static_assert(alignof(Fn) <= alignof(std::max_align_t),
                    "Task: over-aligned callables are not supported — payload "
                    "allocators guarantee only max_align_t alignment; store the "
                    "over-aligned state behind a pointer (e.g. unique_ptr) in the "
                    "capture");
      void* payload = alloc.allocate(sizeof(Fn));
      try {
        ::new (payload) Fn(std::forward<F>(fn));
      } catch (...) {
        release_payload(payload);
        throw;
      }
      *reinterpret_cast<void**>(static_cast<void*>(storage_)) = payload;
      ops_ = &kOversizeOps<Fn>;
    }
  }

  Task(Task&& other) noexcept { move_from(other); }
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { reset(); }

  void operator()() { ops_->call(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (!ops_->trivial_destroy) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*call)(void* storage);
    void (*relocate)(void* dst_storage, void* src_storage) noexcept;
    void (*destroy)(void* storage) noexcept;
    // Fast-path flags: a trivially relocatable callable moves as a raw
    // storage copy and a trivially destructible one skips the destroy call —
    // both dodge an indirect call per event on the engine's drain path.
    bool trivial_relocate;
    bool trivial_destroy;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* storage) { (*static_cast<Fn*>(storage))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* storage) noexcept { static_cast<Fn*>(storage)->~Fn(); },
      std::is_trivially_copyable_v<Fn>, std::is_trivially_destructible_v<Fn>};

  template <typename Fn>
  static constexpr Ops kOversizeOps{
      [](void* storage) { (**static_cast<Fn**>(storage))(); },
      [](void* dst, void* src) noexcept { *static_cast<void**>(dst) = *static_cast<void**>(src); },
      [](void* storage) noexcept {
        Fn* fn = *static_cast<Fn**>(storage);
        fn->~Fn();
        release_payload(fn);
      },
      // The stored state is one pointer: moving it is a raw copy, but
      // destruction must always run to free the payload.
      true, false};

  void move_from(Task& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->trivial_relocate) {
        __builtin_memcpy(storage_, other.storage_, kInlineBytes);
      } else {
        ops_->relocate(storage_, other.storage_);
      }
    }
    other.ops_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace detail

/// Bump allocator for oversized event payloads (DESIGN.md §16).
///
/// Allocation is a pointer bump inside a fixed-size block; each block counts
/// its live payloads, and a block whose count drains to zero after it was
/// retired from bump duty recycles onto a free list whole. This trades the
/// slab's per-payload free lists for window-granular recycling: in the
/// sharded engine, payloads allocated during one safe window are released by
/// that window's (or the next's) fires, so blocks cycle continuously and the
/// arena's footprint tracks the high-water in-flight payload volume.
///
/// Single-threaded by contract: one arena is owned by one engine shard, and
/// every allocate/release happens on the thread currently running that
/// shard (safe-window barriers order the handoffs).
class PayloadArena {
 public:
  /// `block_bytes` is the payload capacity of one block. Payloads larger
  /// than one block fall back to the plain heap (header-tagged, so release
  /// still needs no context).
  explicit PayloadArena(std::size_t block_bytes = 256 * 1024);
  PayloadArena(const PayloadArena&) = delete;
  PayloadArena& operator=(const PayloadArena&) = delete;
  ~PayloadArena();

  /// Storage for `bytes`, aligned for std::max_align_t.
  [[nodiscard]] void* allocate(std::size_t bytes);

  /// Return surplus drained blocks to the process heap, keeping at most one
  /// spare. Barrier hook: bounds the footprint after a payload burst.
  void trim() noexcept;

  /// Payloads allocated and not yet released.
  [[nodiscard]] std::uint64_t live_payloads() const { return live_payloads_; }
  /// Blocks currently owned (bump target + free list + retired-not-drained).
  [[nodiscard]] std::uint64_t blocks() const { return blocks_; }
  /// Times a drained block was reused instead of allocating a fresh one.
  [[nodiscard]] std::uint64_t blocks_recycled() const { return blocks_recycled_; }

 private:
  friend void detail::release_payload(void* payload) noexcept;

  struct ArenaBlock {
    PayloadArena* arena;
    ArenaBlock* next_free;
    std::uint32_t live;     ///< payloads allocated from this block, not yet released
    std::uint32_t retired;  ///< no longer the bump target (recycles when live hits 0)
    std::size_t offset;     ///< bump cursor into the payload area
  };
  /// Payload area begins at the next max_align_t boundary after the block
  /// header.
  static constexpr std::size_t kBlockHeaderBytes =
      (sizeof(ArenaBlock) + alignof(std::max_align_t) - 1) / alignof(std::max_align_t) *
      alignof(std::max_align_t);

  [[nodiscard]] ArenaBlock* acquire_block();
  void release_one(ArenaBlock* block) noexcept;

  std::size_t block_bytes_;
  ArenaBlock* current_ = nullptr;
  ArenaBlock* free_ = nullptr;
  std::uint64_t live_payloads_ = 0;
  std::uint64_t blocks_ = 0;
  std::uint64_t blocks_recycled_ = 0;
};

}  // namespace pio::sim
