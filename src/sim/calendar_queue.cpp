#include "sim/calendar_queue.hpp"

#include <algorithm>
#include <bit>
#include <limits>

namespace pio::sim::detail {

namespace {

/// a + b for non-negative a, b, clamped to int64 max instead of overflowing.
/// Slice arithmetic near SimTime::max saturates; locate_min falls back to a
/// direct scan whenever a comparison would involve a saturated bound.
std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  std::int64_t out;
  if (__builtin_add_overflow(a, b, &out)) return std::numeric_limits<std::int64_t>::max();
  return out;
}

}  // namespace

CalendarQueue::CalendarQueue() : buckets_(kMinBuckets), mask_(kMinBuckets - 1) {}

void CalendarQueue::prepare(SimTime t) {
  const std::size_t n = buckets_.size();
  if (size_ + 1 > 2 * n) {
    rebuild(n * 2);
  } else if (n > kMinBuckets && (size_ + 1) * 2 < n) {
    rebuild(n / 2);
  }
  auto& bucket = buckets_[bucket_of(t.ns())];
  if (bucket.size() == bucket.capacity()) {
    bucket.reserve(bucket.capacity() == 0 ? 4 : bucket.capacity() * 2);
  }
}

void CalendarQueue::push_prepared(SimTime t, std::uint64_t seq, EventId id) noexcept {
  const std::int64_t ns = t.ns();
  if (ns < year_start_ns_) {
    // Push behind the cursor: rewind so the ordering invariant (no entry
    // precedes the cursor slice) keeps holding.
    cursor_ = bucket_of(ns);
    year_start_ns_ = slice_start(ns);
  }
  auto& bucket = buckets_[bucket_of(ns)];
  const Entry entry{t, seq, id};
  // Descending by (time, seq): find the first element the new entry
  // precedes-in-bucket-order, i.e. the first element *earlier* than it.
  const auto pos = std::upper_bound(
      bucket.begin(), bucket.end(), entry,
      [](const Entry& value, const Entry& elem) { return earlier(elem, value); });
  bucket.insert(pos, entry);  // capacity reserved: cannot throw
  ++size_;
  min_located_ = false;
}

void CalendarQueue::locate_min() {
  if (min_located_) return;
  const std::size_t n = buckets_.size();
  // Lap scan: walk one year forward from the cursor; the first bucket whose
  // minimum falls inside its current slice holds the global minimum (events
  // land in a given bucket only at year strides, so everything skipped is at
  // least a year later than its slice). Saturated slice bounds would break
  // that argument, so bail to the direct scan instead.
  std::int64_t year_start = year_start_ns_;
  std::int64_t slice_end = sat_add(year_start, width_ns_);
  const std::int64_t max_ns = std::numeric_limits<std::int64_t>::max();
  for (std::size_t k = 0; k < n && slice_end != max_ns; ++k) {
    const std::size_t b = (cursor_ + k) & mask_;
    const auto& bucket = buckets_[b];
    if (!bucket.empty() && bucket.back().time.ns() < slice_end) {
      cursor_ = b;
      year_start_ns_ = year_start;
      min_located_ = true;
      return;
    }
    year_start = slice_end;
    slice_end = sat_add(slice_end, width_ns_);
  }
  // Direct scan: compare all bucket minima, then re-anchor the cursor at the
  // winner's slice. O(buckets), amortised away by the lap scan's hit rate.
  std::size_t best = n;
  for (std::size_t b = 0; b < n; ++b) {
    if (buckets_[b].empty()) continue;
    if (best == n || earlier(buckets_[b].back(), buckets_[best].back())) best = b;
  }
  cursor_ = best;
  year_start_ns_ = slice_start(buckets_[best].back().time.ns());
  min_located_ = true;
}

Entry& CalendarQueue::peek_min() {
  locate_min();
  return buckets_[cursor_].back();
}

Entry CalendarQueue::pop_min() {
  locate_min();
  Entry out = std::move(buckets_[cursor_].back());
  buckets_[cursor_].pop_back();
  --size_;
  // Cursor and year_start_ns_ stay put: the next minimum is in this slice or
  // later, which is exactly where the next lap scan resumes.
  min_located_ = false;
  return out;
}

void CalendarQueue::reset_cursor() {
  cursor_ = 0;
  year_start_ns_ = 0;  // trivially satisfies the invariant: times are >= 0
  min_located_ = false;
}

void CalendarQueue::rebuild(std::size_t nbuckets) {
  std::vector<Entry> all;
  all.reserve(size_);
  for (auto& bucket : buckets_) {
    for (auto& entry : bucket) all.push_back(std::move(entry));
    bucket.clear();
  }
  // Width := 2x the mean positive *event* gap rounded up to a power of two
  // (bucket_of/slice_start are then shifts), so a bucket's slice holds a few
  // events on average. The gap is estimated from a sorted stride-sample:
  // adjacent samples span ~`stride` events of the full time order, so the
  // mean sample gap overestimates the event gap by the stride factor and
  // must be divided back down — without that correction a large uniform
  // storm gets a width ~stride× too wide, crams the population into a
  // handful of buckets, and the insertion sort degrades to O(n) per push.
  // All-equal samples keep the previous width (any width is as good then).
  if (all.size() >= 2) {
    std::vector<std::int64_t> sample;
    const std::size_t stride = std::max<std::size_t>(1, all.size() / 64);
    for (std::size_t i = 0; i < all.size(); i += stride) sample.push_back(all[i].time.ns());
    std::sort(sample.begin(), sample.end());
    std::int64_t gap_sum = 0;
    std::int64_t gaps = 0;
    for (std::size_t i = 1; i < sample.size(); ++i) {
      const std::int64_t gap = sample[i] - sample[i - 1];
      if (gap > 0 && gap_sum < std::numeric_limits<std::int64_t>::max() / 4 - gap) {
        gap_sum += gap;
        ++gaps;
      }
    }
    if (gaps > 0) {
      const std::int64_t mean_event_gap = gap_sum / (gaps * static_cast<std::int64_t>(stride));
      const auto target = static_cast<std::uint64_t>(std::clamp<std::int64_t>(
          2 * mean_event_gap, 1, std::int64_t{1} << 61));
      width_shift_ = static_cast<unsigned>(std::bit_width(target - 1));  // ceil(log2)
      width_ns_ = std::int64_t{1} << width_shift_;
    }
  }
  buckets_.clear();
  buckets_.resize(nbuckets);
  mask_ = nbuckets - 1;
  size_ = 0;
  for (auto& entry : all) insert_rebuilt(std::move(entry));
  reset_cursor();
  ++resizes_;
}

void CalendarQueue::insert_rebuilt(Entry entry) {
  auto& bucket = buckets_[bucket_of(entry.time.ns())];
  const auto pos = std::upper_bound(
      bucket.begin(), bucket.end(), entry,
      [](const Entry& value, const Entry& elem) { return earlier(elem, value); });
  bucket.insert(pos, std::move(entry));
  ++size_;
}

}  // namespace pio::sim::detail
