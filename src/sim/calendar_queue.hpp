// PIOEval sim: calendar event queue — an O(1)-amortised scheduler option.
//
// The engine's default priority queue is a 4-ary min-heap: O(log n) per
// operation, excellent constants, fully general. A *calendar queue*
// (R. Brown, CACM 1988) instead hashes events by time into "days" (buckets)
// of one "year" (bucket_count × bucket_width): push indexes directly into a
// bucket and insertion-sorts within it, pop scans forward from a cursor
// bucket-by-bucket through the current year. When the bucket width tracks
// the mean event-time gap — maintained here by resampling on power-of-two
// resizes — buckets hold O(1) events each and both operations are O(1)
// amortised, which is why splay trees and calendar queues dominate classic
// DES cores for storm-like (uniform-ish) event distributions.
//
// Determinism: the engine's total order is (time, insertion seq). Bucket
// index is a pure function of time, so equal-time events always share a
// bucket, where they sit seq-sorted — the pop sequence is byte-identical to
// the heap's for any workload, which tests/test_parsim.cpp proves on random
// storms. `QueueKind` selects the implementation per engine; digests must
// never depend on the choice.
//
// Ordering cursor invariant: no queued event's time precedes `year_start_`
// (the start of the cursor bucket's current slice). Pops advance the cursor
// monotonically; a push behind the cursor rewinds it; a full fruitless lap
// (or saturating slice arithmetic near SimTime::max) falls back to a direct
// scan of all bucket minima, then re-anchors the cursor at the winner.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace pio::sim {

/// Event handle used to cancel a scheduled event. Cancellation is lazy: the
/// slot is marked dead and the entry skipped when popped. Never zero, so 0
/// can serve as a "no event scheduled" sentinel in models.
using EventId = std::uint64_t;

/// Which priority-queue implementation an engine schedules on. Both produce
/// the identical (time, insertion-seq) pop order; the choice is purely a
/// performance knob (benched head-to-head by BM_SchedulerQueue).
enum class QueueKind : std::uint8_t {
  kQuadHeap = 0,  ///< 4-ary min-heap: O(log n), general-purpose default
  kCalendar = 1,  ///< calendar queue: O(1) amortised on storm-like loads
};

namespace detail {

/// One queued event: a 24-byte trivially-copyable ordering key. The callable
/// lives in the engine's per-slot side array, not in the entry, so queue
/// sifts and bucket inserts move plain PODs (DESIGN.md §11).
struct Entry {
  SimTime time;
  std::uint64_t seq;  // tie-break: insertion order at equal time
  EventId id;
};

/// The engine's total event order.
inline bool earlier(const Entry& a, const Entry& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

/// Calendar queue over `Entry`. Buckets are vectors kept sorted descending
/// by `earlier` (minimum at the back), so the common pop is a pop_back.
///
/// Exception contract (mirrors the engine's reserve-before-arm rule): call
/// `prepare(t)` first — it performs any resize and reserves the destination
/// bucket, and is the only mutating call that may allocate or throw; then
/// `push_prepared(t, ...)` with the same `t` is noexcept.
class CalendarQueue {
 public:
  CalendarQueue();

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Make the next `push_prepared(t, ...)` non-throwing: resize the calendar
  /// if the load factor calls for it, then reserve the destination bucket.
  void prepare(SimTime t);

  /// Insert an event. `t` must equal the time just passed to `prepare`.
  void push_prepared(SimTime t, std::uint64_t seq, EventId id) noexcept;

  /// The minimum entry by (time, seq). Precondition: !empty().
  [[nodiscard]] Entry& peek_min();

  /// Remove and return the minimum entry. Precondition: !empty().
  Entry pop_min();

  /// Erase every entry for which `dead(entry)` holds, preserving order
  /// (engine compaction). O(n); re-anchors the cursor.
  template <typename Dead>
  void remove_if(Dead dead) {
    std::size_t remaining = 0;
    for (auto& bucket : buckets_) {
      std::size_t kept = 0;
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (dead(bucket[i])) continue;
        if (kept != i) bucket[kept] = std::move(bucket[i]);
        ++kept;
      }
      bucket.resize(kept);
      remaining += kept;
    }
    size_ = remaining;
    reset_cursor();
  }

  /// Calendar rebuilds (grow + shrink) since construction.
  [[nodiscard]] std::uint64_t resizes() const { return resizes_; }
  /// Current bucket count (power of two).
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  /// Current bucket width in simulated nanoseconds.
  [[nodiscard]] std::int64_t width_ns() const { return width_ns_; }

 private:
  static constexpr std::size_t kMinBuckets = 8;

  // Bucket width is kept a power of two so the per-push bucket index and the
  // per-pop slice arithmetic are shifts, not 64-bit divisions (a division
  // per event is comparable to the entire rest of a push). Event times are
  // non-negative, so the shift matches the division exactly.
  [[nodiscard]] std::size_t bucket_of(std::int64_t ns) const {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(ns) >> width_shift_) & mask_;
  }
  [[nodiscard]] std::int64_t slice_start(std::int64_t ns) const {
    return static_cast<std::int64_t>((static_cast<std::uint64_t>(ns) >> width_shift_)
                                     << width_shift_);
  }

  /// Point cursor_ / year_start_ns_ at the bucket holding the global
  /// minimum. Precondition: size_ > 0.
  void locate_min();
  void reset_cursor();
  /// Re-bucket everything into `nbuckets` buckets with a freshly estimated
  /// width (may allocate).
  void rebuild(std::size_t nbuckets);
  /// Sorted insert into the home bucket (may allocate — rebuild path only).
  void insert_rebuilt(Entry entry);

  std::vector<std::vector<Entry>> buckets_;
  std::size_t mask_;
  std::size_t size_ = 0;
  unsigned width_shift_ = 10;  ///< bucket width = 1 << width_shift_ ns
  std::int64_t width_ns_ = 1024;
  std::size_t cursor_ = 0;
  std::int64_t year_start_ns_ = 0;
  bool min_located_ = false;
  std::uint64_t resizes_ = 0;
};

}  // namespace detail
}  // namespace pio::sim
