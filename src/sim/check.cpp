#include "sim/check.hpp"

#include <stdexcept>

namespace pio::sim::check {

void fail(const char* invariant, const std::string& detail) {
  std::string msg = "sim invariant violated [";
  msg += invariant;
  msg += "]";
  if (!detail.empty()) {
    msg += ": ";
    msg += detail;
  }
  throw std::logic_error(msg);
}

}  // namespace pio::sim::check
