// PIOEval sim: runtime invariant checks for the deterministic engine.
//
// These guard the *internal* invariants the determinism contract rests on
// (monotonic virtual clock, handler-map/heap agreement, fully drained queues
// at campaign end). API-contract violations (scheduling into the past,
// negative delays) always throw from the engine itself; the checks here are
// belt-and-braces assertions that catch engine/model bugs early instead of
// letting them surface as silently divergent replays.
//
// Enabled by default (each check is O(1) on top of O(log n) engine work).
// Define PIO_SIM_NO_CHECKS (cmake -DPIO_SIM_CHECKS=OFF) to compile them out
// for maximum-throughput production sweeps.
#pragma once

#include <cstdint>
#include <string>

namespace pio::sim::check {

#if defined(PIO_SIM_NO_CHECKS)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Throws std::logic_error tagged with the violated invariant. Centralised
/// so a debugger breakpoint on one symbol catches every invariant failure.
[[noreturn]] void fail(const char* invariant, const std::string& detail);

/// Assert `cond`; on failure, report `invariant` (a short stable name) and
/// `detail` (context: sizes, times). Compiles to nothing when disabled.
inline void that(bool cond, const char* invariant, const std::string& detail = {}) {
  if constexpr (kEnabled) {
    if (!cond) fail(invariant, detail);
  } else {
    (void)cond;
    (void)invariant;
    (void)detail;
  }
}

// -- fault-era invariants ---------------------------------------------------
//
// Introduced with pio::fault: once components can crash and clients can
// abandon in-flight work, two new ways to corrupt a run appear. Callers pass
// plain facts (a down flag, a counter) so this header stays dependency-free.

/// F1: no completion handler may fire on a resource during its down
/// interval. A handler inside the window means a model leaked work across a
/// crash instead of deferring it to recovery (fault::Timeline callers
/// precompute `is_down` at the handler's fire time).
inline void handler_outside_down_interval(bool is_down, const char* resource) {
  that(!is_down, "fault.handler-during-down", resource);
}

/// F2: at campaign end, every op abandoned by a retry timeout/giveup must
/// have drained — its in-flight events completed as orphans or were
/// cancelled, never leaked. `in_flight` is the abandoned-but-undrained
/// count; it must be zero once the engine queue is empty.
inline void abandoned_ops_drained(std::uint64_t in_flight) {
  that(in_flight == 0, "fault.abandoned-op-leak",
       kEnabled ? std::to_string(in_flight) + " abandoned ops still in flight" : std::string{});
}

/// C1: write-back never drops acknowledged bytes. At quiescence every dirty
/// page the client cache acknowledged to the application must have been
/// written back (the durability ledger's F3 audit then confirms the bytes
/// landed). `dirty_pages` is the residual; it must be zero once the engine
/// queue is empty.
inline void cache_writeback_drained(std::uint64_t dirty_pages) {
  that(dirty_pages == 0, "cache.writeback-undrained",
       kEnabled ? std::to_string(dirty_pages) + " dirty pages never written back"
                : std::string{});
}

/// F3: no acknowledged write is ever lost. At campaign end, every byte
/// range the durability ledger acknowledged to a client must still be held
/// by at least one replica OST (up or down — durability is about the data
/// existing somewhere, not about it being reachable right now). `lost_bytes`
/// is the audited deficit; it must be zero.
inline void acked_writes_durable(std::uint64_t lost_bytes) {
  that(lost_bytes == 0, "fault.acked-write-lost",
       kEnabled ? std::to_string(lost_bytes) + " acknowledged bytes held by no replica"
                : std::string{});
}

// -- overload-era invariants (F5) ------------------------------------------
//
// Introduced with admission control: once servers can reject or shed work,
// every submitted op must be accounted for exactly once, and client retries
// must stay within the configured budget (DESIGN.md §14).

/// F5a: admission accounting is exact. At quiescence, every op submitted to
/// a server resolved exactly one way: completed ok, rejected at the door
/// (down or overloaded), shed at dequeue, or interrupted by a crash.
/// `accounted` is the sum of those outcome counters; it must equal
/// `submitted` — a gap means an op vanished (or was double-counted).
inline void admission_accounting_exact(std::uint64_t submitted, std::uint64_t accounted,
                                       const char* server) {
  that(submitted == accounted, "overload.admission-accounting",
       kEnabled ? std::string(server) + ": submitted=" + std::to_string(submitted) +
                      " accounted=" + std::to_string(accounted)
                : std::string{});
}

/// F5b: retry amplification is bounded. With a token-bucket retry budget
/// enabled, the retries actually spent can never exceed the initial burst
/// allowance plus the per-success earn rate: spent <= cap + ratio * deposits.
inline void retry_amplification_bounded(std::uint64_t spent, double allowed) {
  that(static_cast<double>(spent) <= allowed + 1e-9, "overload.retry-amplification",
       kEnabled ? std::to_string(spent) + " retries spent against an allowance of " +
                      std::to_string(allowed)
                : std::string{});
}

}  // namespace pio::sim::check
