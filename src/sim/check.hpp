// PIOEval sim: runtime invariant checks for the deterministic engine.
//
// These guard the *internal* invariants the determinism contract rests on
// (monotonic virtual clock, handler-map/heap agreement, fully drained queues
// at campaign end). API-contract violations (scheduling into the past,
// negative delays) always throw from the engine itself; the checks here are
// belt-and-braces assertions that catch engine/model bugs early instead of
// letting them surface as silently divergent replays.
//
// Enabled by default (each check is O(1) on top of O(log n) engine work).
// Define PIO_SIM_NO_CHECKS (cmake -DPIO_SIM_CHECKS=OFF) to compile them out
// for maximum-throughput production sweeps.
#pragma once

#include <string>

namespace pio::sim::check {

#if defined(PIO_SIM_NO_CHECKS)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Throws std::logic_error tagged with the violated invariant. Centralised
/// so a debugger breakpoint on one symbol catches every invariant failure.
[[noreturn]] void fail(const char* invariant, const std::string& detail);

/// Assert `cond`; on failure, report `invariant` (a short stable name) and
/// `detail` (context: sizes, times). Compiles to nothing when disabled.
inline void that(bool cond, const char* invariant, const std::string& detail = {}) {
  if constexpr (kEnabled) {
    if (!cond) fail(invariant, detail);
  } else {
    (void)cond;
    (void)invariant;
    (void)detail;
  }
}

}  // namespace pio::sim::check
