#include "sim/engine.hpp"

#include <algorithm>
#include <string>

#include "sim/check.hpp"

namespace pio::sim {

namespace detail {

namespace {
/// The engine whose events the current thread is executing (shard windows).
thread_local const Engine* tl_active_engine = nullptr;
}  // namespace

ActiveEngineScope::ActiveEngineScope(const Engine* engine) noexcept
    : prev_(tl_active_engine) {
  tl_active_engine = engine;
}

ActiveEngineScope::~ActiveEngineScope() { tl_active_engine = prev_; }

const Engine* active_engine() noexcept { return tl_active_engine; }

}  // namespace detail

Engine::Engine(std::uint64_t seed, EngineOptions options)
    : seed_(seed), kind_(options.queue) {}

void Engine::guard_domain() const {
  if constexpr (check::kEnabled) {
    // A null active engine means setup/drain code between windows (the
    // coordinator thread), which is sanctioned; a *different* active engine
    // means a handler reached across domains instead of using send().
    const Engine* active = detail::tl_active_engine;
    if (active != nullptr && active != this) {
      check::fail("domain confinement",
                  "handler scheduled directly into a foreign domain engine; "
                  "cross-domain events must go through ShardedEngine::send");
    }
  }
}

void Engine::grow_slots() {
  // Mint slots a whole task chunk at a time: a storm that schedules N fresh
  // events would otherwise take this cold path N times, and the capacity
  // checks dominate its cost. Reserve/allocate everything first, then mutate
  // with noexcept push_backs only: a throw mid-growth must not leave a slot
  // outside both the free list and the armed population (live_slots() would
  // drift from pending_). A minted-but-unused task chunk is benign; a leaked
  // slot is not.
  const std::size_t base = gens_.size();
  const std::size_t total = base + (kTaskChunkSize - (base & (kTaskChunkSize - 1)));
  if (free_slots_.capacity() < total) {
    free_slots_.reserve(std::max<std::size_t>(total, base * 2));
  }
  if (gens_.capacity() < total) gens_.reserve(std::max<std::size_t>(total, base * 2));
  if (((total - 1) >> kTaskChunkShift) >= task_chunks_.size()) {
    task_chunks_.push_back(std::make_unique<detail::Task[]>(kTaskChunkSize));
  }
  // Push in descending order so fresh slots pop in ascending order — the
  // same hand-out sequence as one-at-a-time minting produced.
  for (std::size_t slot = total; slot-- > base;) {
    gens_.push_back(1);
    free_slots_.push_back(static_cast<std::uint32_t>(slot));
  }
}

void Engine::retire(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (++gens_[slot] == 0) gens_[slot] = 1;  // generation 0 is never issued
  free_slots_.push_back(slot);
  --pending_;
}

void Engine::sift_hole(std::size_t i, detail::Entry sinking) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = i * 4 + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t child = first + 1; child < last; ++child) {
      if (earlier(heap_[child], heap_[best])) best = child;
    }
    if (!earlier(heap_[best], sinking)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = sinking;
}

detail::Entry Engine::pop_top() {
  const detail::Entry out = heap_.front();
  const detail::Entry sinking = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_hole(0, sinking);
  return out;
}

void Engine::compact() {
  if (kind_ == QueueKind::kCalendar) {
    calq_.remove_if([this](const detail::Entry& entry) { return !armed(entry.id); });
    dead_ = 0;
    return;
  }
  const auto first_dead = std::remove_if(
      heap_.begin(), heap_.end(),
      [this](const detail::Entry& entry) { return !armed(entry.id); });
  heap_.erase(first_dead, heap_.end());  // keys only: callables died at cancel
  // Floyd heapify: sift from the last parent down to the root. Order on
  // (time, seq) is a strict total order, so the resulting pop sequence is
  // identical to the lazy path's — compaction cannot move the campaign hash.
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) {
      sift_hole(i, heap_[i]);
    }
  }
  dead_ = 0;
}

bool Engine::cancel(EventId id) {
  if (!armed(id)) return false;
  task_at(slot_of(id)).reset();  // the callable (and its captures) dies now
  retire(id);
  ++dead_;
  // The orphaned queue key is normally dropped lazily when it surfaces; once
  // dead keys outnumber live ones, compact so the queue cannot grow without
  // bound under schedule-far-future-then-cancel. The threshold keeps small
  // queues on the strict O(1) path, and the trigger depends only on the
  // event sequence, so it is deterministic across runs and thread counts.
  constexpr std::uint64_t kCompactMinDead = 64;
  if (dead_ >= kCompactMinDead && dead_ * 2 > queue_size()) compact();
  return true;
}

void Engine::fire(const detail::Entry& top) {
  if constexpr (check::kEnabled) {
    // Semantic per-event check: a time warp must fail on the exact event.
    if (top.time < now_) {
      check::fail("monotonic clock", "event at " + std::to_string(top.time.ns()) +
                                         "ns behind now=" + std::to_string(now_.ns()) + "ns");
    }
    // Global accounting invariants drift monotonically once corrupted, so
    // sampling every 64th event catches the same bug classes as per-event
    // checking at a fraction of the hot-loop cost; assert_drained() is the
    // exact backstop at campaign end.
    if ((executed_ & 63) == 0) {
      if (live_slots() != pending_ + executing_) {
        check::fail("slot/pending agreement", "live=" + std::to_string(live_slots()) +
                                                  " pending=" + std::to_string(pending_) +
                                                  " executing=" + std::to_string(executing_));
      }
      if (queue_size() != pending_ + dead_) {
        check::fail("queue covers pending + dead events",
                    "queue=" + std::to_string(queue_size()) + " pending=" +
                        std::to_string(pending_) + " dead=" + std::to_string(dead_));
      }
    }
  }
  now_ = top.time;
  ++executed_;
}

void Engine::execute_popped(const detail::Entry& top) {
  // Invalidate the id (a cancel from inside any handler is now a no-op) but
  // hold the slot off the free list while its callable runs: a re-arm must
  // not construct a new callable over one that is still executing. The move
  // this replaces cost a 48-byte relocate per event on the drain path.
  const std::uint32_t slot = slot_of(top.id);
  if (++gens_[slot] == 0) gens_[slot] = 1;  // generation 0 is never issued
  --pending_;
  ++executing_;
  fire(top);
  detail::Task& task = task_at(slot);
  try {
    task();
  } catch (...) {
    task.reset();
    --executing_;
    free_slots_.push_back(slot);
    throw;
  }
  task.reset();  // captures die at fire, not at next slot reuse
  --executing_;
  free_slots_.push_back(slot);
}

bool Engine::step() {
  while (!queue_empty()) {
    if (dead_ != 0 && !armed(queue_top().id)) {
      queue_pop();  // cancelled: drop the key (its callable died at cancel)
      --dead_;
      continue;
    }
    const detail::Entry top = queue_pop();
    execute_popped(top);
    return true;
  }
  return false;
}

std::uint64_t Engine::run(SimTime until) {
  // Specialised per queue kind: the heap loop is the engine's hottest code,
  // and hoisting the dispatch out of it drops several per-event branches.
  std::uint64_t n = 0;
  if (kind_ == QueueKind::kCalendar) {
    while (!calq_.empty()) {
      // dead_ == 0 means every key in the queue is armed (queue covers
      // pending + dead): skip the per-event generation probe entirely.
      if (dead_ != 0 && !armed(calq_.peek_min().id)) {
        calq_.pop_min();  // cancelled key; its callable died at cancel
        --dead_;
        continue;
      }
      if (calq_.peek_min().time > until) break;
      __builtin_prefetch(&task_at(slot_of(calq_.peek_min().id)));
      const detail::Entry top = calq_.pop_min();
      execute_popped(top);
      ++n;
    }
    return n;
  }
  while (!heap_.empty()) {
    // Skip over cancelled keys to find the true next time (none exist while
    // dead_ == 0, so the common case is one predictable register test).
    if (dead_ != 0 && !armed(heap_.front().id)) {
      pop_top();
      --dead_;
      continue;
    }
    if (heap_.front().time > until) break;
    // Pull the callable's cache line in while the pop's sift-down works.
    __builtin_prefetch(&task_at(slot_of(heap_.front().id)));
    const detail::Entry top = pop_top();
    execute_popped(top);
    ++n;
  }
  return n;
}

std::optional<SimTime> Engine::peek_next_time() {
  while (!queue_empty()) {
    detail::Entry& top = queue_top();
    if (dead_ != 0 && !armed(top.id)) {
      queue_pop();
      --dead_;
      continue;
    }
    return top.time;
  }
  return std::nullopt;
}

void Engine::assert_drained() const {
  check::that(pending_ == 0 && live_slots() == 0, "queue drained at campaign end",
              "pending=" + std::to_string(pending_) +
                  " live_slots=" + std::to_string(live_slots()));
}

}  // namespace pio::sim
