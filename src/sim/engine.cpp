#include "sim/engine.hpp"

#include <stdexcept>
#include <string>

#include "sim/check.hpp"

namespace pio::sim {

Engine::Engine(std::uint64_t seed) : seed_(seed) {}

EventId Engine::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) throw std::logic_error("Engine::schedule_at: time is in the past");
  if (!fn) throw std::invalid_argument("Engine::schedule_at: empty handler");
  const EventId id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  ++pending_;
  check::that(handlers_.size() == pending_, "handler-map/pending agreement",
              "handlers=" + std::to_string(handlers_.size()) +
                  " pending=" + std::to_string(pending_));
  return id;
}

EventId Engine::schedule_after(SimTime delay, std::function<void()> fn) {
  if (delay < SimTime::zero()) {
    throw std::logic_error("Engine::schedule_after: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) {
  const auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  --pending_;
  return true;
}

bool Engine::step() {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    queue_.pop();
    const auto it = handlers_.find(top.id);
    if (it == handlers_.end()) continue;  // cancelled
    // Move the handler out before invoking: the handler may schedule or
    // cancel other events, mutating handlers_.
    std::function<void()> fn = std::move(it->second);
    handlers_.erase(it);
    --pending_;
    check::that(top.time >= now_, "monotonic clock",
                "event at " + std::to_string(top.time.ns()) + "ns behind now=" +
                    std::to_string(now_.ns()) + "ns");
    check::that(handlers_.size() == pending_, "handler-map/pending agreement",
                "handlers=" + std::to_string(handlers_.size()) +
                    " pending=" + std::to_string(pending_));
    check::that(queue_.size() >= pending_, "heap covers pending events",
                "heap=" + std::to_string(queue_.size()) +
                    " pending=" + std::to_string(pending_));
    now_ = top.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Engine::assert_drained() const {
  check::that(pending_ == 0 && handlers_.empty(), "queue drained at campaign end",
              "pending=" + std::to_string(pending_) +
                  " handlers=" + std::to_string(handlers_.size()));
}

std::uint64_t Engine::run(SimTime until) {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    // Skip over cancelled entries to find the true next time.
    const Entry top = queue_.top();
    if (handlers_.find(top.id) == handlers_.end()) {
      queue_.pop();
      continue;
    }
    if (top.time > until) break;
    step();
    ++n;
  }
  return n;
}

}  // namespace pio::sim
