#include "sim/engine.hpp"

#include <algorithm>
#include <string>

#include "sim/check.hpp"

namespace pio::sim {

namespace detail {

OversizeSlab::~OversizeSlab() {
  for (Block* list : free_lists_) {
    while (list != nullptr) {
      Block* next = list->next_free;
      ::operator delete(static_cast<void*>(list));
      list = next;
    }
  }
}

void* OversizeSlab::allocate(std::size_t bytes) {
  int size_class = 0;
  while (size_class < kClasses && class_payload_bytes(size_class) < bytes) ++size_class;
  if (size_class < kClasses) {
    if (Block* block = free_lists_[size_class]; block != nullptr) {
      free_lists_[size_class] = block->next_free;
      return reinterpret_cast<unsigned char*>(block) + kHeaderBytes;
    }
    auto* block = static_cast<Block*>(
        ::operator new(kHeaderBytes + class_payload_bytes(size_class)));
    block->owner = this;
    block->size_class = static_cast<std::uint32_t>(size_class);
    block->next_free = nullptr;
    return reinterpret_cast<unsigned char*>(block) + kHeaderBytes;
  }
  // Beyond the largest class: plain heap block, freed on release.
  auto* block = static_cast<Block*>(::operator new(kHeaderBytes + bytes));
  block->owner = nullptr;
  block->size_class = 0;
  block->next_free = nullptr;
  return reinterpret_cast<unsigned char*>(block) + kHeaderBytes;
}

void OversizeSlab::release(void* payload) noexcept {
  auto* block =
      reinterpret_cast<Block*>(static_cast<unsigned char*>(payload) - kHeaderBytes);
  if (block->owner == nullptr) {
    ::operator delete(static_cast<void*>(block));
    return;
  }
  OversizeSlab& slab = *block->owner;
  block->next_free = slab.free_lists_[block->size_class];
  slab.free_lists_[block->size_class] = block;
}

}  // namespace detail

Engine::Engine(std::uint64_t seed) : seed_(seed) {}

EventId Engine::arm_slot() {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(gens_.size());
    gens_.push_back(1);
  }
  ++pending_;
  if constexpr (check::kEnabled) {
    if (live_slots() != pending_) {
      check::fail("slot/pending agreement", "live=" + std::to_string(live_slots()) +
                                                " pending=" + std::to_string(pending_));
    }
  }
  return (static_cast<EventId>(gens_[slot]) << 32) | slot;
}

void Engine::retire(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (++gens_[slot] == 0) gens_[slot] = 1;  // generation 0 is never issued
  free_slots_.push_back(slot);
  --pending_;
}

void Engine::reserve_entry() {
  if (heap_.size() == heap_.capacity()) {
    heap_.reserve(heap_.capacity() == 0 ? 16 : heap_.capacity() * 2);
  }
}

void Engine::push_entry(SimTime t, EventId id, detail::Task task) {
  heap_.push_back(Entry{t, next_seq_++, id, std::move(task)});
  // Sift up with a hole instead of pairwise swaps: one move per level.
  std::size_t i = heap_.size() - 1;
  Entry rising = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(rising, heap_[parent])) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(rising);
}

void Engine::sift_hole(std::size_t i, Entry sinking) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = i * 4 + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t child = first + 1; child < last; ++child) {
      if (earlier(heap_[child], heap_[best])) best = child;
    }
    if (!earlier(heap_[best], sinking)) break;
    heap_[i] = std::move(heap_[best]);
    i = best;
  }
  heap_[i] = std::move(sinking);
}

Engine::Entry Engine::pop_top() {
  Entry out = std::move(heap_.front());
  Entry sinking = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_hole(0, std::move(sinking));
  return out;
}

void Engine::compact() {
  const auto first_dead = std::remove_if(
      heap_.begin(), heap_.end(), [this](const Entry& entry) { return !armed(entry.id); });
  heap_.erase(first_dead, heap_.end());  // destroys the cancelled callables
  // Floyd heapify: sift from the last parent down to the root. Order on
  // (time, seq) is a strict total order, so the resulting pop sequence is
  // identical to the lazy path's — compaction cannot move the campaign hash.
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) {
      sift_hole(i, std::move(heap_[i]));
    }
  }
  dead_ = 0;
}

bool Engine::cancel(EventId id) {
  if (!armed(id)) return false;
  retire(id);
  ++dead_;
  // The heap entry (and its callable) is normally destroyed lazily when it
  // surfaces; once dead entries outnumber live ones, compact so cancelled
  // handlers' captures are released and the heap cannot grow without bound
  // under schedule-far-future-then-cancel. The threshold keeps small queues
  // on the strict O(1) path, and the trigger depends only on the event
  // sequence, so it is deterministic across runs and thread counts.
  constexpr std::uint64_t kCompactMinDead = 64;
  if (dead_ >= kCompactMinDead && dead_ * 2 > heap_.size()) compact();
  return true;
}

void Engine::fire(Entry& top) {
  if constexpr (check::kEnabled) {
    if (top.time < now_) {
      check::fail("monotonic clock", "event at " + std::to_string(top.time.ns()) +
                                         "ns behind now=" + std::to_string(now_.ns()) + "ns");
    }
    if (live_slots() != pending_) {
      check::fail("slot/pending agreement", "live=" + std::to_string(live_slots()) +
                                                " pending=" + std::to_string(pending_));
    }
    if (heap_.size() != pending_ + dead_) {
      check::fail("heap covers pending + dead events",
                  "heap=" + std::to_string(heap_.size()) + " pending=" +
                      std::to_string(pending_) + " dead=" + std::to_string(dead_));
    }
  }
  now_ = top.time;
  ++executed_;
  top.task();
}

bool Engine::step() {
  while (!heap_.empty()) {
    if (!armed(heap_.front().id)) {
      pop_top();  // cancelled: drop the entry, destroying its callable
      --dead_;
      continue;
    }
    Entry top = pop_top();
    retire(top.id);
    fire(top);
    return true;
  }
  return false;
}

std::uint64_t Engine::run(SimTime until) {
  std::uint64_t n = 0;
  while (!heap_.empty()) {
    // Skip over cancelled entries to find the true next time.
    if (!armed(heap_.front().id)) {
      pop_top();
      --dead_;
      continue;
    }
    if (heap_.front().time > until) break;
    Entry top = pop_top();
    retire(top.id);
    fire(top);
    ++n;
  }
  return n;
}

void Engine::assert_drained() const {
  check::that(pending_ == 0 && live_slots() == 0, "queue drained at campaign end",
              "pending=" + std::to_string(pending_) +
                  " live_slots=" + std::to_string(live_slots()));
}

}  // namespace pio::sim
