// PIOEval simulation substrate: a deterministic discrete-event engine.
//
// This is the ROSS/CODES-shaped foundation of the paper's §IV.C: every
// storage-system simulation (trace-based, execution-driven, synthetic) runs
// on this engine. The engine is deliberately single-threaded and strictly
// deterministic: events at equal timestamps fire in insertion order, and all
// randomness flows through per-purpose `Rng` substreams of one campaign seed,
// so two runs with equal inputs produce byte-identical outputs. Determinism
// is load-bearing for the replay-fidelity and extrapolation experiments.
// (Facility-scale runs parallelise by composing many engines, one per
// domain, under sim::ShardedEngine — see shard.hpp and DESIGN.md §16; each
// domain engine remains single-threaded.)
//
// Hot-path layout (DESIGN.md §11): an event is one queue entry ordered on
// (time, insertion seq), in either a 4-ary min-heap or a calendar queue
// (`QueueKind`, see calendar_queue.hpp — both produce the identical pop
// order). The entry itself is a 24-byte trivially-copyable key, so heap
// sifts and calendar bucket inserts move raw PODs; the callable lives in a
// per-slot side array indexed by the event's slot — small callables
// (<= Task::kInlineBytes after decay) in the Task's inline buffer, oversized
// ones in a per-engine free-list slab or, when `use_arena` attaches one, a
// bump-allocating PayloadArena (arena.hpp) — so scheduling an event performs
// no per-event heap allocation in the common case and the callable is
// written (and later moved out) exactly once, never dragged through queue
// reorderings. Cancellation is amortised O(1) through the generation-tagged
// slot array: `cancel` bumps the slot's generation and destroys the callable
// eagerly (its slot is known); the orphaned key is dropped lazily when it
// surfaces at the top — or via compaction once dead keys outnumber live
// ones, which bounds queue growth under schedule-then-cancel churn.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/arena.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/check.hpp"

namespace pio::sim {

class Engine;

namespace detail {

/// RAII marker: "the current thread is executing events of this engine".
/// The sharded runner wraps each domain's window execution in one; the
/// engine's confinement guard (checks builds only) uses it to fail loudly
/// when a handler schedules directly into a foreign domain instead of going
/// through the mailbox protocol (shard.hpp).
class ActiveEngineScope {
 public:
  explicit ActiveEngineScope(const Engine* engine) noexcept;
  ~ActiveEngineScope();
  ActiveEngineScope(const ActiveEngineScope&) = delete;
  ActiveEngineScope& operator=(const ActiveEngineScope&) = delete;

 private:
  const Engine* prev_;
};

/// The engine whose events the current thread is executing, or nullptr
/// outside any ActiveEngineScope (setup code, coordinator between windows).
[[nodiscard]] const Engine* active_engine() noexcept;

}  // namespace detail

/// Engine construction knobs. Queue choice is pure performance — digests
/// never depend on it (tests/test_parsim.cpp holds that line).
struct EngineOptions {
  QueueKind queue = QueueKind::kQuadHeap;
};

/// Deterministic discrete-event scheduler.
class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1, EngineOptions options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. Monotonically non-decreasing across `step`.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule a `void()` callable at absolute time `t` (>= now). Throws on
  /// scheduling into the past — a model bug that must fail loudly, not warp
  /// time. Accepts any callable; an empty std::function is rejected.
  template <typename F>
  EventId schedule_at(SimTime t, F&& fn) {
    if (t < now_) throw std::logic_error("Engine::schedule_at: time is in the past");
    if constexpr (std::is_constructible_v<bool, const std::decay_t<F>&>) {
      if (!fn) throw std::invalid_argument("Engine::schedule_at: empty handler");
    }
    if (confined_) guard_domain();
    // Capacity first: every mutation after the callable lands in its slot is
    // noexcept, or pending_/live_slots() would diverge from the queue.
    if (kind_ == QueueKind::kCalendar) {
      calq_.prepare(t);
    } else {
      reserve_entry();
    }
    ensure_free_slot();
    const std::uint32_t slot = free_slots_.back();
    // Construct the callable in place; on throw the slot is still free.
    task_at(slot).emplace(std::forward<F>(fn), detail::PayloadAlloc{&slab_, arena_});
    free_slots_.pop_back();  // arm: nothing below throws
    ++pending_;
    if constexpr (check::kEnabled) {
      // Sampled (see Engine::fire): accounting drift persists, so a periodic
      // probe catches it without a per-arm cost on the hot path.
      if ((next_seq_ & 63) == 0 && live_slots() != pending_ + executing_) {
        check::fail("slot/pending agreement", "live/pending diverged on arm");
      }
    }
    const EventId id = (static_cast<EventId>(gens_[slot]) << 32) | slot;
    if (kind_ == QueueKind::kCalendar) {
      calq_.push_prepared(t, next_seq_++, id);
    } else {
      push_entry(t, id);
    }
    return id;
  }

  /// Schedule `fn` after a non-negative delay from now.
  template <typename F>
  EventId schedule_after(SimTime delay, F&& fn) {
    if (delay < SimTime::zero()) {
      throw std::logic_error("Engine::schedule_after: negative delay");
    }
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled. Amortised O(1). The callable (and anything it captures) is
  /// destroyed immediately — its slot is known — while the orphaned 24-byte
  /// queue key is dropped lazily when it surfaces at the top, or via
  /// compaction once dead keys outnumber live ones, so
  /// schedule-far-future-then-cancel cannot grow the queue without bound.
  bool cancel(EventId id);

  /// Execute the single earliest pending event. Returns false if none.
  bool step();

  /// Run until the queue drains or simulated time would exceed `until`.
  /// Returns the number of events executed.
  std::uint64_t run(SimTime until = SimTime::max());

  /// Time of the earliest pending event, or nullopt when drained. Skims any
  /// cancelled entries off the top (hence non-const); does not advance time.
  /// The sharded runner's safe-window computation is built on this.
  [[nodiscard]] std::optional<SimTime> peek_next_time();

  /// Events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Pending (non-cancelled) events.
  [[nodiscard]] std::uint64_t events_pending() const { return pending_; }

  /// Campaign-end invariant: every scheduled event fired or was cancelled.
  /// A non-empty queue at the end of a run means a model leaked events —
  /// throws via sim::check (no-op when checks are compiled out).
  void assert_drained() const;

  /// Deterministic named random stream; same (seed, id) -> same draws
  /// regardless of when in the run the stream is first requested.
  [[nodiscard]] Rng rng_stream(std::uint64_t id) const { return Rng{seed_, id}; }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Route oversized event payloads through `arena` instead of the built-in
  /// slab (nullptr restores the slab). Payloads already allocated are
  /// unaffected — each one is released to its allocator of origin.
  void use_arena(PayloadArena* arena) { arena_ = arena; }

  /// Which queue implementation this engine schedules on.
  [[nodiscard]] QueueKind queue_kind() const { return kind_; }

 private:
  friend class ShardedEngine;  // sets confined_ when adopting a domain

  static constexpr std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffULL);
  }
  static constexpr std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// Guarantee free_slots_ is non-empty, creating a slot (with its gens_ and
  /// tasks_ entries) if needed. May allocate/throw; call before arming.
  void ensure_free_slot() {
    if (free_slots_.empty()) grow_slots();
  }
  /// Cold path of ensure_free_slot: mint a fresh slot. Also keeps
  /// free_slots_'s capacity ahead of the slot population, so retire()'s
  /// push_back never reallocates.
  void grow_slots();
  /// Invalidate an armed id: bump the generation, recycle the slot
  /// (cancel path; fired events recycle through execute_popped instead).
  void retire(EventId id);
  [[nodiscard]] bool armed(EventId id) const {
    const std::uint32_t slot = slot_of(id);
    return slot < gens_.size() && gens_[slot] == gen_of(id);
  }
  [[nodiscard]] std::uint64_t live_slots() const { return gens_.size() - free_slots_.size(); }

  /// Confinement check (checks builds): scheduling while a *different*
  /// domain engine is active on this thread is a cross-domain race.
  void guard_domain() const;

  /// Grow heap_ (amortised doubling) so the next push cannot throw.
  void reserve_entry() {
    if (heap_.size() == heap_.capacity()) {
      heap_.reserve(heap_.capacity() == 0 ? 16 : heap_.capacity() * 2);
    }
  }
  /// Append to the heap and sift up — header-inline: this is the hot half of
  /// every schedule_at. One copy per level, entries are 24-byte PODs.
  void push_entry(SimTime t, EventId id) {
    heap_.push_back(detail::Entry{t, next_seq_++, id});
    std::size_t i = heap_.size() - 1;
    const detail::Entry rising = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!detail::earlier(rising, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = rising;
  }
  /// Remove and return the heap top (caller checks non-empty).
  detail::Entry pop_top();
  /// Sink `sinking` into the hole at index `i`, restoring heap order.
  void sift_hole(std::size_t i, detail::Entry sinking);
  /// Erase cancelled keys (their callables died at cancel), keeping order.
  void compact();
  /// Invariant checks + clock advance for a just-popped entry (its slot
  /// already counted in executing_). The caller invokes the callable.
  void fire(const detail::Entry& top);
  /// Run a popped entry's callable *in place* — no move out of its slot.
  /// The slot is invalidated (cancel misses) but stays off the free list
  /// while the handler executes, so a re-arm cannot clobber a running
  /// callable; it recycles when the handler returns (or throws).
  void execute_popped(const detail::Entry& top);

  // Queue dispatch (kind_ is fixed at construction).
  [[nodiscard]] bool queue_empty() const {
    return kind_ == QueueKind::kCalendar ? calq_.empty() : heap_.empty();
  }
  [[nodiscard]] std::size_t queue_size() const {
    return kind_ == QueueKind::kCalendar ? calq_.size() : heap_.size();
  }
  [[nodiscard]] detail::Entry& queue_top() {
    return kind_ == QueueKind::kCalendar ? calq_.peek_min() : heap_.front();
  }
  detail::Entry queue_pop() {
    return kind_ == QueueKind::kCalendar ? calq_.pop_min() : pop_top();
  }

  SimTime now_ = SimTime::zero();
  std::uint64_t seed_;
  QueueKind kind_;
  bool confined_ = false;  // domain of a ShardedEngine: guard cross-domain use
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t pending_ = 0;
  std::uint64_t executing_ = 0;  // slots held by in-place-running callables
  std::uint64_t dead_ = 0;  // cancelled entries still sitting in the queue
  /// Per-slot callables live in fixed 512-task chunks (32 KiB): stable
  /// addresses, and minting a chunk never relocates live tasks — a plain
  /// vector<Task> would move every task (an indirect call each) on regrowth.
  static constexpr std::size_t kTaskChunkShift = 9;
  static constexpr std::size_t kTaskChunkSize = std::size_t{1} << kTaskChunkShift;
  [[nodiscard]] detail::Task& task_at(std::uint32_t slot) {
    return task_chunks_[slot >> kTaskChunkShift][slot & (kTaskChunkSize - 1)];
  }

  PayloadArena* arena_ = nullptr;  // optional; not owned (see shard.hpp)
  // Slab before task_chunks_: teardown destroys still-pending callables
  // (releasing oversized ones into the slab) before the slab itself is freed.
  detail::OversizeSlab slab_;
  std::vector<detail::Entry> heap_;    // kQuadHeap: 4-ary min-heap on (time, seq)
  detail::CalendarQueue calq_;         // kCalendar
  std::vector<std::unique_ptr<detail::Task[]>> task_chunks_;  // slot -> callable
  std::vector<std::uint32_t> gens_;    // per-slot generation; ids embed theirs
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace pio::sim
