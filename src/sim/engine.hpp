// PIOEval simulation substrate: a deterministic discrete-event engine.
//
// This is the ROSS/CODES-shaped foundation of the paper's §IV.C: every
// storage-system simulation (trace-based, execution-driven, synthetic) runs
// on this engine. The engine is deliberately single-threaded and strictly
// deterministic: events at equal timestamps fire in insertion order, and all
// randomness flows through per-purpose `Rng` substreams of one campaign seed,
// so two runs with equal inputs produce byte-identical outputs. Determinism
// is load-bearing for the replay-fidelity and extrapolation experiments.
//
// Hot-path layout (DESIGN.md §11): an event is one entry in a 4-ary min-heap
// ordered on (time, insertion seq). The callable lives *inside* the entry —
// small callables (<= Task::kInlineBytes after decay) in an inline buffer,
// oversized ones in a per-engine free-list slab — so scheduling an event
// performs no per-event heap allocation in the common case and firing one
// touches no side table. Cancellation is amortised O(1) through a
// generation-tagged slot array: `cancel` bumps the slot's generation, and the
// orphaned heap entry (with its callable) is dropped lazily when it surfaces
// at the top — or eagerly via compaction once dead entries outnumber live
// ones, which bounds both heap growth and destructor deferral.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace pio::sim {

/// Event handle used to cancel a scheduled event. Cancellation is lazy: the
/// slot is marked dead and the entry skipped when popped. Never zero, so 0
/// can serve as a "no event scheduled" sentinel in models.
using EventId = std::uint64_t;

namespace detail {

/// Recycling allocator for event callables too large for the inline buffer
/// of a heap entry. Freed payloads go on per-size-class free lists (64 B …
/// 8 KiB, powers of two) owned by the engine, so a model that repeatedly
/// schedules the same fat closure pays one allocation, not one per event.
/// Payloads beyond the largest class fall back to plain new/delete.
class OversizeSlab {
 public:
  OversizeSlab() = default;
  OversizeSlab(const OversizeSlab&) = delete;
  OversizeSlab& operator=(const OversizeSlab&) = delete;
  ~OversizeSlab();

  /// Storage for `bytes`, aligned for std::max_align_t.
  [[nodiscard]] void* allocate(std::size_t bytes);

  /// Return a payload obtained from `allocate` (any slab). O(1).
  static void release(void* payload) noexcept;

 private:
  struct Block {
    OversizeSlab* owner;       // nullptr: plain heap block, freed on release
    std::uint32_t size_class;  // index into free_lists_ when owner != nullptr
    Block* next_free;
  };
  // Payload follows the header at the next max_align_t boundary.
  static constexpr std::size_t kHeaderBytes =
      (sizeof(Block) + alignof(std::max_align_t) - 1) / alignof(std::max_align_t) *
      alignof(std::max_align_t);
  static constexpr int kClasses = 8;
  static constexpr std::size_t class_payload_bytes(int size_class) {
    return std::size_t{64} << size_class;
  }

  Block* free_lists_[kClasses] = {};
};

/// Move-only type-erased `void()` callable with inline small-buffer storage.
/// The dispatch table is a plain struct of function pointers (no virtual
/// call, no RTTI); relocation is noexcept so heap sifts never throw.
class Task {
 public:
  /// Inline capacity: sized so a captureful lambda with a handful of
  /// pointers/values — or a whole std::function — stays in the entry.
  static constexpr std::size_t kInlineBytes = 48;

  Task() noexcept = default;

  template <typename F, typename Fn = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<Fn, Task>>>
  Task(F&& fn, OversizeSlab& slab) {
    static_assert(std::is_invocable_r_v<void, Fn&>, "Task requires a void() callable");
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      static_assert(alignof(Fn) <= alignof(std::max_align_t),
                    "Task: over-aligned callables are not supported — OversizeSlab "
                    "guarantees only max_align_t alignment; store the over-aligned "
                    "state behind a pointer (e.g. unique_ptr) in the capture");
      void* payload = slab.allocate(sizeof(Fn));
      try {
        ::new (payload) Fn(std::forward<F>(fn));
      } catch (...) {
        OversizeSlab::release(payload);
        throw;
      }
      *reinterpret_cast<void**>(static_cast<void*>(storage_)) = payload;
      ops_ = &kOversizeOps<Fn>;
    }
  }

  Task(Task&& other) noexcept { move_from(other); }
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { reset(); }

  void operator()() { ops_->call(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*call)(void* storage);
    void (*relocate)(void* dst_storage, void* src_storage) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* storage) { (*static_cast<Fn*>(storage))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* storage) noexcept { static_cast<Fn*>(storage)->~Fn(); }};

  template <typename Fn>
  static constexpr Ops kOversizeOps{
      [](void* storage) { (**static_cast<Fn**>(storage))(); },
      [](void* dst, void* src) noexcept { *static_cast<void**>(dst) = *static_cast<void**>(src); },
      [](void* storage) noexcept {
        Fn* fn = *static_cast<Fn**>(storage);
        fn->~Fn();
        OversizeSlab::release(fn);
      }};

  void move_from(Task& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) ops_->relocate(storage_, other.storage_);
    other.ops_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace detail

/// Deterministic discrete-event scheduler.
class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. Monotonically non-decreasing across `step`.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule a `void()` callable at absolute time `t` (>= now). Throws on
  /// scheduling into the past — a model bug that must fail loudly, not warp
  /// time. Accepts any callable; an empty std::function is rejected.
  template <typename F>
  EventId schedule_at(SimTime t, F&& fn) {
    if (t < now_) throw std::logic_error("Engine::schedule_at: time is in the past");
    if constexpr (std::is_constructible_v<bool, const std::decay_t<F>&>) {
      if (!fn) throw std::invalid_argument("Engine::schedule_at: empty handler");
    }
    detail::Task task{std::forward<F>(fn), slab_};
    // Capacity first: once the slot is armed, push_entry must not throw, or
    // pending_/live_slots() would diverge from the heap.
    reserve_entry();
    const EventId id = arm_slot();
    push_entry(t, id, std::move(task));
    return id;
  }

  /// Schedule `fn` after a non-negative delay from now.
  template <typename F>
  EventId schedule_after(SimTime delay, F&& fn) {
    if (delay < SimTime::zero()) {
      throw std::logic_error("Engine::schedule_after: negative delay");
    }
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled. Amortised O(1); the dead entry is normally dropped when it
  /// reaches the top of the heap, but once dead entries outnumber live ones
  /// the heap is compacted, so a cancelled callable (and anything it
  /// captures) is destroyed after at most O(live) further cancellations —
  /// schedule-far-future-then-cancel cannot grow the heap without bound.
  bool cancel(EventId id);

  /// Execute the single earliest pending event. Returns false if none.
  bool step();

  /// Run until the queue drains or simulated time would exceed `until`.
  /// Returns the number of events executed.
  std::uint64_t run(SimTime until = SimTime::max());

  /// Events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Pending (non-cancelled) events.
  [[nodiscard]] std::uint64_t events_pending() const { return pending_; }

  /// Campaign-end invariant: every scheduled event fired or was cancelled.
  /// A non-empty queue at the end of a run means a model leaked events —
  /// throws via sim::check (no-op when checks are compiled out).
  void assert_drained() const;

  /// Deterministic named random stream; same (seed, id) -> same draws
  /// regardless of when in the run the stream is first requested.
  [[nodiscard]] Rng rng_stream(std::uint64_t id) const { return Rng{seed_, id}; }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-break: insertion order at equal time
    EventId id;
    detail::Task task;
  };

  static constexpr std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffULL);
  }
  static constexpr std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static bool earlier(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  /// Acquire a slot (free list first), tag it armed, return its EventId.
  [[nodiscard]] EventId arm_slot();
  /// Invalidate an armed id: bump the generation, recycle the slot.
  void retire(EventId id);
  [[nodiscard]] bool armed(EventId id) const {
    const std::uint32_t slot = slot_of(id);
    return slot < gens_.size() && gens_[slot] == gen_of(id);
  }
  [[nodiscard]] std::uint64_t live_slots() const { return gens_.size() - free_slots_.size(); }

  /// Grow heap_ (amortised doubling) so the next push cannot throw.
  void reserve_entry();
  void push_entry(SimTime t, EventId id, detail::Task task);
  /// Remove and return the heap top (caller checks non-empty).
  Entry pop_top();
  /// Sink `sinking` into the hole at index `i`, restoring heap order.
  void sift_hole(std::size_t i, Entry sinking);
  /// Erase cancelled entries (destroying their callables) and re-heapify.
  void compact();
  /// Fire `top` (already popped and retired). Shared by step/run.
  void fire(Entry& top);

  SimTime now_ = SimTime::zero();
  std::uint64_t seed_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t pending_ = 0;
  std::uint64_t dead_ = 0;  // cancelled entries still sitting in heap_
  // Slab before heap_: teardown destroys entries (releasing oversized
  // callables into the slab) before the slab itself is freed.
  detail::OversizeSlab slab_;
  std::vector<Entry> heap_;            // 4-ary min-heap on (time, seq)
  std::vector<std::uint32_t> gens_;    // per-slot generation; ids embed theirs
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace pio::sim
