// PIOEval simulation substrate: a deterministic discrete-event engine.
//
// This is the ROSS/CODES-shaped foundation of the paper's §IV.C: every
// storage-system simulation (trace-based, execution-driven, synthetic) runs
// on this engine. The engine is deliberately single-threaded and strictly
// deterministic: events at equal timestamps fire in insertion order, and all
// randomness flows through per-purpose `Rng` substreams of one campaign seed,
// so two runs with equal inputs produce byte-identical outputs. Determinism
// is load-bearing for the replay-fidelity and extrapolation experiments.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace pio::sim {

/// Event handle used to cancel a scheduled event. Cancellation is lazy: the
/// slot is marked dead and skipped when popped.
using EventId = std::uint64_t;

/// Deterministic discrete-event scheduler.
class Engine {
 public:
  explicit Engine(std::uint64_t seed = 1);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. Monotonically non-decreasing across `step`.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now). Throws on scheduling into
  /// the past — a model bug that must fail loudly, not warp time.
  EventId schedule_at(SimTime t, std::function<void()> fn);

  /// Schedule `fn` after a non-negative delay from now.
  EventId schedule_after(SimTime delay, std::function<void()> fn);

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled. O(1); the dead slot is dropped when it reaches the top.
  bool cancel(EventId id);

  /// Execute the single earliest pending event. Returns false if none.
  bool step();

  /// Run until the queue drains or simulated time would exceed `until`.
  /// Returns the number of events executed.
  std::uint64_t run(SimTime until = SimTime::max());

  /// Events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Pending (non-cancelled) events.
  [[nodiscard]] std::uint64_t events_pending() const { return pending_; }

  /// Campaign-end invariant: every scheduled event fired or was cancelled.
  /// A non-empty queue at the end of a run means a model leaked events —
  /// throws via sim::check (no-op when checks are compiled out).
  void assert_drained() const;

  /// Deterministic named random stream; same (seed, id) -> same draws
  /// regardless of when in the run the stream is first requested.
  [[nodiscard]] Rng rng_stream(std::uint64_t id) const { return Rng{seed_, id}; }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-break: insertion order at equal time
    EventId id;
    // Ordering for a min-heap via std::greater.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = SimTime::zero();
  std::uint64_t seed_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t pending_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  // id -> callback; erased on fire/cancel. Separate from the heap so cancel
  // is O(1) without heap surgery.
  std::unordered_map<EventId, std::function<void()>> handlers_;
};

}  // namespace pio::sim
