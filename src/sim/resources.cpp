#include "sim/resources.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "sim/check.hpp"

namespace pio::sim {

// ---------------------------------------------------------------- FifoServer

FifoServer::FifoServer(Engine& engine, std::string name)
    : engine_(engine), name_(std::move(name)) {}

void FifoServer::submit(SimTime service_time, std::function<void()> on_done) {
  submit(service_time, std::move(on_done), nullptr);
}

void FifoServer::submit(SimTime service_time, std::function<void()> on_done,
                        std::function<void()> on_shed) {
  if (service_time < SimTime::zero()) {
    throw std::invalid_argument("FifoServer::submit: negative service time");
  }
  queue_.push_back(Job{service_time, engine_.now(), std::move(on_done), std::move(on_shed)});
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_depth());
  if (!busy_) start_next();
}

void FifoServer::start_next() {
  // CoDel-style head drop: a sheddable job whose queueing delay already
  // exceeds the target is not worth serving — by the time it completes the
  // client has timed out and retried, so serving it is pure goodput loss.
  while (!queue_.empty() && shed_target_ > SimTime::zero() && queue_.front().on_shed &&
         engine_.now() - queue_.front().enqueued > shed_target_) {
    Job shed = std::move(queue_.front());
    queue_.pop_front();
    const SimTime sojourn = engine_.now() - shed.enqueued;
    ++stats_.shed_jobs;
    stats_.sojourn_us.add(static_cast<std::uint64_t>(sojourn.ns() / 1000));
    engine_.schedule_after(SimTime::zero(), [notify = std::move(shed.on_shed)]() mutable {
      if (notify) notify();
    });
  }
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Job job = std::move(queue_.front());
  queue_.pop_front();
  const SimTime wait = engine_.now() - job.enqueued;
  stats_.total_wait += wait;
  stats_.sojourn_us.add(static_cast<std::uint64_t>(wait.ns() / 1000));
  stats_.busy_time += job.service;
  engine_.schedule_after(job.service, [this, done = std::move(job.on_done)]() mutable {
    ++stats_.jobs_completed;
    if (done) done();
    start_next();
  });
}

// --------------------------------------------------------- FairShareChannel

FairShareChannel::FairShareChannel(Engine& engine, Bandwidth capacity, SimTime latency,
                                   std::string name)
    : engine_(engine), capacity_(capacity), latency_(latency), name_(std::move(name)) {
  if (capacity.bytes_per_sec() <= 0.0) {
    throw std::invalid_argument("FairShareChannel: capacity must be positive");
  }
  if (latency < SimTime::zero()) {
    throw std::invalid_argument("FairShareChannel: negative latency");
  }
}

void FairShareChannel::transfer(Bytes size, std::function<void()> on_done) {
  if (size == Bytes::zero()) {
    // Latency-only message (e.g. a metadata RPC header).
    engine_.schedule_after(latency_, std::move(on_done));
    return;
  }
  engine_.schedule_after(latency_, [this, size, done = std::move(on_done)]() mutable {
    admit(size, std::move(done));
  });
}

void FairShareChannel::admit(Bytes size, std::function<void()> on_done) {
  advance_progress();
  flows_.push_back(Flow{size.as_double(), size, std::move(on_done)});
  reschedule_completion();
}

void FairShareChannel::advance_progress() {
  const SimTime now = engine_.now();
  if (!flows_.empty() && now > last_progress_) {
    const double rate = capacity_.bytes_per_sec() / static_cast<double>(flows_.size());
    const double progressed = rate * (now - last_progress_).sec();
    for (auto& flow : flows_) flow.remaining_bytes = std::max(0.0, flow.remaining_bytes - progressed);
  }
  last_progress_ = now;
}

void FairShareChannel::reschedule_completion() {
  if (pending_completion_ != 0) {
    engine_.cancel(pending_completion_);
    pending_completion_ = 0;
  }
  if (flows_.empty()) return;
  double min_remaining = std::numeric_limits<double>::max();
  for (const auto& flow : flows_) min_remaining = std::min(min_remaining, flow.remaining_bytes);
  const double rate = capacity_.bytes_per_sec() / static_cast<double>(flows_.size());
  // Round up to the next nanosecond so remaining bytes are always fully
  // drained by the time the completion fires.
  const auto delay = SimTime::from_sec_ceil(min_remaining / rate);
  check::that(delay >= SimTime::zero(), "non-negative service delay",
              "delay=" + std::to_string(delay.ns()) + "ns");
  pending_completion_ = engine_.schedule_after(delay, [this] {
    pending_completion_ = 0;
    complete_earliest();
  });
}

void FairShareChannel::complete_earliest() {
  advance_progress();
  // Complete every flow that has drained (ties complete together, in
  // admission order for determinism).
  std::vector<std::function<void()>> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->remaining_bytes <= 0.5) {  // < 1 byte left: drained
      bytes_moved_ += it->size;
      done.push_back(std::move(it->on_done));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  reschedule_completion();
  for (auto& fn : done) {
    if (fn) fn();
  }
}

// ------------------------------------------------------------------ TokenPool

TokenPool::TokenPool(Engine& engine, std::uint64_t tokens, std::string name)
    : engine_(engine), capacity_(tokens), available_(tokens), name_(std::move(name)) {
  if (tokens == 0) throw std::invalid_argument("TokenPool: zero capacity");
}

void TokenPool::acquire(std::uint64_t n, std::function<void()> on_grant) {
  if (n == 0 || n > capacity_) throw std::invalid_argument("TokenPool::acquire: bad count");
  waiters_.push_back(Waiter{n, std::move(on_grant)});
  drain();
}

void TokenPool::release(std::uint64_t n) {
  available_ += n;
  if (available_ > capacity_) throw std::logic_error("TokenPool::release: over-release");
  drain();
}

void TokenPool::drain() {
  // FIFO: strictly grant in arrival order; a large request at the head
  // blocks later small ones (no starvation).
  while (!waiters_.empty() && waiters_.front().n <= available_) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    available_ -= w.n;
    if (w.on_grant) w.on_grant();
  }
}

}  // namespace pio::sim
