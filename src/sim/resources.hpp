// PIOEval simulation substrate: queueing building blocks.
//
// Three primitives cover every server in the storage/network models:
//  - FifoServer: a single server with explicit service times (disks, MDS ops)
//  - FairShareChannel: a fluid processor-sharing link (network fabrics)
//  - TokenPool: counting semaphore in simulated time (server thread limits)
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <list>
#include <string>

#include "common/histogram.hpp"
#include "common/types.hpp"
#include "sim/engine.hpp"

namespace pio::sim {

/// Aggregate occupancy statistics shared by the queueing primitives.
struct ServerStats {
  std::uint64_t jobs_completed = 0;
  SimTime busy_time = SimTime::zero();   ///< time with >= 1 job in service
  SimTime total_wait = SimTime::zero();  ///< queueing delay, excludes service
  std::uint64_t max_queue_depth = 0;
  std::uint64_t shed_jobs = 0;  ///< jobs dropped at dequeue (sojourn > target)
  /// Queueing-delay distribution in microseconds, recorded at dequeue for
  /// served and shed jobs alike (the CoDel view of the queue).
  Log2Histogram sojourn_us;

  [[nodiscard]] SimTime mean_wait() const {
    return jobs_completed == 0 ? SimTime::zero()
                               : total_wait / static_cast<std::int64_t>(jobs_completed);
  }
  [[nodiscard]] double utilization(SimTime horizon) const {
    return horizon <= SimTime::zero() ? 0.0 : busy_time.sec() / horizon.sec();
  }
};

/// Single-server FIFO queue. Service time is supplied per job so callers can
/// model state-dependent costs (e.g. disk seek depends on previous offset).
class FifoServer {
 public:
  explicit FifoServer(Engine& engine, std::string name = "fifo");

  /// Enqueue a job; `on_done` fires when its service completes.
  void submit(SimTime service_time, std::function<void()> on_done);

  /// Enqueue a sheddable job: if a shed target is set and the job's queueing
  /// delay exceeds it when the job reaches the head, the job is dropped
  /// without service and `on_shed` fires (next delta) instead of `on_done`.
  /// Jobs submitted without an `on_shed` are never shed.
  void submit(SimTime service_time, std::function<void()> on_done,
              std::function<void()> on_shed);

  /// CoDel-style sojourn bound for sheddable jobs; zero (default) disables.
  void set_shed_target(SimTime target) { shed_target_ = target; }

  [[nodiscard]] std::uint64_t queue_depth() const { return queue_.size() + (busy_ ? 1u : 0u); }
  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct Job {
    SimTime service;
    SimTime enqueued;
    std::function<void()> on_done;
    std::function<void()> on_shed;
  };

  void start_next();

  Engine& engine_;
  std::string name_;
  std::deque<Job> queue_;
  bool busy_ = false;
  SimTime shed_target_ = SimTime::zero();
  ServerStats stats_;
};

/// Fluid-model fair-sharing channel: `n` concurrent flows each progress at
/// capacity/n. On every membership change the remaining volumes are advanced
/// and the next completion re-scheduled. Propagation latency is applied once
/// at flow admission. This is the standard processor-sharing approximation
/// used by CODES-class network models.
class FairShareChannel {
 public:
  FairShareChannel(Engine& engine, Bandwidth capacity, SimTime latency,
                   std::string name = "link");

  /// Start a transfer of `size`; `on_done` fires when the last byte drains.
  void transfer(Bytes size, std::function<void()> on_done);

  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }
  [[nodiscard]] Bytes bytes_moved() const { return bytes_moved_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Bandwidth capacity() const { return capacity_; }

 private:
  struct Flow {
    double remaining_bytes;
    Bytes size;
    std::function<void()> on_done;
  };

  void admit(Bytes size, std::function<void()> on_done);
  void advance_progress();
  void reschedule_completion();
  void complete_earliest();

  Engine& engine_;
  Bandwidth capacity_;
  SimTime latency_;
  std::string name_;
  std::list<Flow> flows_;
  SimTime last_progress_ = SimTime::zero();
  EventId pending_completion_ = 0;
  Bytes bytes_moved_ = Bytes::zero();
};

/// Counting semaphore over simulated time: models bounded server concurrency
/// (e.g. an MDS with k service threads). FIFO grant order.
class TokenPool {
 public:
  TokenPool(Engine& engine, std::uint64_t tokens, std::string name = "tokens");

  /// Request `n` tokens (n <= pool size); `on_grant` fires when granted —
  /// immediately (same event) if available.
  void acquire(std::uint64_t n, std::function<void()> on_grant);

  /// Return `n` tokens, possibly granting queued waiters.
  void release(std::uint64_t n);

  [[nodiscard]] std::uint64_t available() const { return available_; }
  [[nodiscard]] std::uint64_t waiters() const { return waiters_.size(); }

 private:
  struct Waiter {
    std::uint64_t n;
    std::function<void()> on_grant;
  };

  void drain();

  Engine& engine_;
  std::uint64_t capacity_;
  std::uint64_t available_;
  std::string name_;
  std::deque<Waiter> waiters_;
};

}  // namespace pio::sim
