#include "sim/shard.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <string>

namespace pio::sim {

namespace {

/// a + b for non-negative simulated times, clamped at SimTime::max.
std::int64_t sat_add_ns(std::int64_t a, std::int64_t b) {
  std::int64_t out;
  if (__builtin_add_overflow(a, b, &out)) return std::numeric_limits<std::int64_t>::max();
  return out;
}

}  // namespace

ShardedEngine::ShardedEngine(std::vector<std::uint64_t> domain_seeds, ShardedConfig config)
    : config_(config) {
  if (domain_seeds.empty()) {
    throw std::invalid_argument("ShardedEngine: at least one domain seed required");
  }
  if (config_.lookahead < SimTime::from_ns(1)) {
    throw std::invalid_argument(
        "ShardedEngine: lookahead must be >= 1ns (zero lookahead admits zero-"
        "width windows, i.e. no conservative parallelism at all)");
  }
  const auto n = static_cast<std::uint32_t>(domain_seeds.size());
  shards_ = std::clamp<std::uint32_t>(config_.shards, 1, n);
  engines_.reserve(n);
  outboxes_.resize(n);
  send_seqs_.assign(n, 0);
  if (config_.payload_arenas) arenas_.reserve(n);
  for (std::uint64_t seed : domain_seeds) {
    auto engine = std::make_unique<Engine>(seed, EngineOptions{config_.queue});
    engine->confined_ = true;
    if (config_.payload_arenas) {
      arenas_.push_back(std::make_unique<PayloadArena>());
      engine->use_arena(arenas_.back().get());
    }
    engines_.push_back(std::move(engine));
  }
}

std::uint64_t ShardedEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& engine : engines_) total += engine->events_executed();
  return total;
}

void ShardedEngine::drain_mailboxes() {
  drain_scratch_.clear();
  for (auto& outbox : outboxes_) {
    for (Message& message : outbox) drain_scratch_.push_back(std::move(message));
    outbox.clear();
  }
  if (drain_scratch_.empty()) return;
  // (deliver, src, seq) is a strict total order over messages — src comes
  // from the partition, seq from the source's deterministic execution order
  // — so delivery (and thus destination insertion seq) is byte-identical at
  // every shard count.
  std::sort(drain_scratch_.begin(), drain_scratch_.end(),
            [](const Message& a, const Message& b) {
              if (a.deliver != b.deliver) return a.deliver < b.deliver;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (Message& message : drain_scratch_) {
    engines_[message.dst]->schedule_at(message.deliver, std::move(message.fn));
    ++messages_delivered_;
  }
  drain_scratch_.clear();
}

void ShardedEngine::run(exec::Pool& pool) {
  const std::uint32_t n = domains();
  for (;;) {
    drain_mailboxes();
    // T_next: the earliest pending event anywhere. peek skims cancelled
    // entries, so this is the true next fire time.
    std::optional<SimTime> t_next;
    for (auto& engine : engines_) {
      if (const auto t = engine->peek_next_time()) {
        if (!t_next || *t < *t_next) t_next = *t;
      }
    }
    if (!t_next || *t_next > config_.time_limit) break;
    // Safe window [.., T_next + lookahead): every message sent during the
    // window is stamped >= its send time + lookahead >= T_next + lookahead,
    // so nothing delivered at the next drain can land inside this window.
    const std::int64_t window_end_ns = sat_add_ns(t_next->ns(), config_.lookahead.ns());
    const SimTime bound =
        SimTime::from_ns(std::min(window_end_ns - 1, config_.time_limit.ns()));
    pool.for_all(shards_, [this, bound, n](std::size_t shard) {
      for (std::uint32_t d = static_cast<std::uint32_t>(shard); d < n; d += shards_) {
        Engine& engine = *engines_[d];
        detail::ActiveEngineScope scope(&engine);
        engine.run(bound);
        // Window boundary: blocks fully drained by this window's fires
        // recycle; trim returns the surplus beyond one spare.
        if (!arenas_.empty()) arenas_[d]->trim();
      }
    });
    ++windows_;
  }
}

void ShardedEngine::assert_drained() const {
  for (std::uint32_t d = 0; d < domains(); ++d) {
    engines_[d]->assert_drained();
    check::that(outboxes_[d].empty(), "mailboxes drained at campaign end",
                "domain " + std::to_string(d) + " outbox holds " +
                    std::to_string(outboxes_[d].size()) + " undelivered messages");
  }
}

}  // namespace pio::sim
