// PIOEval sim: conservative lookahead-sharded parallel event execution.
//
// The single-threaded `Engine` is the determinism anchor of every
// experiment, which rules out optimistic (Time Warp-style) parallelism:
// rollback would need event reversal through arbitrary model callbacks. The
// route to facility scale (ROADMAP items 1–2, paper §IV.C) is instead the
// classic conservative one (Chandy/Misra/Bryant by way of ROSS/CODES):
//
//   - The event space is partitioned into *domains* — one `Engine` (plus
//     models built on it) per domain, each still strictly single-threaded.
//   - Cross-domain interactions carry a minimum delay, the *lookahead* —
//     physically, the fabric latency between cells of the simulated
//     facility. Within a domain, events are unrestricted.
//   - Execution advances in *safe windows*: with T_next the earliest
//     pending time across all domains, every domain may run events up to
//     T_next + lookahead − 1ns without synchronising, because anything a
//     peer sends during the window arrives no earlier than its own send
//     time + lookahead ≥ T_next + lookahead. Domains are striped over
//     logical *shards*, fanned out on the caller's `exec::Pool` (no raw
//     threads here — piolint P1), and joined at a window barrier.
//   - Cross-domain events travel through per-source bounded mailboxes,
//     drained between windows by the coordinating thread: messages are
//     sorted by (deliver time, source domain, per-source send seq) — all
//     shard-count-invariant keys — and scheduled into their destination
//     engines in that order.
//
// Determinism: window boundaries derive only from domain queue states and
// the lookahead; mailbox drain order is a pure function of the messages;
// each domain fires its own events in (time, seq) order. Hence the entire
// execution — and any FNV digest folded over it — is byte-identical at any
// shard count, including shards=1 (the "serial" baseline of EXPERIMENTS.md
// C-13). tests/test_parsim.cpp enforces this at 1/2/4/8 shards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "exec/pool.hpp"
#include "sim/check.hpp"
#include "sim/engine.hpp"

namespace pio::sim {

/// Sharded-execution knobs. `lookahead` is the contract: every cross-domain
/// send must carry at least this delay — model it on the slowest-to-justify
/// physical latency between domains (fabric hop, WAN link), because larger
/// lookahead means longer windows and fewer barriers.
struct ShardedConfig {
  std::uint32_t shards = 1;          ///< logical shards; clamped to [1, domains]
  SimTime lookahead = SimTime::from_us(10);
  SimTime time_limit = SimTime::max();
  QueueKind queue = QueueKind::kQuadHeap;  ///< queue for every domain engine
  bool payload_arenas = true;        ///< per-domain bump arenas, trimmed at barriers
  std::size_t mailbox_capacity = std::size_t{1} << 20;  ///< per-source outbox bound
};

/// A set of domain engines advancing in lockstep safe windows.
class ShardedEngine {
 public:
  /// One domain per seed. Seeds should be derived per-domain from the
  /// campaign seed (`derive_seed`) so domains draw decorrelated randomness.
  ShardedEngine(std::vector<std::uint64_t> domain_seeds, ShardedConfig config);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] std::uint32_t domains() const {
    return static_cast<std::uint32_t>(engines_.size());
  }
  [[nodiscard]] std::uint32_t shards() const { return shards_; }

  /// The engine of domain `d`. Build models against it, schedule intra-domain
  /// events on it directly; never schedule on a foreign domain's engine from
  /// inside a handler (checked builds fail loudly via the confinement guard).
  [[nodiscard]] Engine& domain(std::uint32_t d) { return *engines_.at(d); }

  /// Queue `fn` for execution on domain `dst`, `delay` after domain `src`'s
  /// current time. `delay` must be >= the configured lookahead (throws
  /// std::logic_error otherwise — that is the conservative-correctness
  /// contract, not a tunable). Throws std::overflow_error when `src`'s
  /// outbox is full. Callable from `src`'s handlers during a window and from
  /// setup code between windows.
  template <typename F>
  void send(std::uint32_t src, std::uint32_t dst, SimTime delay, F&& fn) {
    if (src >= domains() || dst >= domains()) {
      throw std::out_of_range("ShardedEngine::send: bad domain index");
    }
    if (delay < config_.lookahead) {
      throw std::logic_error(
          "ShardedEngine::send: delay below lookahead — cross-domain events "
          "must carry at least the configured lookahead");
    }
    if constexpr (check::kEnabled) {
      const Engine* active = detail::active_engine();
      if (active != nullptr && active != engines_[src].get()) {
        check::fail("send source domain",
                    "send(src, ...) called from a handler of a different domain");
      }
    }
    std::vector<Message>& outbox = outboxes_[src];
    if (outbox.size() >= config_.mailbox_capacity) {
      throw std::overflow_error("ShardedEngine::send: mailbox capacity exceeded");
    }
    outbox.push_back(Message{engines_[src]->now() + delay, src, dst,
                             send_seqs_[src]++, std::function<void()>(std::forward<F>(fn))});
  }

  /// Advance all domains until every queue drains (and every mailbox is
  /// delivered) or the next event would exceed the configured time limit.
  /// Shards are fanned out on `pool`; with a 1-thread pool or shards=1 this
  /// is the serial baseline, same protocol, same digest.
  void run(exec::Pool& pool);

  /// Safe windows executed so far (shard-count-invariant by construction).
  [[nodiscard]] std::uint64_t windows() const { return windows_; }
  /// Cross-domain messages delivered into destination engines.
  [[nodiscard]] std::uint64_t messages_delivered() const { return messages_delivered_; }
  /// Events executed across all domain engines.
  [[nodiscard]] std::uint64_t events_executed() const;

  /// End-of-campaign invariant: every domain drained, every mailbox empty.
  void assert_drained() const;

 private:
  struct Message {
    SimTime deliver;
    std::uint32_t src;
    std::uint32_t dst;
    std::uint64_t seq;  // per-source send order: the deterministic tie-break
    std::function<void()> fn;
  };

  /// Deliver every queued message into its destination engine, in
  /// (deliver, src, seq) order. Coordinator-only, between windows.
  void drain_mailboxes();

  ShardedConfig config_;
  std::uint32_t shards_;
  // Arenas before engines: engines are destroyed first (members are
  // destroyed in reverse declaration order), releasing queued payloads into
  // their arenas before the arenas themselves go away.
  std::vector<std::unique_ptr<PayloadArena>> arenas_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::vector<Message>> outboxes_;   // [src]; owned by src's shard
  std::vector<std::uint64_t> send_seqs_;         // [src]
  std::vector<Message> drain_scratch_;
  std::uint64_t windows_ = 0;
  std::uint64_t messages_delivered_ = 0;
};

}  // namespace pio::sim
