#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace pio::stats {

double sum(std::span<const double> xs) {
  // Kahan summation: bench series can mix magnitudes wildly.
  double s = 0.0;
  double c = 0.0;
  for (const double x : xs) {
    const double y = x - c;
    const double t = s + y;
    c = (t - s) - y;
    s = t;
  }
  return s;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double coefficient_of_variation(std::span<const double> xs) {
  const double m = mean(xs);
  return m == 0.0 ? 0.0 : stddev(xs) / m;
}

double min(std::span<const double> xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0 || q > 1.0) throw std::domain_error("quantile: q out of [0, 1]");
  std::vector<double> sorted{xs.begin(), xs.end()};
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("pearson: size mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

/// Average ranks (1-based), ties share the mean rank.
std::vector<double> ranks_of(std::span<const double> xs) {
  std::vector<std::size_t> idx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(xs.size());
  std::size_t i = 0;
  while (i < idx.size()) {
    std::size_t j = i;
    while (j + 1 < idx.size() && xs[idx[j + 1]] == xs[idx[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("spearman: size mismatch");
  const auto rx = ranks_of(xs);
  const auto ry = ranks_of(ys);
  return pearson(rx, ry);
}

EmpiricalCdf::EmpiricalCdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  if (sorted_.empty()) throw std::invalid_argument("EmpiricalCdf: empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::operator()(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

}  // namespace pio::stats
