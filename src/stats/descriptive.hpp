// PIOEval stats: descriptive statistics (§IV.B.1).
//
// "Some of the statistics techniques are arithmetic mean, standard
// deviation, linear regression, Markov models, hypothesis testing,
// probability density and cumulative density functions, coefficient of
// variance, and coefficient of correlation." — this module implements the
// scalar ones; regression, Markov chains, and tests live in sibling files.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pio::stats {

[[nodiscard]] double sum(std::span<const double> xs);
[[nodiscard]] double mean(std::span<const double> xs);
/// Sample variance (n-1 denominator); 0 for fewer than 2 points.
[[nodiscard]] double variance(std::span<const double> xs);
[[nodiscard]] double stddev(std::span<const double> xs);
/// Coefficient of variation: stddev / mean (0 when mean == 0).
[[nodiscard]] double coefficient_of_variation(std::span<const double> xs);
[[nodiscard]] double min(std::span<const double> xs);
[[nodiscard]] double max(std::span<const double> xs);
/// Linear-interpolated quantile, q in [0, 1]. Copies and sorts.
[[nodiscard]] double quantile(std::span<const double> xs, double q);
[[nodiscard]] double median(std::span<const double> xs);

/// Pearson product-moment correlation; 0 when either side is constant.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);
/// Spearman rank correlation (average ranks for ties).
[[nodiscard]] double spearman(std::span<const double> xs, std::span<const double> ys);

/// Empirical CDF: fraction of samples <= x.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::span<const double> samples);

  [[nodiscard]] double operator()(double x) const;
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace pio::stats
