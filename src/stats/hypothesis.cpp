#include "stats/hypothesis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"

namespace pio::stats {

namespace {

/// Lanczos log-gamma.
double log_gamma(double x) {
  static const double coef[6] = {76.18009172947146,  -86.50532032941677, 24.01409824083091,
                                 -1.231739572450155, 0.1208650973866179e-2,
                                 -0.5395239384953e-5};
  double y = x;
  double tmp = x + 5.5;
  tmp -= (x + 0.5) * std::log(tmp);
  double ser = 1.000000000190015;
  for (const double c : coef) ser += c / ++y;
  return -tmp + std::log(2.5066282746310005 * ser / x);
}

/// Continued fraction for the incomplete beta function (Numerical Recipes
/// betacf structure).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 3e-12;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (x < 0.0 || x > 1.0) throw std::domain_error("incomplete_beta: x out of [0, 1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front =
      log_gamma(a + b) - log_gamma(a) - log_gamma(b) + a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

TTestResult welch_t_test(std::span<const double> a, std::span<const double> b) {
  if (a.size() < 2 || b.size() < 2) {
    throw std::invalid_argument("welch_t_test: need at least 2 samples per side");
  }
  const double ma = mean(a);
  const double mb = mean(b);
  const double va = variance(a);
  const double vb = variance(b);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double se2 = va / na + vb / nb;
  TTestResult r;
  if (se2 == 0.0) {
    r.t_statistic = ma == mb ? 0.0 : std::numeric_limits<double>::infinity();
    r.degrees_of_freedom = na + nb - 2.0;
    r.p_value = ma == mb ? 1.0 : 0.0;
    return r;
  }
  r.t_statistic = (ma - mb) / std::sqrt(se2);
  // Welch-Satterthwaite.
  const double num = se2 * se2;
  const double den = (va / na) * (va / na) / (na - 1.0) + (vb / nb) * (vb / nb) / (nb - 1.0);
  r.degrees_of_freedom = num / den;
  // Two-sided p from the t CDF: P(|T| > t) = I_{df/(df+t^2)}(df/2, 1/2).
  const double t2 = r.t_statistic * r.t_statistic;
  const double df = r.degrees_of_freedom;
  r.p_value = incomplete_beta(df / 2.0, 0.5, df / (df + t2));
  return r;
}

KsTestResult ks_test(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) throw std::invalid_argument("ks_test: empty sample");
  std::vector<double> sa{a.begin(), a.end()};
  std::vector<double> sb{b.begin(), b.end()};
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  double d = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na - static_cast<double>(j) / nb));
  }
  KsTestResult r;
  r.statistic = d;
  // Asymptotic Kolmogorov distribution.
  const double ne = na * nb / (na + nb);
  const double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
  double p = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = sign * std::exp(-2.0 * lambda * lambda * k * k);
    p += term;
    sign = -sign;
    if (std::abs(term) < 1e-12) break;
  }
  r.p_value = std::clamp(2.0 * p, 0.0, 1.0);
  return r;
}

}  // namespace pio::stats
