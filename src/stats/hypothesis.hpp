// PIOEval stats: hypothesis tests (§IV.B.1).
//
// Welch's two-sample t-test and the two-sample Kolmogorov-Smirnov test —
// the workhorses for "did this optimization change the latency
// distribution?" questions in the analysis layer.
#pragma once

#include <span>

namespace pio::stats {

/// Welch's t-test result.
struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  /// Two-sided p-value (computed from the t CDF via the incomplete beta
  /// function).
  double p_value = 1.0;
  [[nodiscard]] bool significant(double alpha = 0.05) const { return p_value < alpha; }
};

[[nodiscard]] TTestResult welch_t_test(std::span<const double> a, std::span<const double> b);

/// Two-sample Kolmogorov-Smirnov test.
struct KsTestResult {
  double statistic = 0.0;  ///< max |CDF_a - CDF_b|
  double p_value = 1.0;    ///< asymptotic Kolmogorov distribution
  [[nodiscard]] bool significant(double alpha = 0.05) const { return p_value < alpha; }
};

[[nodiscard]] KsTestResult ks_test(std::span<const double> a, std::span<const double> b);

/// Regularized incomplete beta function I_x(a, b) (continued fraction),
/// exposed because the t-distribution CDF is built on it and tests pin it.
[[nodiscard]] double incomplete_beta(double a, double b, double x);

}  // namespace pio::stats
