#include "stats/markov.hpp"

#include <cmath>
#include <stdexcept>

namespace pio::stats {

MarkovChain MarkovChain::fit(std::span<const std::uint32_t> sequence, std::uint32_t states,
                             double alpha) {
  if (states == 0) throw std::invalid_argument("MarkovChain::fit: zero states");
  std::vector<std::vector<double>> counts(states, std::vector<double>(states, alpha));
  for (std::size_t i = 0; i + 1 < sequence.size(); ++i) {
    if (sequence[i] >= states || sequence[i + 1] >= states) {
      throw std::invalid_argument("MarkovChain::fit: state out of range");
    }
    counts[sequence[i]][sequence[i + 1]] += 1.0;
  }
  for (auto& row : counts) {
    double total = 0.0;
    for (const double c : row) total += c;
    if (total == 0.0) {
      // Unvisited state: uniform row.
      for (double& c : row) c = 1.0 / static_cast<double>(states);
    } else {
      for (double& c : row) c /= total;
    }
  }
  return MarkovChain{std::move(counts)};
}

MarkovChain::MarkovChain(std::vector<std::vector<double>> transition)
    : transition_(std::move(transition)) {
  const std::size_t n = transition_.size();
  if (n == 0) throw std::invalid_argument("MarkovChain: empty matrix");
  for (const auto& row : transition_) {
    if (row.size() != n) throw std::invalid_argument("MarkovChain: non-square matrix");
    double total = 0.0;
    for (const double p : row) {
      if (p < 0.0) throw std::invalid_argument("MarkovChain: negative probability");
      total += p;
    }
    if (std::abs(total - 1.0) > 1e-6) {
      throw std::invalid_argument("MarkovChain: row does not sum to 1");
    }
  }
}

double MarkovChain::probability(std::uint32_t from, std::uint32_t to) const {
  return transition_.at(from).at(to);
}

std::vector<double> MarkovChain::stationary(std::size_t iterations) const {
  const std::size_t n = transition_.size();
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (std::size_t it = 0; it < iterations; ++it) {
    for (std::size_t j = 0; j < n; ++j) next[j] = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) next[j] += pi[i] * transition_[i][j];
    }
    double delta = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      delta += std::abs(next[j] - pi[j]);
      pi[j] = next[j];
    }
    if (delta < 1e-12) break;
  }
  return pi;
}

std::vector<std::uint32_t> MarkovChain::generate(std::uint32_t initial, std::size_t length,
                                                 Rng& rng) const {
  if (initial >= states()) throw std::invalid_argument("MarkovChain::generate: bad initial");
  std::vector<std::uint32_t> out;
  out.reserve(length);
  std::uint32_t state = initial;
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(state);
    const double u = rng.uniform();
    double acc = 0.0;
    std::uint32_t next = states() - 1;
    for (std::uint32_t j = 0; j < states(); ++j) {
      acc += transition_[state][j];
      if (u < acc) {
        next = j;
        break;
      }
    }
    state = next;
  }
  return out;
}

double MarkovChain::log_likelihood(std::span<const std::uint32_t> sequence) const {
  double ll = 0.0;
  for (std::size_t i = 0; i + 1 < sequence.size(); ++i) {
    const double p = probability(sequence[i], sequence[i + 1]);
    ll += p > 0.0 ? std::log(p) : -std::numeric_limits<double>::infinity();
  }
  return ll;
}

}  // namespace pio::stats
