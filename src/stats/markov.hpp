// PIOEval stats: discrete Markov chains (§IV.B.1).
//
// Used for access-pattern modeling: I/O phases (read/write/metadata/idle)
// form a state sequence; a fitted chain both summarizes behaviour (e.g.
// "after a write burst, another write burst follows with p=0.92") and
// generates synthetic phase sequences for workload generation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace pio::stats {

class MarkovChain {
 public:
  /// Fit a first-order chain with `states` states from an observed state
  /// sequence (values must be < states). Rows with no observations get a
  /// uniform distribution. Laplace smoothing `alpha` avoids zero rows.
  static MarkovChain fit(std::span<const std::uint32_t> sequence, std::uint32_t states,
                         double alpha = 0.0);

  explicit MarkovChain(std::vector<std::vector<double>> transition);

  [[nodiscard]] std::uint32_t states() const {
    return static_cast<std::uint32_t>(transition_.size());
  }
  [[nodiscard]] double probability(std::uint32_t from, std::uint32_t to) const;
  [[nodiscard]] const std::vector<std::vector<double>>& matrix() const { return transition_; }

  /// Stationary distribution via power iteration.
  [[nodiscard]] std::vector<double> stationary(std::size_t iterations = 1000) const;

  /// Generate a sequence starting from `initial`.
  [[nodiscard]] std::vector<std::uint32_t> generate(std::uint32_t initial, std::size_t length,
                                                    Rng& rng) const;

  /// Log-likelihood of a sequence under this chain (transitions with zero
  /// probability contribute -inf; callers fitting with smoothing avoid it).
  [[nodiscard]] double log_likelihood(std::span<const std::uint32_t> sequence) const;

 private:
  std::vector<std::vector<double>> transition_;
};

}  // namespace pio::stats
