#include "stats/regression.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace pio::stats {

SimpleFit fit_simple(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("fit_simple: size mismatch");
  if (xs.size() < 2) throw std::invalid_argument("fit_simple: need at least 2 points");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  SimpleFit fit;
  fit.slope = sxx == 0.0 ? 0.0 : sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (sxx == 0.0 || syy == 0.0) ? 0.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

namespace {

/// Solve A x = b in place with Gaussian elimination + partial pivoting.
std::vector<double> solve(std::vector<std::vector<double>> a, std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    // Pivot.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    if (std::abs(a[pivot][col]) < 1e-12) {
      throw std::runtime_error("LinearModel::fit: singular design matrix");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    // Eliminate below.
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (std::size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= a[i][k] * x[k];
    x[i] = acc / a[i][i];
  }
  return x;
}

}  // namespace

LinearModel LinearModel::fit(const std::vector<std::vector<double>>& rows,
                             std::span<const double> ys) {
  if (rows.size() != ys.size()) throw std::invalid_argument("LinearModel::fit: size mismatch");
  if (rows.empty()) throw std::invalid_argument("LinearModel::fit: empty data");
  const std::size_t k = rows.front().size();
  for (const auto& row : rows) {
    if (row.size() != k) throw std::invalid_argument("LinearModel::fit: ragged rows");
  }
  const std::size_t p = k + 1;  // + intercept
  // Normal equations: (X^T X) beta = X^T y, with X's first column all ones.
  std::vector<std::vector<double>> xtx(p, std::vector<double>(p, 0.0));
  std::vector<double> xty(p, 0.0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::vector<double> xi(p);
    xi[0] = 1.0;
    for (std::size_t j = 0; j < k; ++j) xi[j + 1] = rows[i][j];
    for (std::size_t a = 0; a < p; ++a) {
      xty[a] += xi[a] * ys[i];
      for (std::size_t b = 0; b < p; ++b) xtx[a][b] += xi[a] * xi[b];
    }
  }
  LinearModel model;
  model.beta_ = solve(std::move(xtx), std::move(xty));
  // R^2 on the training data.
  const double my = mean(ys);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double yhat = model.predict(rows[i]);
    ss_res += (ys[i] - yhat) * (ys[i] - yhat);
    ss_tot += (ys[i] - my) * (ys[i] - my);
  }
  model.r_squared_ = ss_tot == 0.0 ? 0.0 : 1.0 - ss_res / ss_tot;
  return model;
}

double LinearModel::predict(std::span<const double> features) const {
  if (features.size() + 1 != beta_.size()) {
    throw std::invalid_argument("LinearModel::predict: feature count mismatch");
  }
  double y = beta_[0];
  for (std::size_t j = 0; j < features.size(); ++j) y += beta_[j + 1] * features[j];
  return y;
}

ErrorMetrics compute_errors(std::span<const double> predicted, std::span<const double> actual) {
  if (predicted.size() != actual.size()) {
    throw std::invalid_argument("compute_errors: size mismatch");
  }
  ErrorMetrics m;
  if (predicted.empty()) return m;
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  double pct_sum = 0.0;
  std::size_t pct_n = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double err = predicted[i] - actual[i];
    abs_sum += std::abs(err);
    sq_sum += err * err;
    if (actual[i] != 0.0) {
      pct_sum += std::abs(err / actual[i]);
      ++pct_n;
    }
  }
  const auto n = static_cast<double>(predicted.size());
  m.mae = abs_sum / n;
  m.rmse = std::sqrt(sq_sum / n);
  m.mape = pct_n == 0 ? 0.0 : pct_sum / static_cast<double>(pct_n);
  return m;
}

}  // namespace pio::stats
