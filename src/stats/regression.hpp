// PIOEval stats: linear regression — the "linear models" baseline that
// experiment C4 pits against the neural-network predictor (Schmid & Kunkel
// [56] report NN average prediction error significantly better than linear
// models; our reproduction must show the same ordering).
#pragma once

#include <span>
#include <vector>

namespace pio::stats {

/// Simple y = a + b*x least squares.
struct SimpleFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;

  [[nodiscard]] double predict(double x) const { return intercept + slope * x; }
};

[[nodiscard]] SimpleFit fit_simple(std::span<const double> xs, std::span<const double> ys);

/// Multivariate ordinary least squares with intercept:
/// y ~ b0 + b1*x1 + ... + bk*xk, solved by normal equations with partial
/// pivoting. Throws on singular designs.
class LinearModel {
 public:
  /// `rows[i]` is the feature vector of sample i (all the same length).
  static LinearModel fit(const std::vector<std::vector<double>>& rows,
                         std::span<const double> ys);

  [[nodiscard]] double predict(std::span<const double> features) const;
  [[nodiscard]] const std::vector<double>& coefficients() const { return beta_; }
  [[nodiscard]] double r_squared() const { return r_squared_; }

 private:
  std::vector<double> beta_;  // [intercept, b1, ..., bk]
  double r_squared_ = 0.0;
};

/// Prediction-error metrics shared by all model evaluations.
struct ErrorMetrics {
  double mae = 0.0;    ///< mean absolute error
  double rmse = 0.0;   ///< root mean squared error
  double mape = 0.0;   ///< mean absolute percentage error (targets of 0 skipped)
};

[[nodiscard]] ErrorMetrics compute_errors(std::span<const double> predicted,
                                          std::span<const double> actual);

}  // namespace pio::stats
