#include "svc/evald.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "sim/check.hpp"

namespace pio::svc {

Evald::Evald(EvaldConfig config) : config_(config), pool_(config.threads) {
  if (config_.batch_points == 0) throw std::invalid_argument("Evald: batch_points must be > 0");
  if (config_.session_inflight_cap == 0)
    throw std::invalid_argument("Evald: session_inflight_cap must be > 0");
}

SessionId Evald::open_session() {
  const SessionId id = next_session_++;
  SessionState sess;
  sess.id = id;
  sessions_.emplace(id, std::move(sess));
  ++stats_.sessions_opened;
  return id;
}

void Evald::close_session(SessionId id) {
  SessionState& sess = session(id);
  // Queued points die with the session; live campaigns are dropped without
  // a CampaignDone (nobody is left to read one).
  stats_.points_cancelled += sess.queue.size();
  pending_points_ -= sess.queue.size();
  std::vector<std::uint64_t> owned;
  for (const auto& [cid, campaign] : campaigns_)
    if (campaign.owner == id) owned.push_back(cid);
  for (const std::uint64_t cid : owned) {
    campaigns_.erase(cid);
    ++stats_.campaigns_cancelled;
  }
  sessions_.erase(id);
  ++stats_.sessions_closed;
}

std::uint32_t Evald::open_sessions() const {
  return static_cast<std::uint32_t>(sessions_.size());
}

Evald::SessionState& Evald::session(SessionId id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end())
    throw std::invalid_argument("Evald: unknown session " + std::to_string(id));
  return it->second;
}

void Evald::emit(SessionState& sess, MsgType type, const std::vector<std::uint8_t>& payload) {
  append_frame(type, payload, sess.outbuf);
  ++stats_.frames_out;
}

void Evald::emit_error(SessionState& sess, ErrorCode code, const char* detail,
                       std::uint64_t retry_after_ns) {
  Error err;
  err.code = code;
  err.retry_after_ns = retry_after_ns;
  err.detail = detail;
  emit(sess, MsgType::kError, encode(err));
}

void Evald::feed(SessionId id, const std::uint8_t* data, std::size_t n) {
  SessionState& sess = session(id);
  if (sess.poisoned) return;  // framing desynchronised; stream is write-off
  sess.inbuf.insert(sess.inbuf.end(), data, data + n);
  std::size_t pos = 0;
  while (pos < sess.inbuf.size()) {
    Frame frame;
    std::size_t consumed = 0;
    const FrameStatus status =
        next_frame(sess.inbuf.data() + pos, sess.inbuf.size() - pos, &consumed, &frame);
    if (status == FrameStatus::kNeedMore) break;
    if (status == FrameStatus::kFrame) {
      pos += consumed;
      ++stats_.frames_in;
      handle_frame(sess, frame);
      continue;
    }
    ++stats_.protocol_errors;
    if (status == FrameStatus::kBadCrc) {
      // The header was sane, so the frame boundary is trustworthy: answer
      // and resynchronise past the damaged payload.
      pos += consumed;
      emit_error(sess, ErrorCode::kBadCrc, "payload CRC mismatch");
      continue;
    }
    // Header-level fault: the length field itself cannot be trusted, so
    // there is no resynchronisation point. Answer once and poison.
    const ErrorCode code = status == FrameStatus::kBadMagic      ? ErrorCode::kBadMagic
                           : status == FrameStatus::kBadVersion ? ErrorCode::kBadVersion
                                                                : ErrorCode::kOversizedFrame;
    emit_error(sess, code, "unrecoverable framing fault; session poisoned");
    sess.poisoned = true;
    sess.inbuf.clear();
    return;
  }
  sess.inbuf.erase(sess.inbuf.begin(), sess.inbuf.begin() + static_cast<std::ptrdiff_t>(pos));
}

void Evald::feed(SessionId id, const std::vector<std::uint8_t>& bytes) {
  feed(id, bytes.data(), bytes.size());
}

void Evald::finish(SessionId id) {
  SessionState& sess = session(id);
  if (sess.poisoned) return;
  if (!sess.inbuf.empty()) {
    ++stats_.protocol_errors;
    emit_error(sess, ErrorCode::kTruncatedFrame,
               "stream ended inside a frame; trailing bytes dropped");
    sess.inbuf.clear();
    sess.poisoned = true;
  }
}

void Evald::handle_frame(SessionState& sess, const Frame& frame) {
  switch (frame.type) {
    case MsgType::kSubmitCampaign:
      handle_submit(sess, frame);
      return;
    case MsgType::kCancelCampaign:
      handle_cancel(sess, frame);
      return;
    case MsgType::kStats: {
      Stats request;
      if (!decode(frame.payload, &request)) {
        ++stats_.protocol_errors;
        emit_error(sess, ErrorCode::kMalformed, "Stats carries no payload");
        return;
      }
      StatsReply reply;
      reply.stats = stats_;  // snapshot before the reply frame is counted
      emit(sess, MsgType::kStatsReply, encode(reply));
      return;
    }
    case MsgType::kSubmitAck:
    case MsgType::kPointResult:
    case MsgType::kCampaignDone:
    case MsgType::kStatsReply:
    case MsgType::kError:
      ++stats_.protocol_errors;
      emit_error(sess, ErrorCode::kUnexpectedType, to_string(frame.type));
      return;
  }
  ++stats_.protocol_errors;
  emit_error(sess, ErrorCode::kUnknownType,
             ("type " + std::to_string(static_cast<std::uint16_t>(frame.type))).c_str());
}

void Evald::handle_submit(SessionState& sess, const Frame& frame) {
  ++stats_.campaigns_submitted;
  SubmitCampaign submit;
  if (!decode(frame.payload, &submit)) {
    ++stats_.campaigns_rejected;
    ++stats_.protocol_errors;
    emit_error(sess, ErrorCode::kMalformed, "SubmitCampaign failed strict decode");
    return;
  }
  if (const char* reason = validate(submit.spec)) {
    ++stats_.campaigns_rejected;
    emit_error(sess, ErrorCode::kLimitExceeded, reason);
    return;
  }
  const auto points = static_cast<std::uint32_t>(submit.spec.workloads.size());
  if (pending_points_ + points > config_.max_queue_points) {
    // Reject at the door (DESIGN.md §14 vocabulary): deterministic hint
    // proportional to the backlog the client would be queueing behind.
    ++stats_.campaigns_rejected;
    const std::uint64_t retry_after =
        config_.retry_after_floor_ns + pending_points_ * config_.per_point_cost_hint_ns;
    emit_error(sess, ErrorCode::kOverloaded, "submission queue full", retry_after);
    return;
  }
  const std::uint64_t campaign_id = next_campaign_++;
  CampaignState campaign;
  campaign.owner = sess.id;
  campaign.config = to_campaign_config(submit.spec);
  campaign.total = points;
  campaign.spec = std::move(submit.spec);
  for (std::uint32_t i = 0; i < points; ++i)
    sess.queue.push_back({campaign_id, i, point_key(campaign.spec, i)});
  campaigns_.emplace(campaign_id, std::move(campaign));
  pending_points_ += points;
  ++stats_.campaigns_accepted;
  SubmitAck ack;
  ack.campaign_id = campaign_id;
  ack.points = points;
  emit(sess, MsgType::kSubmitAck, encode(ack));
}

void Evald::handle_cancel(SessionState& sess, const Frame& frame) {
  CancelCampaign cancel;
  if (!decode(frame.payload, &cancel)) {
    ++stats_.protocol_errors;
    emit_error(sess, ErrorCode::kMalformed, "CancelCampaign failed strict decode");
    return;
  }
  const auto it = campaigns_.find(cancel.campaign_id);
  if (it == campaigns_.end() || it->second.owner != sess.id) {
    emit_error(sess, ErrorCode::kUnknownCampaign,
               "no such campaign on this session (finished campaigns cannot be cancelled)");
    return;
  }
  CampaignState& campaign = it->second;
  // Drop the campaign's still-queued points; already-delivered results (and
  // their cache entries) stand — cancellation never invalidates the cache.
  std::deque<QueuedPoint> keep;
  for (QueuedPoint& qp : sess.queue) {
    if (qp.campaign_id == cancel.campaign_id) {
      ++campaign.cancelled;
      ++stats_.points_cancelled;
      --pending_points_;
    } else {
      keep.push_back(qp);
    }
  }
  sess.queue = std::move(keep);
  finish_campaign(cancel.campaign_id, /*was_cancelled=*/true);
}

bool Evald::pump() {
  // Select up to batch_points, one point per session per pass in ascending
  // session-id order (round-robin interleaving), honouring the per-session
  // in-flight cap. Selection never depends on the thread count.
  std::vector<QueuedPoint> selected;
  std::map<SessionId, std::uint32_t> taken;
  bool progress = true;
  while (progress && selected.size() < config_.batch_points) {
    progress = false;
    for (auto& [sid, sess] : sessions_) {
      if (selected.size() >= config_.batch_points) break;
      if (sess.queue.empty() || taken[sid] >= config_.session_inflight_cap) continue;
      selected.push_back(sess.queue.front());
      sess.queue.pop_front();
      ++taken[sid];
      --pending_points_;
      progress = true;
    }
  }

  // Resolve each selection against the cache: hits deliver immediately,
  // the first miss of a key becomes a compute slot, further misses of the
  // same key coalesce onto it.
  struct Slot {
    std::uint64_t key = 0;
    std::uint64_t campaign_id = 0;
    std::uint32_t index = 0;
    std::vector<QueuedPoint> waiters;
  };
  std::vector<Slot> slots;
  std::map<std::uint64_t, std::size_t> inflight;  // key → slot
  for (const QueuedPoint& qp : selected) {
    ++stats_.cache_lookups;
    const auto hit = cache_.find(qp.key);
    if (hit != cache_.end()) {
      ++stats_.cache_hits;
      deliver(qp.campaign_id, qp.index, qp.key, hit->second, ResultSource::kCached);
      continue;
    }
    ++stats_.cache_misses;
    const auto slot = inflight.find(qp.key);
    if (slot != inflight.end()) {
      slots[slot->second].waiters.push_back(qp);
      continue;
    }
    inflight.emplace(qp.key, slots.size());
    slots.push_back({qp.key, qp.campaign_id, qp.index, {}});
  }

  // Compute the cold points on the pool. Each task builds its own workload
  // and engines from the owning campaign's spec; map_ordered merges in
  // submission order, so delivery below is thread-count-invariant.
  const std::vector<CacheEntry> computed =
      pool_.map_ordered(slots.size(), [this, &slots](std::size_t i) {
        const Slot& slot = slots[i];
        const CampaignState& campaign = campaigns_.at(slot.campaign_id);
        const auto workload = make_workload(campaign.spec.workloads.at(slot.index));
        const eval::CampaignPoint point = eval::evaluate_point(
            campaign.config, *workload, campaign.spec.calibration, /*iteration=*/0, slot.index);
        CacheEntry entry;
        entry.blob = encode_point(point);
        entry.digest = eval::point_digest(campaign.config, point);
        return entry;
      });

  for (std::size_t i = 0; i < slots.size(); ++i) {
    const Slot& slot = slots[i];
    const auto [it, inserted] = cache_.emplace(slot.key, computed[i]);
    sim::check::that(inserted, "svc.cache-recompute",
                     "key " + std::to_string(slot.key) + " computed twice");
    ++stats_.cache_entries;
    deliver(slot.campaign_id, slot.index, slot.key, it->second, ResultSource::kComputed);
    for (const QueuedPoint& waiter : slot.waiters)
      deliver(waiter.campaign_id, waiter.index, waiter.key, it->second, ResultSource::kCoalesced);
  }
  return pending_points_ > 0;
}

void Evald::drain() {
  while (pump()) {
  }
}

void Evald::deliver(std::uint64_t campaign_id, std::uint32_t index, std::uint64_t key,
                    const CacheEntry& entry, ResultSource source) {
  const auto it = campaigns_.find(campaign_id);
  sim::check::that(it != campaigns_.end(), "svc.deliver-to-dead-campaign",
                   std::to_string(campaign_id));
  CampaignState& campaign = it->second;
  SessionState& sess = session(campaign.owner);
  PointResult result;
  result.campaign_id = campaign_id;
  result.index = index;
  result.key = key;
  result.digest = entry.digest;
  result.source = source;
  result.blob = entry.blob;
  emit(sess, MsgType::kPointResult, encode(result));
  ++stats_.points_completed;
  switch (source) {
    case ResultSource::kComputed:
      ++stats_.points_computed;
      break;
    case ResultSource::kCached:
      ++stats_.points_cached;
      break;
    case ResultSource::kCoalesced:
      ++stats_.points_coalesced;
      break;
  }
  ++campaign.delivered;
  if (campaign.delivered + campaign.cancelled == campaign.total)
    finish_campaign(campaign_id, /*was_cancelled=*/false);
}

void Evald::finish_campaign(std::uint64_t campaign_id, bool was_cancelled) {
  const auto it = campaigns_.find(campaign_id);
  sim::check::that(it != campaigns_.end(), "svc.finish-unknown-campaign",
                   std::to_string(campaign_id));
  CampaignState& campaign = it->second;
  SessionState& sess = session(campaign.owner);
  CampaignDone done;
  done.campaign_id = campaign_id;
  done.completed = campaign.delivered;
  done.cancelled = campaign.cancelled;
  done.was_cancelled = was_cancelled;
  emit(sess, MsgType::kCampaignDone, encode(done));
  if (was_cancelled) {
    ++stats_.campaigns_cancelled;
  } else {
    ++stats_.campaigns_completed;
  }
  campaigns_.erase(it);
}

std::vector<std::uint8_t> Evald::take_output(SessionId id) {
  std::vector<std::uint8_t> out;
  out.swap(session(id).outbuf);
  return out;
}

void Evald::audit_quiescent() const {
  namespace check = sim::check;
  const ServiceStats& s = stats_;
  check::that(pending_points_ == 0, "svc.audit-pending-points", std::to_string(pending_points_));
  for (const auto& [sid, sess] : sessions_)
    check::that(sess.queue.empty(), "svc.audit-session-queue",
                "session " + std::to_string(sid) + " holds " + std::to_string(sess.queue.size()));
  check::that(campaigns_.empty(), "svc.audit-orphaned-campaigns",
              std::to_string(campaigns_.size()) + " campaigns never resolved");
  check::that(s.sessions_opened - s.sessions_closed == sessions_.size(),
              "svc.audit-orphaned-sessions",
              std::to_string(s.sessions_opened) + " opened, " +
                  std::to_string(s.sessions_closed) + " closed, " +
                  std::to_string(sessions_.size()) + " live");
  check::that(s.cache_lookups == s.cache_hits + s.cache_misses, "svc.audit-cache-lookups",
              std::to_string(s.cache_lookups) + " != " + std::to_string(s.cache_hits) + " + " +
                  std::to_string(s.cache_misses));
  check::that(s.cache_misses == s.points_computed + s.points_coalesced, "svc.audit-cache-misses",
              std::to_string(s.cache_misses) + " != " + std::to_string(s.points_computed) +
                  " + " + std::to_string(s.points_coalesced));
  check::that(
      s.points_completed == s.points_computed + s.points_cached + s.points_coalesced,
      "svc.audit-completions",
      std::to_string(s.points_completed) + " != " + std::to_string(s.points_computed) + " + " +
          std::to_string(s.points_cached) + " + " + std::to_string(s.points_coalesced));
  check::that(s.campaigns_submitted == s.campaigns_accepted + s.campaigns_rejected,
              "svc.audit-submissions",
              std::to_string(s.campaigns_submitted) + " != " +
                  std::to_string(s.campaigns_accepted) + " + " +
                  std::to_string(s.campaigns_rejected));
  check::that(s.campaigns_accepted == s.campaigns_completed + s.campaigns_cancelled,
              "svc.audit-campaign-resolution",
              std::to_string(s.campaigns_accepted) + " != " +
                  std::to_string(s.campaigns_completed) + " + " +
                  std::to_string(s.campaigns_cancelled));
  check::that(s.cache_entries == cache_.size() && s.cache_entries == s.points_computed,
              "svc.audit-cache-entries",
              std::to_string(s.cache_entries) + " counted, " + std::to_string(cache_.size()) +
                  " held, " + std::to_string(s.points_computed) + " computed");
}

}  // namespace pio::svc
