// PIOEval svc: the pioevald campaign service.
//
// The paper's "evaluation as a service" thread (§V: shared benchmarks,
// comparable results, the IO500 model) implies a long-running daemon in
// front of the simulator: many clients submit campaign specs, the service
// schedules the points fairly, computes each distinct point once, and
// streams results back. `Evald` is that daemon, in-process: byte streams
// in, byte streams out, no sockets — the framing layer (messages.hpp) is
// exactly what a socket transport would carry, and tests/benches/the
// `pioevald` tool drive thousands of sessions through it.
//
// Shape (DESIGN.md §15):
//   - The public API is single-threaded: feed()/pump()/take_output() are
//     called from one thread, so the service itself needs no locks.
//     Parallelism lives below, in the owned exec::Pool that pump() fans
//     each round's cold points out on (map_ordered ⇒ the full output byte
//     stream is identical at any thread count).
//   - Sessions are independent framed streams. A protocol fault is
//     answered with a typed Error frame; payload-level faults skip the
//     frame, header-level faults poison the session (framing itself can
//     no longer be trusted) — never a crash, never state corruption.
//   - Scheduling is round-robin across sessions with queued points: each
//     pump() round takes up to `session_inflight_cap` points per session,
//     interleaved one-per-session per pass, until `batch_points` are
//     selected. Admission is at the door (PR-8 vocabulary): a submit that
//     would push the total queue past `max_queue_points` is rejected with
//     a deterministic retry-after hint instead of queued.
//   - The result cache is keyed on the per-point request digest
//     (point_key): a key seen before is served from cache without
//     computing; two selections of the same key in one round compute once
//     and the rest coalesce onto the in-flight result. Cold, cached, and
//     coalesced deliveries of one key carry byte-identical blobs.
//
// `audit_quiescent()` asserts the accounting exactly (sim::check style):
//   cache_lookups == cache_hits + cache_misses
//   cache_misses  == points_computed + points_coalesced
//   points_completed == points_computed + points_cached + points_coalesced
//   no live campaign, no queued point, no orphaned session bookkeeping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "exec/pool.hpp"
#include "svc/messages.hpp"

namespace pio::svc {

using SessionId = std::uint64_t;

struct EvaldConfig {
  /// Worker threads for the per-round point fan-out; 0 resolves via
  /// exec::resolve_threads. Output bytes are identical at any setting.
  int threads = 0;
  /// Points selected per pump() round — fixed, *not* scaled by threads,
  /// so scheduling (and thus the output stream) is thread-count-invariant.
  std::uint32_t batch_points = 32;
  /// Per-session in-flight cap: at most this many of one session's points
  /// in a single round, so a thousand-point campaign cannot monopolize a
  /// round against interactive neighbours.
  std::uint32_t session_inflight_cap = 16;
  /// Admission bound on total queued points across all sessions; submits
  /// that would exceed it are rejected at the door with kOverloaded.
  std::uint32_t max_queue_points = 4096;
  /// Deterministic retry-after hint: floor + queued_points × cost_hint.
  std::uint64_t retry_after_floor_ns = 1'000'000;
  std::uint64_t per_point_cost_hint_ns = 2'000'000;
};

class Evald {
 public:
  explicit Evald(EvaldConfig config = {});

  /// Open a client session. Ids are never reused within one Evald.
  [[nodiscard]] SessionId open_session();
  /// Close a session: queued points are cancelled, live campaigns dropped
  /// (no CampaignDone — there is nobody left to read it), output discarded.
  void close_session(SessionId id);
  [[nodiscard]] std::uint32_t open_sessions() const;

  /// Append client bytes to a session and process every complete frame in
  /// them. Arbitrary split points are fine — a frame may arrive one byte
  /// at a time. Unknown `id` throws std::invalid_argument (API misuse, not
  /// a protocol fault).
  void feed(SessionId id, const std::uint8_t* data, std::size_t n);
  void feed(SessionId id, const std::vector<std::uint8_t>& bytes);
  /// Declare end-of-stream: leftover partial-frame bytes become a
  /// kTruncatedFrame error and the session is poisoned for further feeds.
  void finish(SessionId id);

  /// Run one scheduling round (select → compute → deliver). Returns true
  /// while any session still has queued points.
  bool pump();
  /// pump() to quiescence.
  void drain();

  /// Move the session's pending output bytes (a framed server→client
  /// stream) to the caller.
  [[nodiscard]] std::vector<std::uint8_t> take_output(SessionId id);

  [[nodiscard]] const ServiceStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t pending_points() const { return pending_points_; }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }

  /// Assert the accounting invariants; requires pending_points() == 0.
  /// Throws std::logic_error (sim::check) on any violation.
  void audit_quiescent() const;

 private:
  struct QueuedPoint {
    std::uint64_t campaign_id = 0;
    std::uint32_t index = 0;
    std::uint64_t key = 0;
  };

  struct SessionState {
    SessionId id = 0;
    std::vector<std::uint8_t> inbuf;
    std::vector<std::uint8_t> outbuf;
    std::deque<QueuedPoint> queue;
    bool poisoned = false;
  };

  struct CampaignState {
    SessionId owner = 0;
    CampaignSpec spec;
    eval::CampaignConfig config;
    std::uint32_t total = 0;
    std::uint32_t delivered = 0;
    std::uint32_t cancelled = 0;
  };

  struct CacheEntry {
    std::vector<std::uint8_t> blob;
    std::uint64_t digest = 0;
  };

  [[nodiscard]] SessionState& session(SessionId id);
  void emit(SessionState& sess, MsgType type, const std::vector<std::uint8_t>& payload);
  void emit_error(SessionState& sess, ErrorCode code, const char* detail,
                  std::uint64_t retry_after_ns = 0);
  void handle_frame(SessionState& sess, const Frame& frame);
  void handle_submit(SessionState& sess, const Frame& frame);
  void handle_cancel(SessionState& sess, const Frame& frame);
  /// Stream one PointResult to the campaign's owner and, when the campaign
  /// is fully resolved, the CampaignDone; erases the campaign then.
  void deliver(std::uint64_t campaign_id, std::uint32_t index, std::uint64_t key,
               const CacheEntry& entry, ResultSource source);
  void finish_campaign(std::uint64_t campaign_id, bool was_cancelled);

  EvaldConfig config_;
  exec::Pool pool_;
  // std::map (not unordered): iteration order is part of the scheduling
  // contract — round-robin passes walk sessions in ascending id order.
  std::map<SessionId, SessionState> sessions_;
  std::map<std::uint64_t, CampaignState> campaigns_;
  std::map<std::uint64_t, CacheEntry> cache_;
  ServiceStats stats_;
  SessionId next_session_ = 1;
  std::uint64_t next_campaign_ = 1;
  std::uint64_t pending_points_ = 0;
};

}  // namespace pio::svc
