#include "svc/messages.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/codec.hpp"
#include "common/fnv.hpp"
#include "workload/dlio.hpp"
#include "workload/kernels.hpp"
#include "workload/workflow.hpp"

namespace pio::svc {

namespace {

// Semantic bounds on spec fields. The wire format can carry any u32/u64;
// these keep a single malformed-but-well-framed submit from asking the
// service for terabyte transfers or million-rank sweeps.
constexpr std::uint32_t kMaxRanks = 4096;
constexpr std::uint32_t kMaxNodes = 4096;
constexpr std::uint64_t kMaxKib = 1u << 20;  // 1 GiB per block/transfer/sample
constexpr std::uint64_t kMaxSamples = 1u << 20;
constexpr std::uint32_t kMaxStages = 64;
constexpr std::uint32_t kMaxTasks = 4096;

void encode_system(codec::Writer& w, const SystemSpec& s) {
  w.u32(s.clients);
  w.u32(s.io_nodes);
  w.u32(s.osts);
  w.u8(s.disk);
}

[[nodiscard]] SystemSpec decode_system(codec::Reader& r) {
  SystemSpec s;
  s.clients = r.u32();
  s.io_nodes = r.u32();
  s.osts = r.u32();
  s.disk = r.u8();
  return s;
}

void encode_workload(codec::Writer& w, const WorkloadSpec& s) {
  w.u8(static_cast<std::uint8_t>(s.kind));
  w.u32(s.ranks);
  w.u64(s.block_kib);
  w.u64(s.transfer_kib);
  w.boolean(s.read_phase);
  w.u64(s.samples);
  w.u64(s.sample_kib);
  w.u64(s.samples_per_file);
  w.u64(s.batch);
  w.boolean(s.shuffle);
  w.u64(s.workload_seed);
  w.u32(s.stages);
  w.u32(s.tasks_per_stage);
  w.u32(s.files_per_task);
}

[[nodiscard]] WorkloadSpec decode_workload(codec::Reader& r) {
  WorkloadSpec s;
  s.kind = static_cast<WorkloadKind>(r.u8());
  s.ranks = r.u32();
  s.block_kib = r.u64();
  s.transfer_kib = r.u64();
  s.read_phase = r.boolean();
  s.samples = r.u64();
  s.sample_kib = r.u64();
  s.samples_per_file = r.u64();
  s.batch = r.u64();
  s.shuffle = r.boolean();
  s.workload_seed = r.u64();
  s.stages = r.u32();
  s.tasks_per_stage = r.u32();
  s.files_per_task = r.u32();
  return s;
}

void encode_spec(codec::Writer& w, const CampaignSpec& spec) {
  w.u64(spec.seed);
  w.f64(spec.calibration);
  encode_system(w, spec.testbed);
  encode_system(w, spec.model);
  w.u32(static_cast<std::uint32_t>(spec.workloads.size()));
  for (const auto& wl : spec.workloads) encode_workload(w, wl);
}

[[nodiscard]] const char* validate_system(const SystemSpec& s) {
  if (s.clients == 0 || s.clients > kMaxNodes) return "clients out of range";
  if (s.io_nodes == 0 || s.io_nodes > kMaxNodes) return "io_nodes out of range";
  if (s.osts == 0 || s.osts > kMaxNodes) return "osts out of range";
  if (s.disk > 1) return "disk kind out of range";
  return nullptr;
}

[[nodiscard]] const char* validate_workload(const WorkloadSpec& s) {
  switch (s.kind) {
    case WorkloadKind::kIor:
    case WorkloadKind::kDlio:
    case WorkloadKind::kWorkflow:
      break;
    default:
      return "unknown workload kind";
  }
  if (s.ranks == 0 || s.ranks > kMaxRanks) return "ranks out of range";
  if (s.block_kib == 0 || s.block_kib > kMaxKib) return "block_kib out of range";
  if (s.transfer_kib == 0 || s.transfer_kib > kMaxKib) return "transfer_kib out of range";
  if (s.transfer_kib > s.block_kib) return "transfer larger than block";
  // make_workload must never throw (a factory exception inside a pool task
  // would crash the service): mirror ior_like's divisibility precondition.
  if (s.block_kib % s.transfer_kib != 0) return "block not a multiple of transfer";
  if (s.samples == 0 || s.samples > kMaxSamples) return "samples out of range";
  if (s.sample_kib == 0 || s.sample_kib > kMaxKib) return "sample_kib out of range";
  if (s.samples_per_file == 0) return "samples_per_file zero";
  if (s.batch == 0 || s.batch > s.samples) return "batch out of range";
  if (s.stages == 0 || s.stages > kMaxStages) return "stages out of range";
  if (s.tasks_per_stage == 0 || s.tasks_per_stage > kMaxTasks) return "tasks_per_stage out of range";
  if (s.files_per_task == 0 || s.files_per_task > kMaxTasks) return "files_per_task out of range";
  return nullptr;
}

[[nodiscard]] std::vector<std::uint8_t> take(codec::Writer& w) { return w.take(); }

}  // namespace

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kSubmitCampaign: return "SubmitCampaign";
    case MsgType::kSubmitAck: return "SubmitAck";
    case MsgType::kPointResult: return "PointResult";
    case MsgType::kCampaignDone: return "CampaignDone";
    case MsgType::kCancelCampaign: return "CancelCampaign";
    case MsgType::kStats: return "Stats";
    case MsgType::kStatsReply: return "StatsReply";
    case MsgType::kError: return "Error";
  }
  return "?";
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kBadMagic: return "bad-magic";
    case ErrorCode::kBadVersion: return "bad-version";
    case ErrorCode::kOversizedFrame: return "oversized-frame";
    case ErrorCode::kBadCrc: return "bad-crc";
    case ErrorCode::kTruncatedFrame: return "truncated-frame";
    case ErrorCode::kUnknownType: return "unknown-type";
    case ErrorCode::kUnexpectedType: return "unexpected-type";
    case ErrorCode::kMalformed: return "malformed";
    case ErrorCode::kLimitExceeded: return "limit-exceeded";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kUnknownCampaign: return "unknown-campaign";
  }
  return "?";
}

const char* to_string(ResultSource source) {
  switch (source) {
    case ResultSource::kComputed: return "computed";
    case ResultSource::kCached: return "cached";
    case ResultSource::kCoalesced: return "coalesced";
  }
  return "?";
}

const char* validate(const CampaignSpec& spec) {
  if (!std::isfinite(spec.calibration) || spec.calibration <= 0.0 || spec.calibration > 1000.0)
    return "calibration out of range";
  if (const char* reason = validate_system(spec.testbed)) return reason;
  if (const char* reason = validate_system(spec.model)) return reason;
  if (spec.workloads.empty()) return "no workloads";
  if (spec.workloads.size() > kMaxWorkloadsPerCampaign) return "too many workloads";
  for (const auto& wl : spec.workloads)
    if (const char* reason = validate_workload(wl)) return reason;
  return nullptr;
}

eval::CampaignConfig to_campaign_config(const CampaignSpec& spec) {
  const auto to_pfs = [](const SystemSpec& s) {
    pfs::PfsConfig c;
    c.clients = s.clients;
    c.io_nodes = s.io_nodes;
    c.osts = s.osts;
    c.disk_kind = s.disk == 0 ? pfs::DiskKind::kHdd : pfs::DiskKind::kSsd;
    return c;
  };
  eval::CampaignConfig config;
  config.testbed = to_pfs(spec.testbed);
  config.model = to_pfs(spec.model);
  config.seed = spec.seed;
  config.iterations = 1;
  config.threads = 0;
  // The default layout spans 4 OSTs; a spec may model a narrower system.
  config.layout.stripe_count =
      std::min({config.layout.stripe_count, spec.testbed.osts, spec.model.osts});
  return config;
}

std::unique_ptr<workload::Workload> make_workload(const WorkloadSpec& spec) {
  switch (spec.kind) {
    case WorkloadKind::kDlio: {
      workload::DlioConfig c;
      c.ranks = static_cast<std::int32_t>(spec.ranks);
      c.samples = spec.samples;
      c.sample_size = Bytes::from_kib(spec.sample_kib);
      c.samples_per_file = spec.samples_per_file;
      c.batch_size = spec.batch;
      c.shuffle = spec.shuffle;
      c.seed = spec.workload_seed;
      c.compute_per_batch = SimTime::zero();
      return workload::dlio_like(c);
    }
    case WorkloadKind::kWorkflow: {
      workload::WorkflowConfig c;
      c.workers = static_cast<std::int32_t>(spec.ranks);
      c.stages = static_cast<std::int32_t>(spec.stages);
      c.tasks_per_stage = static_cast<std::int32_t>(spec.tasks_per_stage);
      c.files_per_task = static_cast<std::int32_t>(spec.files_per_task);
      c.compute_per_task = SimTime::zero();
      return workload::workflow_dag(c);
    }
    case WorkloadKind::kIor:
    default: {
      workload::IorConfig c;
      c.ranks = static_cast<std::int32_t>(spec.ranks);
      c.block_size = Bytes::from_kib(spec.block_kib);
      c.transfer_size = Bytes::from_kib(spec.transfer_kib);
      c.read_phase = spec.read_phase;
      return workload::ior_like(c);
    }
  }
}

std::uint64_t point_key(const CampaignSpec& spec, std::uint32_t index) {
  // Only the inputs that determine point `index`: the shared scalars, both
  // systems, the one workload record, and the index (it feeds derive_seed).
  // Campaigns sharing a workload prefix therefore share cache entries.
  codec::Writer w;
  w.u64(spec.seed);
  w.f64(spec.calibration);
  encode_system(w, spec.testbed);
  encode_system(w, spec.model);
  encode_workload(w, spec.workloads.at(index));
  w.u32(index);
  Fnv64 h;
  h.mix_bytes(w.view().data(), w.size());
  return h.digest();
}

// ---------------------------------------------------------------- framing

FrameStatus next_frame(const std::uint8_t* data, std::size_t n, std::size_t* consumed,
                       Frame* out) {
  *consumed = 0;
  if (n < kHeaderBytes) return FrameStatus::kNeedMore;
  codec::Reader r(data, kHeaderBytes);
  const std::uint32_t magic = r.u32();
  const std::uint16_t version = r.u16();
  const std::uint16_t type = r.u16();
  const std::uint32_t len = r.u32();
  const std::uint32_t crc = r.u32();
  if (magic != kFrameMagic) return FrameStatus::kBadMagic;
  if (version != kProtocolVersion) return FrameStatus::kBadVersion;
  if (len > kMaxPayloadBytes) return FrameStatus::kOversized;
  if (n - kHeaderBytes < len) return FrameStatus::kNeedMore;
  const std::uint8_t* payload = data + kHeaderBytes;
  if (codec::crc32(payload, len) != crc) {
    *consumed = kHeaderBytes + len;  // header was sane: resynchronise past it
    return FrameStatus::kBadCrc;
  }
  out->type = static_cast<MsgType>(type);
  out->payload.assign(payload, payload + len);
  *consumed = kHeaderBytes + len;
  return FrameStatus::kFrame;
}

void append_frame(MsgType type, const std::vector<std::uint8_t>& payload,
                  std::vector<std::uint8_t>& out) {
  if (payload.size() > kMaxPayloadBytes) throw std::length_error("svc frame payload too large");
  codec::Writer w;
  w.u32(kFrameMagic);
  w.u16(kProtocolVersion);
  w.u16(static_cast<std::uint16_t>(type));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(codec::crc32(payload.data(), payload.size()));
  out.insert(out.end(), w.view().begin(), w.view().end());
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<Frame> split_frames(const std::vector<std::uint8_t>& bytes) {
  std::vector<Frame> frames;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    Frame f;
    std::size_t consumed = 0;
    const FrameStatus status = next_frame(bytes.data() + pos, bytes.size() - pos, &consumed, &f);
    if (status != FrameStatus::kFrame) throw std::runtime_error("svc: corrupt trusted stream");
    frames.push_back(std::move(f));
    pos += consumed;
  }
  return frames;
}

// ---------------------------------------------------------------- payloads

std::vector<std::uint8_t> encode(const SubmitCampaign& m) {
  codec::Writer w;
  encode_spec(w, m.spec);
  return take(w);
}

bool decode(const std::vector<std::uint8_t>& payload, SubmitCampaign* out) {
  codec::Reader r(payload.data(), payload.size());
  CampaignSpec spec;
  spec.seed = r.u64();
  spec.calibration = r.f64();
  spec.testbed = decode_system(r);
  spec.model = decode_system(r);
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > kMaxWorkloadsPerCampaign) return false;
  spec.workloads.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) spec.workloads.push_back(decode_workload(r));
  if (!r.done()) return false;
  out->spec = std::move(spec);
  return true;
}

std::vector<std::uint8_t> encode(const SubmitAck& m) {
  codec::Writer w;
  w.u64(m.campaign_id);
  w.u32(m.points);
  return take(w);
}

bool decode(const std::vector<std::uint8_t>& payload, SubmitAck* out) {
  codec::Reader r(payload.data(), payload.size());
  out->campaign_id = r.u64();
  out->points = r.u32();
  return r.done();
}

std::vector<std::uint8_t> encode(const PointResult& m) {
  codec::Writer w;
  w.u64(m.campaign_id);
  w.u32(m.index);
  w.u64(m.key);
  w.u64(m.digest);
  w.u8(static_cast<std::uint8_t>(m.source));
  w.u32(static_cast<std::uint32_t>(m.blob.size()));
  w.bytes(m.blob.data(), m.blob.size());
  return take(w);
}

bool decode(const std::vector<std::uint8_t>& payload, PointResult* out) {
  codec::Reader r(payload.data(), payload.size());
  out->campaign_id = r.u64();
  out->index = r.u32();
  out->key = r.u64();
  out->digest = r.u64();
  const std::uint8_t source = r.u8();
  if (source > static_cast<std::uint8_t>(ResultSource::kCoalesced)) return false;
  out->source = static_cast<ResultSource>(source);
  const std::uint32_t n = r.u32();
  if (!r.ok() || n != r.remaining()) return false;
  out->blob.assign(payload.end() - static_cast<std::ptrdiff_t>(n), payload.end());
  return true;
}

std::vector<std::uint8_t> encode(const CampaignDone& m) {
  codec::Writer w;
  w.u64(m.campaign_id);
  w.u32(m.completed);
  w.u32(m.cancelled);
  w.boolean(m.was_cancelled);
  return take(w);
}

bool decode(const std::vector<std::uint8_t>& payload, CampaignDone* out) {
  codec::Reader r(payload.data(), payload.size());
  out->campaign_id = r.u64();
  out->completed = r.u32();
  out->cancelled = r.u32();
  out->was_cancelled = r.boolean();
  return r.done();
}

std::vector<std::uint8_t> encode(const CancelCampaign& m) {
  codec::Writer w;
  w.u64(m.campaign_id);
  return take(w);
}

bool decode(const std::vector<std::uint8_t>& payload, CancelCampaign* out) {
  codec::Reader r(payload.data(), payload.size());
  out->campaign_id = r.u64();
  return r.done();
}

std::vector<std::uint8_t> encode(const Stats&) { return {}; }

bool decode(const std::vector<std::uint8_t>& payload, Stats*) { return payload.empty(); }

std::vector<std::uint8_t> encode(const StatsReply& m) {
  codec::Writer w;
  const ServiceStats& s = m.stats;
  w.u64(s.sessions_opened);
  w.u64(s.sessions_closed);
  w.u64(s.frames_in);
  w.u64(s.frames_out);
  w.u64(s.protocol_errors);
  w.u64(s.campaigns_submitted);
  w.u64(s.campaigns_accepted);
  w.u64(s.campaigns_rejected);
  w.u64(s.campaigns_completed);
  w.u64(s.campaigns_cancelled);
  w.u64(s.points_completed);
  w.u64(s.points_computed);
  w.u64(s.points_cached);
  w.u64(s.points_coalesced);
  w.u64(s.points_cancelled);
  w.u64(s.cache_lookups);
  w.u64(s.cache_hits);
  w.u64(s.cache_misses);
  w.u64(s.cache_entries);
  return take(w);
}

bool decode(const std::vector<std::uint8_t>& payload, StatsReply* out) {
  codec::Reader r(payload.data(), payload.size());
  ServiceStats& s = out->stats;
  s.sessions_opened = r.u64();
  s.sessions_closed = r.u64();
  s.frames_in = r.u64();
  s.frames_out = r.u64();
  s.protocol_errors = r.u64();
  s.campaigns_submitted = r.u64();
  s.campaigns_accepted = r.u64();
  s.campaigns_rejected = r.u64();
  s.campaigns_completed = r.u64();
  s.campaigns_cancelled = r.u64();
  s.points_completed = r.u64();
  s.points_computed = r.u64();
  s.points_cached = r.u64();
  s.points_coalesced = r.u64();
  s.points_cancelled = r.u64();
  s.cache_lookups = r.u64();
  s.cache_hits = r.u64();
  s.cache_misses = r.u64();
  s.cache_entries = r.u64();
  return r.done();
}

std::vector<std::uint8_t> encode(const Error& m) {
  codec::Writer w;
  w.u16(static_cast<std::uint16_t>(m.code));
  w.u64(m.retry_after_ns);
  w.str(m.detail);
  return take(w);
}

bool decode(const std::vector<std::uint8_t>& payload, Error* out) {
  codec::Reader r(payload.data(), payload.size());
  const std::uint16_t code = r.u16();
  if (code > static_cast<std::uint16_t>(ErrorCode::kUnknownCampaign)) return false;
  out->code = static_cast<ErrorCode>(code);
  out->retry_after_ns = r.u64();
  out->detail = r.str();
  return r.done();
}

// ---------------------------------------------------------------- points

std::vector<std::uint8_t> encode_point(const eval::CampaignPoint& p) {
  // Same canonical field order as eval::point_digest — frozen; append only.
  codec::Writer w;
  w.str(p.workload);
  w.i64(p.measured.ns());
  w.i64(p.simulated_raw.ns());
  w.i64(p.predicted.ns());
  w.u64(p.failed_ops);
  w.u64(p.retries);
  w.u64(p.timeouts);
  w.u64(p.giveups);
  w.u64(p.failovers);
  w.u64(p.degraded_reads);
  w.u64(p.data_lost_ops);
  w.u64(p.rebuilds_completed);
  w.u64(p.rebuilt_bytes.count());
  w.u64(p.stale_map_retries);
  w.u64(p.map_refreshes);
  w.u64(p.down_detections);
  w.u64(p.migration_marked_bytes.count());
  w.u64(p.overload_rejections);
  w.u64(p.budget_denied);
  w.u64(p.breaker_opens);
  w.u64(p.breaker_fast_fails);
  w.u64(p.deadline_giveups);
  w.u64(p.server_overload_rejected);
  w.u64(p.server_shed);
  w.u64(p.cache_hits);
  w.u64(p.cache_misses);
  w.u64(p.cache_evictions);
  w.u64(p.cache_prefetch_issued);
  w.u64(p.cache_prefetch_used);
  w.u64(p.cache_prefetch_wasted);
  w.u64(p.cache_writebacks);
  w.u64(p.cache_absorbed_writes);
  return take(w);
}

bool decode_point(const std::vector<std::uint8_t>& blob, eval::CampaignPoint* out) {
  codec::Reader r(blob.data(), blob.size());
  eval::CampaignPoint p;
  p.workload = r.str();
  p.measured = SimTime::from_ns(r.i64());
  p.simulated_raw = SimTime::from_ns(r.i64());
  p.predicted = SimTime::from_ns(r.i64());
  p.failed_ops = r.u64();
  p.retries = r.u64();
  p.timeouts = r.u64();
  p.giveups = r.u64();
  p.failovers = r.u64();
  p.degraded_reads = r.u64();
  p.data_lost_ops = r.u64();
  p.rebuilds_completed = r.u64();
  p.rebuilt_bytes = Bytes(r.u64());
  p.stale_map_retries = r.u64();
  p.map_refreshes = r.u64();
  p.down_detections = r.u64();
  p.migration_marked_bytes = Bytes(r.u64());
  p.overload_rejections = r.u64();
  p.budget_denied = r.u64();
  p.breaker_opens = r.u64();
  p.breaker_fast_fails = r.u64();
  p.deadline_giveups = r.u64();
  p.server_overload_rejected = r.u64();
  p.server_shed = r.u64();
  p.cache_hits = r.u64();
  p.cache_misses = r.u64();
  p.cache_evictions = r.u64();
  p.cache_prefetch_issued = r.u64();
  p.cache_prefetch_used = r.u64();
  p.cache_prefetch_wasted = r.u64();
  p.cache_writebacks = r.u64();
  p.cache_absorbed_writes = r.u64();
  if (!r.done()) return false;
  *out = std::move(p);
  return true;
}

}  // namespace pio::svc
