// PIOEval svc: the pioevald wire protocol — typed, framed, CRC-guarded.
//
// The paper's closing argument is that parallel I/O evaluation should be a
// shared *service*: campaigns run on demand against a common corpus, and
// results accumulate comparably across users (the IO500 model). This
// header defines the protocol the `pio::svc::Evald` campaign service
// speaks (DESIGN.md §15): length-prefixed binary frames, each carrying one
// typed message, following the Ceph `Message` encode/decode discipline —
// every message knows how to encode itself into a payload and how to
// *strictly* decode one, rejecting truncated, oversized, trailing-garbage
// and out-of-range inputs by typed `Error` response, never by crash.
//
// Frame layout (all little-endian):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     4  magic   0x50494F46 ("FOIP" on the wire)
//        4     2  version (kProtocolVersion)
//        6     2  message type (MsgType)
//        8     4  payload length in bytes (<= kMaxPayloadBytes)
//       12     4  CRC-32 (IEEE) of the payload bytes
//       16     n  payload
//
// A decoder can always resynchronise after a payload-level fault (bad CRC,
// unknown type, malformed payload) because the header told it the frame
// length; header-level faults (bad magic/version, oversized length) poison
// the stream — the session is answered with an `Error` and ignored from
// then on, since framing itself can no longer be trusted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "eval/campaign.hpp"

namespace pio::svc {

inline constexpr std::uint32_t kFrameMagic = 0x50494F46u;  // "FOIP" little-endian
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 16;
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;
inline constexpr std::size_t kMaxWorkloadsPerCampaign = 1024;

enum class MsgType : std::uint16_t {
  kSubmitCampaign = 1,  ///< client → server: one CampaignSpec
  kSubmitAck = 2,       ///< server → client: accepted, campaign id assigned
  kPointResult = 3,     ///< server → client: one computed/cached point (streamed)
  kCampaignDone = 4,    ///< server → client: campaign fully resolved
  kCancelCampaign = 5,  ///< client → server: drop queued points
  kStats = 6,           ///< client → server: request service counters
  kStatsReply = 7,      ///< server → client: the counters
  kError = 8,           ///< server → client: typed rejection
};

enum class ErrorCode : std::uint16_t {
  kNone = 0,
  kBadMagic = 1,        ///< header magic mismatch (stream poisoned)
  kBadVersion = 2,      ///< unknown protocol version (stream poisoned)
  kOversizedFrame = 3,  ///< declared payload length > kMaxPayloadBytes (poisoned)
  kBadCrc = 4,          ///< payload CRC mismatch (frame skipped)
  kTruncatedFrame = 5,  ///< stream ended inside a frame
  kUnknownType = 6,     ///< message type not in MsgType
  kUnexpectedType = 7,  ///< a server→client type sent to the server
  kMalformed = 8,       ///< payload failed strict decode
  kLimitExceeded = 9,   ///< spec valid but over a service limit
  kOverloaded = 10,     ///< submission queue full; retry after the hint
  kUnknownCampaign = 11, ///< cancel for an id this session does not own
};

/// Where a streamed point result came from (the cache-semantics oracle:
/// the `blob` bytes must be identical across all three sources).
enum class ResultSource : std::uint8_t { kComputed = 0, kCached = 1, kCoalesced = 2 };

[[nodiscard]] const char* to_string(MsgType type);
[[nodiscard]] const char* to_string(ErrorCode code);
[[nodiscard]] const char* to_string(ResultSource source);

// ---------------------------------------------------------------- specs

enum class WorkloadKind : std::uint8_t { kIor = 1, kDlio = 2, kWorkflow = 3 };

/// One sweep-point workload, wire-encodable. A flat parameter record
/// (fields irrelevant to `kind` ride along at defaults) so encode/decode
/// and the cache key never depend on which kind is active.
struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kIor;
  std::uint32_t ranks = 4;
  // IOR-like fields.
  std::uint64_t block_kib = 1024;
  std::uint64_t transfer_kib = 256;
  bool read_phase = false;
  // DLIO-like fields.
  std::uint64_t samples = 64;
  std::uint64_t sample_kib = 64;
  std::uint64_t samples_per_file = 32;
  std::uint64_t batch = 8;
  bool shuffle = true;
  std::uint64_t workload_seed = 42;
  // Workflow-DAG fields.
  std::uint32_t stages = 2;
  std::uint32_t tasks_per_stage = 4;
  std::uint32_t files_per_task = 1;
  bool operator==(const WorkloadSpec&) const = default;
};

/// A PFS instance, wire-encodable: the config axes the service exposes.
struct SystemSpec {
  std::uint32_t clients = 8;
  std::uint32_t io_nodes = 2;
  std::uint32_t osts = 4;
  std::uint8_t disk = 1;  ///< 0 = HDD, 1 = SSD
  bool operator==(const SystemSpec&) const = default;
};

/// One service campaign: a seed, a calibration, the testbed/model pair,
/// and a sweep of workloads. Each workload is one independent *point*
/// (measure → replay → simulate at iteration 0), so points are cacheable
/// across campaigns and sessions.
struct CampaignSpec {
  std::uint64_t seed = 1;
  double calibration = 1.0;
  SystemSpec testbed{};
  SystemSpec model{};
  std::vector<WorkloadSpec> workloads;
  bool operator==(const CampaignSpec&) const = default;
};

/// nullptr when the spec is semantically valid, else a stable reason
/// string (bounds on ranks, counts, sizes — the strict-decode backstop
/// against resource-exhaustion requests).
[[nodiscard]] const char* validate(const CampaignSpec& spec);

/// Build the eval-layer view of a spec system pair. `threads` stays 0: the
/// service owns the pool; evaluate_point never fans out.
[[nodiscard]] eval::CampaignConfig to_campaign_config(const CampaignSpec& spec);

/// Instantiate workload `index` of the spec (fresh object per call: pool
/// tasks never share generator state).
[[nodiscard]] std::unique_ptr<workload::Workload> make_workload(const WorkloadSpec& spec);

/// The per-point request digest the result cache is keyed on: an FNV-1a
/// fold of the canonical encoding of every input that determines point
/// `index` — seed, calibration, both systems, the workload record, and the
/// index itself (it feeds derive_seed). Equal keys ⇒ byte-identical
/// results, across sessions and users.
[[nodiscard]] std::uint64_t point_key(const CampaignSpec& spec, std::uint32_t index);

// ---------------------------------------------------------------- messages

struct SubmitCampaign {
  CampaignSpec spec;
};

struct SubmitAck {
  std::uint64_t campaign_id = 0;
  std::uint32_t points = 0;
};

struct PointResult {
  std::uint64_t campaign_id = 0;
  std::uint32_t index = 0;
  std::uint64_t key = 0;     ///< cache key (point_key of the request)
  std::uint64_t digest = 0;  ///< eval::point_digest of the decoded point
  ResultSource source = ResultSource::kComputed;
  std::vector<std::uint8_t> blob;  ///< canonical encoded CampaignPoint
};

struct CampaignDone {
  std::uint64_t campaign_id = 0;
  std::uint32_t completed = 0;
  std::uint32_t cancelled = 0;
  bool was_cancelled = false;
};

struct CancelCampaign {
  std::uint64_t campaign_id = 0;
};

struct Stats {};

/// Service counters, wire-encodable (also the Evald's live counter block).
/// The quiescence audit holds these to exact accounting:
///   cache_lookups == cache_hits + cache_misses
///   cache_misses  == points_computed + points_coalesced
///   points_completed == points_computed + points_cached + points_coalesced
struct ServiceStats {
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t campaigns_submitted = 0;
  std::uint64_t campaigns_accepted = 0;
  std::uint64_t campaigns_rejected = 0;
  std::uint64_t campaigns_completed = 0;
  std::uint64_t campaigns_cancelled = 0;
  std::uint64_t points_completed = 0;  ///< PointResult frames delivered
  std::uint64_t points_computed = 0;   ///< cold: ran the simulation
  std::uint64_t points_cached = 0;     ///< served from the result cache
  std::uint64_t points_coalesced = 0;  ///< joined an in-flight computation
  std::uint64_t points_cancelled = 0;
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_entries = 0;
  bool operator==(const ServiceStats&) const = default;
};

struct StatsReply {
  ServiceStats stats;
};

struct Error {
  ErrorCode code = ErrorCode::kNone;
  std::uint64_t retry_after_ns = 0;  ///< only meaningful for kOverloaded
  std::string detail;
};

// ---------------------------------------------------------------- framing

/// One parsed frame: the type plus its raw payload bytes.
struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::uint8_t> payload;
};

/// Outcome of scanning a byte stream for the next frame.
enum class FrameStatus : std::uint8_t {
  kFrame,       ///< *out filled, *consumed advanced past the frame
  kNeedMore,    ///< incomplete header or payload; feed more bytes
  kBadMagic,    ///< stream poisoned
  kBadVersion,  ///< stream poisoned
  kOversized,   ///< stream poisoned (length field untrustworthy)
  kBadCrc,      ///< frame skipped; *consumed advanced past it
};

/// Scan for one frame at the front of [data, data+n). Never throws, never
/// reads out of bounds. On kFrame and kBadCrc, `*consumed` is the number
/// of bytes to drop from the stream; on every other status it is 0.
[[nodiscard]] FrameStatus next_frame(const std::uint8_t* data, std::size_t n,
                                     std::size_t* consumed, Frame* out);

/// Append one full frame (header + CRC + payload) for `type` to `out`.
void append_frame(MsgType type, const std::vector<std::uint8_t>& payload,
                  std::vector<std::uint8_t>& out);

/// Split a *trusted* stream (e.g. a session outbox written by the server)
/// into frames. Throws std::runtime_error on any corruption — untrusted
/// input goes through next_frame instead.
[[nodiscard]] std::vector<Frame> split_frames(const std::vector<std::uint8_t>& bytes);

// Payload encoders. Each returns only the payload; wrap with append_frame.
[[nodiscard]] std::vector<std::uint8_t> encode(const SubmitCampaign& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const SubmitAck& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const PointResult& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const CampaignDone& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const CancelCampaign& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const Stats& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const StatsReply& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const Error& m);

// Strict payload decoders: false on truncation, trailing bytes, or any
// out-of-range field. Decoding never throws.
[[nodiscard]] bool decode(const std::vector<std::uint8_t>& payload, SubmitCampaign* out);
[[nodiscard]] bool decode(const std::vector<std::uint8_t>& payload, SubmitAck* out);
[[nodiscard]] bool decode(const std::vector<std::uint8_t>& payload, PointResult* out);
[[nodiscard]] bool decode(const std::vector<std::uint8_t>& payload, CampaignDone* out);
[[nodiscard]] bool decode(const std::vector<std::uint8_t>& payload, CancelCampaign* out);
[[nodiscard]] bool decode(const std::vector<std::uint8_t>& payload, Stats* out);
[[nodiscard]] bool decode(const std::vector<std::uint8_t>& payload, StatsReply* out);
[[nodiscard]] bool decode(const std::vector<std::uint8_t>& payload, Error* out);

/// Canonical encoding of a computed CampaignPoint — the bytes the result
/// cache stores and PointResult carries. Field order is frozen (it is the
/// byte-identity contract); new fields append.
[[nodiscard]] std::vector<std::uint8_t> encode_point(const eval::CampaignPoint& point);
[[nodiscard]] bool decode_point(const std::vector<std::uint8_t>& blob, eval::CampaignPoint* out);

}  // namespace pio::svc
